//! In-process telemetry capture: install a full-level memory sink, run
//! real workloads across transport backends, and assert the capture holds
//! what the tentpole promises — per-phase wall-clock, per-round engine and
//! link events, executor dispatch decisions, and service gauges — while
//! answers and accounting stay exactly what the untraced suite pins.
//!
//! This file is its own test binary on purpose: the telemetry handle is
//! process-global and first-install-wins, so the install below must not
//! share a process with tests that need `CC_TRACE=off`.

use congested_clique::clique::{Clique, CliqueConfig, ExecutorKind, TransportKind};
use congested_clique::graph::{generators, oracle};
use congested_clique::service::{Query, Service, ServiceConfig, ServiceMode};
use congested_clique::subgraph::{count_triangles, count_triangles_program};
use congested_clique::telemetry::{self, MemorySink, Telemetry, TraceLevel};

/// Installs the shared full-level memory sink (idempotent across the test
/// binary; first install wins and later calls see the same sink).
fn sink() -> &'static MemorySink {
    let _ = telemetry::install(Telemetry::with_memory(TraceLevel::Full));
    let tel = telemetry::global();
    assert_eq!(tel.level(), TraceLevel::Full, "install must precede use");
    tel.memory().expect("memory-backed handle")
}

fn cfg(transport: TransportKind) -> CliqueConfig {
    CliqueConfig {
        executor: ExecutorKind::Parallel { threads: 2 },
        exec_cutover: Some(2),
        transport,
        ..CliqueConfig::default()
    }
}

#[test]
fn full_capture_holds_phases_rounds_links_and_dispatches() {
    let mem = sink();
    let n = 16;
    let g = generators::gnp(n, 0.4, 7);
    let expected = oracle::count_triangles(&g);

    let mut counts = Vec::new();
    let mut accounting = Vec::new();
    for transport in [
        TransportKind::InMemory,
        TransportKind::Channel,
        TransportKind::Socket { workers: 2 },
    ] {
        let mut clique = Clique::with_config(n, cfg(transport));
        let t = clique.phase("capture.triangles", |c| count_triangles(c, &g));
        counts.push(t);
        accounting.push((clique.rounds(), clique.stats().words()));
        let phase = clique.stats().phase("capture.triangles").unwrap();
        assert!(
            phase.wall_ns > 0,
            "{transport:?}: phase wall-clock recorded"
        );
        assert!(phase.rounds > 0 && phase.words > 0);
    }
    // Tracing never perturbs the simulation: right answers, and identical
    // accounting on every backend.
    assert!(counts.iter().all(|&t| t == expected), "answers intact");
    assert!(
        accounting.windows(2).all(|w| w[0] == w[1]),
        "rounds/words identical across traced backends: {accounting:?}"
    );

    let snap = mem.snapshot();
    // Phase events: one PhaseAgg run per backend, wall-clock accrued.
    let agg = snap
        .phases
        .get("capture.triangles")
        .expect("phase events captured");
    assert_eq!(agg.runs, 3, "one phase run per backend");
    assert!(agg.wall_ns > 0 && agg.rounds > 0 && agg.words > 0);

    // Per-round link events from every backend, with consistent histograms
    // and per-round skew (max >= mean on every round).
    for backend in ["inmemory", "channel", "socket"] {
        let t = snap
            .transports
            .get(backend)
            .unwrap_or_else(|| panic!("{backend} rounds captured: {:?}", snap.transports.keys()));
        assert!(t.rounds > 0, "{backend}: transport rounds");
        assert!(t.words > 0 && t.max_link > 0);
        assert!(t.max_skew >= 1.0, "{backend}: max link >= mean link");
        assert!(t.hist.total() > 0, "{backend}: link histogram populated");
        assert!(t.barrier_ns > 0, "{backend}: barrier wall-clock");
    }
    // Frame batches are socket-only (Full level).
    let socket = &snap.transports["socket"];
    assert!(socket.frame_batches > 0, "socket coalesces frame batches");
    assert!(socket.frame_bytes > 0);
    assert_eq!(snap.transports["inmemory"].frame_batches, 0);

    // Executor fan-out decisions at Full: with cutover 2 both sides of the
    // boundary occur in a real run.
    assert!(
        snap.dispatch.inline + snap.dispatch.dispatched > 0,
        "dispatch decisions captured"
    );
    assert!(snap.dispatch.pieces > 0);

    // Node-local kernel decisions at Full: the fast-MM local products must
    // have dispatched through the CC_KERNEL seam, and the counter aggregates
    // in the capture.
    assert!(
        mem.counter("kernel_decisions") > 0,
        "kernel decisions captured"
    );

    // NodeProgram algorithms drive the engine's round barrier; run one to
    // capture EngineRound events with step and barrier wall-clock.
    let mut clique = Clique::with_config(n, cfg(TransportKind::InMemory));
    let t = count_triangles_program(&mut clique, &g);
    assert_eq!(t, expected, "program answer intact under tracing");
    let engine = mem.snapshot().engine;
    assert!(engine.barriers > 0, "engine rounds captured");
    assert!(engine.step_ns > 0, "per-round step wall-clock");
    assert!(engine.barrier_ns > 0, "per-round barrier wall-clock");
    assert!(engine.words > 0, "engine rounds carried traffic");
}

#[test]
fn service_drain_publishes_cache_and_pool_gauges() {
    let mem = sink();
    let n = 12;
    let g = generators::gnp(n, 0.5, 11);
    let mut svc = Service::new(ServiceConfig {
        mode: ServiceMode::Batch { instances: 2 },
        ..ServiceConfig::default()
    });
    let gid = svc.register(g);
    // Duplicates exercise coalescing; two kinds exercise the fan-out.
    let tickets: Vec<_> = [
        Query::TriangleCount,
        Query::TriangleCount,
        Query::ApspTable,
        Query::Distance { s: 0, t: n - 1 },
    ]
    .into_iter()
    .map(|q| svc.submit(gid, q))
    .collect();
    svc.drain();
    for t in tickets {
        assert!(svc.take(t).is_some(), "drained batch resolves tickets");
    }
    // Second identical batch: pure cache hits, gauges move.
    svc.query(gid, Query::TriangleCount);

    let stats = svc.stats();
    assert!(stats.cache_entries >= 2, "triangles + apsp cached");
    assert!(stats.cache_bytes > 0);
    assert_eq!(stats.cache_entries, svc.cached_computations() as u64);
    assert_eq!(stats.cache_bytes, svc.cache_bytes());
    // The APSP tables dominate: two n×n matrices of at least word size.
    assert!(
        stats.cache_bytes >= (n * n) as u64,
        "byte gauge sees the tables: {}",
        stats.cache_bytes
    );

    assert_eq!(
        mem.gauge("service_cache_entries"),
        Some(stats.cache_entries as f64)
    );
    assert_eq!(
        mem.gauge("service_cache_bytes"),
        Some(stats.cache_bytes as f64)
    );
    let hit_rate = mem.gauge("service_hit_rate").expect("hit rate gauge");
    assert!(hit_rate > 0.0 && hit_rate < 1.0, "hit rate {hit_rate}");
    let coalesce = mem.gauge("service_coalesce_ratio").expect("coalesce gauge");
    assert!(coalesce > 0.0, "duplicate submissions coalesced");
    assert!(mem.gauge("service_pool_built").unwrap_or(0.0) >= 1.0);
    assert!(mem.gauge("service_pool_idle").unwrap_or(0.0) >= 1.0);
    assert!(
        mem.gauge("service_batch_ns_per_query").unwrap_or(0.0) > 0.0,
        "per-query latency gauge"
    );
}

#[test]
fn clique_reset_emits_a_reset_marker() {
    let mem = sink();
    let n = 8;
    let g = generators::gnp(n, 0.5, 21);
    let mut clique = Clique::with_config(n, cfg(TransportKind::InMemory));
    let t = clique.phase("capture.reset-run", |c| count_triangles(c, &g));
    assert_eq!(t, oracle::count_triangles(&g));
    let discarded = clique.rounds();
    assert!(discarded > 0, "the run accrued rounds to discard");

    let before = mem.counter("clique_resets");
    clique.reset();
    assert_eq!(clique.rounds(), 0, "reset zeroes the accounting");
    assert_eq!(
        mem.counter("clique_resets"),
        before + 1,
        "reset marker counted"
    );
    // The raw marker carries the discarded totals (the ring holds the most
    // recent RECENT_CAP events, far more than this test emits after reset).
    let snap = mem.snapshot();
    assert!(
        snap.recent.iter().any(|e| matches!(
            e,
            telemetry::Event::Reset { rounds, words, .. }
                if *rounds == discarded && *words > 0
        )),
        "Reset event with the discarded totals in the ring"
    );
}

#[test]
fn tcp_peer_resident_capture_attributes_worker_events() {
    let mem = sink();
    let n = 12;
    let g = generators::gnp(n, 0.45, 13);
    let expected = oracle::count_triangles(&g);
    let workers = 2;

    let mut clique = Clique::with_config(
        n,
        cfg(TransportKind::Tcp {
            workers,
            resident: true,
            addr: None,
        }),
    );
    let t = count_triangles_program(&mut clique, &g);
    assert_eq!(t, expected, "resident answer intact under tracing");
    // The final telemetry snapshots ride the shutdown drain; drop the
    // clique so the orchestrator merges them before we look.
    drop(clique);

    let snap = mem.snapshot();
    // The distributed capture attributed events to every worker process:
    // each one stepped resident rounds and shipped mesh frame batches.
    for id in 0..workers as u32 {
        let agg = snap.workers.get(&id).unwrap_or_else(|| {
            panic!(
                "worker {id} attributed in the merge: {:?}",
                snap.workers.keys()
            )
        });
        assert!(
            agg.resident_rounds > 0,
            "worker {id}: resident rounds captured worker-side"
        );
        assert!(
            agg.frame_batches > 0 && agg.frame_bytes > 0,
            "worker {id}: peer-mesh frame batches captured worker-side"
        );
        assert!(agg.events > 0 && agg.peer_bytes > 0);
    }
    // Worker-attributed events never leak into the orchestrator's global
    // transport aggregates (they would double-count the fabric).
    assert_eq!(
        snap.transports
            .get("inmemory")
            .map_or(0, |t| t.frame_batches),
        0
    );
    // The orchestrator measured its barrier lanes, so the critical path
    // over the resident epochs is derivable.
    assert!(
        snap.critical_path().iter().any(|p| p.backend == "tcp"),
        "tcp barrier lanes captured: {:?}",
        snap.lanes.keys()
    );
}

#[test]
fn malformed_env_warnings_flow_into_the_capture() {
    let mem = sink();
    let before = mem.counter("config_warnings");
    // Route a warn-once through the shared helper with a variable no other
    // layer owns; with telemetry installed it must land in the sink, not
    // on stderr.
    telemetry::env_config::warn_once(
        "trace-capture-test",
        "CC_TRACE_CAPTURE_FAKE_VAR",
        "banana",
        "a real value",
        "fallback",
    );
    assert_eq!(mem.counter("config_warnings"), before + 1);
    let snap = mem.snapshot();
    assert!(
        snap.warnings
            .iter()
            .any(|w| w.contains("CC_TRACE_CAPTURE_FAKE_VAR=\"banana\"")),
        "warning text captured: {:?}",
        snap.warnings
    );
    // Warn-once: a second report for the same variable is suppressed.
    telemetry::env_config::warn_once(
        "trace-capture-test",
        "CC_TRACE_CAPTURE_FAKE_VAR",
        "banana",
        "a real value",
        "fallback",
    );
    assert_eq!(mem.counter("config_warnings"), before + 1);
}
