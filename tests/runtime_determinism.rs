//! Simulator-level determinism: a parallel-executor `Clique` must report
//! exactly the rounds, words, inboxes, pattern fingerprints, and algorithm
//! results of a sequential one — for random send patterns and for the
//! paper's multiplication algorithms.

use congested_clique::algebra::{IntRing, Matrix};
use congested_clique::clique::{Clique, CliqueConfig, ExecutorKind};
use congested_clique::core::{fast_mm, semiring_mm, RowMatrix};
use proptest::prelude::*;

fn cfg(kind: ExecutorKind) -> CliqueConfig {
    CliqueConfig {
        record_patterns: true,
        executor: kind,
        ..CliqueConfig::default()
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn rand_matrix(n: usize, seed: u64) -> Matrix<i64> {
    let mut st = seed;
    Matrix::from_fn(n, n, |_, _| {
        st = st
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((st >> 33) % 9) as i64 - 4
    })
}

/// A pseudo-random but deterministic per-node send pattern: node `v` sends
/// `0..4` messages of `1..6` words to hashed destinations.
fn pattern(n: usize, seed: u64) -> impl Fn(usize) -> Vec<(usize, Vec<u64>)> + Sync {
    move |v| {
        let h = splitmix(seed ^ (v as u64) << 17);
        (0..h % 4)
            .map(|shot| {
                let hh = splitmix(h ^ shot);
                let dst = (hh % n as u64) as usize;
                let words = (0..1 + (hh >> 8) % 5).map(|j| hh ^ j).collect();
                (dst, words)
            })
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn random_send_patterns_are_executor_independent(
        n in 2usize..32,
        seed in 0u64..1_000_000,
        threads in 2usize..9,
    ) {
        let run = |kind: ExecutorKind| {
            let mut c = Clique::with_config(n, cfg(kind));
            let via_links = c.exchange_par(pattern(n, seed));
            let via_relays = c.route_par(pattern(n, seed ^ 0xabc));
            let inboxes: Vec<Vec<Vec<u64>>> = (0..n)
                .map(|dst| {
                    (0..n)
                        .map(|src| {
                            let mut all = via_links.received(dst, src).to_vec();
                            all.extend_from_slice(via_relays.received(dst, src));
                            all
                        })
                        .collect()
                })
                .collect();
            (
                inboxes,
                c.rounds(),
                c.stats().words(),
                c.stats().pattern_fingerprints().to_vec(),
            )
        };
        let seq = run(ExecutorKind::Sequential);
        let par = run(ExecutorKind::Parallel { threads });
        prop_assert_eq!(&seq.0, &par.0, "inbox contents must match");
        prop_assert_eq!(seq.1, par.1, "rounds must match");
        prop_assert_eq!(seq.2, par.2, "words must match");
        prop_assert_eq!(&seq.3, &par.3, "pattern fingerprints must match");
    }
}

#[test]
fn matrix_multiplication_is_executor_independent() {
    let n = 50;
    let a = rand_matrix(n, 11);
    let b = rand_matrix(n, 23);
    let expected = Matrix::mul(&IntRing, &a, &b);

    let run = |kind: ExecutorKind| {
        let mut c = Clique::with_config(n, cfg(kind));
        let fast = fast_mm::multiply_auto(
            &mut c,
            &IntRing,
            &RowMatrix::from_matrix(&a),
            &RowMatrix::from_matrix(&b),
        );
        let three_d = semiring_mm::multiply(
            &mut c,
            &IntRing,
            &RowMatrix::from_matrix(&a),
            &RowMatrix::from_matrix(&b),
        );
        (
            fast.to_matrix(),
            three_d.to_matrix(),
            c.rounds(),
            c.stats().words(),
            c.stats().pattern_fingerprints().to_vec(),
        )
    };

    let seq = run(ExecutorKind::Sequential);
    let par = run(ExecutorKind::Parallel { threads: 4 });
    assert_eq!(seq.0, expected, "fast_mm must be correct");
    assert_eq!(seq.1, expected, "semiring_mm must be correct");
    assert_eq!(seq.0, par.0, "fast_mm results must match across executors");
    assert_eq!(
        seq.1, par.1,
        "semiring_mm results must match across executors"
    );
    assert_eq!(seq.2, par.2, "round counts must match across executors");
    assert_eq!(seq.3, par.3, "word counts must match across executors");
    assert_eq!(seq.4, par.4, "fingerprints must match across executors");
}

#[test]
fn round_counts_match_the_seed_link_level_semantics() {
    // The ported primitives must charge exactly what the historical serial
    // simulator charged. These constants pin the seed's accounting.
    let mut c = Clique::parallel(8);
    c.broadcast(|v| v as u64);
    assert_eq!(c.rounds(), 1, "one-word broadcast is one round");
    let _ = c.exchange_par(|v| {
        if v == 0 {
            vec![(1, vec![1, 2, 3])]
        } else {
            vec![]
        }
    });
    assert_eq!(c.rounds(), 4, "3-word link queue costs 3 more rounds");
}
