//! Simulator-level determinism: a parallel-executor `Clique` must report
//! exactly the rounds, words, inboxes, pattern fingerprints, and algorithm
//! results of a sequential one — for random send patterns and for the
//! paper's multiplication algorithms.

use congested_clique::algebra::{IntRing, Matrix};
use congested_clique::apsp;
use congested_clique::clique::{Clique, CliqueConfig, ExecutorKind, TransportKind};
use congested_clique::core::{fast_mm, semiring_mm, RowMatrix};
use congested_clique::graph::generators;
use congested_clique::subgraph;
use proptest::prelude::*;

fn cfg(kind: ExecutorKind) -> CliqueConfig {
    CliqueConfig {
        record_patterns: true,
        executor: kind,
        // Cutover disabled: the property sizes are small, and the point is
        // to genuinely exercise the parallel dispatch paths.
        exec_cutover: Some(2),
        ..CliqueConfig::default()
    }
}

fn cfg_transport(kind: TransportKind) -> CliqueConfig {
    CliqueConfig {
        record_patterns: true,
        transport: kind,
        ..CliqueConfig::default()
    }
}

/// The transport axis of the determinism matrix: the in-memory reference,
/// the cross-thread channel fabric, the multi-process socket fabric (both
/// worker-count extremes the test budget allows), and the TCP fabric in
/// both its star and program-resident modes.
fn transport_axis() -> [TransportKind; 6] {
    [
        TransportKind::InMemory,
        TransportKind::Channel,
        TransportKind::Socket { workers: 1 },
        TransportKind::Socket { workers: 3 },
        TransportKind::Tcp {
            workers: 2,
            resident: false,
            addr: None,
        },
        TransportKind::Tcp {
            workers: 2,
            resident: true,
            addr: None,
        },
    ]
}
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn rand_matrix(n: usize, seed: u64) -> Matrix<i64> {
    let mut st = seed;
    Matrix::from_fn(n, n, |_, _| {
        st = st
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((st >> 33) % 9) as i64 - 4
    })
}

/// A pseudo-random but deterministic per-node send pattern: node `v` sends
/// `0..4` messages of `1..6` words to hashed destinations.
fn pattern(n: usize, seed: u64) -> impl Fn(usize) -> Vec<(usize, Vec<u64>)> + Sync {
    move |v| {
        let h = splitmix(seed ^ (v as u64) << 17);
        (0..h % 4)
            .map(|shot| {
                let hh = splitmix(h ^ shot);
                let dst = (hh % n as u64) as usize;
                let words = (0..1 + (hh >> 8) % 5).map(|j| hh ^ j).collect();
                (dst, words)
            })
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn random_send_patterns_are_executor_independent(
        n in 2usize..32,
        seed in 0u64..1_000_000,
        threads in 2usize..9,
    ) {
        let run = |kind: ExecutorKind| {
            let mut c = Clique::with_config(n, cfg(kind));
            let via_links = c.exchange_par(pattern(n, seed));
            let via_relays = c.route_par(pattern(n, seed ^ 0xabc));
            let inboxes: Vec<Vec<Vec<u64>>> = (0..n)
                .map(|dst| {
                    (0..n)
                        .map(|src| {
                            let mut all = via_links.received(dst, src).to_vec();
                            all.extend_from_slice(via_relays.received(dst, src));
                            all
                        })
                        .collect()
                })
                .collect();
            (
                inboxes,
                c.rounds(),
                c.stats().words(),
                c.stats().pattern_fingerprints().to_vec(),
            )
        };
        let seq = run(ExecutorKind::Sequential);
        let par = run(ExecutorKind::Parallel { threads });
        prop_assert_eq!(&seq.0, &par.0, "inbox contents must match");
        prop_assert_eq!(seq.1, par.1, "rounds must match");
        prop_assert_eq!(seq.2, par.2, "words must match");
        prop_assert_eq!(&seq.3, &par.3, "pattern fingerprints must match");
    }
}

#[test]
fn matrix_multiplication_is_executor_independent() {
    let n = 50;
    let a = rand_matrix(n, 11);
    let b = rand_matrix(n, 23);
    let expected = Matrix::mul(&IntRing, &a, &b);

    let run = |kind: ExecutorKind| {
        let mut c = Clique::with_config(n, cfg(kind));
        let fast = fast_mm::multiply_auto(
            &mut c,
            &IntRing,
            &RowMatrix::from_matrix(&a),
            &RowMatrix::from_matrix(&b),
        );
        let three_d = semiring_mm::multiply(
            &mut c,
            &IntRing,
            &RowMatrix::from_matrix(&a),
            &RowMatrix::from_matrix(&b),
        );
        (
            fast.to_matrix(),
            three_d.to_matrix(),
            c.rounds(),
            c.stats().words(),
            c.stats().pattern_fingerprints().to_vec(),
        )
    };

    let seq = run(ExecutorKind::Sequential);
    let par = run(ExecutorKind::Parallel { threads: 4 });
    assert_eq!(seq.0, expected, "fast_mm must be correct");
    assert_eq!(seq.1, expected, "semiring_mm must be correct");
    assert_eq!(seq.0, par.0, "fast_mm results must match across executors");
    assert_eq!(
        seq.1, par.1,
        "semiring_mm results must match across executors"
    );
    assert_eq!(seq.2, par.2, "round counts must match across executors");
    assert_eq!(seq.3, par.3, "word counts must match across executors");
    assert_eq!(seq.4, par.4, "fingerprints must match across executors");
}

/// Everything one backend run of the ported algorithm layer observes:
/// algorithm outputs plus the full accounting (rounds, words, pattern
/// fingerprints).
#[derive(Debug, PartialEq)]
struct AlgoOutcome {
    apsp_dist: Matrix<congested_clique::algebra::Dist>,
    apsp_hops: Vec<Option<usize>>,
    seidel_dist: Matrix<congested_clique::algebra::Dist>,
    triangles: u64,
    triangles_program: u64,
    has_4cycle: bool,
    girth: Option<usize>,
    rounds: u64,
    words: u64,
    fingerprints: Vec<u64>,
    epochs: u64,
}

fn run_algorithms(kind: ExecutorKind, n: usize, seed: u64) -> AlgoOutcome {
    run_algorithms_with(cfg(kind), n, seed)
}

fn run_algorithms_with(config: CliqueConfig, n: usize, seed: u64) -> AlgoOutcome {
    let weighted = generators::weighted_gnp(n, 0.3, 9, true, seed);
    let undirected = generators::gnp(n, 0.25, seed ^ 0x5a5a);

    let mut c = Clique::with_config(n, config);
    let tables = apsp::apsp_exact(&mut c, &weighted);
    let apsp_hops = (0..n)
        .flat_map(|u| (0..n).map(move |v| (u, v)))
        .map(|(u, v)| tables.next_hop(u, v))
        .collect();
    let seidel_dist = apsp::apsp_seidel(&mut c, &undirected).to_matrix();
    let triangles = subgraph::count_triangles(&mut c, &undirected);
    let triangles_program = subgraph::count_triangles_program(&mut c, &undirected);
    let has_4cycle = subgraph::detect_4cycle(&mut c, &undirected);
    let girth = subgraph::girth(&mut c, &undirected, subgraph::GirthConfig::default());
    AlgoOutcome {
        apsp_dist: tables.dist.to_matrix(),
        apsp_hops,
        seidel_dist,
        triangles,
        triangles_program,
        has_4cycle,
        girth,
        rounds: c.rounds(),
        words: c.stats().words(),
        fingerprints: c.stats().pattern_fingerprints().to_vec(),
        epochs: c.transport_epochs(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The ported algorithm layer — APSP tables, triangle counts (closure
    /// and NodeProgram), 4-cycle detection, girth — is bit-identical
    /// across the sequential reference, the pooled executor, and the
    /// legacy spawn-per-call executor, down to rounds, words, and pattern
    /// fingerprints.
    #[test]
    fn ported_algorithms_are_executor_independent(
        n in 8usize..18,
        seed in 0u64..100_000,
        threads in 2usize..6,
    ) {
        let seq = run_algorithms(ExecutorKind::Sequential, n, seed);
        for kind in [ExecutorKind::Parallel { threads }, ExecutorKind::Spawn { threads }] {
            let par = run_algorithms(kind, n, seed);
            prop_assert_eq!(&seq, &par, "backend {:?} diverged", kind);
        }
    }
}

/// The slower ported entry points (approximate APSP, small-weights APSP,
/// the sparse square, directed girth), pinned across all three backends on
/// fixed instances.
#[test]
fn remaining_ported_algorithms_are_executor_independent() {
    let n = 12;
    let weighted = generators::weighted_gnp(n, 0.35, 6, true, 3);
    let sparse = generators::gnp(16, 1.6 / 16.0, 5);
    let digraph = generators::gnp_directed(n, 0.2, 7);

    let run = |kind: ExecutorKind| {
        let mut c = Clique::with_config(n, cfg(kind));
        let approx = apsp::apsp_approx(&mut c, &weighted, 0.4).to_matrix();
        let small = apsp::apsp_small_weights(&mut c, &weighted, None).to_matrix();
        let dgirth = subgraph::directed_girth(&mut c, &digraph);
        let mut c16 = Clique::with_config(16, cfg(kind));
        let square = subgraph::sparse_square(&mut c16, &sparse).map(|m| m.to_matrix());
        (
            approx,
            small,
            dgirth,
            square,
            c.rounds(),
            c.stats().words(),
            c.stats().pattern_fingerprints().to_vec(),
            c16.rounds(),
            c16.stats().words(),
        )
    };

    let seq = run(ExecutorKind::Sequential);
    for threads in [2, 5] {
        assert_eq!(
            seq,
            run(ExecutorKind::Parallel { threads }),
            "pooled backend diverged (threads={threads})"
        );
        assert_eq!(
            seq,
            run(ExecutorKind::Spawn { threads }),
            "spawn backend diverged (threads={threads})"
        );
    }
}

/// The `sparse_square` density boundary, pinned exactly at the Theorem 4
/// threshold and across all three executor backends: K₅ padded to n = 9
/// gives a maximum of 16 = 2n−2 two-walks (accepted), one pendant edge
/// more gives 17 = 2n−1 (rejected). The accepted square must agree with
/// the general `sparse_mm` path it now wraps, bit-identically on every
/// backend.
#[test]
fn sparse_square_density_boundary_is_executor_independent() {
    let n = 9;
    let at_threshold = generators::complete(5).padded(4);
    let mut over_threshold = at_threshold.clone();
    over_threshold.add_edge(0, 5);

    let run = |kind: ExecutorKind| {
        let mut c = Clique::with_config(n, cfg(kind));
        let accepted = subgraph::sparse_square(&mut c, &at_threshold).map(|m| m.to_matrix());
        let mut c_over = Clique::with_config(n, cfg(kind));
        let rejected = subgraph::sparse_square(&mut c_over, &over_threshold);
        assert!(rejected.is_none(), "2n−1 two-walks must be rejected");
        // The thin-wrapper contract: behind the gate, the result is the
        // general sparse path's product.
        let adj = RowMatrix::from_matrix(&at_threshold.adjacency_matrix());
        let mut c_mm = Clique::with_config(n, cfg(kind));
        let direct = congested_clique::core::sparse_mm::multiply(&mut c_mm, &IntRing, &adj, &adj);
        assert_eq!(
            accepted.as_ref(),
            Some(&direct.to_matrix()),
            "wrapper and sparse_mm must agree"
        );
        (
            accepted,
            c.rounds(),
            c.stats().words(),
            c.stats().pattern_fingerprints().to_vec(),
            c_over.rounds(),
        )
    };

    let seq = run(ExecutorKind::Sequential);
    let a = at_threshold.adjacency_matrix();
    assert_eq!(
        seq.0,
        Some(Matrix::mul(&IntRing, &a, &a)),
        "2n−2 two-walks is still sparse and squares correctly"
    );
    for threads in [2, 5] {
        assert_eq!(
            seq,
            run(ExecutorKind::Parallel { threads }),
            "pooled backend diverged (threads={threads})"
        );
        assert_eq!(
            seq,
            run(ExecutorKind::Spawn { threads }),
            "spawn backend diverged (threads={threads})"
        );
    }
}

/// The new sparse/rectangular MM subsystem (PR 3): products, witnessed
/// distance products, rectangular slabs, and the dispatching triangle
/// front door are bit-identical — results, rounds, words, fingerprints —
/// across Sequential, the pooled Parallel, and the legacy Spawn backends.
#[test]
fn sparse_and_rect_mm_are_executor_independent() {
    use congested_clique::core::{rect_mm, sparse_mm, RectMatrix};

    let n = 16;
    let m = 5;
    let sparse_graph = generators::gnp(n, 2.0 / n as f64, 13);
    let adj = sparse_graph.adjacency_matrix();
    let rect_a = Matrix::from_fn(n, m, |i, j| ((i * 5 + j) % 7) as i64 - 3);
    let rect_b = Matrix::from_fn(m, n, |i, j| ((i * 11 + 3 * j) % 7) as i64 - 3);
    let weighted = generators::weighted_gnp(n, 0.25, 9, true, 21);

    let run = |kind: ExecutorKind| {
        let mut c = Clique::with_config(n, cfg(kind));
        let ra = RowMatrix::from_matrix(&adj);
        let square = sparse_mm::multiply(&mut c, &IntRing, &ra, &ra).to_matrix();
        let rect = rect_mm::multiply(
            &mut c,
            &IntRing,
            &RectMatrix::from_matrix(&rect_a),
            &RectMatrix::from_matrix(&rect_b),
        )
        .to_matrix();
        let w = RowMatrix::from_fn(n, |u, v| {
            if u == v {
                congested_clique::algebra::Dist::zero()
            } else {
                weighted.weight(u, v).map_or(
                    congested_clique::algebra::INFINITY,
                    congested_clique::algebra::Dist::finite,
                )
            }
        });
        let (dp, wit) = sparse_mm::distance_product_with_witness_auto(&mut c, &w, &w);
        let triangles = subgraph::count_triangles_auto(&mut c, &sparse_graph);
        (
            square,
            rect,
            dp.to_matrix(),
            wit.to_matrix(),
            triangles,
            c.rounds(),
            c.stats().words(),
            c.stats().pattern_fingerprints().to_vec(),
        )
    };

    let seq = run(ExecutorKind::Sequential);
    assert_eq!(seq.0, Matrix::mul(&IntRing, &adj, &adj), "sparse square");
    assert_eq!(
        seq.1,
        Matrix::mul(&IntRing, &rect_a, &rect_b),
        "rect product"
    );
    for threads in [2, 5] {
        assert_eq!(
            seq,
            run(ExecutorKind::Parallel { threads }),
            "pooled backend diverged (threads={threads})"
        );
        assert_eq!(
            seq,
            run(ExecutorKind::Spawn { threads }),
            "spawn backend diverged (threads={threads})"
        );
    }
}

/// Acceptance criterion: on the pooled backend, worker threads are created
/// at most once per executor lifetime — a full sweep of ported algorithms
/// must not move the process-wide spawn probe after the clique is built.
#[test]
fn pooled_clique_spawns_workers_exactly_once() {
    let n = 16;
    let g = generators::gnp(n, 0.3, 2);
    let mut c = Clique::with_config(
        n,
        CliqueConfig {
            executor: ExecutorKind::Parallel { threads: 4 },
            exec_cutover: Some(2),
            ..CliqueConfig::default()
        },
    );
    // Pool built at construction (threads - 1 workers); everything after
    // must reuse it. The probe is per-executor, so concurrently running
    // tests that build their own pools cannot perturb it.
    assert_eq!(c.executor().threads_spawned(), 3);
    let _ = subgraph::count_triangles(&mut c, &g);
    let _ = subgraph::count_triangles_program(&mut c, &g);
    let _ = subgraph::detect_4cycle(&mut c, &g);
    let _ = apsp::apsp_seidel(&mut c, &g);
    assert_eq!(
        c.executor().threads_spawned(),
        3,
        "no per-call spawns on the pooled backend"
    );
}

/// The transport axis of the determinism matrix (mirroring the executor
/// axis above): APSP tables, triangle counts (closure and NodeProgram),
/// 4-cycle detection, girth, rounds, words, pattern fingerprints, AND
/// barrier epochs are bit-identical whether the traffic moves through the
/// in-memory sharded flush, per-node thread queues, or worker processes on
/// the far side of a unix socket.
#[test]
fn algorithms_are_transport_independent() {
    let n = 12;
    let seed = 41;
    let reference = run_algorithms_with(cfg_transport(TransportKind::InMemory), n, seed);
    assert!(reference.rounds > 0 && reference.epochs > 0);
    for kind in transport_axis() {
        let got = run_algorithms_with(cfg_transport(kind), n, seed);
        assert_eq!(reference, got, "transport {kind:?} diverged");
    }
}

/// The tentpole acceptance pin: triangle counting as a wire program on the
/// program-resident TCP fabric moves **zero** payload bytes through the
/// orchestrator (workers exchange rounds directly), while the star-mode TCP
/// fabric relays everything — and the count, rounds, words, fingerprints,
/// and barrier epochs are bit-identical between the two modes.
#[test]
fn resident_triangle_counting_bypasses_the_orchestrator() {
    let n = 12;
    let g = generators::gnp(n, 0.3, 5);
    let run = |resident: bool| {
        let kind = TransportKind::Tcp {
            workers: 2,
            resident,
            addr: None,
        };
        let mut c = Clique::with_config(n, cfg_transport(kind));
        let count = subgraph::count_triangles_program(&mut c, &g);
        (
            count,
            c.rounds(),
            c.stats().words(),
            c.stats().pattern_fingerprints().to_vec(),
            c.transport_epochs(),
            c.orchestrator_bytes(),
        )
    };
    let star = run(false);
    let peer = run(true);
    assert!(
        star.5 > 0,
        "star mode relays payloads through the orchestrator"
    );
    assert_eq!(
        peer.5, 0,
        "peer-resident rounds must bypass the orchestrator"
    );
    assert_eq!(
        (star.0, star.1, star.2, &star.3, star.4),
        (peer.0, peer.1, peer.2, &peer.3, peer.4),
        "resident mode must be observer-identical to star mode"
    );
}

/// The kernel axis of the determinism matrix: swapping the node-local
/// multiply kernel (`CC_KERNEL=naive|blocked|bitset`) is observer
/// equivalent. Every algorithm output, plus rounds, words, pattern
/// fingerprints, and barrier epochs, is bit-identical across all three
/// kernels × executors × transports — kernels may only change how local
/// products are computed, never anything an observer can see.
#[test]
fn algorithms_are_kernel_independent() {
    use congested_clique::algebra::kernel::{self, Kernel};

    let n = 12;
    let seed = 41;
    let reference = {
        let _guard = kernel::scoped(Kernel::Naive);
        run_algorithms_with(cfg(ExecutorKind::Sequential), n, seed)
    };
    assert!(reference.rounds > 0 && reference.epochs > 0);
    for k in [Kernel::Blocked, Kernel::Bitset] {
        let _guard = kernel::scoped(k);
        for config in [
            cfg(ExecutorKind::Sequential),
            cfg(ExecutorKind::Parallel { threads: 3 }),
            cfg_transport(TransportKind::Channel),
            cfg_transport(TransportKind::Socket { workers: 2 }),
        ] {
            let got = run_algorithms_with(config.clone(), n, seed);
            assert_eq!(reference, got, "kernel {k:?} diverged under {config:?}");
        }
    }
}

/// The netsim axis of the determinism matrix: conditioning the fabric with
/// per-link latency/jitter, stragglers, message loss (with retransmission),
/// and a node crash/restart fault plan changes **nothing** an observer can
/// see — algorithm outputs, rounds, words, pattern fingerprints, and
/// barrier epochs are bit-identical to the unconditioned run. The
/// flaky-node cell exercises full crash recovery (program state re-shipped
/// through the `WireProgram` codec mid-run) and still replays the
/// reference bit for bit.
#[test]
fn algorithms_are_netsim_condition_independent() {
    use congested_clique::clique::{NetsimConfig, NetsimProfile};

    let n = 12;
    let seed = 41;
    let reference = run_algorithms_with(cfg_transport(TransportKind::InMemory), n, seed);
    assert!(reference.rounds > 0 && reference.epochs > 0);
    for profile in [
        NetsimProfile::Lan,
        NetsimProfile::Wan,
        NetsimProfile::Lossy,
        NetsimProfile::FlakyNode,
    ] {
        let config = CliqueConfig {
            netsim: NetsimConfig { profile, seed: 7 },
            ..cfg_transport(TransportKind::InMemory)
        };
        let got = run_algorithms_with(config, n, seed);
        assert_eq!(reference, got, "netsim profile {profile:?} diverged");
    }
    // Conditioning composes with a non-default fabric: a lossy channel
    // backend still reproduces the unconditioned in-memory reference.
    let config = CliqueConfig {
        netsim: NetsimConfig {
            profile: NetsimProfile::Lossy,
            seed: 7,
        },
        ..cfg_transport(TransportKind::Channel)
    };
    let got = run_algorithms_with(config, n, seed);
    assert_eq!(reference, got, "lossy-conditioned channel fabric diverged");

    // Non-vacuousness check for the flaky-node cell: at this scale the
    // fault plan must actually crash nodes (so the bit-identity above
    // exercised real crash recovery, not a run that never crossed a
    // crash-period boundary).
    let g = generators::gnp(n, 0.25, seed ^ 0x5a5a);
    let mut flaky = Clique::with_config(
        n,
        CliqueConfig {
            netsim: NetsimConfig {
                profile: NetsimProfile::FlakyNode,
                seed: 7,
            },
            ..CliqueConfig::default()
        },
    );
    let mut conditioned = 0;
    for _ in 0..6 {
        conditioned = subgraph::count_triangles_program(&mut flaky, &g);
    }
    // Pinned off explicitly so the CC_NETSIM=lossy CI lane cannot
    // condition the comparison baseline.
    let mut clean = Clique::with_config(
        n,
        CliqueConfig {
            netsim: NetsimConfig::default(),
            ..CliqueConfig::default()
        },
    );
    let mut unconditioned = 0;
    for _ in 0..6 {
        unconditioned = subgraph::count_triangles_program(&mut clean, &g);
    }
    assert!(
        flaky.net_faults() > 0,
        "the flaky-node cell must inject at least one crash"
    );
    assert_eq!(conditioned, unconditioned);
    assert_eq!(flaky.rounds(), clean.rounds());
    assert_eq!(flaky.stats().words(), clean.stats().words());
}

/// The other half of the netsim determinism split: while results are
/// condition-independent, the simulated-time column is a pure function of
/// (profile, seed, workload) — bit-reproducible across runs, zero when
/// conditioning is off, and moved by the seed.
#[test]
fn netsim_sim_time_is_reproducible_per_seed() {
    use congested_clique::clique::{NetsimConfig, NetsimProfile};

    let graph = generators::gnp(10, 0.3, 3);
    let run = |netsim: NetsimConfig| {
        let mut c = Clique::with_config(
            10,
            CliqueConfig {
                netsim,
                ..CliqueConfig::default()
            },
        );
        let count = subgraph::count_triangles(&mut c, &graph);
        (count, c.sim_time_ns(), c.net_retransmits())
    };

    let off = run(NetsimConfig::default());
    assert_eq!((off.1, off.2), (0, 0), "off charges no simulated time");
    let lossy = NetsimConfig {
        profile: NetsimProfile::Lossy,
        seed: 99,
    };
    let a = run(lossy);
    let b = run(lossy);
    assert_eq!(a.0, off.0, "conditioning must not change the answer");
    assert!(a.1 > 0, "lossy conditioning charges simulated time");
    assert!(a.2 > 0, "the lossy profile retransmits");
    assert_eq!(
        a, b,
        "sim time and retransmits are pure functions of the seed"
    );
    let other = run(NetsimConfig {
        profile: NetsimProfile::Lossy,
        seed: 100,
    });
    assert_ne!(a.1, other.1, "a different seed draws a different schedule");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random primitive workloads — exchanges, balanced routing, gossip,
    /// broadcasts — deliver the same inboxes and charge the same rounds,
    /// words, and fingerprints on every transport backend.
    #[test]
    fn random_send_patterns_are_transport_independent(
        n in 2usize..14,
        seed in 0u64..1_000_000,
    ) {
        let run = |kind: TransportKind| {
            let mut c = Clique::with_config(n, cfg_transport(kind));
            let via_links = c.exchange_par(pattern(n, seed));
            let via_relays = c.route_dynamic(pattern(n, seed ^ 0xabc));
            let union = c.gossip(|v| vec![seed ^ v as u64; v % 3]);
            let knowledge = c.broadcast(|v| seed.wrapping_mul(v as u64 + 1));
            let inboxes: Vec<Vec<Vec<u64>>> = (0..n)
                .map(|dst| {
                    (0..n)
                        .map(|src| {
                            let mut all = via_links.received(dst, src).to_vec();
                            all.extend_from_slice(via_relays.received(dst, src));
                            all
                        })
                        .collect()
                })
                .collect();
            (
                inboxes,
                union,
                knowledge,
                c.rounds(),
                c.stats().words(),
                c.stats().pattern_fingerprints().to_vec(),
                c.transport_epochs(),
            )
        };
        let reference = run(TransportKind::InMemory);
        for kind in [TransportKind::Channel, TransportKind::Socket { workers: 2 }] {
            let got = run(kind);
            prop_assert_eq!(&got, &reference, "transport {:?} diverged", kind);
        }
    }
}

/// Transports compose with executors: the full backend matrix (pooled and
/// spawn executors × channel and socket fabrics) reproduces the
/// sequential/in-memory reference on the paper's multiplication engines.
#[test]
fn matrix_multiplication_is_transport_and_executor_independent() {
    let n = 24;
    let a = rand_matrix(n, 91);
    let b = rand_matrix(n, 17);
    let expected = Matrix::mul(&IntRing, &a, &b);

    let run = |config: CliqueConfig| {
        let mut c = Clique::with_config(n, config);
        let fast = fast_mm::multiply_auto(
            &mut c,
            &IntRing,
            &RowMatrix::from_matrix(&a),
            &RowMatrix::from_matrix(&b),
        );
        (
            fast.to_matrix(),
            c.rounds(),
            c.stats().words(),
            c.stats().pattern_fingerprints().to_vec(),
            c.transport_epochs(),
        )
    };

    let reference = run(cfg_transport(TransportKind::InMemory));
    assert_eq!(reference.0, expected, "fast_mm must be correct");
    for transport in [TransportKind::Channel, TransportKind::Socket { workers: 2 }] {
        for executor in [
            ExecutorKind::Sequential,
            ExecutorKind::Parallel { threads: 3 },
            ExecutorKind::Spawn { threads: 2 },
        ] {
            let config = CliqueConfig {
                transport,
                executor,
                exec_cutover: Some(2),
                ..cfg_transport(transport)
            };
            assert_eq!(
                run(config),
                reference,
                "{transport:?} × {executor:?} diverged"
            );
        }
    }
}

/// The service-layer cache contract, pinned across the executor ×
/// transport matrix: for every backend pair, a cached replay of a query is
/// **bit-identical** to the fresh (priming) outcome — the answer and the
/// priming run's rounds and words — and runs zero additional simulated
/// rounds. And because the cache key excludes the backend (the determinism
/// contract makes backends interchangeable), every backend pair's
/// fresh/cached outcomes are also identical to every other's.
#[test]
fn cached_queries_replay_fresh_results_across_backends() {
    use congested_clique::service::{Query, Service, ServiceConfig, ServiceMode};

    let n = 12;
    let graph = generators::gnp(n, 0.3, 17);
    let weighted = generators::weighted_gnp(n, 0.35, 9, true, 29);
    let queries = [
        Query::TriangleCount,
        Query::ApspTable,
        Query::Distance { s: 1, t: n - 2 },
        Query::GirthBound,
        Query::SubgraphFlag,
    ];

    let run = |executor: ExecutorKind, transport: TransportKind| {
        let mut svc = Service::new(ServiceConfig {
            clique: CliqueConfig {
                executor,
                transport,
                exec_cutover: Some(2),
                ..CliqueConfig::default()
            },
            mode: ServiceMode::Batch { instances: 2 },
            ..ServiceConfig::default()
        });
        let g = svc.register(graph.clone());
        let w = svc.register(weighted.clone());

        let pass = |svc: &mut Service| {
            let mut out: Vec<_> = queries.iter().map(|&q| svc.query(g, q)).collect();
            out.push(svc.query(w, Query::ApspTable));
            out
        };

        // Priming pass: every computation runs on the simulator.
        let fresh = pass(&mut svc);
        let rounds_primed = svc.stats().simulated_rounds;
        assert!(rounds_primed > 0, "priming must simulate");

        // Replay pass: bit-identical outcomes, zero additional rounds.
        let replay = pass(&mut svc);
        assert!(replay.iter().all(|o| o.cached), "replays must hit cache");
        assert_eq!(
            svc.stats().simulated_rounds,
            rounds_primed,
            "a cached query executes zero additional simulated rounds \
             ({executor:?} × {transport:?})"
        );
        for (f, r) in fresh.iter().zip(&replay) {
            assert_eq!(f.response, r.response, "{executor:?} × {transport:?}");
            assert_eq!((f.rounds, f.words), (r.rounds, r.words));
        }
        // Return the full outcome set for the cross-backend comparison
        // (minus the `cached` flag, which legitimately differs).
        fresh
            .into_iter()
            .map(|o| (o.response, o.rounds, o.words))
            .collect::<Vec<_>>()
    };

    let reference = run(ExecutorKind::Sequential, TransportKind::InMemory);
    for executor in [
        ExecutorKind::Sequential,
        ExecutorKind::Parallel { threads: 3 },
    ] {
        for transport in [TransportKind::InMemory, TransportKind::Channel] {
            assert_eq!(
                reference,
                run(executor, transport),
                "service outcomes diverged on {executor:?} × {transport:?}"
            );
        }
    }
}

/// FNV-1a over a debug rendering: a stable digest of everything an
/// [`AlgoOutcome`] observed, cheap enough to print on one line.
fn outcome_digest(outcome: &AlgoOutcome) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in format!("{outcome:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Subprocess half of the tracing bit-identity pin: sweeps the executor ×
/// transport matrix and prints one `PROBE` digest line per cell. Inert (and
/// trivially green) unless the driver below sets `CC_TRACE_PROBE=1` — the
/// whole point is that the driver runs it twice in fresh processes, once
/// with `CC_TRACE=off` and once with `CC_TRACE=full`, so the telemetry
/// level is fixed at first use and identical digests prove full tracing is
/// observer-only.
#[test]
fn trace_probe_worker() {
    if std::env::var("CC_TRACE_PROBE").as_deref() != Ok("1") {
        return;
    }
    let (n, seed) = (10, 77);
    for executor in [
        ExecutorKind::Sequential,
        ExecutorKind::Parallel { threads: 3 },
    ] {
        for transport in transport_axis() {
            let config = CliqueConfig {
                executor,
                transport,
                exec_cutover: Some(2),
                ..cfg_transport(transport)
            };
            let out = run_algorithms_with(config, n, seed);
            println!(
                "PROBE {executor:?} {transport:?} rounds={} words={} epochs={} digest={:016x}",
                out.rounds,
                out.words,
                out.epochs,
                outcome_digest(&out)
            );
        }
    }
    // Guard against a vacuous comparison: under CC_TRACE=full the sweep
    // above ran multi-process backends, so the distributed capture must
    // have merged worker-attributed events — the bit-identity the driver
    // asserts is then proved *with* worker capture and snapshot shipping
    // active, not with telemetry accidentally off. (Asserted here, never
    // printed: PROBE lines must stay identical between off and full.)
    if std::env::var("CC_TRACE").as_deref() == Ok("full") {
        let snap = congested_clique::telemetry::global()
            .memory()
            .expect("CC_TRACE=full without a path aggregates in memory")
            .snapshot();
        assert!(
            !snap.workers.is_empty() && snap.workers.values().all(|w| w.events > 0),
            "distributed capture engaged during the probe: {:?}",
            snap.workers.keys()
        );
        assert!(
            snap.critical_path()
                .iter()
                .any(|p| p.backend == "socket" || p.backend == "tcp"),
            "barrier lanes captured during the probe"
        );
    }
}

/// The tentpole's observer-only contract, pinned end to end: running the
/// full algorithm sweep under `CC_TRACE=full` produces **bit-identical**
/// results, rounds, words, fingerprints, and epochs to `CC_TRACE=off`, on
/// every executor × transport cell. Tracing may only watch.
#[test]
fn full_tracing_is_bit_identical_to_off() {
    let probe = |trace: &str| -> Vec<String> {
        let out = std::process::Command::new(std::env::current_exe().unwrap())
            .args([
                "trace_probe_worker",
                "--exact",
                "--nocapture",
                "--test-threads=1",
            ])
            // Explicit on both runs: a CI lane exporting CC_TRACE must not
            // leak into either side of the comparison.
            .env("CC_TRACE", trace)
            .env("CC_TRACE_PROBE", "1")
            .output()
            .expect("spawn probe worker");
        assert!(
            out.status.success(),
            "probe worker failed under CC_TRACE={trace}:\n{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout)
            .lines()
            // `find`, not `starts_with`: libtest's unterminated "test ..."
            // header glues itself onto the worker's first line.
            .filter_map(|l| l.find("PROBE ").map(|at| l[at..].to_owned()))
            .collect()
    };

    let off = probe("off");
    let full = probe("full");
    assert_eq!(
        off.len(),
        12,
        "probe must cover the 2-executor × 6-transport matrix: {off:?}"
    );
    assert_eq!(off, full, "CC_TRACE=full must be observer-only");
}

#[test]
fn round_counts_match_the_seed_link_level_semantics() {
    // The ported primitives must charge exactly what the historical serial
    // simulator charged. These constants pin the seed's accounting.
    let mut c = Clique::parallel(8);
    c.broadcast(|v| v as u64);
    assert_eq!(c.rounds(), 1, "one-word broadcast is one round");
    let _ = c.exchange_par(|v| {
        if v == 0 {
            vec![(1, vec![1, 2, 3])]
        } else {
            vec![]
        }
    });
    assert_eq!(c.rounds(), 4, "3-word link queue costs 3 more rounds");
}
