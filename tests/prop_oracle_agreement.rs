//! Property tests: on random graphs, every distributed algorithm agrees
//! with its centralized oracle. Sizes are kept small so the whole suite
//! runs in debug mode; the deterministic seeds make failures reproducible.

use congested_clique::clique::Clique;
use congested_clique::graph::{generators, oracle};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = cc_graph::Graph> {
    (6usize..20, 0u64..1000, 1u32..8)
        .prop_map(|(n, seed, density)| generators::gnp(n, f64::from(density) / 20.0, seed))
}

fn arb_digraph() -> impl Strategy<Value = cc_graph::Graph> {
    (6usize..16, 0u64..1000, 1u32..6)
        .prop_map(|(n, seed, density)| generators::gnp_directed(n, f64::from(density) / 20.0, seed))
}

fn arb_weighted() -> impl Strategy<Value = cc_graph::Graph> {
    (6usize..14, 0u64..1000, 1i64..10)
        .prop_map(|(n, seed, maxw)| generators::weighted_gnp(n, 0.3, maxw, true, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn triangles_agree(g in arb_graph()) {
        let mut clique = Clique::new(g.n());
        prop_assert_eq!(
            congested_clique::subgraph::count_triangles(&mut clique, &g),
            oracle::count_triangles(&g)
        );
    }

    #[test]
    fn four_cycle_counts_agree(g in arb_graph()) {
        let mut clique = Clique::new(g.n());
        prop_assert_eq!(
            congested_clique::subgraph::count_4cycles(&mut clique, &g),
            oracle::count_4cycles(&g)
        );
    }

    #[test]
    fn four_cycle_detection_agrees(g in arb_graph()) {
        let mut clique = Clique::new(g.n());
        prop_assert_eq!(
            congested_clique::subgraph::detect_4cycle(&mut clique, &g),
            oracle::has_k_cycle(&g, 4)
        );
    }

    #[test]
    fn directed_triangles_agree(g in arb_digraph()) {
        let mut clique = Clique::new(g.n());
        prop_assert_eq!(
            congested_clique::subgraph::count_triangles(&mut clique, &g),
            oracle::count_triangles(&g)
        );
    }

    #[test]
    fn directed_girth_agrees(g in arb_digraph()) {
        let mut clique = Clique::new(g.n());
        prop_assert_eq!(
            congested_clique::subgraph::directed_girth(&mut clique, &g),
            oracle::directed_girth(&g)
        );
    }

    #[test]
    fn seidel_agrees(g in arb_graph()) {
        let mut clique = Clique::new(g.n());
        let d = congested_clique::apsp::apsp_seidel(&mut clique, &g);
        prop_assert_eq!(d.to_matrix(), oracle::apsp(&g));
    }

    #[test]
    fn exact_apsp_agrees(g in arb_weighted()) {
        let mut clique = Clique::new(g.n());
        let t = congested_clique::apsp::apsp_exact(&mut clique, &g);
        prop_assert_eq!(t.dist.to_matrix(), oracle::apsp(&g));
    }

    #[test]
    fn dolev_baseline_agrees(g in arb_graph()) {
        let mut clique = Clique::new(g.n());
        prop_assert_eq!(
            congested_clique::baselines::dolev::triangle_count(&mut clique, &g),
            oracle::count_triangles(&g)
        );
    }
}
