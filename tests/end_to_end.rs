//! End-to-end integration: the full public API exercised across crates on
//! shared workloads, with every distributed result checked against the
//! centralized oracles.

use congested_clique::apsp::{apsp_exact, apsp_seidel, apsp_small_weights};
use congested_clique::clique::Clique;
use congested_clique::graph::{generators, oracle};
use congested_clique::subgraph::{
    count_4cycles, count_5cycles, count_triangles, detect_4cycle, girth, GirthConfig,
};

#[test]
fn social_graph_full_pipeline() {
    let n = 48;
    let g = generators::preferential_attachment(n, 2, 99);

    let mut clique = Clique::new(n);
    assert_eq!(
        count_triangles(&mut clique, &g),
        oracle::count_triangles(&g)
    );

    let mut clique = Clique::new(n);
    assert_eq!(count_4cycles(&mut clique, &g), oracle::count_4cycles(&g));

    let mut clique = Clique::new(n);
    assert_eq!(count_5cycles(&mut clique, &g), oracle::count_5cycles(&g));

    let mut clique = Clique::new(n);
    assert_eq!(detect_4cycle(&mut clique, &g), oracle::has_k_cycle(&g, 4));

    let mut clique = Clique::new(n);
    assert_eq!(
        girth(&mut clique, &g, GirthConfig::default()),
        oracle::girth(&g)
    );
}

#[test]
fn weighted_network_apsp_consistency() {
    // Exact squaring, Seidel (on the unweighted skeleton) and small-weights
    // doubling must all agree with the oracle — and with each other where
    // their domains overlap.
    let n = 24;
    let weighted = generators::weighted_gnp(n, 0.25, 6, true, 5);
    let expected = oracle::apsp(&weighted);

    let mut clique = Clique::new(n);
    let exact = apsp_exact(&mut clique, &weighted);
    assert_eq!(exact.dist.to_matrix(), expected);

    let mut clique = Clique::new(n);
    let small = apsp_small_weights(&mut clique, &weighted, None);
    assert_eq!(small.to_matrix(), expected);

    // Unweighted undirected instance for Seidel.
    let skeleton = generators::gnp(n, 0.2, 6);
    let mut clique = Clique::new(n);
    let seidel = apsp_seidel(&mut clique, &skeleton);
    assert_eq!(seidel.to_matrix(), oracle::apsp(&skeleton));
}

#[test]
fn routing_tables_route_along_shortest_paths() {
    let n = 20;
    let g = generators::weighted_gnp(n, 0.3, 9, true, 11);
    let mut clique = Clique::new(n);
    let tables = apsp_exact(&mut clique, &g);
    for u in 0..n {
        for v in 0..n {
            if u == v || !tables.dist.row(u)[v].is_finite() {
                assert!(tables.path(u, v).is_none_or(|p| p == vec![u]));
                continue;
            }
            let path = tables.path(u, v).expect("reachable");
            let mut weight = 0;
            for hop in path.windows(2) {
                weight += g
                    .weight(hop[0], hop[1])
                    .expect("routing follows real edges");
            }
            assert_eq!(weight, tables.dist.row(u)[v].unwrap(), "({u},{v})");
        }
    }
}

#[test]
fn facade_reexports_are_usable_together() {
    // The facade's modules interoperate on the same types.
    use congested_clique::algebra::{IntRing, Matrix};
    use congested_clique::core::{fast_mm, semiring_mm, RowMatrix};

    let n = 16;
    let a = Matrix::from_fn(n, n, |i, j| ((i * 5 + j) % 7) as i64 - 3);
    let b = Matrix::from_fn(n, n, |i, j| ((i + 3 * j) % 5) as i64 - 2);
    let (ra, rb) = (RowMatrix::from_matrix(&a), RowMatrix::from_matrix(&b));

    let mut c1 = Clique::new(n);
    let p1 = semiring_mm::multiply(&mut c1, &IntRing, &ra, &rb);
    let mut c2 = Clique::new(n);
    let p2 = fast_mm::multiply_auto(&mut c2, &IntRing, &ra, &rb);
    assert_eq!(p1.to_matrix(), p2.to_matrix());
    assert_eq!(p1.to_matrix(), Matrix::mul(&IntRing, &a, &b));
}
