//! Round-complexity shape tests: the asymptotic claims of Table 1, checked
//! as orderings and growth rates on the executed simulator (coarse bounds —
//! the precise exponent fits live in the `table1` experiment binary).

use congested_clique::algebra::{IntRing, Matrix};
use congested_clique::baselines;
use congested_clique::clique::{Clique, CliqueConfig, Mode};
use congested_clique::core::{fast_mm, semiring_mm, RowMatrix};
use congested_clique::graph::generators;

fn rand_matrix(n: usize, seed: u64) -> Matrix<i64> {
    let mut st = seed;
    Matrix::from_fn(n, n, |_, _| {
        st = st
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((st >> 33) % 9) as i64 - 4
    })
}

fn mm_rounds(n: usize, fast: bool) -> u64 {
    let a = RowMatrix::from_matrix(&rand_matrix(n, 1));
    let b = RowMatrix::from_matrix(&rand_matrix(n, 2));
    let mut clique = Clique::new(n);
    if fast {
        fast_mm::multiply_auto(&mut clique, &IntRing, &a, &b);
    } else {
        semiring_mm::multiply(&mut clique, &IntRing, &a, &b);
    }
    clique.rounds()
}

#[test]
fn semiring_mm_grows_sublinearly() {
    // n grows 27/8 ≈ 3.4x; O(n^{1/3}) rounds should grow ≈ 1.5x, and far
    // less than linearly.
    let (r64, r216) = (mm_rounds(64, false), mm_rounds(216, false));
    let ratio = r216 as f64 / r64 as f64;
    assert!(
        ratio < 2.3,
        "3D rounds grew {ratio:.2}x ({r64} → {r216}); expected ≈ 1.5x"
    );
}

#[test]
fn fast_mm_grows_sublinearly() {
    // O(n^{0.288}) rounds should grow ≈ 1.4x over a 3.4x size increase.
    let (r64, r216) = (mm_rounds(64, true), mm_rounds(216, true));
    let ratio = r216 as f64 / r64 as f64;
    assert!(
        ratio < 2.3,
        "fast rounds grew {ratio:.2}x ({r64} → {r216}); expected ≈ 1.4x"
    );
}

#[test]
fn broadcast_clique_mm_is_linear() {
    // Corollary 24's regime: the broadcast clique cannot go sublinear, and
    // our broadcast upper bound is exactly n rounds.
    let n = 64;
    let a = RowMatrix::from_matrix(&rand_matrix(n, 3));
    let cfg = CliqueConfig {
        mode: Mode::Broadcast,
        ..CliqueConfig::default()
    };
    let mut clique = Clique::with_config(n, cfg);
    baselines::broadcast_mm::multiply(&mut clique, &a, &a);
    assert_eq!(clique.rounds(), n as u64);
    assert!(
        clique.rounds() > mm_rounds(n, true),
        "unicast fast MM must win"
    );
}

#[test]
fn theorem4_rounds_do_not_grow() {
    let rounds = |n: usize| {
        let g = generators::gnp(n, 1.2 / n as f64, 9);
        let mut clique = Clique::new(n);
        congested_clique::subgraph::detect_4cycle(&mut clique, &g);
        clique.rounds()
    };
    let small = rounds(32);
    let large = rounds(512);
    assert!(
        large <= small + 16,
        "Theorem 4 is O(1) rounds: n=32 took {small}, n=512 took {large}"
    );
}

#[test]
fn gather_baseline_scales_with_edges() {
    // The naive baseline pays ~m/n rounds; dense graphs cost ~n.
    let n = 64;
    let dense = generators::gnp(n, 0.9, 1);
    let mut clique = Clique::new(n);
    baselines::naive::gather_graph(&mut clique, &dense);
    let dense_rounds = clique.rounds();
    assert!(
        dense_rounds as usize >= n / 4,
        "gathering ~n²/2 edges should cost Ω(n) rounds, got {dense_rounds}"
    );
}

#[test]
fn capped_products_price_wide_entries() {
    // Lemma 18's M-factor: doubling the weight cap must not be free.
    use congested_clique::algebra::Dist;
    use congested_clique::core::{distance, FastPlan};
    let n = 27;
    let f = |x: usize| Dist::finite((x % 3) as i64);
    let a = RowMatrix::from_fn(n, |i, j| f(i + j));
    let alg = FastPlan::best_strassen(n);
    let rounds = |cap: i64| {
        let mut clique = Clique::new(n);
        distance::capped_distance_product(&mut clique, &alg, &a, &a, cap);
        clique.rounds()
    };
    let narrow = rounds(2);
    let wide = rounds(16);
    assert!(
        wide >= 2 * narrow,
        "cap 16 ({wide}) should dwarf cap 2 ({narrow})"
    );
}
