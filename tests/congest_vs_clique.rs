//! The paper's §1 motivation, measured: the congested clique "masks away
//! the effect of distances" while CONGEST pays for them, and the clique's
//! algebraic algorithms remove the degree dependence of folklore CONGEST
//! subgraph detection.

use congested_clique::apsp::apsp_seidel;
use congested_clique::clique::Clique;
use congested_clique::congest::{bfs, triangle_detect, Congest};
use congested_clique::graph::{generators, oracle, Graph};
use congested_clique::subgraph::count_triangles;

#[test]
fn clique_apsp_beats_congest_apsp_on_long_paths() {
    // All-pairs distances on a path: CONGEST needs one BFS per source and
    // every BFS pays the eccentricity, Θ(n²) rounds in total; Seidel on
    // the clique computes the same table in Õ(n^ρ) rounds.
    let n = 64;
    let g = generators::path(n);
    let mut net = Congest::new(&g);
    let mut congest_table = Vec::with_capacity(n);
    for root in 0..n {
        congest_table.push(bfs(&mut net, root));
    }
    let congest_rounds = net.rounds();

    let mut clique = Clique::new(n);
    let dist = apsp_seidel(&mut clique, &g);
    let expected = oracle::apsp(&g);
    assert_eq!(dist.to_matrix(), expected);
    for (root, row) in congest_table.iter().enumerate() {
        for (v, d) in row.iter().enumerate() {
            assert_eq!(
                d.map(|x| x as i64),
                expected[(root, v)].value(),
                "({root},{v})"
            );
        }
    }
    assert!(
        clique.rounds() * 3 < congest_rounds,
        "clique APSP ({}) should be far below CONGEST's n BFS runs ({congest_rounds})",
        clique.rounds()
    );
}

#[test]
fn clique_triangles_beat_congest_on_hub_graphs() {
    // A hub of degree n-1 forces the folklore CONGEST detector to ship
    // Θ(n) words over one edge; the clique's trace counting does not care.
    let mut g = Graph::undirected(64);
    for v in 1..64 {
        g.add_edge(0, v);
    }
    g.add_edge(1, 2); // one triangle through the hub

    let mut net = Congest::new(&g);
    assert!(triangle_detect(&mut net));
    let congest_rounds = net.rounds();

    let mut clique = Clique::new(64);
    assert_eq!(count_triangles(&mut clique, &g), 1);
    assert!(
        congest_rounds >= 60,
        "CONGEST pays the hub degree, got {congest_rounds}"
    );
}

#[test]
fn congest_and_clique_agree_on_answers() {
    for seed in 0..4 {
        let g = generators::gnp(20, 0.15, seed);
        let mut net = Congest::new(&g);
        let congest_answer = triangle_detect(&mut net);
        let mut clique = Clique::new(20);
        let clique_count = count_triangles(&mut clique, &g);
        assert_eq!(congest_answer, clique_count > 0, "seed={seed}");
    }
}
