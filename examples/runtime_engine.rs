//! The runtime engine: per-node state machines on a multi-threaded
//! executor, with results bit-identical to sequential execution.
//!
//! Three demonstrations:
//!
//! 1. a tiny gossip program — broadcast your id, then repeat the maximum
//!    you have heard until it stabilises — expressed as a [`NodeProgram`]
//!    state machine rather than the coordinator-closure style;
//! 2. the **pool lifecycle**: the parallel executor's workers are created
//!    once when the clique is built, parked between rounds and reused by
//!    every dispatch (the spawn probe shows zero per-call spawns), and
//!    joined when the clique drops;
//! 3. the flagship state machine, [`TriangleProgram`]: the paper's 3D
//!    triangle counting with coordinator-free oblivious relay routing,
//!    matching the closure algorithm's count *and* round cost exactly.
//!
//! Run with: `cargo run --release --example runtime_engine`

use congested_clique::clique::{
    Clique, CliqueConfig, Control, ExecutorKind, NodeProgram, RelayPolicy, RoundCtx,
};
use congested_clique::graph::generators;
use congested_clique::subgraph::{count_triangles_3d, count_triangles_program};

/// Computes the maximum node id via broadcast flooding: each round, every
/// node broadcasts the largest value it knows; once a round teaches nobody
/// anything new, everyone halts. (For a clique this converges after one
/// exchange — the point is the state-machine shape, not the algorithm.)
struct MaxFlood {
    best: u64,
    done: bool,
}

impl NodeProgram for MaxFlood {
    fn round(&mut self, ctx: &mut RoundCtx<'_>) -> Control {
        let before = self.best;
        for src in 0..ctx.n() {
            for slab in ctx.broadcasts_from(src) {
                for &w in slab {
                    self.best = self.best.max(w);
                }
            }
        }
        if self.done {
            return Control::Halt;
        }
        if ctx.round() > 0 && self.best == before {
            // Nothing new this round: one final broadcast already happened,
            // so everyone else is converging on the same value too.
            self.done = true;
        }
        ctx.broadcast(vec![self.best]);
        Control::Continue
    }
}

fn run(n: usize, executor: ExecutorKind) -> (Vec<u64>, u64) {
    let cfg = CliqueConfig {
        executor,
        ..CliqueConfig::default()
    };
    let mut clique = Clique::with_config(n, cfg);
    let programs = (0..n)
        .map(|v| MaxFlood {
            best: v as u64,
            done: false,
        })
        .collect();
    let finished = clique.run_programs(programs);
    (
        finished.into_iter().map(|p| p.best).collect(),
        clique.rounds(),
    )
}

fn main() {
    let n = 32;
    let (seq_out, seq_rounds) = run(n, ExecutorKind::Sequential);
    let (par_out, par_rounds) = run(n, ExecutorKind::Parallel { threads: 4 });

    assert!(seq_out.iter().all(|&b| b == (n - 1) as u64));
    assert_eq!(seq_out, par_out, "executors must agree on outputs");
    assert_eq!(seq_rounds, par_rounds, "executors must agree on rounds");

    println!("max-flood on a {n}-node clique");
    println!(
        "  sequential executor: {seq_rounds} rounds, all nodes know {}",
        seq_out[0]
    );
    println!("  parallel executor  : {par_rounds} rounds, identical results");
    println!("  (determinism is the contract: only wall-clock may differ)");

    // --- Pool lifecycle: create once, reuse every round, join on drop. ---
    let cfg = CliqueConfig {
        executor: ExecutorKind::Parallel { threads: 4 },
        exec_cutover: Some(2), // force dispatch even at this small n
        ..CliqueConfig::default()
    };
    let mut clique = Clique::with_config(n, cfg); // <- 3 workers spawn here
    assert_eq!(clique.executor().threads_spawned(), 3);
    let g = generators::gnp(n, 0.3, 7);
    let count = count_triangles_3d(&mut clique, &g);
    assert_eq!(
        clique.executor().threads_spawned(),
        3,
        "every dispatch reused the parked workers"
    );
    println!("\npool lifecycle on the same clique");
    println!("  workers spawned at Clique construction, then parked");
    println!("  a full triangle count ({count} triangles) spawned 0 new threads");
    drop(clique); // <- workers are woken, joined, and gone
    println!("  dropping the clique joined the pool");

    // --- The flagship NodeProgram: 3D triangle counting. ---
    let single_hash = CliqueConfig {
        relay_policy: RelayPolicy::SingleHash,
        ..CliqueConfig::default()
    };
    let mut closure_clique = Clique::with_config(n, single_hash.clone());
    let closure_count = count_triangles_3d(&mut closure_clique, &g);
    let mut program_clique = Clique::with_config(n, single_hash);
    let program_count = count_triangles_program(&mut program_clique, &g);
    assert_eq!(closure_count, program_count);
    assert_eq!(closure_clique.rounds(), program_clique.rounds());
    println!("\ntriangle counting as a NodeProgram state machine");
    println!(
        "  closure algorithm : {closure_count} triangles in {} rounds",
        closure_clique.rounds()
    );
    println!(
        "  state machine     : {program_count} triangles in {} rounds",
        program_clique.rounds()
    );
    println!("  (same oblivious relay pattern, no coordinator, no headers)");
}
