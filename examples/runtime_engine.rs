//! The runtime engine: per-node state machines on a multi-threaded
//! executor, with results bit-identical to sequential execution.
//!
//! Each node runs a tiny gossip program — broadcast your id, then repeat
//! the maximum you have heard until it stabilises — expressed as a
//! [`NodeProgram`] state machine rather than the coordinator-closure style.
//! The same program set runs on the sequential and the parallel executor;
//! rounds and outputs match exactly.
//!
//! Run with: `cargo run --release --example runtime_engine`

use congested_clique::clique::{
    Clique, CliqueConfig, Control, ExecutorKind, NodeProgram, RoundCtx,
};

/// Computes the maximum node id via broadcast flooding: each round, every
/// node broadcasts the largest value it knows; once a round teaches nobody
/// anything new, everyone halts. (For a clique this converges after one
/// exchange — the point is the state-machine shape, not the algorithm.)
struct MaxFlood {
    best: u64,
    done: bool,
}

impl NodeProgram for MaxFlood {
    fn round(&mut self, ctx: &mut RoundCtx<'_>) -> Control {
        let before = self.best;
        for src in 0..ctx.n() {
            for slab in ctx.broadcasts_from(src) {
                for &w in slab {
                    self.best = self.best.max(w);
                }
            }
        }
        if self.done {
            return Control::Halt;
        }
        if ctx.round() > 0 && self.best == before {
            // Nothing new this round: one final broadcast already happened,
            // so everyone else is converging on the same value too.
            self.done = true;
        }
        ctx.broadcast(vec![self.best]);
        Control::Continue
    }
}

fn run(n: usize, executor: ExecutorKind) -> (Vec<u64>, u64) {
    let cfg = CliqueConfig {
        executor,
        ..CliqueConfig::default()
    };
    let mut clique = Clique::with_config(n, cfg);
    let programs = (0..n)
        .map(|v| MaxFlood {
            best: v as u64,
            done: false,
        })
        .collect();
    let finished = clique.run_programs(programs);
    (
        finished.into_iter().map(|p| p.best).collect(),
        clique.rounds(),
    )
}

fn main() {
    let n = 32;
    let (seq_out, seq_rounds) = run(n, ExecutorKind::Sequential);
    let (par_out, par_rounds) = run(n, ExecutorKind::Parallel { threads: 4 });

    assert!(seq_out.iter().all(|&b| b == (n - 1) as u64));
    assert_eq!(seq_out, par_out, "executors must agree on outputs");
    assert_eq!(seq_rounds, par_rounds, "executors must agree on rounds");

    println!("max-flood on a {n}-node clique");
    println!(
        "  sequential executor: {seq_rounds} rounds, all nodes know {}",
        seq_out[0]
    );
    println!("  parallel executor  : {par_rounds} rounds, identical results");
    println!("  (determinism is the contract: only wall-clock may differ)");
}
