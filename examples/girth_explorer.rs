//! Girth computation across graph families, undirected (Theorem 15) and
//! directed (Corollary 16), showing which code path each instance takes.
//!
//! Run with: `cargo run --release --example girth_explorer`

use congested_clique::clique::Clique;
use congested_clique::graph::{generators, oracle, Graph};
use congested_clique::subgraph::{directed_girth, girth, GirthConfig};

fn report(name: &str, g: &Graph) {
    let mut clique = Clique::new(g.n());
    let got = girth(&mut clique, g, GirthConfig::default());
    let expect = oracle::girth(g);
    assert_eq!(got, expect, "{name}");
    println!(
        "{name:<28} n={:<4} m={:<5} girth={got:?} rounds={}",
        g.n(),
        g.m(),
        clique.rounds()
    );
}

fn report_directed(name: &str, g: &Graph) {
    let mut clique = Clique::new(g.n());
    let got = directed_girth(&mut clique, g);
    assert_eq!(got, oracle::directed_girth(g), "{name}");
    println!(
        "{name:<28} n={:<4} m={:<5} girth={got:?} rounds={}",
        g.n(),
        g.m(),
        clique.rounds()
    );
}

fn main() {
    println!("== undirected girth (Theorem 15) ==");
    report("cycle C_17 (sparse→gather)", &generators::cycle(17));
    report("Petersen graph", &generators::petersen());
    report("grid 6x6", &generators::grid(6, 6));
    report("K_16 (dense→detect)", &generators::complete(16));
    report(
        "K_{16,16} (dense, C4)",
        &generators::complete_bipartite(16, 16),
    );
    report("G(64, 0.5)", &generators::gnp(64, 0.5, 3));
    report("forest (no cycle)", &generators::path(20));

    println!("\n== directed girth (Corollary 16, Itai–Rodeh doubling) ==");
    report_directed("directed C_2", &generators::directed_cycle(2));
    report_directed("directed C_9", &generators::directed_cycle(9));
    report_directed(
        "two cycles C_7 ⊎ C_4",
        &generators::disjoint_union(
            &generators::directed_cycle(7),
            &generators::directed_cycle(4),
        ),
    );
    report_directed(
        "random digraph G(24, .15)",
        &generators::gnp_directed(24, 0.15, 5),
    );

    let mut dag = Graph::directed(16);
    for u in 0..16 {
        for v in (u + 1)..16 {
            if (u * v) % 5 == 0 {
                dag.add_edge(u, v);
            }
        }
    }
    report_directed("DAG (acyclic)", &dag);
}
