//! Quickstart: build a small graph, run distributed triangle counting on a
//! simulated congested clique, and inspect the round cost.
//!
//! Run with: `cargo run --release --example quickstart`

use congested_clique::clique::Clique;
use congested_clique::graph::{generators, oracle};
use congested_clique::subgraph::count_triangles;

fn main() {
    // A 64-node Erdős–Rényi graph; node v of the clique knows row v of the
    // adjacency matrix (its incident edges), exactly the model's input.
    let n = 64;
    let g = generators::gnp(n, 0.3, 42);
    println!("input: G({n}, 0.3) with {} edges", g.m());

    // Run Corollary 2's trace-formula counting on a simulated clique.
    let mut clique = Clique::new(n);
    let triangles = count_triangles(&mut clique, &g);
    println!("distributed count : {triangles} triangles");
    println!(
        "centralized oracle: {} triangles",
        oracle::count_triangles(&g)
    );
    assert_eq!(triangles, oracle::count_triangles(&g));

    // The whole point: far fewer rounds than the n rounds a gather-all
    // approach would need.
    println!(
        "rounds used       : {} (vs n = {n} for naive gather)",
        clique.rounds()
    );
    println!("\nper-phase breakdown:");
    print!("{}", clique.stats());
}
