//! The query-serving layer end to end: register → submit → batch → cache.
//!
//! A small "analytics service" scenario: a handful of graphs registered
//! once, then a mixed stream of repeated and fresh queries submitted as
//! batches. The demonstration shows the three economies the service layer
//! adds on top of the one-shot algorithm calls:
//!
//! * **coalescing** — duplicate in-flight queries in one batch run once;
//! * **caching** — repeats across batches are served bit-identically
//!   (answer *and* the priming run's rounds/words) with zero additional
//!   simulated rounds;
//! * **warm pooling** — simulator instances are reset and reused, never
//!   rebuilt, and all share one executor.
//!
//! Run with: `cargo run --release --example query_service`

use congested_clique::graph::generators;
use congested_clique::service::{Query, Service, ServiceConfig, ServiceMode};

fn main() {
    let mut svc = Service::new(ServiceConfig {
        mode: ServiceMode::Batch { instances: 3 },
        ..ServiceConfig::default()
    });

    println!("=== register: graphs fingerprinted, deduplicated, Arc-shared ===\n");
    let social = svc.register(generators::caveman(4, 6)); // 4 communities of 6
    let road = svc.register(generators::grid(5, 5));
    let mesh = svc.register(generators::weighted_gnp(20, 0.3, 9, false, 42));
    let dup = svc.register(generators::grid(5, 5)); // same content as `road`
    assert_eq!(road, dup, "equal graphs share one registration");
    println!(
        "registered 4 graphs -> {} distinct entries\n",
        svc.registry().len()
    );

    println!("=== batch 1: a mixed workload with in-flight duplicates ===\n");
    let tickets = vec![
        (
            "triangles(social)",
            svc.submit(social, Query::TriangleCount),
        ),
        ("girth(road)     ", svc.submit(road, Query::GirthBound)),
        (
            "triangles(social)",
            svc.submit(social, Query::TriangleCount),
        ),
        ("apsp(mesh)      ", svc.submit(mesh, Query::ApspTable)),
        ("4cycle(road)    ", svc.submit(road, Query::SubgraphFlag)),
        (
            "triangles(social)",
            svc.submit(social, Query::TriangleCount),
        ),
    ];
    svc.drain();
    for (label, t) in tickets {
        let o = svc.take(t).expect("drained");
        println!(
            "  {label}  rounds={:<4} words={:<6} cached={}",
            o.rounds, o.words, o.cached
        );
    }
    let s = svc.stats();
    println!(
        "\n  6 submissions -> {} computations ({} coalesced in flight)\n",
        s.computations, s.coalesced
    );

    println!("=== batch 2: repeats are cache hits, distances are lookups ===\n");
    let rounds_before = svc.stats().simulated_rounds;
    let repeat = svc.query(social, Query::TriangleCount);
    println!(
        "  triangles(social) again: cached={} (same answer, same accounting)",
        repeat.cached
    );
    // The cached APSP table memoizes every point-to-point distance.
    for (s, t) in [(0, 19), (3, 17), (19, 0)] {
        let d = svc.query(mesh, Query::Distance { s, t });
        println!(
            "  dist(mesh, {s:>2} -> {t:>2}) = {:?}  cached={}",
            d.response.distance().expect("distance response"),
            d.cached
        );
    }
    assert_eq!(
        svc.stats().simulated_rounds,
        rounds_before,
        "cache hits and memoized lookups simulate zero additional rounds"
    );
    println!(
        "\n  simulated rounds unchanged: {} (cache did the serving)\n",
        svc.stats().simulated_rounds
    );

    println!("=== warm pool: instances reset and reused, never rebuilt ===\n");
    svc.clear_cache(); // force recomputation, keep the pool warm
    let recomputed = svc.query(social, Query::TriangleCount);
    assert!(!recomputed.cached);
    println!(
        "  after cache clear, recomputation reused a warm instance: built={} reused={}",
        svc.pool().built(),
        svc.pool().reused()
    );
    println!(
        "  warm replay is bit-identical: {} rounds (cold run: {})",
        recomputed.rounds, repeat.rounds
    );
    assert_eq!(recomputed.rounds, repeat.rounds);
    assert_eq!(recomputed.response, repeat.response);

    let s = svc.stats();
    println!(
        "\ntotals: {} queries, {} batches, {} computations, {} cache hits, {} coalesced",
        s.queries, s.batches, s.computations, s.cache_hits, s.coalesced
    );
}
