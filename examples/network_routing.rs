//! Shortest paths and routing tables on a weighted network: Corollary 6's
//! exact APSP with witness-derived routing tables, validated by walking the
//! routes, plus the (1+o(1))-approximate APSP of Theorem 9 and the
//! Bellman–Ford baseline for comparison.
//!
//! Run with: `cargo run --release --example network_routing`

use congested_clique::apsp::{apsp_approx, apsp_exact, delta_for_target};
use congested_clique::baselines::naive::bellman_ford_apsp;
use congested_clique::clique::Clique;
use congested_clique::graph::{generators, oracle};

fn main() {
    // A weighted directed network (think: link latencies).
    let n = 32;
    let g = generators::weighted_gnp(n, 0.2, 20, true, 7);
    println!("network: n = {n}, {} weighted directed links\n", g.m());

    // Exact APSP + routing tables (Corollary 6 + §3.4 witnesses).
    let mut clique = Clique::new(n);
    let tables = apsp_exact(&mut clique, &g);
    let exact_rounds = clique.rounds();
    assert_eq!(tables.dist.to_matrix(), oracle::apsp(&g));
    println!("exact APSP: {exact_rounds} rounds, distances verified against Dijkstra");

    // Walk a route end-to-end.
    let (src, dst) = (0, n - 1);
    match tables.path(src, dst) {
        Some(path) => {
            let hops: Vec<String> = path.iter().map(ToString::to_string).collect();
            println!(
                "route {src} → {dst}: {} (total weight {})",
                hops.join(" → "),
                tables.dist.row(src)[dst]
            );
        }
        None => println!("route {src} → {dst}: unreachable"),
    }

    // Approximate APSP: trade accuracy for rounds (Theorem 9). The
    // per-product δ composes over ⌈log n⌉ squarings; 0.5 keeps the demo
    // fast while still beating the worst-case guarantee by a wide margin
    // (see the apsp_accuracy experiment for the full δ sweep).
    let delta = 0.5f64;
    let guarantee = (1.0 + delta).powf((n as f64).log2().ceil());
    let _ = delta_for_target(n, guarantee - 1.0);
    let mut clique = Clique::new(n);
    let approx = apsp_approx(&mut clique, &g, delta);
    let approx_rounds = clique.rounds();
    let exact = oracle::apsp(&g);
    let mut worst: f64 = 1.0;
    for u in 0..n {
        for v in 0..n {
            if let (Some(e), Some(a)) = (exact[(u, v)].value(), approx.row(u)[v].value()) {
                if e > 0 {
                    worst = worst.max(a as f64 / e as f64);
                }
            }
        }
    }
    println!(
        "\napprox APSP (δ = {delta}): {approx_rounds} rounds, worst stretch {worst:.4} (guarantee {guarantee:.1})"
    );

    // Baseline: distributed Bellman–Ford.
    let mut clique = Clique::new(n);
    let bf = bellman_ford_apsp(&mut clique, &g);
    assert_eq!(bf.to_matrix(), exact);
    println!(
        "Bellman–Ford baseline: {} rounds (Θ(n·D) class)",
        clique.rounds()
    );
}
