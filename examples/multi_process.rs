//! Multi-process congested clique simulation over unix sockets, end to end.
//!
//! The socket transport turns one simulation into a little distributed
//! system: a parent orchestrator (this process) plus `cc-clique-node`
//! worker processes, each simulating a contiguous shard of nodes. Every
//! round's traffic crosses real OS sockets as length-prefixed frames, and
//! the round barrier is a **round-commit token** — the parent charges a
//! round only after every worker has committed its epoch.
//!
//! The demonstration runs the paper's triangle counting and APSP on three
//! fabrics — shared memory, cross-thread channels, and worker processes —
//! and shows the determinism contract: identical counts, distances,
//! rounds, words, and barrier epochs, regardless of where the words
//! physically travelled.
//!
//! Run with: `cargo run --release --example multi_process`
//! (the worker binary is built automatically as part of the workspace).

use congested_clique::apsp::apsp_exact;
use congested_clique::clique::{Clique, CliqueConfig, TransportKind};
use congested_clique::graph::generators;
use congested_clique::subgraph::count_triangles;

fn main() {
    let n = 24;
    let graph = generators::gnp(n, 0.3, 7);
    let weighted = generators::weighted_gnp(n, 0.3, 9, true, 11);

    println!("=== pluggable transports: one simulation, three fabrics ===\n");
    let mut reference = None;
    for (label, kind) in [
        (
            "inmemory (shared-memory sharded flush)",
            TransportKind::InMemory,
        ),
        (
            "channel  (one thread + inbox queue per node)",
            TransportKind::Channel,
        ),
        (
            "socket   (4 worker processes over unix sockets)",
            TransportKind::Socket { workers: 4 },
        ),
    ] {
        let cfg = CliqueConfig {
            transport: kind,
            ..CliqueConfig::default()
        };
        let mut clique = Clique::with_config(n, cfg);
        let triangles = count_triangles(&mut clique, &graph);
        let tables = apsp_exact(&mut clique, &weighted);
        let reach: usize = (0..n)
            .map(|v| tables.dist.row(v).iter().filter(|d| d.is_finite()).count())
            .sum();
        let outcome = (
            triangles,
            reach,
            clique.rounds(),
            clique.stats().words(),
            clique.transport_epochs(),
        );
        println!(
            "{label}\n    triangles = {triangles}, finite distances = {reach}, rounds = {}, \
             words = {}, barrier epochs = {}\n",
            outcome.2, outcome.3, outcome.4
        );
        match &reference {
            None => reference = Some(outcome),
            Some(r) => assert_eq!(
                r, &outcome,
                "the determinism contract: every fabric reports identical results"
            ),
        }
    }

    println!("all three fabrics agree bit-for-bit — transport is a deployment choice,");
    println!("not a semantics choice. CC_TRANSPORT=socket retargets any run of this suite.");
}
