//! Multi-process congested clique simulation over real sockets, end to end.
//!
//! The socket and TCP transports turn one simulation into a little
//! distributed system: a parent orchestrator (this process) plus worker
//! processes (`cc-clique-node` over unix sockets, `cc-clique-host` over
//! TCP), each simulating a contiguous shard of nodes. Every round's
//! traffic crosses real OS sockets as length-prefixed frames, and the
//! round barrier is a **round-commit token** — the parent charges a round
//! only after every worker has committed its epoch.
//!
//! The first demonstration runs the paper's triangle counting and APSP on
//! four fabrics — shared memory, cross-thread channels, unix-socket worker
//! processes, and TCP worker processes — and shows the determinism
//! contract: identical counts, distances, rounds, words, and barrier
//! epochs, regardless of where the words physically travelled.
//!
//! The second demonstration conditions the multi-process fabric with the
//! `cc-netsim` **lossy profile**: every link drops words with seeded
//! probability and redelivers them with exponential backoff in simulated
//! time — yet counts, distances, rounds, words, and barrier epochs stay
//! bit-identical to the clean run. Only the new `sim_time_ns` column and
//! the retransmit counter move, and those are pure functions of the
//! netsim seed.
//!
//! The third demonstration is the TCP fabric's **peer-resident mode**:
//! the triangle [`NodeProgram`] shards are serialized and shipped to the
//! workers once, per-round messages flow worker → worker over direct peer
//! links from an orchestrator-distributed routing table, and the
//! orchestrator only brokers the barrier — so its per-round payload byte
//! count drops to zero while the star topology carries every word.
//!
//! Run with: `cargo run --release --example multi_process`
//! (the worker binaries are built automatically as part of the workspace).
//! For a real multi-host run, see the facade's "Transport layer" docs
//! (`CC_TCP_EXTERN=1` plus one `cc-clique-host` per remote worker).
//!
//! [`NodeProgram`]: congested_clique::runtime::NodeProgram

use congested_clique::apsp::apsp_exact;
use congested_clique::clique::{Clique, CliqueConfig, NetsimConfig, NetsimProfile, TransportKind};
use congested_clique::graph::generators;
use congested_clique::subgraph::{count_triangles, count_triangles_program};

fn main() {
    let n = 24;
    let graph = generators::gnp(n, 0.3, 7);
    let weighted = generators::weighted_gnp(n, 0.3, 9, true, 11);

    println!("=== pluggable transports: one simulation, four fabrics ===\n");
    let mut reference = None;
    for (label, kind) in [
        (
            "inmemory (shared-memory sharded flush)",
            TransportKind::InMemory,
        ),
        (
            "channel  (one thread + inbox queue per node)",
            TransportKind::Channel,
        ),
        (
            "socket   (4 worker processes over unix sockets)",
            TransportKind::Socket { workers: 4 },
        ),
        (
            "tcp      (4 worker processes over TCP streams)",
            TransportKind::Tcp {
                workers: 4,
                resident: false,
                addr: None,
            },
        ),
    ] {
        let cfg = CliqueConfig {
            transport: kind,
            ..CliqueConfig::default()
        };
        let mut clique = Clique::with_config(n, cfg);
        let triangles = count_triangles(&mut clique, &graph);
        let tables = apsp_exact(&mut clique, &weighted);
        let reach: usize = (0..n)
            .map(|v| tables.dist.row(v).iter().filter(|d| d.is_finite()).count())
            .sum();
        let outcome = (
            triangles,
            reach,
            clique.rounds(),
            clique.stats().words(),
            clique.transport_epochs(),
        );
        println!(
            "{label}\n    triangles = {triangles}, finite distances = {reach}, rounds = {}, \
             words = {}, barrier epochs = {}\n",
            outcome.2, outcome.3, outcome.4
        );
        match &reference {
            None => reference = Some(outcome),
            Some(r) => assert_eq!(
                r, &outcome,
                "the determinism contract: every fabric reports identical results"
            ),
        }
    }

    println!("all four fabrics agree bit-for-bit — transport is a deployment choice,");
    println!("not a semantics choice. CC_TRANSPORT=tcp retargets any run of this suite.\n");

    println!("=== netsim: the same worker processes behind a lossy network ===\n");
    let cfg = CliqueConfig {
        transport: TransportKind::Socket { workers: 4 },
        netsim: NetsimConfig {
            profile: NetsimProfile::Lossy,
            seed: 7,
        },
        ..CliqueConfig::default()
    };
    let mut clique = Clique::with_config(n, cfg);
    let triangles = count_triangles(&mut clique, &graph);
    let tables = apsp_exact(&mut clique, &weighted);
    let reach: usize = (0..n)
        .map(|v| tables.dist.row(v).iter().filter(|d| d.is_finite()).count())
        .sum();
    let outcome = (
        triangles,
        reach,
        clique.rounds(),
        clique.stats().words(),
        clique.transport_epochs(),
    );
    println!(
        "socket + CC_NETSIM=lossy:7 (8% word loss, retransmit with simulated backoff)\n    \
         triangles = {triangles}, finite distances = {reach}, rounds = {}, words = {}, \
         barrier epochs = {}\n    simulated time = {:.3} ms, retransmits = {}\n",
        outcome.2,
        outcome.3,
        outcome.4,
        clique.sim_time_ns() as f64 / 1e6,
        clique.net_retransmits(),
    );
    assert_eq!(
        reference.as_ref(),
        Some(&outcome),
        "a lossy network must not change anything an observer can see"
    );
    assert!(
        clique.net_retransmits() > 0,
        "the lossy profile retransmits"
    );
    println!("loss was absorbed by retransmission entirely inside the netsim layer:");
    println!("identical answers and accounting, with the damage visible only in the");
    println!("simulated-time and retransmit columns.\n");

    println!("=== peer-resident TCP: the orchestrator leaves the data path ===\n");
    let mut star_reference = None;
    for (label, resident) in [
        (
            "tcp star mode     (every word transits the orchestrator)",
            false,
        ),
        (
            "tcp peer-resident (programs shipped once, words flow peer-to-peer)",
            true,
        ),
    ] {
        let cfg = CliqueConfig {
            transport: TransportKind::Tcp {
                workers: 4,
                resident,
                addr: None,
            },
            ..CliqueConfig::default()
        };
        let mut clique = Clique::with_config(n, cfg);
        let triangles = count_triangles_program(&mut clique, &graph);
        let outcome = (
            triangles,
            clique.rounds(),
            clique.stats().words(),
            clique.transport_epochs(),
        );
        let through_orchestrator = clique.orchestrator_bytes();
        println!(
            "{label}\n    triangles = {triangles}, rounds = {}, words = {}, barrier epochs = {}, \
             payload bytes through orchestrator = {through_orchestrator}\n",
            outcome.1, outcome.2, outcome.3
        );
        if resident {
            assert_eq!(
                through_orchestrator, 0,
                "peer-resident rounds must bypass the orchestrator"
            );
            assert_eq!(
                star_reference.as_ref(),
                Some(&outcome),
                "star and peer-resident modes must agree bit-for-bit"
            );
        } else {
            assert!(
                through_orchestrator > 0,
                "star mode carries the rounds' words through the orchestrator"
            );
            star_reference = Some(outcome);
        }
    }

    println!("same answer, same accounting, same barrier epochs — but in peer-resident");
    println!("mode the orchestrator brokered the barrier without touching a payload byte.");
}
