//! Matrix-multiplication playground: the same product computed by every
//! path in the library — semiring 3D, fast bilinear over ℤ and over a
//! prime field, the O(1)-round sparse square, the naive baseline, and the
//! broadcast-clique regime — with round costs side by side.
//!
//! Run with: `cargo run --release --example mm_playground`

use congested_clique::algebra::{IntRing, Matrix, ModRing};
use congested_clique::baselines;
use congested_clique::clique::{Clique, CliqueConfig, Mode};
use congested_clique::core::{fast_mm, semiring_mm, RowMatrix};
use congested_clique::graph::generators;
use congested_clique::subgraph::sparse_square;

fn rand_matrix(n: usize, seed: u64) -> Matrix<i64> {
    let mut st = seed;
    Matrix::from_fn(n, n, |_, _| {
        st = st
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((st >> 33) % 9) as i64 - 4
    })
}

fn main() {
    let n = 64;
    let a = rand_matrix(n, 1);
    let b = rand_matrix(n, 2);
    let (ra, rb) = (RowMatrix::from_matrix(&a), RowMatrix::from_matrix(&b));
    let reference = Matrix::mul(&IntRing, &a, &b);
    println!("multiplying two {n}×{n} integer matrices on a {n}-node clique\n");

    // 1. Semiring 3D algorithm (Theorem 1, first part).
    let mut clique = Clique::new(n);
    let p = semiring_mm::multiply(&mut clique, &IntRing, &ra, &rb);
    assert_eq!(p.to_matrix(), reference);
    println!(
        "semiring 3D (O(n^1/3))        : {:>4} rounds",
        clique.rounds()
    );

    // 2. Fast bilinear algorithm with Strassen (Theorem 1, second part).
    let mut clique = Clique::new(n);
    let p = fast_mm::multiply_auto(&mut clique, &IntRing, &ra, &rb);
    assert_eq!(p.to_matrix(), reference);
    println!(
        "fast bilinear (O(n^0.288))    : {:>4} rounds",
        clique.rounds()
    );

    // 2b. Same algorithm on the multi-threaded runtime: identical product,
    //     identical rounds — only wall-clock may differ.
    let mut clique = Clique::parallel(n);
    let pp = fast_mm::multiply_auto(&mut clique, &IntRing, &ra, &rb);
    assert_eq!(pp.to_matrix(), reference);
    println!(
        "fast bilinear, parallel exec  : {:>4} rounds (bit-identical)",
        clique.rounds()
    );

    // 3. The same fast path over the prime field F_101.
    let f = ModRing::new(101);
    let (ma, mb) = (ra.map(|&x| f.reduce(x)), rb.map(|&x| f.reduce(x)));
    let mut clique = Clique::new(n);
    let pm = fast_mm::multiply_auto(&mut clique, &f, &ma, &mb);
    assert_eq!(pm.to_matrix(), reference.map(|&x| f.reduce(x)));
    println!(
        "fast bilinear over F_101      : {:>4} rounds",
        clique.rounds()
    );

    // 4. Naive baseline: gather all of B everywhere.
    let mut clique = Clique::new(n);
    let p = baselines::naive::row_gather_mm(&mut clique, &ra, &rb);
    assert_eq!(p.to_matrix(), reference);
    println!(
        "naive row-gather (Θ(n))       : {:>4} rounds",
        clique.rounds()
    );

    // 5. Broadcast congested clique (Corollary 24's regime).
    let cfg = CliqueConfig {
        mode: Mode::Broadcast,
        ..CliqueConfig::default()
    };
    let mut clique = Clique::with_config(n, cfg);
    let p = baselines::broadcast_mm::multiply(&mut clique, &ra, &rb);
    assert_eq!(p.to_matrix(), reference);
    println!(
        "broadcast clique (Θ(n))       : {:>4} rounds",
        clique.rounds()
    );

    // 6. Sparse squares in O(1) rounds (the Theorem 4 remark): works when
    //    the graph's 2-walk counts are small.
    let g = generators::gnp(n, 1.5 / n as f64, 7);
    let adj = g.adjacency_matrix();
    let mut clique = Clique::new(n);
    match sparse_square(&mut clique, &g) {
        Some(sq) => {
            assert_eq!(sq.to_matrix(), Matrix::mul(&IntRing, &adj, &adj));
            println!(
                "sparse A² (O(1), Thm 4 remark): {:>4} rounds  (G(n, 1.5/n), m = {})",
                clique.rounds(),
                g.m()
            );
        }
        None => println!("sparse A²: instance too dense, would fall back to Theorem 1"),
    }
}
