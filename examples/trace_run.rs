//! Trace a run: count triangles with round-level telemetry enabled and
//! print the captured timeline.
//!
//! Run with: `cargo run --release --example trace_run`
//!
//! The example installs `CC_TRACE=rounds` programmatically (an exported
//! `CC_TRACE` would win only if it were installed first — the global handle
//! is first-install-wins), so it always produces a timeline. To trace any
//! *other* binary in the workspace, just set the variable:
//!
//! ```text
//! CC_TRACE=rounds            cargo test -q            # aggregate in memory
//! CC_TRACE=full:/tmp/r.jsonl cargo run --example quickstart
//! ```

use congested_clique::clique::Clique;
use congested_clique::graph::{generators, oracle};
use congested_clique::subgraph::count_triangles;
use congested_clique::telemetry::{self, RoundTimeline, Telemetry, TraceLevel};

fn main() {
    // Install round-level tracing into an in-memory aggregator before any
    // instrumented layer is touched. `install` fails (and we fall through
    // to whatever CC_TRACE selected) only if telemetry was already
    // initialised — impossible here, since this runs first in main.
    let _ = telemetry::install(Telemetry::with_memory(TraceLevel::Rounds));

    let n = 32;
    let g = generators::gnp(n, 0.3, 42);
    println!("input: G({n}, 0.3) with {} edges", g.m());

    // Wrap the count in a named phase so the capture attributes its
    // rounds, words, and wall-clock.
    let mut clique = Clique::new(n);
    let triangles = clique.phase("triangles", |c| count_triangles(c, &g));
    assert_eq!(triangles, oracle::count_triangles(&g));
    println!(
        "count: {triangles} triangles in {} simulated rounds\n",
        clique.rounds()
    );

    // Everything the instrumented stack emitted is waiting in the global
    // memory sink; the timeline renders per-round lines and totals.
    let mem = telemetry::global()
        .memory()
        .expect("with_memory handles aggregate in memory");
    println!("--- captured timeline (CC_TRACE=rounds) ---");
    print!("{}", RoundTimeline::from_snapshot(&mem.snapshot()));
}
