//! Subgraph analytics on a social-network-like graph: triangle, 4-cycle and
//! 5-cycle counts, constant-round 4-cycle detection, and girth — the
//! workloads that motivate the paper's subgraph-detection section.
//!
//! Run with: `cargo run --release --example social_analytics`

use congested_clique::clique::Clique;
use congested_clique::graph::{generators, oracle};
use congested_clique::subgraph::{
    count_4cycles, count_5cycles, count_triangles, detect_4cycle, girth, GirthConfig,
};

fn main() {
    // Preferential attachment ≈ a social graph: heavy-tailed degrees, many
    // triangles around hubs.
    let n = 128;
    let g = generators::preferential_attachment(n, 3, 2026);
    let max_deg = (0..n).map(|v| g.degree(v)).max().unwrap_or(0);
    println!(
        "social graph: n = {n}, m = {}, max degree = {max_deg}\n",
        g.m()
    );

    let mut clique = Clique::new(n);
    let tri = count_triangles(&mut clique, &g);
    println!("triangles : {tri:>8}  ({} rounds)", clique.rounds());
    assert_eq!(tri, oracle::count_triangles(&g));

    let mut clique = Clique::new(n);
    let c4 = count_4cycles(&mut clique, &g);
    println!("4-cycles  : {c4:>8}  ({} rounds)", clique.rounds());
    assert_eq!(c4, oracle::count_4cycles(&g));

    let mut clique = Clique::new(n);
    let c5 = count_5cycles(&mut clique, &g);
    println!("5-cycles  : {c5:>8}  ({} rounds)", clique.rounds());
    assert_eq!(c5, oracle::count_5cycles(&g));

    // Theorem 4: constant-round detection, no matrix multiplication.
    let mut clique = Clique::new(n);
    let has_c4 = detect_4cycle(&mut clique, &g);
    println!(
        "C4 exists : {has_c4:>8}  ({} rounds — O(1), Theorem 4)",
        clique.rounds()
    );

    let mut clique = Clique::new(n);
    let gi = girth(&mut clique, &g, GirthConfig::default());
    println!("girth     : {gi:>8?}  ({} rounds)", clique.rounds());
    assert_eq!(gi, oracle::girth(&g));

    println!("\nall distributed results match the centralized oracles ✓");
}
