//! # congested-clique
//!
//! A reproduction of *"Algebraic Methods in the Congested Clique"*
//! (Censor-Hillel, Kaski, Korhonen, Lenzen, Paz, Suomela — PODC 2015) as a
//! Rust library suite. This facade crate re-exports the workspace crates:
//!
//! * [`runtime`] — the sharded, multi-threaded execution engine
//!   ([`NodeProgram`](runtime::NodeProgram) state machines, pluggable
//!   [`Sequential`/`Parallel`](runtime::ExecutorKind) executors).
//! * [`transport`] — pluggable message fabrics carrying the simulation's
//!   traffic: in-memory, cross-thread channels, multi-process unix
//!   sockets.
//! * [`netsim`] — deterministic network conditioning behind the transport
//!   seam: per-link latency/jitter, stragglers, message loss with
//!   retransmit, node crash/restart fault plans.
//! * [`clique`] — the congested clique simulator (rounds, links, routing).
//! * [`algebra`] — semirings, rings, matrices, bilinear (Strassen) algorithms.
//! * [`graph`] — graph types, generators, and centralized reference oracles.
//! * [`core`] — distributed matrix multiplication and distance products
//!   (the paper's primary contribution).
//! * [`subgraph`] — triangle/4-cycle counting, k-cycle detection, girth.
//! * [`apsp`] — all-pairs shortest path algorithms and routing tables.
//! * [`service`] — the batched query-serving layer: graph registry, warm
//!   clique pools, fingerprint-keyed result caching, deterministic batch
//!   scheduling.
//! * [`telemetry`] — zero-cost-when-disabled observability: structured
//!   trace events, per-round/per-link metrics, pluggable sinks.
//! * [`baselines`] — prior-work baselines (Dolev et al., naive algorithms).
//! * [`congest`] — the CONGEST model substrate (the paper's §5 future-work
//!   direction) with classical comparison algorithms.
//!
//! ## Quickstart
//!
//! ```rust
//! use congested_clique::clique::Clique;
//! use congested_clique::graph::Graph;
//! use congested_clique::subgraph::count_triangles;
//!
//! // A 5-cycle plus a chord has exactly one triangle.
//! let mut g = Graph::undirected(5);
//! for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)] {
//!     g.add_edge(u, v);
//! }
//! let mut clique = Clique::new(5);
//! assert_eq!(count_triangles(&mut clique, &g), 1);
//! ```
//!
//! ## Runtime & execution model
//!
//! Simulated nodes are embarrassingly parallel within a round, and the
//! [`runtime`] crate exploits that: a [`Clique`](clique::Clique) runs on a
//! pluggable executor chosen through
//! [`CliqueConfig::executor`](clique::CliqueConfig) —
//! [`ExecutorKind::Sequential`](runtime::ExecutorKind) (the reference
//! semantics, and the default), [`ExecutorKind::Parallel`](runtime::ExecutorKind)
//! (the **persistent worker pool**), or
//! [`ExecutorKind::Spawn`](runtime::ExecutorKind) (the legacy
//! scoped-threads-per-call backend, kept as the pool's ablation baseline —
//! see `BENCH_pool.json`). Setting the `CC_EXECUTOR` environment variable
//! (`sequential` / `parallel` / `spawn`, optionally `:<threads>`) retargets
//! every default-configured clique in the process, which is how CI runs the
//! whole suite on each backend.
//!
//! ### Pool lifecycle
//!
//! The pooled executor's threads are created **once**, in
//! [`Executor::new`](runtime::Executor::new) (i.e. when the `Clique` is
//! built): `threads − 1` workers are spawned eagerly and park on a condvar.
//! Every `map`/`map_chunks_mut`/engine round then *reuses* them — a job is
//! published to the parked workers, the calling thread joins in as one
//! more participant, and a barrier collects per-worker results for the
//! deterministic merge-by-index. No call ever spawns a thread
//! ([`Executor::threads_spawned`](runtime::Executor::threads_spawned) is
//! the race-free per-executor probe the tests pin). When the
//! last executor handle drops — normally when the `Clique` does — the
//! workers are woken, joined, and gone. Jobs smaller than a tunable
//! cutover ([`Executor::with_cutover`](runtime::Executor::with_cutover),
//! `CliqueConfig::exec_cutover`, or `CC_EXEC_CUTOVER`; default
//! [`DEFAULT_SEQ_CUTOVER`](runtime::DEFAULT_SEQ_CUTOVER)) run inline on
//! the caller, so small-`n` simulations pay no dispatch overhead at all.
//!
//! The determinism contract is strict: results, executed round counts, and
//! communication-pattern fingerprints are **bit-identical** across
//! executors (property-tested in `tests/runtime_determinism.rs`), so round
//! accounting — the quantity the paper is about — never depends on how the
//! simulation is scheduled. Only wall-clock changes:
//!
//! ```rust
//! use congested_clique::algebra::{IntRing, Matrix};
//! use congested_clique::clique::Clique;
//! use congested_clique::core::{fast_mm, RowMatrix};
//!
//! let n = 8;
//! let a = Matrix::from_fn(n, n, |i, j| (i + j) as i64);
//! let mut sequential = Clique::new(n);
//! let mut parallel = Clique::parallel(n); // pool sized to the machine
//! let ra = RowMatrix::from_matrix(&a);
//! let p1 = fast_mm::multiply_auto(&mut sequential, &IntRing, &ra, &ra);
//! let p2 = fast_mm::multiply_auto(&mut parallel, &IntRing, &ra, &ra);
//! assert_eq!(p1.to_matrix(), p2.to_matrix());
//! assert_eq!(sequential.rounds(), parallel.rounds());
//! ```
//!
//! ### What runs on the parallel runtime
//!
//! The whole algorithm layer now rides the executor, not just the MM core:
//!
//! * [`core`] — `fast_mm`, `semiring_mm` (witnessed distance products),
//!   `boolean`, and `distance` fan node-local steps out via
//!   [`Executor::map`](runtime::Executor::map) and communicate through the
//!   `_par` primitives;
//! * [`apsp`] — `apsp_exact`, `apsp_seidel`, `apsp_approx`,
//!   `apsp_small_weights`/`reachability` tabulate rows, run fixpoint scans,
//!   and reconstruct tables on the backend;
//! * [`subgraph`] — triangle counting, the Theorem 4 4-cycle detector,
//!   `sparse_square`, girth (and their gossip/exchange/route phases via
//!   `exchange_par`, `route_dynamic_par`, `gossip_par`).
//!
//! Algorithms opt in at two levels: coordinator-style code keeps the
//! closure primitives (`exchange_par`, `route_par`, `route_dynamic_par`,
//! `gossip_par` take `Fn + Sync` generators evaluated on the backend, and
//! node-local loops fan out via [`Executor::map`](runtime::Executor::map)),
//! while fully distributed algorithms implement
//! [`NodeProgram`](runtime::NodeProgram) — a per-node state machine driven
//! round-by-round by the [`Engine`](runtime::Engine) (see
//! [`Clique::run_programs`](clique::Clique::run_programs) and the
//! `runtime_engine` example). The flagship state machine is
//! [`subgraph::TriangleProgram`]: the full 3D triangle-counting algorithm
//! with coordinator-free oblivious relay routing, whose counts *and* round
//! costs match the closure implementation exactly.
//!
//! ### Sparse & rectangular MM (Le Gall 2016)
//!
//! The seed paper's engines are dense-only; Le Gall's follow-up (*"Further
//! Algebraic Algorithms in the Congested Clique Model"*, PODC 2016) shows
//! the model rewards structure, and [`core::sparse_mm`] /
//! [`core::rect_mm`] implement that reading:
//!
//! * [`core::sparse_mm::multiply`] spreads the
//!   `W = Σ_k nnz(col_k S)·nnz(row_k T)` elementary products of the
//!   outer-product decomposition over nnz-proportional helper grids (the
//!   [`core::SparsePlan`], built identically at every node from a
//!   one-round census), so costs track `W/n` — constant rounds for
//!   bounded-degree instances — instead of the dense engines'
//!   size-driven round counts.
//! * [`core::rect_mm::multiply`] prices `n × m · m × n` products
//!   ([`core::RectMatrix`]) by the inner dimension: a thin `m` is extreme
//!   sparsity (padded inner indices get no helpers at all), a wide `m` is
//!   `⌈m/n⌉` dispatched slabs.
//! * The **density dispatchers** — [`core::sparse_mm::multiply_auto`],
//!   [`core::sparse_mm::multiply_auto_ring`],
//!   [`core::sparse_mm::distance_product_with_witness_auto`] — compare the
//!   census-derived sparse estimate against a dense-engine yardstick and
//!   pick per instance; `CC_MM=sparse|dense` overrides them globally (CI
//!   runs a forced-sparse lane). Consumers ride the front doors:
//!   [`subgraph::sparse_square`] is the Theorem 4 two-walk gate over the
//!   general sparse path, [`subgraph::count_triangles_auto`] dispatches
//!   its `A²`, and [`apsp::apsp_exact`] dispatches *per squaring*, so a
//!   sparse graph's early distance products ride the sparse path and the
//!   densified later ones the 3D engine — with identical tables either
//!   way (both engines share the smallest-witness tie-break).
//!
//! Like everything else, the sparse path fans node-local work out on the
//! configured executor and communicates through the `_par` primitives, so
//! its results and accounting are bit-identical across backends (pinned in
//! `tests/runtime_determinism.rs`); `BENCH_sparse.json` holds the nnz
//! sweep (sparse vs dense rounds/words/wall-clock at `n ∈ {64, 128, 256}`).
//!
//! ### Local compute kernels
//!
//! Underneath every distributed engine sits a node-local dense product,
//! and that inner loop is now a pluggable kernel behind
//! [`Semiring::mul_dense`](algebra::Semiring::mul_dense) — selected by
//! `CC_KERNEL` the way `CC_EXECUTOR` picks a backend:
//!
//! * `bitset` (the default, also spelled `auto`) — auto-selects the
//!   fastest lane per ring: cache-blocked i-k-j tiles with Strassen
//!   routing for integer products, plus a **bit-packed Boolean kernel**
//!   ([`algebra::BitMatrix`] stores 64 entries per `u64` word, so an
//!   AND–OR inner product runs 64 lanes per word operation);
//! * `blocked` — cache-blocked i-k-j tiles (`CC_TILE`, default 64) for
//!   both rings, with large square integer products routed through the
//!   previously dormant [`algebra::strassen_mul_with_base`] so the
//!   tiled loop becomes Strassen's base case;
//! * `naive` — the explicit escape hatch: the reference schoolbook loop,
//!   unchanged from the seed.
//!
//! Both optimised lanes soaked in CI behind `CC_KERNEL` before the
//! auto-selecting kernel became the default, and kernels are
//! *observer-equivalent*, not merely "close": `i64` addition is
//! associative, Strassen is exact over the integers, and any correct
//! Boolean method produces the same bools — so results, rounds, words,
//! and pattern fingerprints are bit-identical across `CC_KERNEL` values
//! (pinned in `tests/runtime_determinism.rs`; CI runs full `naive` and
//! `blocked` lanes against the default). Only `*_ns` moves: `BENCH_kernel.json` holds the
//! comparison, including the seed-era Boolean path (lift to `i64`, full
//! integer multiply, threshold pass) that the bit-packed kernel replaces —
//! [`core::boolean::multiply_or`] now also fuses its threshold and OR
//! into one indexed pass. At `CC_TRACE=full` every kernel choice is
//! emitted as a [`KernelDecision`](telemetry::Event) event.
//!
//! Relatedly, the pooled executor's dispatch cutover is self-tuning: when
//! `CC_EXEC_CUTOVER` is unset and the executor has real parallelism, a
//! one-shot startup micro-probe compares thread round-trip cost against
//! per-piece work and raises the default cutover accordingly (clamped,
//! cached per process, reported as a probe `KernelDecision` event).
//!
//! ## Transport layer
//!
//! Executors decide *who computes*; the [`transport`] layer decides *where
//! the words travel*. Every communication step — exchange flushes, both
//! balanced-routing phases, broadcasts, gossip, and each
//! [`NodeProgram`](runtime::NodeProgram) engine round — ships its traffic
//! through a pluggable [`Transport`](transport::Transport) whose round
//! barrier is a rendezvous, selected by
//! [`CliqueConfig::transport`](clique::CliqueConfig):
//!
//! * [`TransportKind::InMemory`](transport::TransportKind) — the classical
//!   shared-memory fabric: a destination-major queue matrix drained by an
//!   executor-sharded flush (the default, and the reference semantics);
//! * [`TransportKind::Channel`](transport::TransportKind) — one OS thread
//!   and one MPSC inbox queue per simulated node; rounds are delimited by
//!   an epoch rendezvous in which every node returns its assembled inbox
//!   and per-link accounting;
//! * [`TransportKind::Socket`](transport::TransportKind) — **true
//!   multi-process simulation**: the parent spawns `cc-clique-node` worker
//!   processes, each simulating a shard of nodes, and every round's words
//!   cross unix domain sockets as length-prefixed frames
//!   ([`transport::Frame`], property-tested to round-trip bit-exactly).
//!   The barrier is a *round-commit token*: a round is charged only after
//!   every worker commits its epoch.
//! * [`TransportKind::Tcp`](transport::TransportKind) — the same frame
//!   codec and round-commit barrier over **TCP streams**, in two modes.
//!   *Star mode* (`tcp`) is the socket topology over TCP: every round's
//!   words transit the orchestrator. *Peer-resident mode* (`tcp-peer`)
//!   is the multi-layer refactor: [`WireProgram`](runtime::WireProgram)
//!   shards are serialized and shipped to the workers **once**, per-round
//!   messages flow worker → worker over direct peer links, and the
//!   orchestrator's per-round role shrinks to brokering the barrier and
//!   collecting final states.
//!
//! The peer-resident setup handshake: each worker binds a peer listener
//! and reports it (`Hello` + `PeerAddr`); the orchestrator answers with
//! the shard assignment and the full **routing table** (`Assign` +
//! `Peers`), from which workers dial each other lazily. A resident
//! session is `ResidentStart` + one `Program` frame per owned node; each
//! round the workers step their shards locally, exchange
//! `Payload`/`Bcast` frames directly, and report `ResidentDone` (live
//! count, peer bytes, per-link loads) — the orchestrator merges the
//! accounting and answers `Release`, so the barrier epoch stream stays
//! identical to the star backends'. For **multi-host runs**, start the
//! orchestrating process with
//! `CC_TCP_EXTERN=1 CC_TRANSPORT=tcp-peer:<workers>:<host>:<port>` and
//! launch one `cc-clique-host tcp://<host>:<port> <worker>` per worker
//! index on the remote machines (the facade's worker binary registers
//! every shipped [`WireProgram`](runtime::WireProgram), e.g.
//! [`subgraph::TriangleProgram`]); single-host runs spawn workers
//! automatically.
//!
//! The determinism contract extends across fabrics: deliveries, rounds,
//! words, pattern fingerprints, and barrier epochs are **bit-identical**
//! on all of them — star or peer-resident — (pinned across the transport
//! × executor matrix in `tests/runtime_determinism.rs`), so where the
//! traffic travels is a deployment choice, never a semantics choice.
//! `CC_TRANSPORT` (`inmemory` / `channel` / `socket[:workers]` /
//! `tcp[:workers][:host:port]` / `tcp-peer[:workers][:host:port]`)
//! retargets every default-configured simulation the way `CC_EXECUTOR`
//! does for executors — CI runs the full suite on each fabric — and an
//! unrecognised value is reported once, not silently swallowed.
//! [`Clique::orchestrator_bytes`](clique::Clique::orchestrator_bytes)
//! exposes the refactor's payoff as a number: the payload bytes that
//! transited the orchestrator, **≈ 0 in peer-resident mode** while star
//! mode carries every round through it (asserted in CI on
//! `BENCH_transport.json`'s `bytes_through_orchestrator` column).
//! `BENCH_transport.json` quantifies the overhead (fast_mm at
//! `n ∈ {64, 128, 256}`: thread queues ≈ 3–4.5×, worker processes ≈
//! 2.5–3× the shared-memory wall-clock on the CI host); the
//! `multi_process` example drives the socket and TCP orchestrators end
//! to end. Socket and TCP frames are coalesced per `(worker, round)`
//! into one writev-style length-prefixed batch — the byte stream is
//! identical to frame-by-frame writes (property-tested, including
//! chunked partial-read delivery), only the syscall count drops.
//!
//! ## Network conditions & fault injection
//!
//! Transports decide where the words travel; the [`netsim`] layer
//! ([`cc_netsim`]) decides what the journey *costs* — and what goes wrong
//! on the way. [`NetsimTransport`](netsim::NetsimTransport) wraps any
//! [`Transport`](transport::Transport) (the same decorator seam the
//! telemetry wrapper uses, applied outermost at
//! [`Clique`](clique::Clique) construction) and conditions every committed
//! round from **one seeded RNG keyed by (seed, epoch, src, dst)** — no
//! wall-clock, no OS entropy, no delivery-order dependence:
//!
//! * **Latency & stragglers** — each delivering link draws a simulated
//!   delay (base + per-word + jitter, occasionally stretched by a
//!   straggler multiplier); a round's simulated completion time is the
//!   *max over delivering links*, accumulated into the new `sim_time_ns`
//!   accounting column ([`Clique::sim_time_ns`](clique::Clique),
//!   [`PhaseStats::sim_time_ns`](clique::PhaseStats) — phase attribution
//!   and [`reset`](clique::Clique::reset) work exactly like rounds).
//! * **Loss & retransmit** — links drop words with per-profile
//!   probability; lost deliveries retry with exponential backoff in
//!   *simulated* time (bounded attempts, loud panic past the budget), so
//!   loss stretches `sim_time_ns` and bumps the retransmit counter but
//!   **never changes what arrives**.
//! * **Crash/restart fault plans** — the flaky-node profile periodically
//!   crashes a deterministic node; the engine's recovery hook re-ships the
//!   [`WireProgram`](runtime::WireProgram)'s serialized state and replays
//!   the interrupted round, so even a mid-run crash leaves results
//!   bit-identical.
//!
//! The determinism contract **splits** here, deliberately: results,
//! rounds, words, pattern fingerprints, and barrier epochs are
//! bit-identical between a conditioned and an unconditioned run — under
//! loss *and* under crash recovery — while `sim_time_ns`, retransmit, and
//! fault counts are bit-reproducible *per netsim seed* (both halves pinned
//! in `tests/runtime_determinism.rs`, and asserted again before
//! `BENCH_netsim.json` is exported). Conditioning is configured by
//! [`CliqueConfig::netsim`](clique::CliqueConfig) or the `CC_NETSIM`
//! variable (`off` | `lan` | `wan` | `lossy` | `flaky-node`, optionally
//! `:seed`), which rides the same warn-once [`runtime::env_config`] parser
//! as `CC_EXECUTOR` — CI runs the full suite under `CC_NETSIM=lossy` to
//! prove the suite cannot tell the difference. `BENCH_netsim.json` charts
//! the profiles (simulated time, retransmits, wall-clock overhead) across
//! backends; the `multi_process` example conditions a multi-process fabric
//! with the lossy profile and reproduces the clean run bit for bit.
//!
//! ## Service layer
//!
//! Everything above answers *one* question per simulator; the [`service`]
//! layer ([`cc_service`]) is the front door for *traffic*. The request
//! lifecycle is **register → submit → batch → cache**:
//!
//! 1. **Register** — [`Service::register`](service::Service::register)
//!    content-fingerprints the graph
//!    ([`Graph::fingerprint`](graph::Graph::fingerprint)), deduplicates it
//!    against every earlier registration, and shares the adjacency via
//!    `Arc`. Equal graphs get equal ids — and therefore one cache
//!    universe.
//! 2. **Submit** — typed queries
//!    ([`Query::TriangleCount`](service::Query::TriangleCount),
//!    [`ApspTable`](service::Query::ApspTable),
//!    [`Distance`](service::Query::Distance),
//!    [`GirthBound`](service::Query::GirthBound),
//!    [`SubgraphFlag`](service::Query::SubgraphFlag)) queue against a
//!    registered graph and return a [`Ticket`](service::Ticket).
//! 3. **Batch** — [`Service::drain`](service::Service::drain) processes
//!    the queue as one batch: a seeded deterministic drain order,
//!    duplicate in-flight queries coalesced into a single computation,
//!    and the coalesced computations fanned over **warm pool instances**
//!    ([`CliquePool`](service::CliquePool)) on the shared executor.
//!    Instances are checked out, [`reset`](clique::Clique::reset) (warm
//!    threads/processes kept, accounting zeroed), and checked back in —
//!    never rebuilt; a reset clique replays a fresh one bit-for-bit.
//! 4. **Cache** — every computation is stored under graph fingerprint +
//!    computation kind + config-relevant knobs. A repeated query is
//!    served with **zero additional simulated rounds** and a
//!    bit-identical [`QueryOutcome`](service::QueryOutcome) (answer *and*
//!    the priming run's rounds/words); cached APSP tables memoize
//!    point-to-point distance queries into O(1) lookups. Executor and
//!    transport are deliberately absent from the key: the determinism
//!    contract makes backends interchangeable, so a result primed
//!    anywhere is valid everywhere.
//!
//! `CC_SERVICE` (`direct` or `batch[:instances]`) retargets every
//! default-configured service the way `CC_EXECUTOR` and `CC_TRANSPORT`
//! do theirs (all three ride one shared warn-once parser,
//! [`runtime::env_config`]); CI runs the suite with the batch scheduler
//! forced on. `BENCH_service.json` quantifies the point of the layer:
//! warm-pool, duplicate-heavy batches against cold one-shot calls at
//! duplicate ratios {0%, 50%, 90%}. The `query_service` example drives a
//! mixed workload end to end.
//!
//! ## Observability
//!
//! The determinism contract says *that* the stack is correct; the
//! [`telemetry`] layer ([`cc_telemetry`]) says *where wall-clock goes*.
//! Every layer emits structured [`Event`](telemetry::Event)s through one
//! process-global [`Telemetry`](telemetry::Telemetry) handle:
//!
//! * the [`Engine`](runtime::Engine) times each round barrier (node
//!   stepping vs delivery) and the [`Executor`](runtime::Executor) reports
//!   every dispatch-vs-inline decision at the `CC_EXEC_CUTOVER` boundary;
//! * every [`Transport`](transport::Transport) backend reports per-round
//!   link histograms — words per link, max-vs-mean skew, barrier wait, and
//!   (socket) coalesced frame-batch sizes — via an observer-only wrapper
//!   applied at build time;
//! * [`Clique::phase`](clique::Clique::phase) adds wall-clock to the
//!   rounds/words it already attributes
//!   ([`PhaseStats::wall_ns`](clique::PhaseStats)), and emits phase
//!   start/end events;
//! * the [`service`] publishes gauges per drained batch: cache
//!   entries/bytes, hit and coalescing ratios, warm-pool occupancy,
//!   per-query latency.
//!
//! The `CC_TRACE` variable selects the level for every default-configured
//! run, mirroring `CC_EXECUTOR`/`CC_TRANSPORT`: `off` (default),
//! `summary` (phases, config warnings, service gauges), `rounds`
//! (+ per-round engine/transport events), `full` (+ per-dispatch executor
//! decisions and frame batches); any level may append `:path` to write
//! JSONL ([`JsonlSink`](telemetry::JsonlSink)) instead of aggregating in
//! memory ([`MemorySink`](telemetry::MemorySink)). Malformed values —
//! `full:` (empty path), `off:path`, unknown names — are rejected whole
//! and warned once, like `parallel:banana`. Render a capture with
//! [`RoundTimeline`](telemetry::RoundTimeline): one line per engine/
//! transport round (`engine round 3: live=8 step=1.2ms barrier=0.3ms …`,
//! `socket epoch 3: links=56 words=448 max=8 mean=8.0 hist=[#]`) followed
//! by per-phase and per-backend totals — the `trace_run` example prints
//! one for a traced triangle count.
//!
//! ### Distributed capture
//!
//! On the multi-process backends the interesting work happens in worker
//! processes, so the capture is distributed. The orchestrator forwards its
//! resolved trace level in the setup handshake — an extra `cc-clique-node`
//! argv for the unix-socket backend, the `trace` field of
//! [`Frame::Assign`](transport::Frame::Assign) for TCP — so multi-host
//! workers inherit the level without relying on their own `CC_TRACE`
//! environment. Each traced worker installs a buffering
//! [`WireSink`](telemetry::WireSink) at startup and captures the event
//! stream it would locally: frame batches, resident rounds, kernel
//! decisions, config warnings. Snapshots travel back as
//! [`Frame::Telemetry`](transport::Frame::Telemetry) — serialized
//! event-JSON lines riding the existing streams just ahead of each
//! round-commit token (and once more at shutdown), so there are no extra
//! sockets and the barrier protocol is unchanged. The orchestrator merges
//! every snapshot into its [`MemorySink`](telemetry::MemorySink) wrapped in
//! [`Event::Worker`](telemetry::Event::Worker) for per-process
//! attribution: worker events land in per-worker aggregates only, never in
//! the global transport totals (which would double-count the fabric).
//!
//! The merged stream supports **per-round critical-path attribution**: the
//! orchestrator stamps a [`BarrierLane`](telemetry::Event::BarrierLane)
//! per (backend, epoch, worker) as commit tokens arrive, and
//! [`MemorySnapshot::critical_path`](telemetry::MemorySnapshot::critical_path)
//! reduces the lanes to, per epoch, which worker closed the barrier last,
//! its wall-clock against the round median (straggler skew), and
//! [`worker_busy_idle`](telemetry::MemorySnapshot::worker_busy_idle)
//! accumulates each worker's busy/idle split. Reading the
//! [`RoundTimeline`](telemetry::RoundTimeline) output: indented `w<id> …`
//! lines are worker-lane events nested under the orchestrator's rounds;
//! the `critical path` footer prints one line per epoch
//! (`socket epoch 3: closer=w1 max=0.8ms median=0.5ms skew=1.60
//! lanes[w0=0.5ms w1=0.8ms*]` — the starred lane closed the barrier);
//! the `workers` footer totals each process's events and busy/idle;
//! deduplicated config warnings list once with a `[xN processes]` count.
//!
//! Instrumentation is **observer-only**: `CC_TRACE=full` — including the
//! distributed capture and snapshot shipping above — leaves results,
//! rounds, words, and fingerprints bit-identical to `CC_TRACE=off` on all
//! six transport entries (pinned by the subprocess probe in
//! `tests/runtime_determinism.rs`), and at the default `off` every emit
//! site is a single branch on an already-resolved handle; untraced workers
//! ship zero extra bytes. The `cc-report` binary (`cargo run --release -p
//! cc-bench --bin cc-report`) collates the `BENCH_*.json` suite plus a
//! live capture per transport backend into a schema-versioned
//! `BENCH_telemetry.json` (v2: per-worker columns and the per-epoch
//! critical-path table join the v1 fields); `cc-report --replay
//! <capture.jsonl>` re-renders an existing JSONL capture as a
//! `RoundTimeline` offline.

pub use cc_algebra as algebra;
pub use cc_apsp as apsp;
pub use cc_baselines as baselines;
pub use cc_clique as clique;
pub use cc_congest as congest;
pub use cc_core as core;
pub use cc_graph as graph;
pub use cc_netsim as netsim;
pub use cc_runtime as runtime;
pub use cc_service as service;
pub use cc_subgraph as subgraph;
pub use cc_telemetry as telemetry;
pub use cc_transport as transport;
