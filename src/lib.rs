//! # congested-clique
//!
//! A reproduction of *"Algebraic Methods in the Congested Clique"*
//! (Censor-Hillel, Kaski, Korhonen, Lenzen, Paz, Suomela — PODC 2015) as a
//! Rust library suite. This facade crate re-exports the workspace crates:
//!
//! * [`runtime`] — the sharded, multi-threaded execution engine
//!   ([`NodeProgram`](runtime::NodeProgram) state machines, pluggable
//!   [`Sequential`/`Parallel`](runtime::ExecutorKind) executors).
//! * [`clique`] — the congested clique simulator (rounds, links, routing).
//! * [`algebra`] — semirings, rings, matrices, bilinear (Strassen) algorithms.
//! * [`graph`] — graph types, generators, and centralized reference oracles.
//! * [`core`] — distributed matrix multiplication and distance products
//!   (the paper's primary contribution).
//! * [`subgraph`] — triangle/4-cycle counting, k-cycle detection, girth.
//! * [`apsp`] — all-pairs shortest path algorithms and routing tables.
//! * [`baselines`] — prior-work baselines (Dolev et al., naive algorithms).
//! * [`congest`] — the CONGEST model substrate (the paper's §5 future-work
//!   direction) with classical comparison algorithms.
//!
//! ## Quickstart
//!
//! ```rust
//! use congested_clique::clique::Clique;
//! use congested_clique::graph::Graph;
//! use congested_clique::subgraph::count_triangles;
//!
//! // A 5-cycle plus a chord has exactly one triangle.
//! let mut g = Graph::undirected(5);
//! for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)] {
//!     g.add_edge(u, v);
//! }
//! let mut clique = Clique::new(5);
//! assert_eq!(count_triangles(&mut clique, &g), 1);
//! ```
//!
//! ## Runtime & execution model
//!
//! Simulated nodes are embarrassingly parallel within a round, and the
//! [`runtime`] crate exploits that: a [`Clique`](clique::Clique) runs on a
//! pluggable executor chosen through
//! [`CliqueConfig::executor`](clique::CliqueConfig) —
//! [`ExecutorKind::Sequential`](runtime::ExecutorKind) (the reference
//! semantics, and the default) or
//! [`ExecutorKind::Parallel`](runtime::ExecutorKind), which shards
//! node-local computation and message delivery over OS threads with
//! per-shard outboxes merged at a deterministic round barrier.
//!
//! The determinism contract is strict: results, executed round counts, and
//! communication-pattern fingerprints are **bit-identical** across
//! executors (property-tested in `tests/runtime_determinism.rs`), so round
//! accounting — the quantity the paper is about — never depends on how the
//! simulation is scheduled. Only wall-clock changes:
//!
//! ```rust
//! use congested_clique::algebra::{IntRing, Matrix};
//! use congested_clique::clique::Clique;
//! use congested_clique::core::{fast_mm, RowMatrix};
//!
//! let n = 8;
//! let a = Matrix::from_fn(n, n, |i, j| (i + j) as i64);
//! let mut sequential = Clique::new(n);
//! let mut parallel = Clique::parallel(n); // threads sized to the machine
//! let ra = RowMatrix::from_matrix(&a);
//! let p1 = fast_mm::multiply_auto(&mut sequential, &IntRing, &ra, &ra);
//! let p2 = fast_mm::multiply_auto(&mut parallel, &IntRing, &ra, &ra);
//! assert_eq!(p1.to_matrix(), p2.to_matrix());
//! assert_eq!(sequential.rounds(), parallel.rounds());
//! ```
//!
//! Algorithms opt in at two levels: coordinator-style code keeps the
//! closure primitives (`exchange_par`, `route_par` take `Fn + Sync`
//! generators evaluated on the backend, and node-local loops fan out via
//! [`Executor::map`](runtime::Executor::map)), while fully distributed
//! algorithms implement [`NodeProgram`](runtime::NodeProgram) — a per-node
//! state machine driven round-by-round by the
//! [`Engine`](runtime::Engine) (see
//! [`Clique::run_programs`](clique::Clique::run_programs) and the
//! `runtime_engine` example).

pub use cc_algebra as algebra;
pub use cc_apsp as apsp;
pub use cc_baselines as baselines;
pub use cc_clique as clique;
pub use cc_congest as congest;
pub use cc_core as core;
pub use cc_graph as graph;
pub use cc_runtime as runtime;
pub use cc_subgraph as subgraph;
