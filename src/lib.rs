//! # congested-clique
//!
//! A reproduction of *"Algebraic Methods in the Congested Clique"*
//! (Censor-Hillel, Kaski, Korhonen, Lenzen, Paz, Suomela — PODC 2015) as a
//! Rust library suite. This facade crate re-exports the workspace crates:
//!
//! * [`clique`] — the congested clique simulator (rounds, links, routing).
//! * [`algebra`] — semirings, rings, matrices, bilinear (Strassen) algorithms.
//! * [`graph`] — graph types, generators, and centralized reference oracles.
//! * [`core`] — distributed matrix multiplication and distance products
//!   (the paper's primary contribution).
//! * [`subgraph`] — triangle/4-cycle counting, k-cycle detection, girth.
//! * [`apsp`] — all-pairs shortest path algorithms and routing tables.
//! * [`baselines`] — prior-work baselines (Dolev et al., naive algorithms).
//! * [`congest`] — the CONGEST model substrate (the paper's §5 future-work
//!   direction) with classical comparison algorithms.
//!
//! ## Quickstart
//!
//! ```rust
//! use congested_clique::clique::Clique;
//! use congested_clique::graph::Graph;
//! use congested_clique::subgraph::count_triangles;
//!
//! // A 5-cycle plus a chord has exactly one triangle.
//! let mut g = Graph::undirected(5);
//! for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)] {
//!     g.add_edge(u, v);
//! }
//! let mut clique = Clique::new(5);
//! assert_eq!(count_triangles(&mut clique, &g), 1);
//! ```

pub use cc_algebra as algebra;
pub use cc_apsp as apsp;
pub use cc_baselines as baselines;
pub use cc_clique as clique;
pub use cc_congest as congest;
pub use cc_core as core;
pub use cc_graph as graph;
pub use cc_subgraph as subgraph;
