//! The algorithm-aware TCP worker: hosts program-resident shards for the
//! `tcp`/`tcp-peer` transports with every facade-level [`WireProgram`]
//! registered, so resident sessions can ship real algorithm state machines
//! (not just the transport-crate builtins that `cc-clique-node` knows).
//!
//! Usage: `cc-clique-host tcp://<host>:<port> <worker>`
//!
//! The orchestrator spawns this binary automatically when it sits next to
//! the test/bench executable; for multi-host runs, start the orchestrating
//! process with `CC_TCP_EXTERN=1 CC_TRANSPORT=tcp-peer:<w>:<host>:<port>`
//! and launch one `cc-clique-host` per worker index against the printed
//! address (see the facade's "Transport layer" docs).
//!
//! [`WireProgram`]: cc_runtime::WireProgram

use std::process::exit;

/// Every wire-encodable program the facade ships, on top of the runtime
/// builtins. New resident algorithms register here.
fn registry() -> cc_runtime::ResidentRegistry {
    let mut reg = cc_runtime::ResidentRegistry::with_builtins();
    reg.register::<cc_subgraph::TriangleProgram>();
    reg
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let usage = || -> ! {
        eprintln!("usage: cc-clique-host tcp://<host>:<port> <worker>");
        exit(2);
    };
    if args.len() != 3 {
        usage();
    }
    let Some(addr) = args[1].strip_prefix("tcp://") else {
        usage();
    };
    let Ok(worker) = args[2].parse::<u32>() else {
        eprintln!("cc-clique-host: bad worker index {:?}", args[2]);
        exit(2);
    };
    if let Err(e) = cc_transport::tcp_worker_main(addr, worker, registry()) {
        eprintln!("cc-clique-host worker {worker}: {e}");
        exit(1);
    }
}
