//! Centralized reference implementations ("oracles").
//!
//! These are straightforward, trusted, single-machine algorithms used to
//! validate the distributed implementations in tests and to report ground
//! truth in experiments. None of them participate in round accounting.

use crate::graph::Graph;
use cc_algebra::{Dist, Matrix, INFINITY};
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// Counts triangles: unordered `{u,v,w}` triangles for undirected graphs,
/// directed 3-cycles `u → v → w → u` for directed graphs.
#[must_use]
pub fn count_triangles(g: &Graph) -> u64 {
    let n = g.n();
    let mut count = 0u64;
    if g.is_directed() {
        for u in 0..n {
            for v in (u + 1)..n {
                if !g.has_edge(u, v) {
                    continue;
                }
                for w in (u + 1)..n {
                    if w != v && g.has_edge(v, w) && g.has_edge(w, u) {
                        count += 1;
                    }
                }
            }
        }
    } else {
        for u in 0..n {
            for v in (u + 1)..n {
                if !g.has_edge(u, v) {
                    continue;
                }
                for w in (v + 1)..n {
                    if g.has_edge(u, w) && g.has_edge(v, w) {
                        count += 1;
                    }
                }
            }
        }
    }
    count
}

/// Counts 4-cycles: unordered `C₄` subgraphs for undirected graphs (via the
/// co-degree identity `#C₄ = ½ Σ_{u<v} C(codeg(u,v), 2)`), directed
/// 4-cycles for directed graphs (by enumeration anchored at the minimum
/// node).
#[must_use]
pub fn count_4cycles(g: &Graph) -> u64 {
    let n = g.n();
    if g.is_directed() {
        let mut count = 0u64;
        for a in 0..n {
            for b in 0..n {
                if b == a || !g.has_edge(a, b) || b < a {
                    continue;
                }
                for c in 0..n {
                    if c == a || c == b || !g.has_edge(b, c) || c < a {
                        continue;
                    }
                    for d in 0..n {
                        if d == a || d == b || d == c || d < a {
                            continue;
                        }
                        if g.has_edge(c, d) && g.has_edge(d, a) {
                            count += 1;
                        }
                    }
                }
            }
        }
        count
    } else {
        let mut twice = 0u64;
        for u in 0..n {
            for v in (u + 1)..n {
                let codeg = g
                    .neighbors(u)
                    .filter(|&w| w != v && g.has_edge(v, w) && w != u)
                    .count() as u64;
                twice += codeg * codeg.saturating_sub(1) / 2;
            }
        }
        twice / 2
    }
}

/// Counts 5-cycles in an undirected graph by anchored path enumeration.
///
/// # Panics
///
/// Panics on directed graphs.
#[must_use]
pub fn count_5cycles(g: &Graph) -> u64 {
    assert!(
        !g.is_directed(),
        "count_5cycles expects an undirected graph"
    );
    let mut twice = 0u64;
    let n = g.n();
    for a in 0..n {
        // Paths a-b-c-d-e with all nodes distinct, > a except a, and edge e-a.
        for b in g.neighbors(a).filter(|&b| b > a) {
            for c in g.neighbors(b).filter(|&c| c > a && c != b) {
                if c == a {
                    continue;
                }
                for d in g.neighbors(c).filter(|&d| d > a && d != b && d != c) {
                    for e in g
                        .neighbors(d)
                        .filter(|&e| e > a && e != b && e != c && e != d)
                    {
                        if g.has_edge(e, a) {
                            twice += 1;
                        }
                    }
                }
            }
        }
    }
    twice / 2
}

/// Whether the graph contains a cycle of length **exactly** `k`
/// (simple cycle; directed cycles in directed graphs).
///
/// # Panics
///
/// Panics if `k < 2`, or `k < 3` for undirected graphs.
#[must_use]
pub fn has_k_cycle(g: &Graph, k: usize) -> bool {
    if g.is_directed() {
        assert!(k >= 2, "directed cycles have length at least 2");
    } else {
        assert!(k >= 3, "undirected cycles have length at least 3");
    }
    let n = g.n();
    let mut on_path = vec![false; n];
    // DFS for a simple path start..x of length k-1 with all nodes > start
    // (start is the cycle minimum), closed by an edge x -> start.
    fn dfs(
        g: &Graph,
        start: usize,
        x: usize,
        depth: usize,
        k: usize,
        on_path: &mut [bool],
    ) -> bool {
        if depth == k - 1 {
            return g.has_edge(x, start);
        }
        for y in g.neighbors(x) {
            if y > start && !on_path[y] {
                on_path[y] = true;
                if dfs(g, start, y, depth + 1, k, on_path) {
                    on_path[y] = false;
                    return true;
                }
                on_path[y] = false;
            }
        }
        false
    }
    for start in 0..n {
        on_path[start] = true;
        if dfs(g, start, start, 0, k, &mut on_path) {
            return true;
        }
        on_path[start] = false;
    }
    false
}

/// The girth of an undirected graph (length of its shortest cycle), or
/// `None` for forests.
///
/// Uses the classic n-fold BFS: any non-tree edge seen from root `r` yields
/// a closed walk of length `d[x] + d[y] + 1 ≥ girth`, with equality achieved
/// for roots on a shortest cycle.
///
/// # Panics
///
/// Panics on directed graphs (use [`directed_girth`]).
#[must_use]
pub fn girth(g: &Graph) -> Option<usize> {
    assert!(
        !g.is_directed(),
        "girth expects an undirected graph; use directed_girth"
    );
    let n = g.n();
    let mut best: Option<usize> = None;
    let mut dist = vec![usize::MAX; n];
    let mut parent = vec![usize::MAX; n];
    for root in 0..n {
        dist.fill(usize::MAX);
        parent.fill(usize::MAX);
        dist[root] = 0;
        let mut q = VecDeque::from([root]);
        while let Some(x) = q.pop_front() {
            for y in g.neighbors(x) {
                if dist[y] == usize::MAX {
                    dist[y] = dist[x] + 1;
                    parent[y] = x;
                    q.push_back(y);
                } else if parent[x] != y {
                    let cand = dist[x] + dist[y] + 1;
                    if best.is_none_or(|b| cand < b) {
                        best = Some(cand);
                    }
                }
            }
        }
    }
    best
}

/// The girth of a directed graph (length of its shortest directed cycle,
/// which may be 2), or `None` if the graph is acyclic.
///
/// # Panics
///
/// Panics on undirected graphs (use [`girth`]).
#[must_use]
pub fn directed_girth(g: &Graph) -> Option<usize> {
    assert!(g.is_directed(), "directed_girth expects a directed graph");
    let n = g.n();
    let mut best: Option<usize> = None;
    for root in 0..n {
        // BFS from root; the shortest cycle through root is d(root→u) + 1
        // over in-edges (u, root).
        let d = bfs_dist(g, root);
        for u in g.in_neighbors(root) {
            if let Some(du) = d[u] {
                let cand = du + 1;
                if best.is_none_or(|b| cand < b) {
                    best = Some(cand);
                }
            }
        }
    }
    best
}

/// Unweighted BFS distances from `src` (hop counts; respects edge
/// directions in directed graphs). `None` marks unreachable nodes.
#[must_use]
pub fn bfs_dist(g: &Graph, src: usize) -> Vec<Option<usize>> {
    let n = g.n();
    let mut dist = vec![None; n];
    dist[src] = Some(0);
    let mut q = VecDeque::from([src]);
    while let Some(x) = q.pop_front() {
        let dx = dist[x].expect("queued nodes have distances");
        for y in g.neighbors(x) {
            if dist[y].is_none() {
                dist[y] = Some(dx + 1);
                q.push_back(y);
            }
        }
    }
    dist
}

/// Exact all-pairs shortest path distances.
///
/// Uses Dijkstra from every source for non-negative weights and
/// Bellman–Ford otherwise.
///
/// # Panics
///
/// Panics if the graph contains a negative cycle.
#[must_use]
pub fn apsp(g: &Graph) -> Matrix<Dist> {
    let n = g.n();
    let negative = g.edges().iter().any(|&(_, _, w)| w < 0);
    let mut out = Matrix::filled(n, n, INFINITY);
    for src in 0..n {
        let row = if negative {
            bellman_ford(g, src)
        } else {
            dijkstra(g, src)
        };
        for (v, d) in row.into_iter().enumerate() {
            out[(src, v)] = d;
        }
    }
    out
}

/// Single-source Dijkstra (non-negative weights).
///
/// # Panics
///
/// Panics if the graph has a negative edge weight.
#[must_use]
pub fn dijkstra(g: &Graph, src: usize) -> Vec<Dist> {
    let n = g.n();
    let mut dist = vec![INFINITY; n];
    dist[src] = Dist::zero();
    let mut heap: BinaryHeap<(std::cmp::Reverse<i64>, usize)> = BinaryHeap::new();
    heap.push((std::cmp::Reverse(0), src));
    while let Some((std::cmp::Reverse(d), x)) = heap.pop() {
        if Dist::finite(d) > dist[x] {
            continue;
        }
        for y in g.neighbors(x) {
            let w = g.weight(x, y).expect("neighbor has weight");
            assert!(w >= 0, "dijkstra requires non-negative weights");
            let nd = Dist::finite(d + w);
            if nd < dist[y] {
                dist[y] = nd;
                heap.push((std::cmp::Reverse(d + w), y));
            }
        }
    }
    dist
}

/// Single-source Bellman–Ford (general integer weights).
///
/// # Panics
///
/// Panics if a negative cycle is reachable from `src`.
#[must_use]
pub fn bellman_ford(g: &Graph, src: usize) -> Vec<Dist> {
    let n = g.n();
    let mut dist = vec![INFINITY; n];
    dist[src] = Dist::zero();
    let arcs: Vec<(usize, usize, i64)> = if g.is_directed() {
        g.edges()
    } else {
        g.edges()
            .iter()
            .flat_map(|&(u, v, w)| [(u, v, w), (v, u, w)])
            .collect()
    };
    for round in 0..n {
        let mut changed = false;
        for &(u, v, w) in &arcs {
            if dist[u].is_finite() {
                let cand = dist[u] + Dist::finite(w);
                if cand < dist[v] {
                    assert!(round + 1 < n, "negative cycle reachable from {src}");
                    dist[v] = cand;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn triangle_counts_on_known_graphs() {
        assert_eq!(count_triangles(&generators::complete(4)), 4);
        assert_eq!(count_triangles(&generators::complete(5)), 10);
        assert_eq!(count_triangles(&generators::cycle(5)), 0);
        assert_eq!(count_triangles(&generators::petersen()), 0);
        assert_eq!(count_triangles(&generators::complete_bipartite(3, 3)), 0);
    }

    #[test]
    fn directed_triangles() {
        let g = generators::directed_cycle(3);
        assert_eq!(count_triangles(&g), 1);
        // Both orientations of a triangle: 2 directed triangles.
        let mut h = Graph::directed(3);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (1, 0), (2, 1), (0, 2)] {
            h.add_edge(u, v);
        }
        assert_eq!(count_triangles(&h), 2);
    }

    #[test]
    fn four_cycle_counts_on_known_graphs() {
        assert_eq!(count_4cycles(&generators::cycle(4)), 1);
        assert_eq!(count_4cycles(&generators::complete(4)), 3);
        assert_eq!(count_4cycles(&generators::complete_bipartite(2, 2)), 1);
        assert_eq!(count_4cycles(&generators::complete_bipartite(3, 3)), 9);
        assert_eq!(count_4cycles(&generators::petersen()), 0);
        assert_eq!(count_4cycles(&generators::grid(2, 3)), 2);
    }

    #[test]
    fn directed_four_cycles() {
        assert_eq!(count_4cycles(&generators::directed_cycle(4)), 1);
        let mut g = Graph::directed(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)] {
            g.add_edge(u, v);
        }
        assert_eq!(count_4cycles(&g), 1);
    }

    #[test]
    fn five_cycle_counts() {
        assert_eq!(count_5cycles(&generators::cycle(5)), 1);
        assert_eq!(count_5cycles(&generators::petersen()), 12);
        assert_eq!(count_5cycles(&generators::complete(5)), 12);
        assert_eq!(count_5cycles(&generators::complete_bipartite(3, 3)), 0);
    }

    #[test]
    fn k_cycle_detection() {
        let g = generators::cycle(6);
        assert!(has_k_cycle(&g, 6));
        assert!(!has_k_cycle(&g, 3));
        assert!(!has_k_cycle(&g, 5));
        let p = generators::petersen();
        assert!(has_k_cycle(&p, 5));
        assert!(has_k_cycle(&p, 6));
        assert!(!has_k_cycle(&p, 3));
        assert!(!has_k_cycle(&p, 4));
    }

    #[test]
    fn girth_values() {
        assert_eq!(girth(&generators::cycle(7)), Some(7));
        assert_eq!(girth(&generators::petersen()), Some(5));
        assert_eq!(girth(&generators::complete(4)), Some(3));
        assert_eq!(girth(&generators::grid(3, 3)), Some(4));
        assert_eq!(girth(&generators::path(6)), None);
    }

    #[test]
    fn directed_girth_values() {
        assert_eq!(directed_girth(&generators::directed_cycle(5)), Some(5));
        let mut g = Graph::directed(3);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        assert_eq!(directed_girth(&g), Some(2));
        let mut dag = Graph::directed(3);
        dag.add_edge(0, 1);
        dag.add_edge(1, 2);
        assert_eq!(directed_girth(&dag), None);
    }

    #[test]
    fn apsp_on_weighted_path() {
        let mut g = Graph::undirected(4);
        g.add_weighted_edge(0, 1, 2);
        g.add_weighted_edge(1, 2, 3);
        g.add_weighted_edge(2, 3, 4);
        let d = apsp(&g);
        assert_eq!(d[(0, 3)], Dist::finite(9));
        assert_eq!(d[(3, 0)], Dist::finite(9));
        assert_eq!(d[(1, 1)], Dist::zero());
    }

    #[test]
    fn bellman_ford_handles_negative_edges() {
        let mut g = Graph::directed(3);
        g.add_weighted_edge(0, 1, 5);
        g.add_weighted_edge(1, 2, -3);
        g.add_weighted_edge(0, 2, 4);
        let d = bellman_ford(&g, 0);
        assert_eq!(d[2], Dist::finite(2));
    }

    #[test]
    #[should_panic(expected = "negative cycle")]
    fn bellman_ford_rejects_negative_cycles() {
        let mut g = Graph::directed(2);
        g.add_weighted_edge(0, 1, 1);
        g.add_weighted_edge(1, 0, -2);
        let _ = bellman_ford(&g, 0);
    }

    #[test]
    fn dijkstra_matches_bellman_ford_on_nonnegative() {
        let g = generators::weighted_gnp(25, 0.2, 10, true, 17);
        for src in 0..5 {
            assert_eq!(dijkstra(&g, src), bellman_ford(&g, src));
        }
    }

    #[test]
    fn bfs_respects_direction() {
        let g = generators::directed_cycle(4);
        let d = bfs_dist(&g, 0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }
}
