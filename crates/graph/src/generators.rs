//! Deterministic, seedable workload generators.
//!
//! Every random generator takes an explicit seed and uses a fixed RNG
//! (`StdRng`), so experiments and tests are reproducible bit-for-bit.

use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Erdős–Rényi `G(n, p)`: each undirected pair is an edge independently with
/// probability `p`.
#[must_use]
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::undirected(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Directed `G(n, p)`: each ordered pair is an edge independently with
/// probability `p`.
#[must_use]
pub fn gnp_directed(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::directed(n);
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Random weighted graph: `G(n, p)` topology with integer weights drawn
/// uniformly from `1..=max_weight`. Directed or undirected.
#[must_use]
pub fn weighted_gnp(n: usize, p: f64, max_weight: i64, directed: bool, seed: u64) -> Graph {
    assert!(max_weight >= 1, "max_weight must be at least 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = if directed {
        Graph::directed(n)
    } else {
        Graph::undirected(n)
    };
    for u in 0..n {
        let vs: Box<dyn Iterator<Item = usize>> = if directed {
            Box::new(0..n)
        } else {
            Box::new((u + 1)..n)
        };
        for v in vs {
            if u != v && rng.gen_bool(p) {
                g.add_weighted_edge(u, v, rng.gen_range(1..=max_weight));
            }
        }
    }
    g
}

/// The cycle `C_n` (undirected); has girth exactly `n`.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes");
    let mut g = Graph::undirected(n);
    for v in 0..n {
        g.add_edge(v, (v + 1) % n);
    }
    g
}

/// The directed cycle on `n` nodes (`v → v+1 → … → v`).
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn directed_cycle(n: usize) -> Graph {
    assert!(n >= 2, "a directed cycle needs at least 2 nodes");
    let mut g = Graph::directed(n);
    for v in 0..n {
        g.add_edge(v, (v + 1) % n);
    }
    g
}

/// The path `P_n` on `n` nodes (acyclic).
#[must_use]
pub fn path(n: usize) -> Graph {
    let mut g = Graph::undirected(n);
    for v in 0..n.saturating_sub(1) {
        g.add_edge(v, v + 1);
    }
    g
}

/// The complete graph `K_n`.
#[must_use]
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::undirected(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v);
        }
    }
    g
}

/// The complete bipartite graph `K_{a,b}` (triangle-free; girth 4 when
/// `a, b ≥ 2`).
#[must_use]
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::undirected(a + b);
    for u in 0..a {
        for v in 0..b {
            g.add_edge(u, a + v);
        }
    }
    g
}

/// The `rows × cols` grid graph (girth 4 when both dimensions are ≥ 2).
#[must_use]
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::undirected(rows * cols);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    g
}

/// The Petersen graph: 10 nodes, 15 edges, girth 5, twelve 5-cycles, no
/// triangles or 4-cycles — a classic witness for cycle-detection edge cases.
#[must_use]
pub fn petersen() -> Graph {
    let mut g = Graph::undirected(10);
    for v in 0..5 {
        g.add_edge(v, (v + 1) % 5); // outer pentagon
        g.add_edge(5 + v, 5 + (v + 2) % 5); // inner pentagram
        g.add_edge(v, 5 + v); // spokes
    }
    g
}

/// Preferential-attachment ("social network") graph: nodes arrive one at a
/// time and attach to `attach` existing nodes sampled proportionally to
/// degree. Produces the heavy-tailed degree distributions that motivate the
/// paper's subgraph-analytics applications.
///
/// # Panics
///
/// Panics if `attach == 0` or `n <= attach`.
#[must_use]
pub fn preferential_attachment(n: usize, attach: usize, seed: u64) -> Graph {
    assert!(attach >= 1, "attach must be positive");
    assert!(n > attach, "need more nodes than attachments");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::undirected(n);
    // Start from a small clique on attach+1 nodes.
    for u in 0..=attach {
        for v in (u + 1)..=attach {
            g.add_edge(u, v);
        }
    }
    // Degree-proportional sampling via a repeated-endpoints urn.
    let mut urn: Vec<usize> = Vec::new();
    for u in 0..=attach {
        for _ in 0..g.degree(u) {
            urn.push(u);
        }
    }
    for v in (attach + 1)..n {
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < attach {
            let pick = urn[rng.gen_range(0..urn.len())];
            chosen.insert(pick);
        }
        for &u in &chosen {
            g.add_edge(v, u);
            urn.push(u);
            urn.push(v);
        }
    }
    g
}

/// A graph guaranteed to contain a `k`-cycle: a random `G(n, p)` plus a
/// planted cycle through `k` random nodes. (Shorter cycles may also exist;
/// use [`cycle`] for exact-girth workloads.)
///
/// # Panics
///
/// Panics if `k < 3` or `k > n`.
#[must_use]
pub fn planted_cycle(n: usize, k: usize, p: f64, seed: u64) -> Graph {
    assert!((3..=n).contains(&k), "need 3 <= k <= n");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = gnp(n, p, seed.wrapping_add(1));
    // Choose k distinct nodes.
    let mut nodes: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        nodes.swap(i, j);
    }
    for i in 0..k {
        let (u, v) = (nodes[i], nodes[(i + 1) % k]);
        if !g.has_edge(u, v) {
            g.add_edge(u, v);
        }
    }
    g
}

/// The `d`-dimensional hypercube `Q_d` (`2^d` nodes, girth 4 for `d ≥ 2`,
/// bipartite, vertex-transitive) — a structured workload for the distance
/// algorithms.
#[must_use]
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut g = Graph::undirected(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if v < u {
                g.add_edge(v, u);
            }
        }
    }
    g
}

/// A "caveman" community graph: `communities` cliques of size `size`,
/// neighbouring cliques joined by a single bridge edge — high clustering
/// with long inter-community distances, a classic social-network shape.
///
/// # Panics
///
/// Panics if `communities == 0` or `size < 2`.
#[must_use]
pub fn caveman(communities: usize, size: usize) -> Graph {
    assert!(
        communities >= 1 && size >= 2,
        "need communities >= 1 and size >= 2"
    );
    let mut g = Graph::undirected(communities * size);
    for c in 0..communities {
        let base = c * size;
        for u in 0..size {
            for v in (u + 1)..size {
                g.add_edge(base + u, base + v);
            }
        }
        if c + 1 < communities {
            g.add_edge(base + size - 1, base + size);
        }
    }
    g
}

/// A random `d`-regular-ish graph via the configuration model with simple
/// rejection of loops and duplicates; every node ends with degree at most
/// `d` and almost all nodes with exactly `d`.
///
/// # Panics
///
/// Panics if `d ≥ n`.
#[must_use]
pub fn near_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!(d < n, "degree must be below n");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::undirected(n);
    // Configuration model with rejection of loops/duplicates, plus repair
    // passes: stubs of still-unsaturated nodes are re-shuffled and re-paired
    // until no pass makes progress, so almost every node reaches degree `d`.
    loop {
        let mut stubs: Vec<usize> = (0..n)
            .flat_map(|v| std::iter::repeat_n(v, d - g.degree(v)))
            .collect();
        if stubs.len() < 2 {
            break;
        }
        // Fisher-Yates shuffle, then pair consecutive stubs.
        for i in (1..stubs.len()).rev() {
            let j = rng.gen_range(0..=i);
            stubs.swap(i, j);
        }
        let mut progressed = false;
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0], pair[1]);
            if u != v && !g.has_edge(u, v) && g.degree(u) < d && g.degree(v) < d {
                g.add_edge(u, v);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    g
}

/// Disjoint union of two graphs (nodes of `b` are shifted by `a.n()`).
///
/// # Panics
///
/// Panics if the graphs do not have the same directedness.
#[must_use]
pub fn disjoint_union(a: &Graph, b: &Graph) -> Graph {
    assert_eq!(a.is_directed(), b.is_directed(), "mixed directedness");
    let mut g = if a.is_directed() {
        Graph::directed(a.n() + b.n())
    } else {
        Graph::undirected(a.n() + b.n())
    };
    for (u, v, w) in a.edges() {
        g.add_weighted_edge(u, v, w);
    }
    for (u, v, w) in b.edges() {
        g.add_weighted_edge(a.n() + u, a.n() + v, w);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_is_deterministic_per_seed() {
        let a = gnp(20, 0.3, 7);
        let b = gnp(20, 0.3, 7);
        let c = gnp(20, 0.3, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).m(), 0);
        assert_eq!(gnp(10, 1.0, 1).m(), 45);
    }

    #[test]
    fn structured_graphs_have_expected_sizes() {
        assert_eq!(cycle(5).m(), 5);
        assert_eq!(path(5).m(), 4);
        assert_eq!(complete(6).m(), 15);
        assert_eq!(complete_bipartite(3, 4).m(), 12);
        assert_eq!(grid(3, 4).m(), 17);
        let p = petersen();
        assert_eq!((p.n(), p.m()), (10, 15));
        assert!(p.edges().iter().all(|&(u, v, _)| u != v));
        for v in 0..10 {
            assert_eq!(p.degree(v), 3);
        }
    }

    #[test]
    fn directed_cycle_structure() {
        let g = directed_cycle(4);
        assert!(g.has_edge(3, 0));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn weighted_gnp_respects_bounds() {
        let g = weighted_gnp(15, 0.5, 9, true, 3);
        assert!(g.is_directed());
        for (_, _, w) in g.edges() {
            assert!((1..=9).contains(&w));
        }
    }

    #[test]
    fn preferential_attachment_is_connected_and_heavy_tailed() {
        let g = preferential_attachment(60, 2, 11);
        assert!(g.m() >= 2 * 57);
        let max_deg = (0..60).map(|v| g.degree(v)).max().unwrap();
        assert!(max_deg >= 6, "expected a hub, max degree {max_deg}");
    }

    #[test]
    fn planted_cycle_contains_requested_length() {
        let g = planted_cycle(30, 7, 0.02, 5);
        assert!(crate::oracle::has_k_cycle(&g, 7));
    }

    #[test]
    fn hypercube_structure() {
        let q3 = hypercube(3);
        assert_eq!((q3.n(), q3.m()), (8, 12));
        for v in 0..8 {
            assert_eq!(q3.degree(v), 3);
        }
        assert_eq!(crate::oracle::girth(&q3), Some(4));
        // Antipodal distance is d.
        let d = crate::oracle::bfs_dist(&q3, 0);
        assert_eq!(d[7], Some(3));
    }

    #[test]
    fn caveman_structure() {
        let g = caveman(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 6 + 2);
        assert_eq!(crate::oracle::girth(&g), Some(3));
        // Bridges keep it connected.
        assert!(crate::oracle::bfs_dist(&g, 0).iter().all(Option::is_some));
    }

    #[test]
    fn near_regular_bounds_degrees() {
        let g = near_regular(30, 4, 9);
        let degs: Vec<usize> = (0..30).map(|v| g.degree(v)).collect();
        assert!(degs.iter().all(|&d| d <= 4));
        let full = degs.iter().filter(|&&d| d == 4).count();
        assert!(
            full >= 20,
            "most nodes should reach the target degree, got {full}"
        );
    }

    #[test]
    fn disjoint_union_offsets() {
        let g = disjoint_union(&cycle(3), &cycle(4));
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 7);
        assert!(g.has_edge(3, 4));
        assert!(!g.has_edge(2, 3));
    }
}
