//! The [`Graph`] type: directed or undirected, optionally weighted.

use cc_algebra::{Dist, Matrix, INFINITY};
use std::collections::BTreeMap;

/// A simple graph (no self-loops, no parallel edges) with integer edge
/// weights, directed or undirected.
///
/// Node identifiers are `0..n`. For undirected graphs an edge `{u, v}` is
/// stored in both adjacency maps; for directed graphs `adj` holds out-edges
/// and `radj` in-edges. Adjacency uses ordered maps so that all iteration is
/// deterministic.
///
/// # Examples
///
/// ```rust
/// use cc_graph::Graph;
/// let mut g = Graph::undirected(4);
/// g.add_edge(0, 1);
/// g.add_weighted_edge(1, 2, 5);
/// assert_eq!(g.m(), 2);
/// assert_eq!(g.weight(1, 0), Some(1));
/// assert_eq!(g.weight(2, 1), Some(5));
/// assert_eq!(g.weight(0, 3), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    directed: bool,
    adj: Vec<BTreeMap<usize, i64>>,
    radj: Vec<BTreeMap<usize, i64>>,
    m: usize,
}

impl Graph {
    /// An undirected graph on `n` isolated nodes.
    #[must_use]
    pub fn undirected(n: usize) -> Self {
        Self {
            n,
            directed: false,
            adj: vec![BTreeMap::new(); n],
            radj: vec![BTreeMap::new(); n],
            m: 0,
        }
    }

    /// A directed graph on `n` isolated nodes.
    #[must_use]
    pub fn directed(n: usize) -> Self {
        Self {
            n,
            directed: true,
            adj: vec![BTreeMap::new(); n],
            radj: vec![BTreeMap::new(); n],
            m: 0,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges (each undirected edge counted once).
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// `true` for directed graphs.
    #[must_use]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Adds an edge of weight 1. For undirected graphs the edge is symmetric.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, out-of-range endpoints, or duplicate edges.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        self.add_weighted_edge(u, v, 1);
    }

    /// Adds an edge with an explicit weight.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, out-of-range endpoints, or duplicate edges.
    pub fn add_weighted_edge(&mut self, u: usize, v: usize, w: i64) {
        assert!(
            u < self.n && v < self.n,
            "edge ({u},{v}) out of range (n={})",
            self.n
        );
        assert_ne!(u, v, "self-loops are not supported");
        let fresh = self.adj[u].insert(v, w).is_none();
        assert!(fresh, "duplicate edge ({u},{v})");
        self.radj[v].insert(u, w);
        if !self.directed {
            self.adj[v].insert(u, w);
            self.radj[u].insert(v, w);
        }
        self.m += 1;
    }

    /// Whether the edge `u → v` (or `{u, v}` if undirected) exists.
    #[must_use]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].contains_key(&v)
    }

    /// The weight of edge `u → v`, if present.
    #[must_use]
    pub fn weight(&self, u: usize, v: usize) -> Option<i64> {
        self.adj[u].get(&v).copied()
    }

    /// Out-neighbours of `v` (all neighbours for undirected graphs), in
    /// increasing order.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj[v].keys().copied()
    }

    /// In-neighbours of `v` (same as [`Graph::neighbors`] for undirected
    /// graphs), in increasing order.
    pub fn in_neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.radj[v].keys().copied()
    }

    /// Out-degree of `v` (degree for undirected graphs).
    #[must_use]
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Number of nodes `u` with edges in **both** directions between `u` and
    /// `v`; the `δ(v)` of the paper's directed 4-cycle counting formula.
    /// Equals the degree for undirected graphs.
    #[must_use]
    pub fn mutual_degree(&self, v: usize) -> usize {
        self.adj[v]
            .keys()
            .filter(|&&u| self.radj[v].contains_key(&u))
            .count()
    }

    /// Edge list; for undirected graphs each edge appears once with
    /// `u < v`.
    #[must_use]
    pub fn edges(&self) -> Vec<(usize, usize, i64)> {
        let mut out = Vec::with_capacity(self.m);
        for u in 0..self.n {
            for (&v, &w) in &self.adj[u] {
                if self.directed || u < v {
                    out.push((u, v, w));
                }
            }
        }
        out
    }

    /// 0/1 adjacency matrix over the integers (undirected edges oriented
    /// both ways, as in the paper's Section 3.1).
    #[must_use]
    pub fn adjacency_matrix(&self) -> Matrix<i64> {
        Matrix::from_fn(self.n, self.n, |u, v| i64::from(self.has_edge(u, v)))
    }

    /// Boolean adjacency matrix.
    #[must_use]
    pub fn bool_adjacency(&self) -> Matrix<bool> {
        Matrix::from_fn(self.n, self.n, |u, v| self.has_edge(u, v))
    }

    /// The weight matrix `W` of Section 3.3: `0` on the diagonal, the edge
    /// weight where an edge exists, and `∞` elsewhere.
    #[must_use]
    pub fn weight_matrix(&self) -> Matrix<Dist> {
        Matrix::from_fn(self.n, self.n, |u, v| {
            if u == v {
                Dist::zero()
            } else {
                match self.weight(u, v) {
                    Some(w) => Dist::finite(w),
                    None => INFINITY,
                }
            }
        })
    }

    /// Largest edge weight, or `None` for an edgeless graph.
    #[must_use]
    pub fn max_weight(&self) -> Option<i64> {
        self.edges().iter().map(|&(_, _, w)| w).max()
    }

    /// A deterministic 64-bit content fingerprint: two graphs have equal
    /// fingerprints exactly when they have the same node count, direction,
    /// and weighted edge set (up to the astronomically unlikely hash
    /// collision). Unlike `Hash`-derived values this is stable across
    /// processes and runs — no per-process `RandomState` — so it can key
    /// registries and result caches that promise bit-identical replay
    /// (the `cc-service` graph registry is the primary consumer).
    ///
    /// The hash is FNV-1a over `(n, directed, m)` and the canonical edge
    /// list (each undirected edge once with `u < v`, in sorted order).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(self.n as u64);
        mix(u64::from(self.directed));
        mix(self.m as u64);
        for u in 0..self.n {
            for (&v, &w) in &self.adj[u] {
                if self.directed || u < v {
                    mix(u as u64);
                    mix(v as u64);
                    mix(w as u64);
                }
            }
        }
        h
    }

    /// Returns a copy with `extra` additional isolated nodes appended —
    /// the padding used to reach clique sizes with convenient arithmetic
    /// structure. Isolated nodes change no cycle counts and no finite
    /// distances.
    #[must_use]
    pub fn padded(&self, extra: usize) -> Self {
        let mut g = if self.directed {
            Graph::directed(self.n + extra)
        } else {
            Graph::undirected(self.n + extra)
        };
        for (u, v, w) in self.edges() {
            g.add_weighted_edge(u, v, w);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undirected_edges_are_symmetric() {
        let mut g = Graph::undirected(3);
        g.add_edge(0, 2);
        assert!(g.has_edge(2, 0));
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 1);
        assert_eq!(g.m(), 1);
        assert_eq!(g.edges(), vec![(0, 2, 1)]);
    }

    #[test]
    fn directed_edges_are_one_way() {
        let mut g = Graph::directed(3);
        g.add_edge(0, 2);
        assert!(!g.has_edge(2, 0));
        assert_eq!(g.in_neighbors(2).collect::<Vec<_>>(), vec![0]);
        assert_eq!(g.neighbors(2).count(), 0);
    }

    #[test]
    fn mutual_degree_counts_bidirectional_pairs() {
        let mut g = Graph::directed(4);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(0, 2);
        assert_eq!(g.mutual_degree(0), 1);
        assert_eq!(g.mutual_degree(2), 0);
    }

    #[test]
    fn weight_matrix_layout() {
        let mut g = Graph::undirected(3);
        g.add_weighted_edge(0, 1, 4);
        let w = g.weight_matrix();
        assert_eq!(w[(0, 0)], Dist::zero());
        assert_eq!(w[(0, 1)], Dist::finite(4));
        assert_eq!(w[(1, 0)], Dist::finite(4));
        assert_eq!(w[(0, 2)], INFINITY);
    }

    #[test]
    fn padding_preserves_structure() {
        let mut g = Graph::undirected(3);
        g.add_edge(0, 1);
        let p = g.padded(2);
        assert_eq!(p.n(), 5);
        assert_eq!(p.m(), 1);
        assert_eq!(p.degree(4), 0);
    }

    #[test]
    fn fingerprint_tracks_content_not_construction_order() {
        let mut a = Graph::undirected(4);
        a.add_edge(0, 1);
        a.add_weighted_edge(2, 3, 5);
        let mut b = Graph::undirected(4);
        b.add_weighted_edge(3, 2, 5); // same edge set, different call order
        b.add_edge(1, 0);
        assert_eq!(a.fingerprint(), b.fingerprint());

        // Every content axis moves the fingerprint: node count, direction,
        // edge set, weights.
        assert_ne!(a.fingerprint(), a.padded(1).fingerprint());
        let mut directed = Graph::directed(4);
        directed.add_edge(0, 1);
        directed.add_weighted_edge(2, 3, 5);
        assert_ne!(a.fingerprint(), directed.fingerprint());
        let mut heavier = Graph::undirected(4);
        heavier.add_edge(0, 1);
        heavier.add_weighted_edge(2, 3, 6);
        assert_ne!(a.fingerprint(), heavier.fingerprint());
        let mut extra = a.clone();
        extra.add_edge(0, 2);
        assert_ne!(a.fingerprint(), extra.fingerprint());
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut g = Graph::undirected(2);
        g.add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate() {
        let mut g = Graph::undirected(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
    }
}
