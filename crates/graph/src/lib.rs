//! # cc-graph: graphs, generators, and reference oracles
//!
//! Input graphs for the congested clique algorithms, plus:
//!
//! * [`generators`] — deterministic, seedable workload generators
//!   (Erdős–Rényi, cycles, grids, Petersen, preferential attachment,
//!   weighted digraphs, planted cycles);
//! * [`oracle`] — *centralized* reference implementations (brute-force
//!   cycle counting, BFS girth, Dijkstra/Bellman–Ford APSP) used as trusted
//!   baselines in tests and experiments. These run on one machine and play
//!   no role in the distributed algorithms themselves.
//!
//! ## Example
//!
//! ```rust
//! use cc_graph::{generators, oracle};
//!
//! let g = generators::petersen();
//! assert_eq!(g.n(), 10);
//! assert_eq!(oracle::girth(&g), Some(5));
//! assert_eq!(oracle::count_triangles(&g), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
mod graph;
pub mod oracle;

pub use crate::graph::Graph;
