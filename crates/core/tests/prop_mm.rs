//! Property tests for the distributed multiplication engines: for random
//! matrices and *arbitrary* clique sizes (including primes and other
//! padding-hostile values), every engine must agree with the local
//! schoolbook product over its structure.

use cc_algebra::{Dist, IntRing, Matrix, MinPlus, ModRing, INFINITY};
use cc_clique::Clique;
use cc_core::{fast_mm, semiring_mm, RowMatrix};
use proptest::prelude::*;

fn int_matrix(n: usize, seed: u64) -> Matrix<i64> {
    let mut st = seed.wrapping_add(0x9e3779b97f4a7c15);
    Matrix::from_fn(n, n, |_, _| {
        st = st
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((st >> 33) % 13) as i64 - 6
    })
}

fn dist_matrix(n: usize, seed: u64) -> Matrix<Dist> {
    let mut st = seed.wrapping_add(7);
    Matrix::from_fn(n, n, |_, _| {
        st = st
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let x = st >> 33;
        if x.is_multiple_of(5) {
            INFINITY
        } else {
            Dist::finite((x % 30) as i64)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn semiring_3d_matches_local(n in 2usize..30, seed in 0u64..10_000) {
        let a = int_matrix(n, seed);
        let b = int_matrix(n, seed ^ 0xabcd);
        let mut clique = Clique::new(n);
        let p = semiring_mm::multiply(
            &mut clique,
            &IntRing,
            &RowMatrix::from_matrix(&a),
            &RowMatrix::from_matrix(&b),
        );
        prop_assert_eq!(p.to_matrix(), Matrix::mul(&IntRing, &a, &b));
    }

    #[test]
    fn fast_mm_matches_local(n in 2usize..30, seed in 0u64..10_000) {
        let a = int_matrix(n, seed);
        let b = int_matrix(n, seed ^ 0x1234);
        let mut clique = Clique::new(n);
        let p = fast_mm::multiply_auto(
            &mut clique,
            &IntRing,
            &RowMatrix::from_matrix(&a),
            &RowMatrix::from_matrix(&b),
        );
        prop_assert_eq!(p.to_matrix(), Matrix::mul(&IntRing, &a, &b));
    }

    #[test]
    fn min_plus_3d_matches_local(n in 2usize..24, seed in 0u64..10_000) {
        let a = dist_matrix(n, seed);
        let b = dist_matrix(n, seed ^ 0x77);
        let mut clique = Clique::new(n);
        let p = semiring_mm::multiply(
            &mut clique,
            &MinPlus,
            &RowMatrix::from_matrix(&a),
            &RowMatrix::from_matrix(&b),
        );
        prop_assert_eq!(p.to_matrix(), Matrix::mul(&MinPlus, &a, &b));
    }

    #[test]
    fn fast_mm_matches_local_over_prime_field(n in 2usize..22, p in 0usize..4, seed in 0u64..10_000) {
        let primes = [2u64, 5, 13, 31];
        let field = ModRing::new(primes[p]);
        let a = int_matrix(n, seed).map(|&x| field.reduce(x));
        let b = int_matrix(n, seed ^ 0x55).map(|&x| field.reduce(x));
        let mut clique = Clique::new(n);
        let prod = fast_mm::multiply_auto(
            &mut clique,
            &field,
            &RowMatrix::from_matrix(&a),
            &RowMatrix::from_matrix(&b),
        );
        prop_assert_eq!(prod.to_matrix(), Matrix::mul(&field, &a, &b));
    }

    #[test]
    fn witnesses_certify_on_random_instances(n in 4usize..20, seed in 0u64..10_000) {
        let a = dist_matrix(n, seed);
        let b = dist_matrix(n, seed ^ 0x99);
        let mut clique = Clique::new(n);
        let (p, q) = semiring_mm::distance_product_with_witness(
            &mut clique,
            &RowMatrix::from_matrix(&a),
            &RowMatrix::from_matrix(&b),
        );
        prop_assert_eq!(p.to_matrix(), Matrix::mul(&MinPlus, &a, &b));
        for u in 0..n {
            for v in 0..n {
                if p.row(u)[v].is_finite() {
                    let w = q.row(u)[v];
                    prop_assert!(w < n);
                    prop_assert_eq!(a[(u, w)] + b[(w, v)], p.row(u)[v]);
                }
            }
        }
    }
}
