//! Witness detection for distance products (paper §3.4, Lemma 21).
//!
//! The fast distance products of [`crate::distance`] return values only; to
//! build routing tables the APSP algorithms need a *witness matrix* `Q` with
//! `(S ⋆ T)ᵤᵥ = Sᵤ,Q[u][v] + T_Q[u][v],ᵥ`. This module adapts the
//! centralized techniques the paper cites:
//!
//! * [`unique_witnesses`] finds correct witnesses for every pair that has a
//!   *unique* witness, using `⌈log₂ n⌉` masked products (one per id bit);
//! * [`find_witnesses`] handles the general case by random sampling
//!   (paper's §3.4 "finding witnesses in the general case"), running the
//!   unique-witness procedure on `O(log² n)` sampled column subsets for a
//!   total of `O(log³ n)` distance products;
//! * [`verify_witnesses`] checks candidates with one round trip of
//!   data-dependent queries (charged as dynamic routing).
//!
//! All routines are generic over the distance-product implementation, so
//! they compose with the 3D product and with the capped fast product alike.

use crate::row_matrix::RowMatrix;
use cc_algebra::{Dist, INFINITY};
use cc_clique::{pack_pair, unpack_pair, Clique};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A distance-product implementation, e.g. a closure around
/// [`crate::distance::distance_product`] or
/// [`crate::distance::capped_distance_product`].
pub trait DistanceProduct {
    /// Computes `S ⋆ T`.
    fn product(
        &mut self,
        clique: &mut Clique,
        s: &RowMatrix<Dist>,
        t: &RowMatrix<Dist>,
    ) -> RowMatrix<Dist>;
}

impl<F> DistanceProduct for F
where
    F: FnMut(&mut Clique, &RowMatrix<Dist>, &RowMatrix<Dist>) -> RowMatrix<Dist>,
{
    fn product(
        &mut self,
        clique: &mut Clique,
        s: &RowMatrix<Dist>,
        t: &RowMatrix<Dist>,
    ) -> RowMatrix<Dist> {
        self(clique, s, t)
    }
}

fn mask_columns(s: &RowMatrix<Dist>, keep: &[bool]) -> RowMatrix<Dist> {
    s.map_indexed(|_, v, d| if keep[v] { *d } else { INFINITY })
}

fn mask_rows(t: &RowMatrix<Dist>, keep: &[bool]) -> RowMatrix<Dist> {
    t.map_indexed(|u, _, d| if keep[u] { *d } else { INFINITY })
}

/// Finds witness candidates that are guaranteed correct for every pair
/// `(u,v)` whose witness is unique (paper §3.4 "finding unique witnesses").
///
/// `p` must be the distance product `S ⋆ T`. Uses `⌈log₂ n⌉` masked
/// products. The returned candidates for non-unique pairs may be wrong;
/// validate with [`verify_witnesses`].
pub fn unique_witnesses(
    clique: &mut Clique,
    prod: &mut impl DistanceProduct,
    s: &RowMatrix<Dist>,
    t: &RowMatrix<Dist>,
    p: &RowMatrix<Dist>,
) -> RowMatrix<usize> {
    let n = clique.n();
    let bits = usize::BITS - (n - 1).leading_zeros();
    let mut q = RowMatrix::from_fn(n, |_, _| 0usize);
    clique.phase("witness.unique", |clique| {
        for bit in 0..bits {
            let keep: Vec<bool> = (0..n).map(|v| v >> bit & 1 == 1).collect();
            let pi = prod.product(clique, &mask_columns(s, &keep), &mask_rows(t, &keep));
            q = q.map_indexed(|u, v, &cur| {
                if pi.row(u)[v] == p.row(u)[v] {
                    cur | (1 << bit)
                } else {
                    cur
                }
            });
        }
    });
    q
}

/// Verifies witness candidates: returns `ok[u][v] = true` iff
/// `S[u][Q[u][v]] + T[Q[u][v]][v] = P[u][v]` (entries with `P = ∞` are
/// vacuously correct). One data-dependent query/response exchange, charged
/// via dynamic routing.
pub fn verify_witnesses(
    clique: &mut Clique,
    s: &RowMatrix<Dist>,
    t: &RowMatrix<Dist>,
    p: &RowMatrix<Dist>,
    q: &RowMatrix<usize>,
) -> RowMatrix<bool> {
    let n = clique.n();
    clique.phase("witness.verify", |clique| {
        // Query: node u asks node w = Q[u][v] for T[w][v].
        let queries = clique.route_dynamic(|u| {
            (0..n)
                .filter(|&v| p.row(u)[v].is_finite() && q.row(u)[v] < n)
                .map(|v| (q.row(u)[v], vec![pack_pair(u, v)]))
                .collect()
        });
        // Response: w answers with (v, T[w][v]) — two words — so u can
        // match replies to its outstanding queries.
        let replies = clique.route_dynamic(|w| {
            let mut out = Vec::new();
            for src in 0..n {
                for &word in queries.received(w, src) {
                    let (u, v) = unpack_pair(word);
                    out.push((u, vec![v as u64, t.row(w)[v].raw() as u64]));
                }
            }
            out
        });
        RowMatrix::from_fn(n, |u, v| {
            if !p.row(u)[v].is_finite() {
                return true;
            }
            let w = q.row(u)[v];
            if w >= n {
                return false;
            }
            // The reply for (u, v) came from node w, as (v, raw) word pairs.
            let words = replies.received(u, w);
            let t_wv = words
                .chunks_exact(2)
                .find(|pair| pair[0] as usize == v)
                .map(|pair| Dist::from_raw(pair[1] as i64));
            match t_wv {
                Some(tv) => s.row(u)[w] + tv == p.row(u)[v],
                None => false,
            }
        })
    })
}

/// Witness matrix for a distance product in the general case (paper §3.4):
/// combines [`unique_witnesses`] with `O(log² n)` random column-subset
/// samples, verifying candidates after every attempt.
///
/// Returns `(Q, found)`; with `trials_per_level ≥ c·log n` every finite
/// entry is witnessed with high probability. Randomness is taken from the
/// explicit `seed` (shared by all nodes, as the paper assumes public
/// randomness for this step).
pub fn find_witnesses(
    clique: &mut Clique,
    prod: &mut impl DistanceProduct,
    s: &RowMatrix<Dist>,
    t: &RowMatrix<Dist>,
    p: &RowMatrix<Dist>,
    seed: u64,
    trials_per_level: usize,
) -> (RowMatrix<usize>, RowMatrix<bool>) {
    let n = clique.n();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut q = unique_witnesses(clique, prod, s, t, p);
    let mut ok = verify_witnesses(clique, s, t, p, &q);
    let levels = (usize::BITS - (n - 1).leading_zeros()) as usize;

    clique.phase("witness.sampled", |clique| {
        for level in 0..levels {
            if all_found(&ok, n) {
                break;
            }
            let subset_size = 1usize << level;
            for _ in 0..trials_per_level {
                // Sample with replacement, as in the paper.
                let mut keep = vec![false; n];
                for _ in 0..subset_size {
                    keep[rng.gen_range(0..n)] = true;
                }
                let sm = mask_columns(s, &keep);
                let tm = mask_rows(t, &keep);
                let pm = prod.product(clique, &sm, &tm);
                let cand = unique_witnesses(clique, prod, &sm, &tm, &pm);
                // A candidate helps only where the masked product achieves
                // the true distance.
                let merged = q.map_indexed(|u, v, &cur| {
                    if !ok.row(u)[v] && pm.row(u)[v] == p.row(u)[v] {
                        cand.row(u)[v]
                    } else {
                        cur
                    }
                });
                let merged_ok = verify_witnesses(clique, s, t, p, &merged);
                q = merged
                    .map_indexed(|u, v, &w| if merged_ok.row(u)[v] { w } else { q.row(u)[v] });
                ok = ok.map_indexed(|u, v, &o| o || merged_ok.row(u)[v]);
            }
        }
    });
    (q, ok)
}

fn all_found(ok: &RowMatrix<bool>, n: usize) -> bool {
    (0..n).all(|u| ok.row(u).iter().all(|&b| b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance;
    use cc_algebra::{Matrix, MinPlus, Semiring};

    fn product() -> impl DistanceProduct {
        |clique: &mut Clique, s: &RowMatrix<Dist>, t: &RowMatrix<Dist>| {
            distance::distance_product(clique, s, t)
        }
    }

    fn rand_dist_matrix(n: usize, max_w: i64, inf_every: u64, seed: u64) -> Matrix<Dist> {
        let mut st = seed;
        Matrix::from_fn(n, n, |_, _| {
            st = st
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = st >> 33;
            if inf_every > 0 && x.is_multiple_of(inf_every) {
                INFINITY
            } else {
                Dist::finite((x % (max_w as u64 + 1)) as i64)
            }
        })
    }

    #[test]
    fn unique_witnesses_are_correct_when_unique() {
        // Construct S, T with a unique witness per pair: distinct powers of
        // two make every inner sum distinct.
        let n = 8;
        let s = Matrix::from_fn(n, n, |u, w| Dist::finite(((u * n + w) as i64) * 100));
        let t = Matrix::from_fn(n, n, |w, v| Dist::finite((w * n + v) as i64));
        let (s, t) = (RowMatrix::from_matrix(&s), RowMatrix::from_matrix(&t));
        let mut clique = Clique::new(n);
        let p = distance::distance_product(&mut clique, &s, &t);
        let q = unique_witnesses(&mut clique, &mut product(), &s, &t, &p);
        for u in 0..n {
            for v in 0..n {
                let w = q.row(u)[v];
                assert!(w < n);
                assert_eq!(s.row(u)[w] + t.row(w)[v], p.row(u)[v], "({u},{v})");
            }
        }
    }

    #[test]
    fn verification_accepts_true_and_rejects_false_witnesses() {
        let n = 8;
        let a = rand_dist_matrix(n, 9, 4, 5);
        let b = rand_dist_matrix(n, 9, 4, 6);
        let (s, t) = (RowMatrix::from_matrix(&a), RowMatrix::from_matrix(&b));
        let mut clique = Clique::new(n);
        let (p, q_true) = crate::semiring_mm::distance_product_with_witness(&mut clique, &s, &t);
        let ok = verify_witnesses(&mut clique, &s, &t, &p, &q_true);
        for u in 0..n {
            for v in 0..n {
                assert!(ok.row(u)[v], "true witness rejected at ({u},{v})");
            }
        }
        // Corrupt witnesses where possible and expect rejections.
        let q_bad = q_true.map_indexed(|_, _, &w| (w + 1) % n);
        let ok_bad = verify_witnesses(&mut clique, &s, &t, &p, &q_bad);
        let rejected = (0..n)
            .flat_map(|u| (0..n).map(move |v| (u, v)))
            .filter(|&(u, v)| p.row(u)[v].is_finite() && !ok_bad.row(u)[v])
            .count();
        assert!(
            rejected > 0,
            "corrupted witnesses should be rejected somewhere"
        );
    }

    #[test]
    fn sampled_search_finds_witnesses_for_general_matrices() {
        let n = 8;
        // Constant matrices: every w is a witness for every pair — the
        // hardest case for unique-witness detection (nothing is unique).
        let a = Matrix::from_fn(n, n, |_, _| Dist::finite(1));
        let (s, t) = (RowMatrix::from_matrix(&a), RowMatrix::from_matrix(&a));
        let mut clique = Clique::new(n);
        let p = distance::distance_product(&mut clique, &s, &t);
        let (q, ok) = find_witnesses(&mut clique, &mut product(), &s, &t, &p, 42, 6);
        for u in 0..n {
            for v in 0..n {
                assert!(ok.row(u)[v], "witness not found at ({u},{v})");
                let w = q.row(u)[v];
                assert_eq!(s.row(u)[w] + t.row(w)[v], p.row(u)[v]);
            }
        }
    }

    #[test]
    fn sampled_search_on_random_matrices() {
        let n = 12;
        let a = rand_dist_matrix(n, 4, 3, 11);
        let b = rand_dist_matrix(n, 4, 3, 12);
        let (s, t) = (RowMatrix::from_matrix(&a), RowMatrix::from_matrix(&b));
        let mut clique = Clique::new(n);
        let p = distance::distance_product(&mut clique, &s, &t);
        let (q, ok) = find_witnesses(&mut clique, &mut product(), &s, &t, &p, 7, 8);
        let minplus = MinPlus;
        for u in 0..n {
            for v in 0..n {
                if p.row(u)[v].is_finite() {
                    assert!(ok.row(u)[v], "missing witness at ({u},{v})");
                    let w = q.row(u)[v];
                    assert_eq!(
                        minplus.mul(&s.row(u)[w], &t.row(w)[v]),
                        p.row(u)[v],
                        "bad witness at ({u},{v})"
                    );
                }
            }
        }
    }
}
