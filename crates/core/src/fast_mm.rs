//! Fast bilinear matrix multiplication in the congested clique (paper §2.2).
//!
//! Implements Theorem 1's second part / Lemma 10: given a bilinear algorithm
//! multiplying `d × d` matrices with `m = O(d^σ)` element multiplications,
//! the product of two `n × n` ring matrices is computed in
//! `O(n^{1-2/σ} · width)` rounds. Each node plays up to three roles:
//!
//! 1. **row owner** — holds row `v` of the operands (steps 1, 7);
//! 2. **cell owner** — holds the sub-blocks `S[i x₁ ∗, j x₂ ∗]` of one (or
//!    more) label cells `(x₁, x₂)` and evaluates the linear combinations
//!    `Ŝ⁽ʷ⁾`, `T̂⁽ʷ⁾`, `P[i x₁ ∗, j x₂ ∗]` (steps 2, 6);
//! 3. **term owner** — holds the full `Ŝ⁽ʷ⁾`, `T̂⁽ʷ⁾` for one term `w` and
//!    computes the product `P̂⁽ʷ⁾ = Ŝ⁽ʷ⁾ T̂⁽ʷ⁾` locally (step 4).
//!
//! The communication pattern depends only on `(n, d, m)`, never on matrix
//! contents — the algorithm is oblivious, as claimed in the paper and
//! verified by the pattern-fingerprint tests.

use crate::fast_plan::FastPlan;
use crate::row_matrix::RowMatrix;
use cc_algebra::{BilinearAlgorithm, Matrix, Ring, Semiring};
use cc_clique::{Clique, WordReader, WordWriter};

fn encode_iter<'a, S: Semiring>(s: &S, iter: impl Iterator<Item = &'a S::Elem>) -> Vec<u64>
where
    S::Elem: 'a,
{
    let mut w = WordWriter::new();
    for e in iter {
        s.write_elem(e, &mut w);
    }
    w.into_words()
}

/// Computes `P = S·T` over a ring with the fast bilinear algorithm.
///
/// `alg` is typically a Strassen tensor power sized to the clique
/// ([`FastPlan::best_strassen`]); [`multiply_auto`] does this selection.
/// Inputs and output follow the row-ownership convention.
///
/// # Panics
///
/// Panics if the operand dimensions differ from the clique size.
///
/// # Examples
///
/// ```rust
/// use cc_algebra::{IntRing, Matrix};
/// use cc_clique::Clique;
/// use cc_core::{fast_mm, RowMatrix};
///
/// let n = 10;
/// let a = Matrix::from_fn(n, n, |i, j| (i as i64) - (j as i64));
/// let b = Matrix::from_fn(n, n, |i, j| ((i * j) % 5) as i64);
/// let mut clique = Clique::new(n);
/// let p = fast_mm::multiply_auto(
///     &mut clique,
///     &IntRing,
///     &RowMatrix::from_matrix(&a),
///     &RowMatrix::from_matrix(&b),
/// );
/// assert_eq!(p.to_matrix(), Matrix::mul(&IntRing, &a, &b));
/// ```
pub fn multiply<R: Ring + Sync>(
    clique: &mut Clique,
    ring: &R,
    alg: &BilinearAlgorithm,
    a: &RowMatrix<R::Elem>,
    b: &RowMatrix<R::Elem>,
) -> RowMatrix<R::Elem>
where
    R::Elem: Send + Sync,
{
    let plan = FastPlan::new(clique.n(), alg);
    multiply_with_plan(clique, ring, alg, &plan, a, b)
}

/// [`multiply`] with an explicit [`FastPlan`] (e.g. one built with
/// [`FastPlan::with_q`]), used by tests and the plan ablation experiment.
///
/// # Panics
///
/// Panics if the plan's dimensions do not match the algorithm or clique.
pub fn multiply_with_plan<R: Ring + Sync>(
    clique: &mut Clique,
    ring: &R,
    alg: &BilinearAlgorithm,
    plan: &FastPlan,
    a: &RowMatrix<R::Elem>,
    b: &RowMatrix<R::Elem>,
) -> RowMatrix<R::Elem>
where
    R::Elem: Send + Sync,
{
    let n = clique.n();
    assert_eq!(a.n(), n, "operand A dimension must equal clique size");
    assert_eq!(b.n(), n, "operand B dimension must equal clique size");
    assert_eq!(plan.n(), n, "plan was built for a different clique size");
    assert_eq!(
        plan.d(),
        alg.d(),
        "plan was built for a different algorithm"
    );
    assert_eq!(
        plan.m(),
        alg.m(),
        "plan was built for a different algorithm"
    );
    let (d, m, q, sub) = (plan.d(), plan.m(), plan.q(), plan.sub());
    let side = d * sub; // cell-local matrix side

    clique.phase("fastmm", |clique| {
        // Node-local steps (2, 4, 6, and the row assemblies) are
        // independent per node and fan out on the configured executor; the
        // communication steps use the `_par` primitives, whose costs and
        // delivered inboxes are identical to the sequential ones.
        let exec = clique.executor();

        // ---- Step 1: row owners scatter row slices to cell owners. ----
        let inbox1 = clique.phase("fastmm.scatter", |c| {
            c.route_par(|v| {
                let x1 = plan.label_of(v);
                (0..q)
                    .map(|x2| {
                        let cols = plan.real_indices_with_label(x2);
                        let payload = encode_iter(
                            ring,
                            cols.iter()
                                .map(|&c| &a.row(v)[c])
                                .chain(cols.iter().map(|&c| &b.row(v)[c])),
                        );
                        (plan.cell_owner(x1, x2), payload)
                    })
                    .collect()
            })
        });

        // ---- Step 2: cell owners assemble cells and form Ŝ⁽ʷ⁾, T̂⁽ʷ⁾. ----
        // hats[v] = per owned cell, per term w: (Ŝ⁽ʷ⁾, T̂⁽ʷ⁾) sub-blocks.
        type HatPairs<E> = Vec<Vec<(Matrix<E>, Matrix<E>)>>;
        let hats: Vec<HatPairs<R::Elem>> = exec.map(n, |u| {
            let mut per_cell = Vec::new();
            for &(x1, x2) in &plan.cells_of(u) {
                let mut s_cell = Matrix::filled(side, side, ring.zero());
                let mut t_cell = Matrix::filled(side, side, ring.zero());
                let cols = plan.real_indices_with_label(x2);
                for &rho in &plan.real_indices_with_label(x1) {
                    // Decode this row's (S, T) slice, skipping slices this
                    // node received for *other* cells from the same sender.
                    let words = inbox1.received(u, rho);
                    let mut rd = WordReader::new(words);
                    for x2p in 0..q {
                        if plan.cell_owner(x1, x2p) != u {
                            continue;
                        }
                        let len = plan.real_indices_with_label(x2p).len();
                        if x2p == x2 {
                            let (i, _, r) = plan.decompose(rho);
                            let local_row = i * sub + r;
                            for &col in &cols {
                                let (j, _, cc) = plan.decompose(col);
                                s_cell[(local_row, j * sub + cc)] = ring.read_elem(&mut rd);
                            }
                            for &col in &cols {
                                let (j, _, cc) = plan.decompose(col);
                                t_cell[(local_row, j * sub + cc)] = ring.read_elem(&mut rd);
                            }
                            break;
                        }
                        for _ in 0..2 * len {
                            let _ = ring.read_elem(&mut rd);
                        }
                    }
                }
                // Linear combinations per term.
                let mut per_w = Vec::with_capacity(m);
                for w in 0..m {
                    let mut s_hat = Matrix::filled(sub, sub, ring.zero());
                    for &(i, j, coeff) in alg.alpha(w) {
                        for r in 0..sub {
                            for cc in 0..sub {
                                let term = ring.scale(coeff, &s_cell[(i * sub + r, j * sub + cc)]);
                                s_hat[(r, cc)] = ring.add(&s_hat[(r, cc)], &term);
                            }
                        }
                    }
                    let mut t_hat = Matrix::filled(sub, sub, ring.zero());
                    for &(i, j, coeff) in alg.beta(w) {
                        for r in 0..sub {
                            for cc in 0..sub {
                                let term = ring.scale(coeff, &t_cell[(i * sub + r, j * sub + cc)]);
                                t_hat[(r, cc)] = ring.add(&t_hat[(r, cc)], &term);
                            }
                        }
                    }
                    per_w.push((s_hat, t_hat));
                }
                per_cell.push(per_w);
            }
            per_cell
        });

        // ---- Step 3: cells send Ŝ⁽ʷ⁾, T̂⁽ʷ⁾ sub-blocks to term owners. ----
        let inbox3 = clique.phase("fastmm.to_terms", |c| {
            c.route_par(|u| {
                let mut out = Vec::new();
                for per_w in &hats[u] {
                    for (w, (s_hat, t_hat)) in per_w.iter().enumerate() {
                        let payload = encode_iter(
                            ring,
                            (0..sub)
                                .flat_map(|r| s_hat.row(r))
                                .chain((0..sub).flat_map(|r| t_hat.row(r))),
                        );
                        out.push((plan.term_owner(w), payload));
                    }
                }
                out
            })
        });
        drop(hats);

        // ---- Step 4: term owners assemble Ŝ⁽ʷ⁾, T̂⁽ʷ⁾ and multiply. ----
        // The dominant local work of the whole algorithm (one dense product
        // per owned term); work stealing keeps skewed term ownership
        // balanced across workers.
        let full = q * sub;
        let phat: Vec<Vec<Matrix<R::Elem>>> = exec.map(n, |t| {
            let my_terms = plan.terms_of(t);
            let mut s_full: Vec<Matrix<R::Elem>> = my_terms
                .iter()
                .map(|_| Matrix::filled(full, full, ring.zero()))
                .collect();
            let mut t_full = s_full.clone();
            for src in 0..n {
                let words = inbox3.received(t, src);
                let mut rd = WordReader::new(words);
                for &(x1, x2) in &plan.cells_of(src) {
                    for w in 0..m {
                        if plan.term_owner(w) != t {
                            continue;
                        }
                        let slot = my_terms.iter().position(|&x| x == w).expect("owned term");
                        for r in 0..sub {
                            for cc in 0..sub {
                                s_full[slot][(x1 * sub + r, x2 * sub + cc)] =
                                    ring.read_elem(&mut rd);
                            }
                        }
                        for r in 0..sub {
                            for cc in 0..sub {
                                t_full[slot][(x1 * sub + r, x2 * sub + cc)] =
                                    ring.read_elem(&mut rd);
                            }
                        }
                    }
                }
                assert!(rd.is_exhausted(), "step-4 payload length mismatch");
            }
            s_full
                .iter()
                .zip(&t_full)
                .map(|(sf, tf)| ring.mul_dense(sf, tf))
                .collect()
        });

        // ---- Step 5: term owners return P̂⁽ʷ⁾ sub-blocks to cell owners. ----
        let inbox5 = clique.phase("fastmm.from_terms", |c| {
            c.route_par(|t| {
                let mut out = Vec::new();
                for (slot, &_w) in plan.terms_of(t).iter().enumerate() {
                    for x1 in 0..q {
                        for x2 in 0..q {
                            let payload = encode_iter(
                                ring,
                                (0..sub)
                                    .flat_map(|r| (0..sub).map(move |cc| (r, cc)))
                                    .map(|(r, cc)| &phat[t][slot][(x1 * sub + r, x2 * sub + cc)]),
                            );
                            out.push((plan.cell_owner(x1, x2), payload));
                        }
                    }
                }
                out
            })
        });
        drop(phat);

        // ---- Step 6: cell owners decode P̂⁽ʷ⁾ and evaluate λ. ----
        // p_cell[v] = per owned cell: the (d·sub)² block P[∗x₁∗, ∗x₂∗].
        let p_cells: Vec<Vec<Matrix<R::Elem>>> = exec.map(n, |u| {
            let cells = plan.cells_of(u);
            // Gather P̂⁽ʷ⁾ sub-blocks for every term, per owned cell.
            let mut phat_blocks: Vec<Vec<Matrix<R::Elem>>> =
                vec![Vec::with_capacity(m); cells.len()];
            for w in 0..m {
                let t = plan.term_owner(w);
                let words = inbox5.received(u, t);
                let mut rd = WordReader::new(words);
                // Re-walk the sender's emission order, extracting our cells.
                let mut extracted: Vec<Option<Matrix<R::Elem>>> = vec![None; cells.len()];
                for &wp in &plan.terms_of(t) {
                    for x1 in 0..q {
                        for x2 in 0..q {
                            if plan.cell_owner(x1, x2) != u {
                                continue;
                            }
                            let mut blockm = Matrix::filled(sub, sub, ring.zero());
                            for r in 0..sub {
                                for cc in 0..sub {
                                    blockm[(r, cc)] = ring.read_elem(&mut rd);
                                }
                            }
                            if wp == w {
                                let idx = cells
                                    .iter()
                                    .position(|&cl| cl == (x1, x2))
                                    .expect("own cell");
                                extracted[idx] = Some(blockm);
                            }
                        }
                    }
                }
                for (idx, blk) in extracted.into_iter().enumerate() {
                    phat_blocks[idx].push(blk.expect("every owned cell receives every term"));
                }
            }
            let mut per_cell = Vec::with_capacity(cells.len());
            for (idx, _) in cells.iter().enumerate() {
                let mut p_cell = Matrix::filled(side, side, ring.zero());
                for i in 0..d {
                    for j in 0..d {
                        for &(w, coeff) in alg.lambda(i, j) {
                            for r in 0..sub {
                                for cc in 0..sub {
                                    let term = ring.scale(coeff, &phat_blocks[idx][w][(r, cc)]);
                                    let cur = &p_cell[(i * sub + r, j * sub + cc)];
                                    p_cell[(i * sub + r, j * sub + cc)] = ring.add(cur, &term);
                                }
                            }
                        }
                    }
                }
                per_cell.push(p_cell);
            }
            per_cell
        });

        // ---- Step 7: cells return product rows to row owners. ----
        let inbox7 = clique.phase("fastmm.assemble", |c| {
            c.route_par(|u| {
                let mut out = Vec::new();
                for (idx, &(x1, x2)) in plan.cells_of(u).iter().enumerate() {
                    let cols = plan.real_indices_with_label(x2);
                    for &rho in &plan.real_indices_with_label(x1) {
                        let (i, _, r) = plan.decompose(rho);
                        let local_row = i * sub + r;
                        let payload = encode_iter(
                            ring,
                            cols.iter().map(|&col| {
                                let (j, _, cc) = plan.decompose(col);
                                &p_cells[u][idx][(local_row, j * sub + cc)]
                            }),
                        );
                        out.push((rho, payload));
                    }
                }
                out
            })
        });

        // Row owners assemble their final rows.
        RowMatrix::from_rows(exec.map(n, |rho| {
            let x1 = plan.label_of(rho);
            let mut row = vec![ring.zero(); n];
            for src in 0..n {
                let words = inbox7.received(rho, src);
                if words.is_empty() {
                    continue;
                }
                let mut rd = WordReader::new(words);
                for &(cx1, cx2) in &plan.cells_of(src) {
                    if cx1 != x1 {
                        continue;
                    }
                    for col in plan.real_indices_with_label(cx2) {
                        row[col] = ring.read_elem(&mut rd);
                    }
                }
                assert!(rd.is_exhausted(), "step-7 payload length mismatch");
            }
            row
        }))
    })
}

/// [`multiply`] with the Strassen tensor power best suited to the clique
/// size (`m = 7^k ≤ n`).
pub fn multiply_auto<R: Ring + Sync>(
    clique: &mut Clique,
    ring: &R,
    a: &RowMatrix<R::Elem>,
    b: &RowMatrix<R::Elem>,
) -> RowMatrix<R::Elem>
where
    R::Elem: Send + Sync,
{
    let alg = FastPlan::best_strassen(clique.n());
    multiply(clique, ring, &alg, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_algebra::IntRing;
    use cc_clique::CliqueConfig;

    fn rand_matrix(n: usize, seed: u64) -> Matrix<i64> {
        let mut st = seed;
        Matrix::from_fn(n, n, |_, _| {
            st = st
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((st >> 33) % 9) as i64 - 4
        })
    }

    #[test]
    fn matches_local_product_across_sizes() {
        for n in [2, 5, 7, 8, 12, 20, 49, 50] {
            let a = rand_matrix(n, 100 + n as u64);
            let b = rand_matrix(n, 200 + n as u64);
            let mut clique = Clique::new(n);
            let p = multiply_auto(
                &mut clique,
                &IntRing,
                &RowMatrix::from_matrix(&a),
                &RowMatrix::from_matrix(&b),
            );
            assert_eq!(p.to_matrix(), Matrix::mul(&IntRing, &a, &b), "n={n}");
        }
    }

    #[test]
    fn works_with_explicit_schoolbook_tensor() {
        let n = 9;
        let alg = cc_algebra::BilinearAlgorithm::schoolbook(2);
        let a = rand_matrix(n, 1);
        let b = rand_matrix(n, 2);
        let mut clique = Clique::new(n);
        let p = multiply(
            &mut clique,
            &IntRing,
            &alg,
            &RowMatrix::from_matrix(&a),
            &RowMatrix::from_matrix(&b),
        );
        assert_eq!(p.to_matrix(), Matrix::mul(&IntRing, &a, &b));
    }

    #[test]
    fn works_over_a_prime_field() {
        // ℤ/pℤ exposes coefficient-scaling and cancellation bugs that
        // integer inputs cannot (negatives wrap, scalars reduce).
        use cc_algebra::ModRing;
        let f13 = ModRing::new(13);
        for n in [6usize, 10, 15] {
            let a = rand_matrix(n, 31).map(|&x| f13.reduce(x));
            let b = rand_matrix(n, 32).map(|&x| f13.reduce(x));
            let mut clique = Clique::new(n);
            let p = multiply_auto(
                &mut clique,
                &f13,
                &RowMatrix::from_matrix(&a),
                &RowMatrix::from_matrix(&b),
            );
            assert_eq!(p.to_matrix(), Matrix::mul(&f13, &a, &b), "n={n}");
        }
    }

    #[test]
    fn identity_is_preserved() {
        let n = 49;
        let a = rand_matrix(n, 5);
        let id = Matrix::identity(&IntRing, n);
        let mut clique = Clique::new(n);
        let p = multiply_auto(
            &mut clique,
            &IntRing,
            &RowMatrix::from_matrix(&a),
            &RowMatrix::from_matrix(&id),
        );
        assert_eq!(p.to_matrix(), a);
    }

    #[test]
    fn communication_pattern_is_oblivious() {
        let fingerprint = |seed: u64| {
            let cfg = CliqueConfig {
                record_patterns: true,
                ..CliqueConfig::default()
            };
            let mut clique = Clique::with_config(20, cfg);
            let a = rand_matrix(20, seed);
            let b = rand_matrix(20, seed + 1);
            multiply_auto(
                &mut clique,
                &IntRing,
                &RowMatrix::from_matrix(&a),
                &RowMatrix::from_matrix(&b),
            );
            clique.stats().pattern_fingerprints().to_vec()
        };
        assert_eq!(fingerprint(3), fingerprint(999));
    }

    #[test]
    fn communication_volume_beats_semiring_3d_at_scale() {
        // At n = 343 (= 7³) the Strassen-powered path moves fewer words than
        // the 3D semiring algorithm — the communication-volume separation
        // that drives the asymptotic round separation. (Absolute *rounds*
        // cross over at larger n; see EXPERIMENTS.md for the sweep.)
        let n = 343;
        let a = rand_matrix(n, 11);
        let b = rand_matrix(n, 12);
        let mut c1 = Clique::new(n);
        multiply_auto(
            &mut c1,
            &IntRing,
            &RowMatrix::from_matrix(&a),
            &RowMatrix::from_matrix(&b),
        );
        let mut c2 = Clique::new(n);
        crate::semiring_mm::multiply(
            &mut c2,
            &IntRing,
            &RowMatrix::from_matrix(&a),
            &RowMatrix::from_matrix(&b),
        );
        assert!(
            c1.stats().words() < c2.stats().words(),
            "fast path moved {} words, 3D moved {} at n={n}",
            c1.stats().words(),
            c2.stats().words()
        );
    }
}
