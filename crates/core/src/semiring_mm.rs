//! The semiring 3D matrix multiplication algorithm (paper §2.1).
//!
//! Implements Theorem 1's first part: the product of two `n × n` matrices
//! over any semiring in `O(n^{1/3})` rounds, by parallelising the schoolbook
//! product over the `n × n × n` multiplication cube. The communication
//! pattern is oblivious — it depends only on `n`, never on matrix contents —
//! which the test suite checks via pattern fingerprints.

use crate::plan3d::Plan3d;
use crate::row_matrix::RowMatrix;
use cc_algebra::{Dist, Matrix, MinPlus, Semiring};
use cc_clique::{Clique, WordReader, WordWriter};

fn encode_slice<S: Semiring>(s: &S, slice: &[S::Elem]) -> Vec<u64> {
    let mut w = WordWriter::new();
    for e in slice {
        s.write_elem(e, &mut w);
    }
    w.into_words()
}

fn decode_slice<S: Semiring>(s: &S, words: &[u64], count: usize) -> Vec<S::Elem> {
    let mut r = WordReader::new(words);
    let out: Vec<S::Elem> = (0..count).map(|_| s.read_elem(&mut r)).collect();
    assert!(r.is_exhausted(), "payload length mismatch");
    out
}

/// Computes `P = S·T` over a semiring with the 3D algorithm.
///
/// Inputs and output follow the paper's convention: node `v` holds row `v`.
/// Runs in `O(n^{1/3} · width)` rounds, where `width` is the wire width of a
/// semiring element in words.
///
/// # Panics
///
/// Panics if the operand dimensions differ from the clique size.
///
/// # Examples
///
/// ```rust
/// use cc_algebra::{BoolSemiring, Matrix};
/// use cc_clique::Clique;
/// use cc_core::{semiring_mm, RowMatrix};
///
/// // Boolean square of a directed path: 2-step reachability.
/// let n = 8;
/// let a = Matrix::from_fn(n, n, |i, j| j == i + 1);
/// let mut clique = Clique::new(n);
/// let a2 = semiring_mm::multiply(
///     &mut clique,
///     &BoolSemiring,
///     &RowMatrix::from_matrix(&a),
///     &RowMatrix::from_matrix(&a),
/// );
/// assert!(a2.to_matrix()[(0, 2)]);
/// assert!(!a2.to_matrix()[(0, 1)]);
/// ```
pub fn multiply<S: Semiring + Sync>(
    clique: &mut Clique,
    s: &S,
    a: &RowMatrix<S::Elem>,
    b: &RowMatrix<S::Elem>,
) -> RowMatrix<S::Elem>
where
    S::Elem: Send + Sync,
{
    let n = clique.n();
    assert_eq!(a.n(), n, "operand A dimension must equal clique size");
    assert_eq!(b.n(), n, "operand B dimension must equal clique size");
    let plan = Plan3d::new(n);
    let p = plan.p();

    clique.phase("mm3d", |clique| {
        // Per-node local steps fan out on the configured executor; the
        // `_par` routing primitives have costs identical to the sequential
        // ones.
        let exec = clique.executor();

        // Step 1: row owners scatter row slices to the active subcube nodes.
        let inbox = clique.phase("mm3d.scatter", |c| {
            c.route_par(|v| {
                let rb = plan.block_of_row(v);
                let mut out = Vec::new();
                // S[v, u₂∗∗] to every active u = (rb, u₂, u₃).
                for u2 in 0..p {
                    let cols = plan.block_range(u2);
                    let payload = encode_slice(s, &a.row(v)[cols]);
                    for u3 in 0..p {
                        out.push((plan.node_of(rb, u2, u3), payload.clone()));
                    }
                }
                // T[v, u₃∗∗] to every active u = (u₁, rb, u₃).
                for u3 in 0..p {
                    let cols = plan.block_range(u3);
                    let payload = encode_slice(s, &b.row(v)[cols]);
                    for u1 in 0..p {
                        out.push((plan.node_of(u1, rb, u3), payload.clone()));
                    }
                }
                out
            })
        });

        // Step 2: each active node multiplies its blocks locally — the
        // dominant local work, fanned out over the executor.
        let partials: Vec<Matrix<S::Elem>> = exec.map(plan.active(), |u| {
            let (u1, u2, u3) = plan.digits(u);
            let (r1, r2, r3) = (
                plan.block_range(u1),
                plan.block_range(u2),
                plan.block_range(u3),
            );
            let (h1, h2, h3) = (r1.len(), r2.len(), r3.len());
            let mut s_blk = Matrix::filled(h1, h2, s.zero());
            let mut t_blk = Matrix::filled(h2, h3, s.zero());
            for (idx, r) in r1.clone().enumerate() {
                let words = inbox.received(u, r);
                // Senders emit the S slice first, then (if rb(r) = u₂) the T
                // slice; decode in the same order.
                let has_t = plan.block_of_row(r) == u2;
                let expect = h2 + if has_t { h3 } else { 0 };
                let vals = decode_slice(s, words, expect);
                for (j, e) in vals[..h2].iter().enumerate() {
                    s_blk[(idx, j)] = e.clone();
                }
            }
            for (idx, r) in r2.clone().enumerate() {
                let words = inbox.received(u, r);
                let has_s = plan.block_of_row(r) == u1;
                let expect = h3 + if has_s { h2 } else { 0 };
                let vals = decode_slice(s, words, expect);
                let t_part = if has_s { &vals[h2..] } else { &vals[..] };
                for (j, e) in t_part.iter().enumerate() {
                    t_blk[(idx, j)] = e.clone();
                }
            }
            s.mul_dense(&s_blk, &t_blk)
        });

        // Step 3: active nodes return product row slices to the row owners.
        let inbox2 = clique.phase("mm3d.gather", |c| {
            c.route_par(|u| {
                if u >= plan.active() {
                    return Vec::new();
                }
                let (u1, _, _) = plan.digits(u);
                let part = &partials[u];
                plan.block_range(u1)
                    .enumerate()
                    .map(|(idx, r)| (r, encode_slice(s, part.row(idx))))
                    .collect()
            })
        });

        // Step 4: row owners sum the p partial products per column block.
        RowMatrix::from_rows(exec.map(n, |r| {
            let rb = plan.block_of_row(r);
            let mut row = vec![s.zero(); n];
            for u2 in 0..p {
                for u3 in 0..p {
                    let u = plan.node_of(rb, u2, u3);
                    let cols = plan.block_range(u3);
                    let vals = decode_slice(s, inbox2.received(r, u), cols.len());
                    for (j, e) in cols.zip(vals) {
                        row[j] = s.add(&row[j], &e);
                    }
                }
            }
            row
        }))
    })
}

/// Computes the distance product `P = S ⋆ T` **with witnesses** using the 3D
/// algorithm over the min-plus semiring (paper §3.3–3.4).
///
/// Returns `(P, Q)` where `Q[u][v] = w` satisfies
/// `P[u][v] = S[u][w] + T[w][v]` whenever `P[u][v]` is finite; entries of
/// `Q` for infinite distances are arbitrary. Ties break toward the smallest
/// witness index, making the result deterministic.
///
/// Costs twice the words of [`multiply`] (each entry travels with its
/// witness).
///
/// # Panics
///
/// Panics if the operand dimensions differ from the clique size.
pub fn distance_product_with_witness(
    clique: &mut Clique,
    a: &RowMatrix<Dist>,
    b: &RowMatrix<Dist>,
) -> (RowMatrix<Dist>, RowMatrix<usize>) {
    let n = clique.n();
    assert_eq!(a.n(), n, "operand A dimension must equal clique size");
    assert_eq!(b.n(), n, "operand B dimension must equal clique size");
    let plan = Plan3d::new(n);
    let p = plan.p();
    let s = MinPlus;

    clique.phase("mm3d.witness", |clique| {
        let exec = clique.executor();

        // Step 1 is identical to `multiply` over MinPlus.
        let inbox = clique.phase("mm3d.scatter", |c| {
            c.route_par(|v| {
                let rb = plan.block_of_row(v);
                let mut out = Vec::new();
                for u2 in 0..p {
                    let cols = plan.block_range(u2);
                    let payload = encode_slice(&s, &a.row(v)[cols]);
                    for u3 in 0..p {
                        out.push((plan.node_of(rb, u2, u3), payload.clone()));
                    }
                }
                for u3 in 0..p {
                    let cols = plan.block_range(u3);
                    let payload = encode_slice(&s, &b.row(v)[cols]);
                    for u1 in 0..p {
                        out.push((plan.node_of(u1, rb, u3), payload.clone()));
                    }
                }
                out
            })
        });

        // Step 2: local min-plus block products tracking the arg-min inner
        // index (a *global* column index, offset by the block start).
        let partials: Vec<Matrix<(Dist, usize)>> = exec.map(plan.active(), |u| {
            let (u1, u2, u3) = plan.digits(u);
            let (r1, r2, r3) = (
                plan.block_range(u1),
                plan.block_range(u2),
                plan.block_range(u3),
            );
            let (h1, h2, h3) = (r1.len(), r2.len(), r3.len());
            let inner_start = r2.start;
            let mut s_blk = Matrix::filled(h1, h2, s.zero());
            let mut t_blk = Matrix::filled(h2, h3, s.zero());
            for (idx, r) in r1.clone().enumerate() {
                let has_t = plan.block_of_row(r) == u2;
                let expect = h2 + if has_t { h3 } else { 0 };
                let vals = decode_slice(&s, inbox.received(u, r), expect);
                for (j, e) in vals[..h2].iter().enumerate() {
                    s_blk[(idx, j)] = *e;
                }
            }
            for (idx, r) in r2.clone().enumerate() {
                let has_s = plan.block_of_row(r) == u1;
                let expect = h3 + if has_s { h2 } else { 0 };
                let vals = decode_slice(&s, inbox.received(u, r), expect);
                let t_part = if has_s { &vals[h2..] } else { &vals[..] };
                for (j, e) in t_part.iter().enumerate() {
                    t_blk[(idx, j)] = *e;
                }
            }
            let mut prod = Matrix::filled(h1, h3, (s.zero(), usize::MAX));
            for i in 0..h1 {
                for k in 0..h2 {
                    let sik = s_blk[(i, k)];
                    if !sik.is_finite() {
                        continue;
                    }
                    for j in 0..h3 {
                        let cand = sik + t_blk[(k, j)];
                        let cur = prod[(i, j)];
                        let wit = inner_start + k;
                        if cand < cur.0 || (cand == cur.0 && wit < cur.1) {
                            prod[(i, j)] = (cand, wit);
                        }
                    }
                }
            }
            prod
        });

        // Step 3: return (distance, witness) pairs — two words per entry.
        let inbox2 = clique.phase("mm3d.gather", |c| {
            c.route_par(|u| {
                if u >= plan.active() {
                    return Vec::new();
                }
                let (u1, _, _) = plan.digits(u);
                let part = &partials[u];
                plan.block_range(u1)
                    .enumerate()
                    .map(|(idx, r)| {
                        let mut w = WordWriter::new();
                        for (d, q) in part.row(idx) {
                            s.write_elem(d, &mut w);
                            w.push(*q as u64);
                        }
                        (r, w.into_words())
                    })
                    .collect()
            })
        });

        // Step 4: min-reduce partials, carrying witnesses.
        let rows: Vec<(Vec<Dist>, Vec<usize>)> = exec.map(n, |r| {
            let rb = plan.block_of_row(r);
            let mut drow = vec![s.zero(); n];
            let mut qrow = vec![usize::MAX; n];
            for u2 in 0..p {
                for u3 in 0..p {
                    let u = plan.node_of(rb, u2, u3);
                    let cols = plan.block_range(u3);
                    let words = inbox2.received(r, u);
                    let mut rd = WordReader::new(words);
                    for j in cols {
                        let d = s.read_elem(&mut rd);
                        let q = rd.next() as usize;
                        if d < drow[j] || (d == drow[j] && q < qrow[j]) {
                            drow[j] = d;
                            qrow[j] = q;
                        }
                    }
                    assert!(rd.is_exhausted(), "payload length mismatch");
                }
            }
            (drow, qrow)
        });
        let (dist_rows, wit_rows) = rows.into_iter().unzip();
        (
            RowMatrix::from_rows(dist_rows),
            RowMatrix::from_rows(wit_rows),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_algebra::{BoolSemiring, IntRing, INFINITY};
    use cc_clique::CliqueConfig;

    fn rand_matrix(n: usize, seed: u64) -> Matrix<i64> {
        let mut st = seed;
        Matrix::from_fn(n, n, |_, _| {
            st = st
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((st >> 33) % 9) as i64 - 4
        })
    }

    #[test]
    fn int_product_matches_local_across_sizes() {
        for n in [2, 5, 8, 12, 27, 30] {
            let a = rand_matrix(n, 1);
            let b = rand_matrix(n, 2);
            let mut clique = Clique::new(n);
            let p = multiply(
                &mut clique,
                &IntRing,
                &RowMatrix::from_matrix(&a),
                &RowMatrix::from_matrix(&b),
            );
            assert_eq!(p.to_matrix(), Matrix::mul(&IntRing, &a, &b), "n={n}");
            assert!(clique.rounds() > 0);
        }
    }

    #[test]
    fn boolean_product_matches_local() {
        let n = 16;
        let a = Matrix::from_fn(n, n, |i, j| (i * 7 + j) % 3 == 0);
        let b = Matrix::from_fn(n, n, |i, j| (i + 5 * j) % 4 == 1);
        let mut clique = Clique::new(n);
        let p = multiply(
            &mut clique,
            &BoolSemiring,
            &RowMatrix::from_matrix(&a),
            &RowMatrix::from_matrix(&b),
        );
        assert_eq!(p.to_matrix(), Matrix::mul(&BoolSemiring, &a, &b));
    }

    #[test]
    fn min_plus_product_matches_local() {
        let n = 27;
        let f = |x: i64| {
            if x % 4 == 0 {
                INFINITY
            } else {
                Dist::finite(x % 17)
            }
        };
        let a = Matrix::from_fn(n, n, |i, j| f((i * 31 + j * 7) as i64));
        let b = Matrix::from_fn(n, n, |i, j| f((i * 13 + j * 3 + 1) as i64));
        let mut clique = Clique::new(n);
        let p = multiply(
            &mut clique,
            &MinPlus,
            &RowMatrix::from_matrix(&a),
            &RowMatrix::from_matrix(&b),
        );
        assert_eq!(p.to_matrix(), Matrix::mul(&MinPlus, &a, &b));
    }

    #[test]
    fn witnesses_certify_the_product() {
        let n = 20;
        let f = |x: i64| {
            if x % 5 == 0 {
                INFINITY
            } else {
                Dist::finite(x % 11)
            }
        };
        let a = Matrix::from_fn(n, n, |i, j| f((i * 3 + j * 17) as i64));
        let b = Matrix::from_fn(n, n, |i, j| f((i * 19 + j * 5 + 2) as i64));
        let mut clique = Clique::new(n);
        let (p, q) = distance_product_with_witness(
            &mut clique,
            &RowMatrix::from_matrix(&a),
            &RowMatrix::from_matrix(&b),
        );
        let expected = Matrix::mul(&MinPlus, &a, &b);
        assert_eq!(p.to_matrix(), expected);
        for u in 0..n {
            for v in 0..n {
                let d = p.row(u)[v];
                if d.is_finite() {
                    let w = q.row(u)[v];
                    assert!(w < n, "witness out of range for finite entry ({u},{v})");
                    assert_eq!(
                        a.row(u)[w] + b.row(w)[v],
                        d,
                        "witness must certify ({u},{v})"
                    );
                }
            }
        }
    }

    #[test]
    fn rounds_scale_like_cube_root() {
        // Rounds at n=216 should be roughly 2x rounds at n=27 (cube root),
        // far below the 8x a linear-round algorithm would show.
        let rounds = |n: usize| {
            let a = rand_matrix(n, 3);
            let b = rand_matrix(n, 4);
            let mut clique = Clique::new(n);
            multiply(
                &mut clique,
                &IntRing,
                &RowMatrix::from_matrix(&a),
                &RowMatrix::from_matrix(&b),
            );
            clique.rounds() as f64
        };
        let (r27, r216) = (rounds(27), rounds(216));
        let ratio = r216 / r27;
        assert!(
            ratio < 4.0,
            "rounds grew {ratio:.2}x from n=27 ({r27}) to n=216 ({r216}); expected ~2x"
        );
    }

    #[test]
    fn communication_pattern_is_oblivious() {
        let fingerprint = |seed: u64| {
            let cfg = CliqueConfig {
                record_patterns: true,
                ..CliqueConfig::default()
            };
            let mut clique = Clique::with_config(27, cfg);
            let a = rand_matrix(27, seed);
            let b = rand_matrix(27, seed + 1);
            multiply(
                &mut clique,
                &IntRing,
                &RowMatrix::from_matrix(&a),
                &RowMatrix::from_matrix(&b),
            );
            clique.stats().pattern_fingerprints().to_vec()
        };
        assert_eq!(
            fingerprint(10),
            fingerprint(77),
            "pattern must not depend on inputs"
        );
    }
}
