//! Boolean matrix products through the fast integer path.
//!
//! A Boolean product `A·B` over the semiring `({0,1}, ∨, ∧)` equals the
//! integer product thresholded at zero, so the fast bilinear algorithm
//! (which needs a ring) applies: this is how the paper's cycle-detection,
//! girth, and Seidel algorithms obtain their Boolean products in
//! `O(n^ρ)` rounds (e.g. the remark below Lemma 11).

use crate::fast_mm;
use crate::row_matrix::RowMatrix;
use cc_algebra::{BilinearAlgorithm, IntRing};
use cc_clique::Clique;

/// Boolean matrix product via integer fast multiplication: entry `(u,v)` is
/// `true` iff some `w` has `A[u][w] ∧ B[w][v]`.
///
/// Intermediate integer values are bounded by `n`, so single-word entries
/// suffice.
pub fn multiply(
    clique: &mut Clique,
    alg: &BilinearAlgorithm,
    a: &RowMatrix<bool>,
    b: &RowMatrix<bool>,
) -> RowMatrix<bool> {
    // The 0/1 lift and the threshold are per-row node-local work; fan them
    // out on the clique's backend like the product itself does.
    let exec = clique.executor();
    let ia = a.par_map(&exec, |&x| i64::from(x));
    let ib = b.par_map(&exec, |&x| i64::from(x));
    let p = clique.phase("boolmm", |c| fast_mm::multiply(c, &IntRing, alg, &ia, &ib));
    p.par_map(&exec, |&x| x != 0)
}

/// `A·B ∨ C` in one pass — the recurring shape of the paper's reachability
/// recurrences (equation (4): `B⁽ⁱ⁾ = (B⁽ʲ⁾ B⁽ᵏ⁾) ∨ A`).
///
/// The zero-threshold of the integer product and the `∨ C` are fused into a
/// single indexed pass over the product rows, so no intermediate Boolean
/// matrix is materialised between them.
pub fn multiply_or(
    clique: &mut Clique,
    alg: &BilinearAlgorithm,
    a: &RowMatrix<bool>,
    b: &RowMatrix<bool>,
    c: &RowMatrix<bool>,
) -> RowMatrix<bool> {
    let exec = clique.executor();
    let ia = a.par_map(&exec, |&x| i64::from(x));
    let ib = b.par_map(&exec, |&x| i64::from(x));
    let p = clique.phase("boolmm", |cl| {
        fast_mm::multiply(cl, &IntRing, alg, &ia, &ib)
    });
    p.par_map_indexed(&exec, |u, v, &x| x != 0 || c.row(u)[v])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fast_plan::FastPlan;
    use cc_algebra::{BoolSemiring, Matrix};

    #[test]
    fn matches_boolean_semiring_product() {
        for n in [4, 9, 14] {
            let a = Matrix::from_fn(n, n, |i, j| (i * 5 + j) % 3 == 0);
            let b = Matrix::from_fn(n, n, |i, j| (i + 2 * j) % 4 == 1);
            let alg = FastPlan::best_strassen(n);
            let mut clique = Clique::new(n);
            let p = multiply(
                &mut clique,
                &alg,
                &RowMatrix::from_matrix(&a),
                &RowMatrix::from_matrix(&b),
            );
            assert_eq!(p.to_matrix(), Matrix::mul(&BoolSemiring, &a, &b), "n={n}");
        }
    }

    #[test]
    fn multiply_or_folds_in_the_adjacency() {
        let n = 6;
        // Directed path 0→1→…→5: A² reaches two steps, A²∨A reaches one or two.
        let a = Matrix::from_fn(n, n, |i, j| j == i + 1);
        let alg = FastPlan::best_strassen(n);
        let mut clique = Clique::new(n);
        let rm = RowMatrix::from_matrix(&a);
        let p = multiply_or(&mut clique, &alg, &rm, &rm, &rm);
        assert!(p.row(0)[1] && p.row(0)[2]);
        assert!(!p.row(0)[3]);
    }
}
