//! Sparse matrix multiplication in the congested clique (Le Gall,
//! PODC 2016, "Further Algebraic Algorithms in the Congested Clique
//! Model").
//!
//! Where the paper's Theorem 1 algorithms move `Θ(n²)`-and-up words no
//! matter what the matrices contain, Le Gall's follow-up shows the model
//! rewards *sparseness*: the product `P = S·T` is the sum of outer products
//! `Σ_k col_k(S) · row_k(T)`, only `W = Σ_k nnz(col_k(S)) · nnz(row_k(T))`
//! elementary products exist, and a clique can spread exactly those over
//! its `n` nodes. This module implements that scheme on the simulator:
//!
//! 1. **Census** — one exchange (a single word per nonzero of `S`) and one
//!    broadcast make the per-index nonzero counts global knowledge; every
//!    node then builds the *same* [`SparsePlan`] (the nnz-aware helper
//!    tiling).
//! 2. **Ship** — each `S` entry travels to the helper row-chunks of its
//!    column, each `T` entry to the helper column-chunks of its row
//!    (balanced routing with honest per-message headers — the pattern is
//!    data-dependent, unlike the oblivious dense algorithms).
//! 3. **Combine** — helpers multiply their tile, pre-aggregate per product
//!    cell, and route the surviving contributions to the row owners, which
//!    fold them with `⊕`.
//!
//! Costs scale with `W/n` instead of `n^{4/3}`-ish: constant rounds for
//! bounded-degree instances, with the dense engines ([`fast_mm`] /
//! [`semiring_mm`]) strictly better once density stops paying. The
//! [`multiply_auto`] / [`multiply_auto_ring`] /
//! [`distance_product_with_witness_auto`] front doors make that call from
//! the census counts (override with `CC_MM=sparse|dense`), so callers like
//! triangle counting and APSP pick the right engine per instance — and, for
//! APSP, per squaring, as iterated products densify.
//!
//! All node-local work fans out on the clique's configured executor and all
//! communication uses the `_par` primitives, so results, rounds, words, and
//! fingerprints are bit-identical across Sequential/Parallel/Spawn backends.

use crate::fast_mm;
use crate::row_matrix::RowMatrix;
use crate::semiring_mm;
use crate::sparse_plan::SparsePlan;
use cc_algebra::{Dist, MinPlus, Ring, Semiring, INFINITY};
use cc_clique::{pack_pair, unpack_pair, Clique, WordReader, WordWriter};
use std::collections::BTreeMap;

/// Which multiplication engine a dispatching front door selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmKind {
    /// The nnz-aware outer-product path of this module.
    Sparse,
    /// A dense Theorem 1 engine ([`fast_mm`] for rings, [`semiring_mm`]
    /// otherwise).
    Dense,
}

/// The engine forced by the `CC_MM` environment variable (`sparse` /
/// `dense`), or `None` for automatic density dispatch (unset or any other
/// value). CI uses `CC_MM=sparse` to run the whole suite through the
/// sparse path.
#[must_use]
pub fn forced_kind() -> Option<MmKind> {
    match std::env::var("CC_MM").ok()?.to_ascii_lowercase().as_str() {
        "sparse" => Some(MmKind::Sparse),
        "dense" => Some(MmKind::Dense),
        _ => None,
    }
}

/// What a dense 3D run of this size costs in routed words: scatter ships
/// each operand row to `p` destinations per block and the gather returns
/// `n³/p²` partial-row words, each delivered over balanced routing's two
/// hops. (The fast bilinear engine lands in the same ballpark at the sizes
/// this simulator runs, so one dense yardstick serves both front doors.)
#[must_use]
pub fn dense_words_estimate(n: usize, width: usize) -> u128 {
    let p = crate::Plan3d::new(n).p() as u128;
    let n = n as u128;
    2 * width as u128 * (2 * n * n * p + n * n * n / (p * p))
}

/// The density decision: sparse iff the plan's estimated route traffic
/// undercuts the dense engine's ([`dense_words_estimate`]). The `CC_MM`
/// override wins when set. The inputs are global knowledge after the
/// census, so every node (and every executor backend) makes the same call.
#[must_use]
pub fn choose(plan: &SparsePlan, width: usize) -> MmKind {
    if let Some(kind) = forced_kind() {
        return kind;
    }
    if plan.estimated_words(width) <= dense_words_estimate(plan.n(), width) {
        MmKind::Sparse
    } else {
        MmKind::Dense
    }
}

/// The census: one ping exchange (node `x` sends a word to `k` per nonzero
/// `S[x][k]`; per-link loads are ≤ 1, so this is one round) plus one
/// broadcast of `(nnz(col_k(S)), nnz(row_k(T)))` pairs. Returns the plan
/// every node now agrees on.
fn census<S: Semiring + Sync>(
    clique: &mut Clique,
    s: &S,
    a: &RowMatrix<S::Elem>,
    b: &RowMatrix<S::Elem>,
) -> SparsePlan
where
    S::Elem: Send + Sync,
{
    let n = clique.n();
    let exec = clique.executor();
    let supports: Vec<Vec<usize>> = exec.map(n, |x| {
        a.row(x)
            .iter()
            .enumerate()
            .filter(|(_, e)| !s.is_zero(e))
            .map(|(k, _)| k)
            .collect()
    });
    let b_nnz: Vec<usize> = exec.map(n, |k| b.row(k).iter().filter(|e| !s.is_zero(e)).count());
    let pings = clique.phase("sparsemm.census", |c| {
        c.exchange_par(|x| supports[x].iter().map(|&k| (k, vec![1u64])).collect())
    });
    let counts = clique.broadcast(|k| pack_pair(pings.total_received(k), b_nnz[k]));
    let (a_col, b_row): (Vec<usize>, Vec<usize>) = counts.into_iter().map(unpack_pair).unzip();
    SparsePlan::new(&a_col, &b_row)
}

/// Ships the nonzeros of `a` to their helper row-chunks and the nonzeros of
/// `b` to their helper column-chunks, then has every helper return its
/// tile's aggregated contributions to the row owners. `combine` folds one
/// tile's worth of `(x, z, S[x][k]·T[k][z])` products into the helper's
/// accumulator; `emit`/`fold` fix the wire format of one accumulated cell.
///
/// Shared by the plain and the witnessed products — the only difference
/// between them is the accumulator type and the per-cell wire format.
#[allow(clippy::too_many_arguments)] // the three callbacks ARE the interface
fn run_helpers<S, Acc, Out, Emit, Fold>(
    clique: &mut Clique,
    s: &S,
    plan: &SparsePlan,
    a: &RowMatrix<S::Elem>,
    b: &RowMatrix<S::Elem>,
    combine: impl Fn(&mut BTreeMap<(usize, usize), Acc>, usize, usize, usize, &S::Elem, &S::Elem) + Sync,
    emit: Emit,
    fold: Fold,
) -> Vec<Vec<Out>>
where
    S: Semiring + Sync,
    S::Elem: Send + Sync,
    Acc: Send + Sync,
    Out: Send,
    Emit: Fn(&Acc, &mut WordWriter) + Sync,
    Fold: Fn(&mut Vec<Out>, usize, &mut WordReader<'_>) + Sync,
{
    let n = clique.n();
    let exec = clique.executor();

    // ---- Ship: S entries to helper row-chunks, T entries to column-chunks.
    // Two hops per entry (Lemma-13 style): the owner sends each entry
    // *once*, to the chunk's anchor slot (`j = 0` for S, `i = 0` for T);
    // anchors then forward along their grid row/column. A dense row would
    // otherwise have to replicate itself `gᵃ`-fold from one node — the
    // forwarding load instead lands on distinct helper nodes and balances.
    // Both sides travel in the *same* routed step (records carry a side
    // tag in the spare top bit of the index word), so the ship costs two
    // round trips total, not four. The patterns depend on the nonzero
    // structure (only the *counts* are global), so both hops pay
    // route_dynamic's per-message header. Records are
    // `[side-tagged pack_pair(inner index, row/col index), element]`,
    // concatenated into **one message per destination**: the balanced
    // router draws relays per word *position within a message*, so many
    // tiny same-destination messages would stack their first words onto
    // one relay link, while a single long message spreads evenly.
    const SIDE_T: u64 = 1 << 63;
    let record = |w: &mut WordWriter, tagged: u64, e: &S::Elem| {
        w.push(tagged);
        s.write_elem(e, w);
    };
    let flush = |msgs: BTreeMap<usize, WordWriter>| -> Vec<(usize, Vec<u64>)> {
        msgs.into_iter().map(|(d, w)| (d, w.into_words())).collect()
    };
    // Decode one ship inbox into per-(inner index) S-side and T-side
    // entry lists.
    let decode = |inbox: &cc_clique::Inboxes, h: usize| {
        let mut sa: BTreeMap<usize, Vec<(usize, S::Elem)>> = BTreeMap::new();
        let mut sb: BTreeMap<usize, Vec<(usize, S::Elem)>> = BTreeMap::new();
        for src in 0..n {
            let mut rd = WordReader::new(inbox.received(h, src));
            while !rd.is_exhausted() {
                let tagged = rd.next();
                let (k, idx) = unpack_pair(tagged & !SIDE_T);
                let e = s.read_elem(&mut rd);
                let side = if tagged & SIDE_T == 0 {
                    &mut sa
                } else {
                    &mut sb
                };
                side.entry(k).or_default().push((idx, e));
            }
        }
        (sa, sb)
    };
    let seeds = clique.phase("sparsemm.ship", |c| {
        c.route_dynamic_par(|v| {
            let mut msgs: BTreeMap<usize, WordWriter> = BTreeMap::new();
            for (k, e) in a.row(v).iter().enumerate() {
                if s.is_zero(e) || plan.grid(k).is_none() {
                    continue;
                }
                let i = plan.row_group(k, v);
                record(
                    msgs.entry(plan.helper(k, i, 0)).or_default(),
                    pack_pair(k, v),
                    e,
                );
            }
            // Node v owns row v of T; its inner index is v itself.
            if plan.grid(v).is_some() {
                for (z, e) in b.row(v).iter().enumerate() {
                    if s.is_zero(e) {
                        continue;
                    }
                    let j = plan.col_group(v, z);
                    record(
                        msgs.entry(plan.helper(v, 0, j)).or_default(),
                        pack_pair(v, z) | SIDE_T,
                        e,
                    );
                }
            }
            flush(msgs)
        })
    });
    // Each node parses its seed inbox exactly once (on the executor); the
    // forward and combine phases both read from this.
    let seed_ent = exec.map(n, |h| decode(&seeds, h));
    // Anchors forward their chunk to the rest of the grid row/column.
    let fwds = clique.phase("sparsemm.ship", |c| {
        c.route_dynamic_par(|h| {
            let (sa, sb) = &seed_ent[h];
            let mut msgs: BTreeMap<usize, WordWriter> = BTreeMap::new();
            for &(k, i, j) in plan.slots_of(h) {
                let g = plan.grid(k).expect("slot implies grid");
                if j == 0 {
                    if let Some(av) = sa.get(&k) {
                        for (x, e) in av {
                            if plan.row_group(k, *x) != i {
                                continue;
                            }
                            for jj in 1..g.gb {
                                record(
                                    msgs.entry(plan.helper(k, i, jj)).or_default(),
                                    pack_pair(k, *x),
                                    e,
                                );
                            }
                        }
                    }
                }
                if i == 0 {
                    if let Some(bv) = sb.get(&k) {
                        for (z, e) in bv {
                            if plan.col_group(k, *z) != j {
                                continue;
                            }
                            for ii in 1..g.ga {
                                record(
                                    msgs.entry(plan.helper(k, ii, j)).or_default(),
                                    pack_pair(k, *z) | SIDE_T,
                                    e,
                                );
                            }
                        }
                    }
                }
            }
            flush(msgs)
        })
    });
    let fwd_ent = exec.map(n, |h| decode(&fwds, h));
    // Merge each node's anchored seeds with the forwards it received and
    // sort by index, so the accumulation order is a function of the data
    // alone (cheap pointer moves; the parses above were the real work).
    let mut entries = Vec::with_capacity(n);
    for ((mut sa, mut sb), (fa, fb)) in seed_ent.into_iter().zip(fwd_ent) {
        for (k, v) in fa {
            sa.entry(k).or_default().extend(v);
        }
        for (k, v) in fb {
            sb.entry(k).or_default().extend(v);
        }
        for v in sa.values_mut().chain(sb.values_mut()) {
            v.sort_by_key(|e| e.0);
        }
        entries.push((sa, sb));
    }

    // ---- Combine: helpers multiply their tiles, pre-aggregating per
    // product cell, and route the surviving contributions to row owners.
    let contrib = clique.phase("sparsemm.combine", |c| {
        c.route_dynamic_par(|h| {
            let (a_ent, b_ent) = &entries[h];
            // Served slots come in ascending (k, i, j) order, and entries
            // in ascending index order — the accumulation is deterministic
            // regardless of which worker runs it.
            let mut acc: BTreeMap<(usize, usize), Acc> = BTreeMap::new();
            for &(k, i, j) in plan.slots_of(h) {
                let (Some(av), Some(bv)) = (a_ent.get(&k), b_ent.get(&k)) else {
                    continue;
                };
                for (x, ax) in av {
                    if plan.row_group(k, *x) != i {
                        continue;
                    }
                    for (z, bz) in bv {
                        if plan.col_group(k, *z) != j {
                            continue;
                        }
                        combine(&mut acc, k, *x, *z, ax, bz);
                    }
                }
            }
            // One message per destination row owner.
            let mut out: Vec<(usize, Vec<u64>)> = Vec::new();
            let mut cur: Option<(usize, WordWriter)> = None;
            for ((x, z), v) in &acc {
                match &mut cur {
                    Some((cx, w)) if cx == x => {
                        w.push(*z as u64);
                        emit(v, w);
                    }
                    _ => {
                        if let Some((cx, w)) = cur.take() {
                            out.push((cx, w.into_words()));
                        }
                        let mut w = WordWriter::new();
                        w.push(*z as u64);
                        emit(v, &mut w);
                        cur = Some((*x, w));
                    }
                }
            }
            if let Some((cx, w)) = cur.take() {
                out.push((cx, w.into_words()));
            }
            out
        })
    });

    // ---- Fold: row owners merge contributions in (source, record) order.
    exec.map(n, |x| {
        let mut row: Vec<Out> = Vec::new();
        for src in 0..n {
            let mut rd = WordReader::new(contrib.received(x, src));
            while !rd.is_exhausted() {
                let z = rd.next() as usize;
                fold(&mut row, z, &mut rd);
            }
        }
        row
    })
}

/// Computes `P = S·T` over any semiring with the sparse outer-product
/// scheme, in rounds that scale with the inputs' nonzero structure rather
/// than `n`. Inputs and output follow the row-ownership convention.
///
/// Always runs the sparse path; use [`multiply_auto`] /
/// [`multiply_auto_ring`] to fall back to a dense engine when sparsity
/// doesn't pay.
///
/// # Panics
///
/// Panics if the operand dimensions differ from the clique size.
///
/// # Examples
///
/// ```rust
/// use cc_algebra::{IntRing, Matrix};
/// use cc_clique::Clique;
/// use cc_core::{sparse_mm, RowMatrix};
///
/// let n = 12;
/// // A sparse band matrix squared.
/// let a = Matrix::from_fn(n, n, |i, j| i64::from(j == (i + 1) % n || j == (i + 5) % n));
/// let mut clique = Clique::new(n);
/// let p = sparse_mm::multiply(
///     &mut clique,
///     &IntRing,
///     &RowMatrix::from_matrix(&a),
///     &RowMatrix::from_matrix(&a),
/// );
/// assert_eq!(p.to_matrix(), Matrix::mul(&IntRing, &a, &a));
/// ```
pub fn multiply<S: Semiring + Sync>(
    clique: &mut Clique,
    s: &S,
    a: &RowMatrix<S::Elem>,
    b: &RowMatrix<S::Elem>,
) -> RowMatrix<S::Elem>
where
    S::Elem: Send + Sync,
{
    let n = clique.n();
    assert_eq!(a.n(), n, "operand A dimension must equal clique size");
    assert_eq!(b.n(), n, "operand B dimension must equal clique size");
    clique.phase("sparsemm", |clique| {
        let plan = census(clique, s, a, b);
        multiply_with_plan(clique, s, &plan, a, b)
    })
}

/// [`multiply`] with the census already done — the plan must have been
/// built from exactly these operands' nonzero counts.
fn multiply_with_plan<S: Semiring + Sync>(
    clique: &mut Clique,
    s: &S,
    plan: &SparsePlan,
    a: &RowMatrix<S::Elem>,
    b: &RowMatrix<S::Elem>,
) -> RowMatrix<S::Elem>
where
    S::Elem: Send + Sync,
{
    let n = clique.n();
    let rows = run_helpers(
        clique,
        s,
        plan,
        a,
        b,
        |acc, _k, x, z, ax, bz| {
            let p = s.mul(ax, bz);
            acc.entry((x, z))
                .and_modify(|cur| *cur = s.add(cur, &p))
                .or_insert(p);
        },
        |v, w| s.write_elem(v, w),
        |row: &mut Vec<(usize, S::Elem)>, z, rd| {
            let e = s.read_elem(rd);
            row.push((z, e));
        },
    );
    RowMatrix::from_rows(
        rows.into_iter()
            .map(|contribs| {
                let mut row = vec![s.zero(); n];
                for (z, e) in contribs {
                    row[z] = s.add(&row[z], &e);
                }
                row
            })
            .collect(),
    )
}

/// Density-dispatching product over any semiring: runs the census, then
/// picks the sparse path or the dense 3D [`semiring_mm`] engine per
/// [`choose`] (the census' constant-round cost is the price of deciding —
/// skipped entirely when `CC_MM=dense` has already made the call).
///
/// # Panics
///
/// Panics if the operand dimensions differ from the clique size.
pub fn multiply_auto<S: Semiring + Sync>(
    clique: &mut Clique,
    s: &S,
    a: &RowMatrix<S::Elem>,
    b: &RowMatrix<S::Elem>,
) -> RowMatrix<S::Elem>
where
    S::Elem: Send + Sync,
{
    let n = clique.n();
    assert_eq!(a.n(), n, "operand A dimension must equal clique size");
    assert_eq!(b.n(), n, "operand B dimension must equal clique size");
    clique.phase("sparsemm.auto", |clique| {
        if forced_kind() == Some(MmKind::Dense) {
            return semiring_mm::multiply(clique, s, a, b);
        }
        let plan = census(clique, s, a, b);
        match choose(&plan, s.elem_width()) {
            MmKind::Sparse => multiply_with_plan(clique, s, &plan, a, b),
            MmKind::Dense => semiring_mm::multiply(clique, s, a, b),
        }
    })
}

/// Density-dispatching product over a ring: like [`multiply_auto`], but the
/// dense fallback is the fast bilinear engine
/// ([`fast_mm::multiply_auto`]) — the repo's dense champion for rings.
///
/// # Panics
///
/// Panics if the operand dimensions differ from the clique size.
pub fn multiply_auto_ring<R: Ring + Sync>(
    clique: &mut Clique,
    ring: &R,
    a: &RowMatrix<R::Elem>,
    b: &RowMatrix<R::Elem>,
) -> RowMatrix<R::Elem>
where
    R::Elem: Send + Sync,
{
    let n = clique.n();
    assert_eq!(a.n(), n, "operand A dimension must equal clique size");
    assert_eq!(b.n(), n, "operand B dimension must equal clique size");
    clique.phase("sparsemm.auto", |clique| {
        if forced_kind() == Some(MmKind::Dense) {
            return fast_mm::multiply_auto(clique, ring, a, b);
        }
        let plan = census(clique, ring, a, b);
        match choose(&plan, ring.elem_width()) {
            MmKind::Sparse => multiply_with_plan(clique, ring, &plan, a, b),
            MmKind::Dense => fast_mm::multiply_auto(clique, ring, a, b),
        }
    })
}

/// The sparse min-plus distance product **with witnesses**: like
/// [`semiring_mm::distance_product_with_witness`], returns `(P, Q)` with
/// `P[u][v] = S[u][w] + T[w][v]` for `w = Q[u][v]` whenever finite, ties
/// broken toward the smallest witness index — the same global rule as the
/// dense engine, so the two paths return identical tables and APSP can
/// switch between them per squaring.
///
/// "Nonzero" here means *finite* (`∞` is the semiring zero), so the cost
/// scales with the number of finite entries — for the first squarings of a
/// sparse graph's weight matrix, that is the edge count.
///
/// # Panics
///
/// Panics if the operand dimensions differ from the clique size.
pub fn distance_product_with_witness(
    clique: &mut Clique,
    a: &RowMatrix<Dist>,
    b: &RowMatrix<Dist>,
) -> (RowMatrix<Dist>, RowMatrix<usize>) {
    let n = clique.n();
    assert_eq!(a.n(), n, "operand A dimension must equal clique size");
    assert_eq!(b.n(), n, "operand B dimension must equal clique size");
    clique.phase("sparsemm.witness", |clique| {
        let plan = census(clique, &MinPlus, a, b);
        witness_with_plan(clique, &plan, a, b)
    })
}

/// [`distance_product_with_witness`] with the census already done.
fn witness_with_plan(
    clique: &mut Clique,
    plan: &SparsePlan,
    a: &RowMatrix<Dist>,
    b: &RowMatrix<Dist>,
) -> (RowMatrix<Dist>, RowMatrix<usize>) {
    let n = clique.n();
    let s = MinPlus;
    let rows = run_helpers(
        clique,
        &s,
        plan,
        a,
        b,
        |acc: &mut BTreeMap<(usize, usize), (Dist, usize)>, k, x, z, ax, bz| {
            let cand = *ax + *bz;
            acc.entry((x, z))
                .and_modify(|cur| {
                    if cand < cur.0 || (cand == cur.0 && k < cur.1) {
                        *cur = (cand, k);
                    }
                })
                .or_insert((cand, k));
        },
        |(d, w), wtr| {
            wtr.push(d.raw() as u64);
            wtr.push(*w as u64);
        },
        |row: &mut Vec<(usize, Dist, usize)>, z, rd| {
            let d = Dist::from_raw(rd.next() as i64);
            let w = rd.next() as usize;
            row.push((z, d, w));
        },
    );
    let (dist_rows, wit_rows) = rows
        .into_iter()
        .map(|contribs| {
            let mut drow = vec![INFINITY; n];
            let mut qrow = vec![usize::MAX; n];
            for (z, d, w) in contribs {
                if d < drow[z] || (d == drow[z] && w < qrow[z]) {
                    drow[z] = d;
                    qrow[z] = w;
                }
            }
            (drow, qrow)
        })
        .unzip();
    (
        RowMatrix::from_rows(dist_rows),
        RowMatrix::from_rows(wit_rows),
    )
}

/// Density-dispatching witnessed distance product: census, then the sparse
/// path or the dense 3D engine per [`choose`]. Both branches return
/// identical `(P, Q)` tables (same witness tie-break), so this is a drop-in
/// engine for APSP's iterated squaring — early sparse squarings go through
/// the cheap path, later densified ones through the 3D algorithm.
///
/// # Panics
///
/// Panics if the operand dimensions differ from the clique size.
pub fn distance_product_with_witness_auto(
    clique: &mut Clique,
    a: &RowMatrix<Dist>,
    b: &RowMatrix<Dist>,
) -> (RowMatrix<Dist>, RowMatrix<usize>) {
    let n = clique.n();
    assert_eq!(a.n(), n, "operand A dimension must equal clique size");
    assert_eq!(b.n(), n, "operand B dimension must equal clique size");
    clique.phase("sparsemm.auto", |clique| {
        if forced_kind() == Some(MmKind::Dense) {
            return semiring_mm::distance_product_with_witness(clique, a, b);
        }
        let plan = census(clique, &MinPlus, a, b);
        // Witness entries travel as (distance, witness) pairs: width 2.
        match choose(&plan, 2) {
            MmKind::Sparse => witness_with_plan(clique, &plan, a, b),
            MmKind::Dense => semiring_mm::distance_product_with_witness(clique, a, b),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_algebra::{BoolSemiring, IntRing, Matrix};

    fn rand_sparse(n: usize, avg_nnz_per_row: usize, seed: u64) -> Matrix<i64> {
        let mut st = seed;
        let mut step = move || {
            st = st
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            st >> 33
        };
        let mut m = Matrix::filled(n, n, 0i64);
        for i in 0..n {
            for _ in 0..avg_nnz_per_row {
                let j = (step() as usize) % n;
                m[(i, j)] = (step() % 9) as i64 - 4;
            }
        }
        m
    }

    fn rand_dense(n: usize, seed: u64) -> Matrix<i64> {
        let mut st = seed;
        Matrix::from_fn(n, n, |_, _| {
            st = st
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((st >> 33) % 9) as i64 - 4
        })
    }

    #[test]
    fn matches_local_product_across_densities() {
        for n in [2, 5, 9, 16, 30] {
            for nnz in [0, 1, 3, n] {
                let a = rand_sparse(n, nnz, 10 + n as u64 + nnz as u64);
                let b = rand_sparse(n, nnz, 99 + n as u64);
                let mut clique = Clique::new(n);
                let p = multiply(
                    &mut clique,
                    &IntRing,
                    &RowMatrix::from_matrix(&a),
                    &RowMatrix::from_matrix(&b),
                );
                assert_eq!(
                    p.to_matrix(),
                    Matrix::mul(&IntRing, &a, &b),
                    "n={n} nnz={nnz}"
                );
            }
        }
    }

    #[test]
    fn matches_local_product_on_fully_dense_matrices() {
        // The sparse path must stay *correct* when nothing is sparse; the
        // dispatcher exists to make it *fast* too.
        for n in [4, 11, 20] {
            let a = rand_dense(n, 7);
            let b = rand_dense(n, 8);
            let mut clique = Clique::new(n);
            let p = multiply(
                &mut clique,
                &IntRing,
                &RowMatrix::from_matrix(&a),
                &RowMatrix::from_matrix(&b),
            );
            assert_eq!(p.to_matrix(), Matrix::mul(&IntRing, &a, &b), "n={n}");
        }
    }

    #[test]
    fn boolean_and_minplus_semirings_work() {
        let n = 14;
        let ab = Matrix::from_fn(n, n, |i, j| (i * 3 + j) % 5 == 0);
        let bb = Matrix::from_fn(n, n, |i, j| (i + 2 * j) % 7 == 1);
        let mut clique = Clique::new(n);
        let p = multiply(
            &mut clique,
            &BoolSemiring,
            &RowMatrix::from_matrix(&ab),
            &RowMatrix::from_matrix(&bb),
        );
        assert_eq!(p.to_matrix(), Matrix::mul(&BoolSemiring, &ab, &bb));

        let f = |x: usize| {
            if x.is_multiple_of(3) {
                INFINITY
            } else {
                Dist::finite((x % 13) as i64)
            }
        };
        let am = Matrix::from_fn(n, n, |i, j| f(i * 7 + j));
        let bm = Matrix::from_fn(n, n, |i, j| f(i + 5 * j + 2));
        let mut clique = Clique::new(n);
        let p = multiply(
            &mut clique,
            &MinPlus,
            &RowMatrix::from_matrix(&am),
            &RowMatrix::from_matrix(&bm),
        );
        assert_eq!(p.to_matrix(), Matrix::mul(&MinPlus, &am, &bm));
    }

    #[test]
    fn witnessed_product_matches_dense_engine_exactly() {
        // Same distances AND same witnesses: the tie-break rule (smallest
        // witness among minimal candidates) is global, so sparse and dense
        // must agree bit-for-bit — the property APSP's per-squaring
        // dispatch relies on.
        let n = 18;
        let f = |x: usize| {
            if x.is_multiple_of(4) {
                INFINITY
            } else {
                Dist::finite((x % 11) as i64)
            }
        };
        let a = Matrix::from_fn(n, n, |i, j| f(i * 3 + j * 17));
        let b = Matrix::from_fn(n, n, |i, j| f(i * 19 + j * 5 + 2));
        let (ra, rb) = (RowMatrix::from_matrix(&a), RowMatrix::from_matrix(&b));
        let mut c1 = Clique::new(n);
        let (pd, qd) = semiring_mm::distance_product_with_witness(&mut c1, &ra, &rb);
        let mut c2 = Clique::new(n);
        let (ps, qs) = distance_product_with_witness(&mut c2, &ra, &rb);
        assert_eq!(ps.to_matrix(), pd.to_matrix(), "distances");
        for u in 0..n {
            for v in 0..n {
                if ps.row(u)[v].is_finite() {
                    assert_eq!(qs.row(u)[v], qd.row(u)[v], "witness mismatch at ({u},{v})");
                }
            }
        }
    }

    #[test]
    fn sparse_beats_fast_mm_on_rounds_and_words_for_sparse_inputs() {
        // The acceptance criterion: on a genuinely sparse instance the
        // sparse path must win *both* cost metrics against the dense
        // bilinear engine — asserted, not just benched.
        let n = 64;
        let a = rand_sparse(n, 2, 5);
        let b = rand_sparse(n, 2, 6);
        let (ra, rb) = (RowMatrix::from_matrix(&a), RowMatrix::from_matrix(&b));
        let mut cs = Clique::new(n);
        let ps = multiply(&mut cs, &IntRing, &ra, &rb);
        let mut cd = Clique::new(n);
        let pd = fast_mm::multiply_auto(&mut cd, &IntRing, &ra, &rb);
        assert_eq!(ps.to_matrix(), pd.to_matrix(), "same product");
        assert!(
            cs.rounds() < cd.rounds(),
            "sparse rounds {} must beat dense rounds {}",
            cs.rounds(),
            cd.rounds()
        );
        assert!(
            cs.stats().words() < cd.stats().words(),
            "sparse words {} must beat dense words {}",
            cs.stats().words(),
            cd.stats().words()
        );
    }

    #[test]
    fn rounds_scale_with_density_not_size() {
        // Bounded-degree instances: rounds stay flat as n quadruples.
        let rounds = |n: usize| {
            let a = rand_sparse(n, 2, 3);
            let mut clique = Clique::new(n);
            let _ = multiply(
                &mut clique,
                &IntRing,
                &RowMatrix::from_matrix(&a),
                &RowMatrix::from_matrix(&a),
            );
            clique.rounds()
        };
        let (small, large) = (rounds(32), rounds(128));
        assert!(
            large <= small + 16,
            "density-bound rounds expected: {small} at n=32 vs {large} at n=128"
        );
    }

    #[test]
    fn dispatcher_picks_sparse_for_sparse_and_dense_for_dense() {
        // When CC_MM is set — as in the forced-sparse CI lane — the
        // override wins over every density estimate; the auto decision is
        // only observable without it.
        if let Some(kind) = forced_kind() {
            let any = SparsePlan::new(&[2, 2], &[2, 2]);
            assert_eq!(choose(&any, 1), kind, "override must win");
            return;
        }
        let n = 64;
        let sparse_plan = SparsePlan::new(&vec![2; n], &vec![2; n]);
        assert_eq!(choose(&sparse_plan, 1), MmKind::Sparse);
        let dense_plan = SparsePlan::new(&vec![n; n], &vec![n; n]);
        assert_eq!(choose(&dense_plan, 1), MmKind::Dense);
        // Moderate density is worth the sparse path only while the product
        // volume undercuts the dense engine's traffic: avg 8 nnz/row still
        // pays at n = 64, avg 16 no longer does.
        assert_eq!(
            choose(&SparsePlan::new(&vec![8; n], &vec![8; n]), 1),
            MmKind::Sparse
        );
        assert_eq!(
            choose(&SparsePlan::new(&vec![16; n], &vec![16; n]), 1),
            MmKind::Dense
        );
    }

    #[test]
    fn auto_front_doors_agree_with_reference() {
        for (n, nnz) in [(10, 2), (24, 3), (24, 24)] {
            let a = rand_sparse(n, nnz, 41);
            let b = rand_sparse(n, nnz, 42);
            let (ra, rb) = (RowMatrix::from_matrix(&a), RowMatrix::from_matrix(&b));
            let expected = Matrix::mul(&IntRing, &a, &b);
            let mut c1 = Clique::new(n);
            assert_eq!(
                multiply_auto(&mut c1, &IntRing, &ra, &rb).to_matrix(),
                expected,
                "semiring auto n={n} nnz={nnz}"
            );
            let mut c2 = Clique::new(n);
            assert_eq!(
                multiply_auto_ring(&mut c2, &IntRing, &ra, &rb).to_matrix(),
                expected,
                "ring auto n={n} nnz={nnz}"
            );
        }
    }

    #[test]
    fn witnessed_auto_certifies_its_product() {
        let n = 16;
        let f = |x: usize| {
            if x % 5 < 3 {
                INFINITY
            } else {
                Dist::finite((x % 7) as i64)
            }
        };
        let a = Matrix::from_fn(n, n, |i, j| f(i * 13 + j));
        let b = Matrix::from_fn(n, n, |i, j| f(i + j * 11 + 4));
        let (ra, rb) = (RowMatrix::from_matrix(&a), RowMatrix::from_matrix(&b));
        let mut clique = Clique::new(n);
        let (p, q) = distance_product_with_witness_auto(&mut clique, &ra, &rb);
        assert_eq!(p.to_matrix(), Matrix::mul(&MinPlus, &a, &b));
        for u in 0..n {
            for v in 0..n {
                if p.row(u)[v].is_finite() {
                    let w = q.row(u)[v];
                    assert!(w < n);
                    assert_eq!(a.row(u)[w] + b.row(w)[v], p.row(u)[v]);
                }
            }
        }
    }
}
