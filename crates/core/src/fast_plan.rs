//! Partitioning plan for the fast bilinear algorithm (paper §2.2, Figure 2).

/// The two-level index partitioning of the fast distributed matrix
/// multiplication.
///
/// For a bilinear algorithm on `d × d` blocks with `m` multiplication
/// terms, the (padded) matrix dimension `np = d·q·sub` decomposes a
/// row index `ρ` into digits `(i, x₁, r)`:
///
/// * `i ∈ [d]` — the coarse block (the bilinear algorithm's block index);
/// * `x₁ ∈ [q]` — the label digit (`q ≈ √n` in the paper; chosen here by a
///   per-node-load search, see [`FastPlan::new`]);
/// * `r ∈ [sub]` — the position inside the `sub × sub` sub-block.
///
/// Every *label cell* `(x₁, x₂) ∈ [q]²` is owned by node `(x₁·q + x₂) mod n`
/// and is responsible for the sub-blocks `S[i x₁ ∗, j x₂ ∗]`; every
/// multiplication term `w ∈ [m]` is owned by node `w mod n`. The paper
/// assumes `n = m` and integer `√n`; this plan generalises to every `n ≥ 2`
/// by cell/term wrapping and zero padding (padded rows and columns are never
/// transmitted).
///
/// # Examples
///
/// ```rust
/// use cc_algebra::BilinearAlgorithm;
/// use cc_core::FastPlan;
///
/// let plan = FastPlan::new(49, &BilinearAlgorithm::strassen().power(2));
/// assert_eq!((plan.d(), plan.m()), (4, 49));
/// assert!(plan.np() >= 49 && plan.np() % (plan.d() * plan.q()) == 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastPlan {
    n: usize,
    d: usize,
    m: usize,
    q: usize,
    sub: usize,
}

impl FastPlan {
    /// Builds the plan for an `n`-node clique and a bilinear algorithm.
    ///
    /// The paper fixes `q = √n`; this constructor instead searches the label
    /// grid dimension `q` that minimises the estimated per-node load (the
    /// maximum of the cell-owner and term-owner traffic), which avoids the
    /// padding waste of forcing `q² ≈ n` when `n` is not a perfect square.
    /// The asymptotics are unchanged; the constants improve noticeably.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn new(n: usize, alg: &cc_algebra::BilinearAlgorithm) -> Self {
        assert!(n >= 2, "a congested clique needs at least 2 nodes");
        let d = alg.d();
        let m = alg.m();
        let q_max = 2 * n.div_ceil(d) + 1;
        let mut best: Option<(u64, usize)> = None;
        for q in 1..=q_max {
            let sub = n.div_ceil(d * q);
            let cells_per_node = (q * q).div_ceil(n) as u64;
            let terms_per_node = m.div_ceil(n) as u64;
            let sub2 = (sub * sub) as u64;
            let full2 = ((q * sub) * (q * sub)) as u64;
            // Dominant per-node loads: cells send/receive m·sub² values for
            // S and T (steps 3, 5); term owners hold the full Ŝ⁽ʷ⁾, T̂⁽ʷ⁾.
            let cell_load = cells_per_node * 2 * m as u64 * sub2;
            let term_load = terms_per_node * 2 * full2;
            let cost = cell_load.max(term_load);
            if best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, q));
            }
        }
        let q = best.expect("q search is non-empty").1;
        let sub = n.div_ceil(d * q);
        Self { n, d, m, q, sub }
    }

    /// Builds a plan with an explicit label-grid dimension `q` (the paper's
    /// parameterisation uses `q = ⌈√n⌉`). Exposed for the ablation
    /// experiment comparing the fixed-q plan against the searched one.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `q == 0`.
    #[must_use]
    pub fn with_q(n: usize, alg: &cc_algebra::BilinearAlgorithm, q: usize) -> Self {
        assert!(n >= 2, "a congested clique needs at least 2 nodes");
        assert!(q >= 1, "q must be positive");
        let d = alg.d();
        let m = alg.m();
        let sub = n.div_ceil(d * q);
        Self { n, d, m, q, sub }
    }

    /// Chooses the largest Strassen tensor power with `m = 7^k ≤ n` (falling
    /// back to plain Strassen for tiny cliques), which is the efficient
    /// parameterisation of Theorem 1's second part.
    #[must_use]
    pub fn best_strassen(n: usize) -> cc_algebra::BilinearAlgorithm {
        let base = cc_algebra::BilinearAlgorithm::strassen();
        let mut k = 1u32;
        while 7u64.pow(k + 1) <= n as u64 {
            k += 1;
        }
        base.power(k)
    }

    /// Clique size `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Coarse block grid dimension `d`.
    #[must_use]
    pub fn d(&self) -> usize {
        self.d
    }

    /// Number of bilinear multiplication terms `m`.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Label grid dimension `q`.
    #[must_use]
    pub fn q(&self) -> usize {
        self.q
    }

    /// Sub-block side length.
    #[must_use]
    pub fn sub(&self) -> usize {
        self.sub
    }

    /// Padded matrix dimension `np = d·q·sub ≥ n`.
    #[must_use]
    pub fn np(&self) -> usize {
        self.d * self.q * self.sub
    }

    /// Digit decomposition `(i, x₁, r)` of a padded row/column index.
    ///
    /// # Panics
    ///
    /// Panics if `rho ≥ np`.
    #[must_use]
    pub fn decompose(&self, rho: usize) -> (usize, usize, usize) {
        assert!(
            rho < self.np(),
            "index {rho} out of padded range {}",
            self.np()
        );
        let per_block = self.q * self.sub;
        (
            rho / per_block,
            (rho % per_block) / self.sub,
            rho % self.sub,
        )
    }

    /// Inverse of [`FastPlan::decompose`].
    #[must_use]
    pub fn compose(&self, i: usize, x: usize, r: usize) -> usize {
        debug_assert!(i < self.d && x < self.q && r < self.sub);
        i * self.q * self.sub + x * self.sub + r
    }

    /// The label digit `x₁` of a row index.
    #[must_use]
    pub fn label_of(&self, rho: usize) -> usize {
        self.decompose(rho).1
    }

    /// Node owning label cell `(x₁, x₂)`.
    ///
    /// # Panics
    ///
    /// Panics if a label digit is out of range.
    #[must_use]
    pub fn cell_owner(&self, x1: usize, x2: usize) -> usize {
        assert!(x1 < self.q && x2 < self.q, "label digit out of range");
        (x1 * self.q + x2) % self.n
    }

    /// The label cells owned by node `v`, as `(x₁, x₂)` pairs.
    #[must_use]
    pub fn cells_of(&self, v: usize) -> Vec<(usize, usize)> {
        (0..self.q * self.q)
            .filter(|c| c % self.n == v)
            .map(|c| (c / self.q, c % self.q))
            .collect()
    }

    /// Node owning multiplication term `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w ≥ m`.
    #[must_use]
    pub fn term_owner(&self, w: usize) -> usize {
        assert!(w < self.m, "term {w} out of range");
        w % self.n
    }

    /// The multiplication terms owned by node `v`.
    #[must_use]
    pub fn terms_of(&self, v: usize) -> Vec<usize> {
        (v..self.m).step_by(self.n).collect()
    }

    /// The *real* (unpadded) row/column indices with label digit `x`, in
    /// `(i, r)`-major order — the transmission order of all scatter steps.
    #[must_use]
    pub fn real_indices_with_label(&self, x: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for i in 0..self.d {
            for r in 0..self.sub {
                let rho = self.compose(i, x, r);
                if rho < self.n {
                    out.push(rho);
                }
            }
        }
        out
    }

    /// ASCII rendering of the Figure 2 partitioning: the coarse `d × d` grid
    /// and the refinement of one block into `q × q` sub-blocks.
    #[must_use]
    pub fn render_figure(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fast plan: n = {}, d = {}, m = {}, q = {}, sub = {}, padded dim = {} (Figure 2)\n",
            self.n,
            self.d,
            self.m,
            self.q,
            self.sub,
            self.np()
        ));
        out.push_str(&format!(
            "coarse grid (d × d = {0} × {0} blocks S[i∗∗, j∗∗]):\n",
            self.d
        ));
        for _ in 0..self.d {
            for _ in 0..self.d {
                out.push_str("[··]");
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "each block refines into q × q = {0} × {0} sub-blocks S[ix∗, jy∗] of side {1}; \
             cell (x₁,x₂) of the label grid is owned by node (x₁·q + x₂) mod n\n",
            self.q, self.sub
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_algebra::BilinearAlgorithm;

    #[test]
    fn plan_invariants_for_49_nodes() {
        let plan = FastPlan::new(49, &BilinearAlgorithm::strassen().power(2));
        assert!(plan.np() >= 49, "padded dimension covers the matrix");
        assert_eq!(plan.np(), plan.d() * plan.q() * plan.sub());
        for x1 in 0..plan.q() {
            for x2 in 0..plan.q() {
                let owner = plan.cell_owner(x1, x2);
                assert!(plan.cells_of(owner).contains(&(x1, x2)));
            }
        }
        // Cell ownership is near-balanced: max differs from min by ≤ 1.
        let counts: Vec<usize> = (0..49).map(|v| plan.cells_of(v).len()).collect();
        let (mn, mx) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(mx - mn <= 1, "cells per node {mn}..{mx}");
    }

    #[test]
    fn decompose_compose_roundtrip() {
        let plan = FastPlan::new(20, &BilinearAlgorithm::strassen());
        for rho in 0..plan.np() {
            let (i, x, r) = plan.decompose(rho);
            assert_eq!(plan.compose(i, x, r), rho);
        }
    }

    #[test]
    fn real_indices_cover_exactly_once() {
        let plan = FastPlan::new(30, &BilinearAlgorithm::strassen());
        let mut all: Vec<usize> = (0..plan.q())
            .flat_map(|x| plan.real_indices_with_label(x))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn best_strassen_grows_with_n() {
        assert_eq!(FastPlan::best_strassen(8).m(), 7);
        assert_eq!(FastPlan::best_strassen(48).m(), 7);
        assert_eq!(FastPlan::best_strassen(49).m(), 49);
        assert_eq!(FastPlan::best_strassen(342).m(), 49);
        assert_eq!(FastPlan::best_strassen(343).m(), 343);
    }

    #[test]
    fn terms_wrap_when_m_exceeds_n() {
        let plan = FastPlan::new(5, &BilinearAlgorithm::strassen());
        assert_eq!(plan.terms_of(0), vec![0, 5]);
        assert_eq!(plan.terms_of(2), vec![2]);
        let total: usize = (0..5).map(|v| plan.terms_of(v).len()).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn figure_mentions_parameters() {
        let plan = FastPlan::new(49, &BilinearAlgorithm::strassen().power(2));
        let fig = plan.render_figure();
        assert!(fig.contains("d = 4"));
        assert!(fig.contains("q = 7"));
    }
}
