//! Distance products: exact, weight-capped, and approximate.
//!
//! * [`distance_product`] — exact min-plus product via the 3D semiring
//!   algorithm (`O(n^{1/3})` rounds).
//! * [`capped_distance_product`] — Lemma 18: a distance product with entries
//!   in `{0, …, M} ∪ {∞}` embedded into the ring `ℤ[x]/x^{2M+1}` and
//!   computed with the fast bilinear algorithm in `O(M n^{1-2/σ})` rounds
//!   (polynomial entries honestly cost `2M+1` words each).
//! * [`apsp_up_to`] — Lemma 19: all-pairs shortest paths up to distance `M`
//!   by iterated capped squaring.
//! * [`approx_distance_product`] — Lemma 20: a `(1+δ)`-approximate distance
//!   product via weight scaling, using `O(log_{1+δ} M)` capped products with
//!   entries bounded by `O(1/δ)`.

use crate::fast_mm;
use crate::row_matrix::RowMatrix;
use crate::semiring_mm;
use cc_algebra::{BilinearAlgorithm, CappedPoly, Dist, MinPlus, PolyRing, INFINITY};
use cc_clique::Clique;

/// Exact distance product `S ⋆ T` over the min-plus semiring, computed with
/// the 3D algorithm in `O(n^{1/3})` rounds.
pub fn distance_product(
    clique: &mut Clique,
    a: &RowMatrix<Dist>,
    b: &RowMatrix<Dist>,
) -> RowMatrix<Dist> {
    semiring_mm::multiply(clique, &MinPlus, a, b)
}

/// Density-dispatching distance product: `∞` is the min-plus zero, so a
/// matrix with few finite entries is *sparse* and the Le Gall 2016 path
/// ([`crate::sparse_mm`]) prices the product by its finite structure,
/// falling back to the 3D algorithm when density doesn't pay
/// (`CC_MM=sparse|dense` overrides).
pub fn distance_product_auto(
    clique: &mut Clique,
    a: &RowMatrix<Dist>,
    b: &RowMatrix<Dist>,
) -> RowMatrix<Dist> {
    crate::sparse_mm::multiply_auto(clique, &MinPlus, a, b)
}

fn embed(cap: usize, d: &Dist) -> CappedPoly {
    match d.value() {
        Some(v) => {
            debug_assert!(v >= 0, "capped embedding requires non-negative entries");
            CappedPoly::monomial(cap, v as usize)
        }
        None => CappedPoly::zero(cap),
    }
}

/// Lemma 18: the distance product of matrices with entries in
/// `{0, …, max_entry} ∪ {∞}` through the polynomial-ring embedding.
///
/// Entries exceeding `max_entry` are treated as `∞` (the capping used by
/// Lemma 19). Runs the fast bilinear algorithm over `ℤ[x]/x^{2·max_entry+1}`,
/// so the round cost scales linearly with `max_entry`.
///
/// # Panics
///
/// Panics if any finite entry is negative, or if `max_entry < 0`.
///
/// # Examples
///
/// ```rust
/// use cc_algebra::{Dist, Matrix, MinPlus, INFINITY};
/// use cc_clique::Clique;
/// use cc_core::{distance, FastPlan, RowMatrix};
///
/// let n = 8;
/// let f = |x: usize| Dist::finite((x % 4) as i64);
/// let a = Matrix::from_fn(n, n, |i, j| f(i + j));
/// let b = Matrix::from_fn(n, n, |i, j| f(i * 2 + j));
/// let alg = FastPlan::best_strassen(n);
/// let mut clique = Clique::new(n);
/// let p = distance::capped_distance_product(
///     &mut clique, &alg,
///     &RowMatrix::from_matrix(&a), &RowMatrix::from_matrix(&b), 3,
/// );
/// assert_eq!(p.to_matrix(), Matrix::mul(&MinPlus, &a, &b));
/// ```
pub fn capped_distance_product(
    clique: &mut Clique,
    alg: &BilinearAlgorithm,
    a: &RowMatrix<Dist>,
    b: &RowMatrix<Dist>,
    max_entry: i64,
) -> RowMatrix<Dist> {
    assert!(max_entry >= 0, "max_entry must be non-negative");
    let cap = 2 * max_entry as usize + 1;
    let ring = PolyRing::new(cap);
    let clamp = |d: &Dist| match d.value() {
        Some(v) if v <= max_entry => {
            assert!(
                v >= 0,
                "capped distance product requires non-negative entries (got {v})"
            );
            Dist::finite(v)
        }
        _ => INFINITY,
    };
    // The polynomial embedding allocates a `cap`-length coefficient vector
    // per entry — heavy node-local work, fanned out per row on the backend.
    let exec = clique.executor();
    let pa = a.par_map(&exec, |d| embed(cap, &clamp(d)));
    let pb = b.par_map(&exec, |d| embed(cap, &clamp(d)));
    let pp = clique.phase("capped_dp", |c| fast_mm::multiply(c, &ring, alg, &pa, &pb));
    pp.par_map(&exec, |p| match p.min_degree() {
        Some(deg) => Dist::finite(deg as i64),
        None => INFINITY,
    })
}

/// Lemma 19: all-pairs shortest paths **up to distance `max_dist`** for
/// non-negative integer weights: entries above the cap are replaced by `∞`
/// before each of the `⌈log₂ n⌉` squarings, keeping every product cheap.
///
/// The result equals the true distance wherever that distance is at most
/// `max_dist`, and `∞` elsewhere.
///
/// # Panics
///
/// Panics if `w` has negative finite entries or `max_dist < 0`.
pub fn apsp_up_to(
    clique: &mut Clique,
    alg: &BilinearAlgorithm,
    w: &RowMatrix<Dist>,
    max_dist: i64,
) -> RowMatrix<Dist> {
    let n = clique.n();
    let mut cur = w.clone();
    let mut hops = 1usize;
    clique.phase("apsp_up_to", |c| {
        while hops < n {
            cur = capped_distance_product(c, alg, &cur, &cur, max_dist);
            hops *= 2;
        }
    });
    // The final squaring can produce values in (max_dist, 2·max_dist] that
    // are not guaranteed to be exact distances; the contract is "exact up to
    // max_dist, ∞ beyond", so clamp them away.
    cur.map(|d| match d.value() {
        Some(v) if v <= max_dist => Dist::finite(v),
        _ => INFINITY,
    })
}

/// Lemma 20: a matrix `P̃` with `P ≤ P̃ ≤ (1+δ)·P` entry-wise, where
/// `P = S ⋆ T`, computed with `O(log_{1+δ} M)` capped distance products
/// whose entries are bounded by `⌈2(1+δ)/δ⌉`.
///
/// # Panics
///
/// Panics if `delta ≤ 0` or entries are negative.
pub fn approx_distance_product(
    clique: &mut Clique,
    alg: &BilinearAlgorithm,
    s: &RowMatrix<Dist>,
    t: &RowMatrix<Dist>,
    delta: f64,
) -> RowMatrix<Dist> {
    assert!(delta > 0.0, "delta must be positive");
    let n = clique.n();

    clique.phase("approx_dp", |clique| {
        // All nodes learn the largest finite entry M (one broadcast round).
        let local_max = |rm: &RowMatrix<Dist>, v: usize| {
            rm.row(v).iter().filter_map(Dist::value).max().unwrap_or(0)
        };
        let m_s = clique.max_all(|v| local_max(s, v));
        let m_t = clique.max_all(|v| local_max(t, v));
        let big_m = m_s.max(m_t).max(1) as f64;

        let levels = (big_m.ln() / (1.0 + delta).ln()).ceil() as usize;
        let entry_bound = (2.0 * (1.0 + delta) / delta).ceil() as i64;

        let exec = clique.executor();
        let mut best: RowMatrix<Dist> = RowMatrix::from_fn(n, |_, _| INFINITY);
        for i in 0..=levels {
            let scale = (1.0 + delta).powi(i as i32);
            let cutoff = 2.0 * (1.0 + delta).powi(i as i32 + 1) / delta;
            let shrink = |d: &Dist| match d.value() {
                Some(v) if (v as f64) <= cutoff => Dist::finite(((v as f64) / scale).ceil() as i64),
                _ => INFINITY,
            };
            let si = s.par_map(&exec, shrink);
            let ti = t.par_map(&exec, shrink);
            let pi = capped_distance_product(clique, alg, &si, &ti, entry_bound);
            best = best.par_map_indexed(&exec, |u, v, cur| {
                let cand = match pi.row(u)[v].value() {
                    Some(x) => Dist::finite((scale * x as f64).floor() as i64),
                    None => INFINITY,
                };
                cand.min(*cur)
            });
        }
        best
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fast_plan::FastPlan;
    use cc_algebra::Matrix;

    fn rand_dist_matrix(n: usize, max_w: i64, inf_every: u64, seed: u64) -> Matrix<Dist> {
        let mut st = seed;
        Matrix::from_fn(n, n, |_, _| {
            st = st
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = st >> 33;
            if inf_every > 0 && x.is_multiple_of(inf_every) {
                INFINITY
            } else {
                Dist::finite((x % (max_w as u64 + 1)) as i64)
            }
        })
    }

    #[test]
    fn capped_product_matches_exact_min_plus() {
        for n in [4, 8, 12] {
            let m = 5i64;
            let a = rand_dist_matrix(n, m, 4, 1);
            let b = rand_dist_matrix(n, m, 3, 2);
            let alg = FastPlan::best_strassen(n);
            let mut clique = Clique::new(n);
            let p = capped_distance_product(
                &mut clique,
                &alg,
                &RowMatrix::from_matrix(&a),
                &RowMatrix::from_matrix(&b),
                m,
            );
            assert_eq!(p.to_matrix(), Matrix::mul(&MinPlus, &a, &b), "n={n}");
        }
    }

    #[test]
    fn capped_product_treats_large_entries_as_infinite() {
        let n = 4;
        let f = Dist::finite;
        // One entry (7) exceeds the cap of 3 and must act like ∞.
        let a = Matrix::from_fn(n, n, |i, j| if i == 0 && j == 1 { f(7) } else { f(1) });
        let b = Matrix::from_fn(n, n, |_, _| f(1));
        let alg = FastPlan::best_strassen(n);
        let mut clique = Clique::new(n);
        let p = capped_distance_product(
            &mut clique,
            &alg,
            &RowMatrix::from_matrix(&a),
            &RowMatrix::from_matrix(&b),
            3,
        );
        // Every (0, v) entry still reaches weight 2 through columns != 1.
        assert_eq!(p.to_matrix()[(0, 0)], f(2));
    }

    #[test]
    fn polynomial_width_costs_more_rounds() {
        let n = 8;
        let a = rand_dist_matrix(n, 3, 5, 3);
        let b = rand_dist_matrix(n, 3, 5, 4);
        let alg = FastPlan::best_strassen(n);
        let rounds_for = |cap: i64| {
            let mut clique = Clique::new(n);
            capped_distance_product(
                &mut clique,
                &alg,
                &RowMatrix::from_matrix(&a),
                &RowMatrix::from_matrix(&b),
                cap,
            );
            clique.rounds()
        };
        assert!(
            rounds_for(12) > rounds_for(3),
            "wider polynomial entries must cost more rounds"
        );
    }

    #[test]
    fn apsp_up_to_matches_bfs_distances() {
        // Unweighted directed cycle: distances are well-known.
        let n = 8;
        let w = Matrix::from_fn(n, n, |u, v| {
            if u == v {
                Dist::zero()
            } else if v == (u + 1) % n {
                Dist::finite(1)
            } else {
                INFINITY
            }
        });
        let alg = FastPlan::best_strassen(n);
        let mut clique = Clique::new(n);
        let d = apsp_up_to(&mut clique, &alg, &RowMatrix::from_matrix(&w), n as i64);
        for u in 0..n {
            for v in 0..n {
                let expect = ((v + n - u) % n) as i64;
                assert_eq!(d.row(u)[v], Dist::finite(expect), "({u},{v})");
            }
        }
    }

    #[test]
    fn apsp_up_to_respects_cap() {
        let n = 6;
        let w = Matrix::from_fn(n, n, |u, v| {
            if u == v {
                Dist::zero()
            } else if v == u + 1 {
                Dist::finite(1)
            } else {
                INFINITY
            }
        });
        let alg = FastPlan::best_strassen(n);
        let mut clique = Clique::new(n);
        let d = apsp_up_to(&mut clique, &alg, &RowMatrix::from_matrix(&w), 2);
        assert_eq!(d.row(0)[2], Dist::finite(2));
        assert_eq!(d.row(0)[3], INFINITY, "distances beyond the cap are ∞");
    }

    #[test]
    fn approx_product_is_within_factor() {
        let n = 8;
        let delta = 0.3;
        let a = rand_dist_matrix(n, 200, 6, 9);
        let b = rand_dist_matrix(n, 200, 6, 10);
        let exact = Matrix::mul(&MinPlus, &a, &b);
        let alg = FastPlan::best_strassen(n);
        let mut clique = Clique::new(n);
        let approx = approx_distance_product(
            &mut clique,
            &alg,
            &RowMatrix::from_matrix(&a),
            &RowMatrix::from_matrix(&b),
            delta,
        )
        .to_matrix();
        for u in 0..n {
            for v in 0..n {
                match (exact[(u, v)].value(), approx[(u, v)].value()) {
                    (Some(e), Some(g)) => {
                        assert!(g >= e, "({u},{v}): approx {g} below exact {e}");
                        assert!(
                            g as f64 <= (1.0 + delta) * e as f64 + 1e-9,
                            "({u},{v}): approx {g} above (1+δ)·{e}"
                        );
                    }
                    (None, None) => {}
                    (e, g) => panic!("({u},{v}): finiteness mismatch {e:?} vs {g:?}"),
                }
            }
        }
    }
}
