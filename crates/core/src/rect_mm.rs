//! Rectangular matrix multiplication (Le Gall, PODC 2016, §Rectangular).
//!
//! Le Gall's second observation: on an `n`-node clique, multiplying an
//! `n × m` by an `m × n` matrix should cost a function of `m`, not of `n`
//! alone. This module reduces the rectangular product to the sparse square
//! machinery of [`crate::sparse_mm`]:
//!
//! * **`m ≤ n`** — zero-pad the inner dimension up to `n`. The padded
//!   columns/rows are entirely zero, so the [`crate::SparsePlan`] census
//!   assigns them *no helpers at all* and the cost scales with the `m`
//!   real inner indices (times their density): a thin inner dimension is
//!   just an extreme form of sparsity.
//! * **`m > n`** — split the inner dimension into `⌈m/n⌉` slabs of `n` and
//!   sum the slab products (`⊕` is associative-commutative), each slab
//!   dispatching sparse-vs-dense independently.
//!
//! Ownership convention: the left operand's `n` rows live one per node as
//! usual; the right operand's `m` rows are distributed round-robin, row `r`
//! on node `r mod n` — the natural generalisation of the paper's
//! row-ownership convention to non-square shapes, and exactly what the slab
//! reduction needs (slab-local row `k` of every slab lives on node `k`).

use crate::row_matrix::RowMatrix;
use crate::sparse_mm;
use cc_algebra::{Matrix, Semiring};
use cc_clique::Clique;

/// A rectangular matrix distributed over the clique: row `r` lives on node
/// `r mod n` (for an `n`-row matrix on an `n`-node clique this is the
/// standard one-row-per-node convention).
///
/// # Examples
///
/// ```rust
/// use cc_algebra::Matrix;
/// use cc_core::RectMatrix;
///
/// let m = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as i64);
/// let rm = RectMatrix::from_matrix(&m);
/// assert_eq!((rm.rows(), rm.cols()), (3, 5));
/// assert_eq!(rm.row(1), &[5, 6, 7, 8, 9]);
/// assert_eq!(rm.to_matrix(), m);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RectMatrix<E> {
    rows: Vec<Vec<E>>,
    cols: usize,
}

impl<E: Clone> RectMatrix<E> {
    /// Distributes a (possibly rectangular) matrix by rows.
    #[must_use]
    pub fn from_matrix(m: &Matrix<E>) -> Self {
        Self {
            rows: (0..m.rows()).map(|i| m.row(i).to_vec()).collect(),
            cols: m.cols(),
        }
    }

    /// Builds a distributed `rows × cols` matrix by tabulating entries.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> E) -> Self {
        Self {
            rows: (0..rows)
                .map(|i| (0..cols).map(|j| f(i, j)).collect())
                .collect(),
            cols,
        }
    }

    /// Collects the distributed rows into one local matrix (driver-side
    /// convenience; not a communication step).
    #[must_use]
    pub fn to_matrix(&self) -> Matrix<E> {
        Matrix::from_fn(self.rows.len(), self.cols, |i, j| self.rows[i][j].clone())
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` (held by node `r mod n`).
    #[must_use]
    pub fn row(&self, r: usize) -> &[E] {
        &self.rows[r]
    }
}

/// Computes the rectangular product `P = S·T` of an `n × m` by an `m × n`
/// matrix on an `n`-node clique, returning the square `n × n` result in the
/// row-ownership convention. Each inner slab dispatches sparse-vs-dense
/// independently ([`sparse_mm::multiply_auto`]), so both a thin inner
/// dimension and sparse slabs shrink the round count.
///
/// # Panics
///
/// Panics if `a` is not `n × m`, `b` is not `m × n`, or the shapes disagree.
///
/// # Examples
///
/// ```rust
/// use cc_algebra::{IntRing, Matrix};
/// use cc_clique::Clique;
/// use cc_core::{rect_mm, RectMatrix};
///
/// let (n, m) = (10, 3);
/// let a = Matrix::from_fn(n, m, |i, j| (i + 2 * j) as i64);
/// let b = Matrix::from_fn(m, n, |i, j| (3 * i + j) as i64);
/// let mut clique = Clique::new(n);
/// let p = rect_mm::multiply(
///     &mut clique,
///     &IntRing,
///     &RectMatrix::from_matrix(&a),
///     &RectMatrix::from_matrix(&b),
/// );
/// assert_eq!(p.to_matrix(), Matrix::mul(&IntRing, &a, &b));
/// ```
pub fn multiply<S: Semiring + Sync>(
    clique: &mut Clique,
    s: &S,
    a: &RectMatrix<S::Elem>,
    b: &RectMatrix<S::Elem>,
) -> RowMatrix<S::Elem>
where
    S::Elem: Send + Sync,
{
    let n = clique.n();
    assert_eq!(a.rows(), n, "operand A must have one row per node");
    assert_eq!(b.cols(), n, "operand B must have one column per node");
    let m = a.cols();
    assert_eq!(b.rows(), m, "inner dimensions must agree");

    clique.phase("rectmm", |clique| {
        let exec = clique.executor();
        let slabs = m.div_ceil(n).max(1);
        let mut acc: Option<RowMatrix<S::Elem>> = None;
        for t in 0..slabs {
            let lo = t * n;
            let hi = ((t + 1) * n).min(m);
            // Slab-local square operands: columns/rows beyond the slab are
            // semiring zero, which the sparse census prices at nothing.
            // Locality holds: slab row `k` is global row `lo + k`, owned by
            // node `(lo + k) mod n = k`.
            let sq_a = RowMatrix::par_from_fn(&exec, n, |x, k| {
                if lo + k < hi {
                    a.row(x)[lo + k].clone()
                } else {
                    s.zero()
                }
            });
            let sq_b = RowMatrix::par_from_fn(&exec, n, |k, z| {
                if lo + k < hi {
                    b.row(lo + k)[z].clone()
                } else {
                    s.zero()
                }
            });
            let p = sparse_mm::multiply_auto(clique, s, &sq_a, &sq_b);
            acc = Some(match acc {
                None => p,
                Some(prev) => prev.par_map_indexed(&exec, |x, z, cur| s.add(cur, &p.row(x)[z])),
            });
        }
        acc.expect("at least one slab")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_algebra::IntRing;

    fn rand_rect(rows: usize, cols: usize, seed: u64) -> Matrix<i64> {
        let mut st = seed;
        Matrix::from_fn(rows, cols, |_, _| {
            st = st
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((st >> 33) % 7) as i64 - 3
        })
    }

    #[test]
    fn thin_inner_dimension_matches_local_product() {
        for (n, m) in [(8, 1), (10, 3), (16, 7), (12, 12)] {
            let a = rand_rect(n, m, 1 + m as u64);
            let b = rand_rect(m, n, 2 + m as u64);
            let mut clique = Clique::new(n);
            let p = multiply(
                &mut clique,
                &IntRing,
                &RectMatrix::from_matrix(&a),
                &RectMatrix::from_matrix(&b),
            );
            assert_eq!(p.to_matrix(), Matrix::mul(&IntRing, &a, &b), "n={n} m={m}");
        }
    }

    #[test]
    fn wide_inner_dimension_matches_local_product() {
        for (n, m) in [(8, 9), (10, 25), (12, 30)] {
            let a = rand_rect(n, m, 31 + m as u64);
            let b = rand_rect(m, n, 32 + m as u64);
            let mut clique = Clique::new(n);
            let p = multiply(
                &mut clique,
                &IntRing,
                &RectMatrix::from_matrix(&a),
                &RectMatrix::from_matrix(&b),
            );
            assert_eq!(p.to_matrix(), Matrix::mul(&IntRing, &a, &b), "n={n} m={m}");
        }
    }

    #[test]
    fn thin_products_move_fewer_words_than_square_ones() {
        // The Le Gall separation this module exists for: with the same
        // outer dimension, a thin inner dimension must move fewer words
        // than a square dense product. (As with the fast-vs-3D comparison
        // in `fast_mm`, the communication-volume separation is what shows
        // at simulator sizes; absolute *rounds* cross over at larger `n`,
        // where the dense engines grow like `n^{1/3}`-and-up while the
        // thin product stays density-bound.)
        let n = 48;
        let cost_for = |m: usize| {
            let a = rand_rect(n, m, 7);
            let b = rand_rect(m, n, 8);
            let mut clique = Clique::new(n);
            let _ = multiply(
                &mut clique,
                &IntRing,
                &RectMatrix::from_matrix(&a),
                &RectMatrix::from_matrix(&b),
            );
            clique.stats().words()
        };
        let (thin, square) = (cost_for(2), cost_for(n));
        assert!(
            thin < square,
            "m=2 words {thin} should undercut m=n words {square}"
        );
    }

    #[test]
    fn rect_of_square_shape_agrees_with_row_matrix_path() {
        let n = 9;
        let a = rand_rect(n, n, 77);
        let b = rand_rect(n, n, 78);
        let mut c1 = Clique::new(n);
        let via_rect = multiply(
            &mut c1,
            &IntRing,
            &RectMatrix::from_matrix(&a),
            &RectMatrix::from_matrix(&b),
        );
        let mut c2 = Clique::new(n);
        let via_square = sparse_mm::multiply_auto(
            &mut c2,
            &IntRing,
            &RowMatrix::from_matrix(&a),
            &RowMatrix::from_matrix(&b),
        );
        assert_eq!(via_rect.to_matrix(), via_square.to_matrix());
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_is_rejected() {
        let a = RectMatrix::from_fn(4, 3, |_, _| 0i64);
        let b = RectMatrix::from_fn(5, 4, |_, _| 0i64);
        let mut clique = Clique::new(4);
        let _ = multiply(&mut clique, &IntRing, &a, &b);
    }
}
