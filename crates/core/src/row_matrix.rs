//! Row-distributed matrices: the paper's input/output convention.

use cc_algebra::Matrix;
use cc_clique::Executor;

/// An `n × n` matrix distributed over an `n`-node clique so that node `v`
/// holds row `v` — the input and output convention of the paper's matrix
/// multiplication task (§2).
///
/// The driver program owns the whole structure (this is a simulation), but
/// algorithms access `rows[v]` only from node `v`'s message-generator
/// closures, preserving the locality discipline.
///
/// # Examples
///
/// ```rust
/// use cc_algebra::Matrix;
/// use cc_core::RowMatrix;
///
/// let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as i64);
/// let rm = RowMatrix::from_matrix(&m);
/// assert_eq!(rm.n(), 4);
/// assert_eq!(rm.row(2), &[8, 9, 10, 11]);
/// assert_eq!(rm.to_matrix(), m);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowMatrix<E> {
    rows: Vec<Vec<E>>,
}

impl<E: Clone> RowMatrix<E> {
    /// Distributes a square matrix by rows.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    #[must_use]
    pub fn from_matrix(m: &Matrix<E>) -> Self {
        assert_eq!(
            m.rows(),
            m.cols(),
            "row distribution requires a square matrix"
        );
        Self {
            rows: (0..m.rows()).map(|i| m.row(i).to_vec()).collect(),
        }
    }

    /// Builds a distributed matrix by tabulating entries.
    #[must_use]
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> E) -> Self {
        Self {
            rows: (0..n).map(|i| (0..n).map(|j| f(i, j)).collect()).collect(),
        }
    }

    /// Collects the distributed rows into one local matrix (driver-side
    /// convenience for tests and result inspection; not a communication
    /// step).
    #[must_use]
    pub fn to_matrix(&self) -> Matrix<E> {
        Matrix::from_fn(self.n(), self.n(), |i, j| self.rows[i][j].clone())
    }

    /// Matrix dimension (= clique size).
    #[must_use]
    pub fn n(&self) -> usize {
        self.rows.len()
    }

    /// Node `v`'s local row.
    #[must_use]
    pub fn row(&self, v: usize) -> &[E] {
        &self.rows[v]
    }

    /// Mutable access to node `v`'s local row.
    pub fn row_mut(&mut self, v: usize) -> &mut [E] {
        &mut self.rows[v]
    }

    /// Builds a new distributed matrix from per-node rows.
    ///
    /// # Panics
    ///
    /// Panics unless exactly `n` rows of length `n` are supplied.
    #[must_use]
    pub fn from_rows(rows: Vec<Vec<E>>) -> Self {
        let n = rows.len();
        assert!(
            rows.iter().all(|r| r.len() == n),
            "rows must have length n={n}"
        );
        Self { rows }
    }

    /// Element-wise map.
    #[must_use]
    pub fn map<F: Clone>(&self, mut f: impl FnMut(&E) -> F) -> RowMatrix<F> {
        RowMatrix {
            rows: self
                .rows
                .iter()
                .map(|r| r.iter().map(&mut f).collect())
                .collect(),
        }
    }

    /// Element-wise map with `(row, col)` indices.
    #[must_use]
    pub fn map_indexed<F: Clone>(&self, mut f: impl FnMut(usize, usize, &E) -> F) -> RowMatrix<F> {
        RowMatrix {
            rows: self
                .rows
                .iter()
                .enumerate()
                .map(|(i, r)| r.iter().enumerate().map(|(j, e)| f(i, j, e)).collect())
                .collect(),
        }
    }
}

/// Executor-powered tabulation: every row is one independent piece of
/// node-local work, fanned out with [`Executor::map`] and merged back in
/// row order — the building block the algorithm crates use to keep their
/// per-node loops on the configured backend. All of these are
/// bit-identical to their serial counterparts for any backend.
impl<E: Clone + Send> RowMatrix<E> {
    /// [`RowMatrix::from_fn`] with rows tabulated on the executor.
    #[must_use]
    pub fn par_from_fn(exec: &Executor, n: usize, f: impl Fn(usize, usize) -> E + Sync) -> Self {
        Self {
            rows: exec.map(n, |i| (0..n).map(|j| f(i, j)).collect()),
        }
    }

    /// [`RowMatrix::map`] with rows mapped on the executor.
    #[must_use]
    pub fn par_map<F: Clone + Send>(
        &self,
        exec: &Executor,
        f: impl Fn(&E) -> F + Sync,
    ) -> RowMatrix<F>
    where
        E: Sync,
    {
        RowMatrix {
            rows: exec.map(self.n(), |i| self.rows[i].iter().map(&f).collect()),
        }
    }

    /// [`RowMatrix::map_indexed`] with rows mapped on the executor.
    #[must_use]
    pub fn par_map_indexed<F: Clone + Send>(
        &self,
        exec: &Executor,
        f: impl Fn(usize, usize, &E) -> F + Sync,
    ) -> RowMatrix<F>
    where
        E: Sync,
    {
        RowMatrix {
            rows: exec.map(self.n(), |i| {
                self.rows[i]
                    .iter()
                    .enumerate()
                    .map(|(j, e)| f(i, j, e))
                    .collect()
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let m = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as i64);
        let rm = RowMatrix::from_matrix(&m);
        assert_eq!(rm.to_matrix(), m);
    }

    #[test]
    fn map_indexed_sees_coordinates() {
        let rm = RowMatrix::from_fn(2, |_, _| 0i64);
        let mapped = rm.map_indexed(|i, j, _| (i * 10 + j) as i64);
        assert_eq!(mapped.row(1), &[10, 11]);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_non_square() {
        let m = Matrix::filled(2, 3, 0i64);
        let _ = RowMatrix::from_matrix(&m);
    }

    #[test]
    #[should_panic(expected = "length n")]
    fn rejects_ragged_rows() {
        let _ = RowMatrix::from_rows(vec![vec![1i64, 2], vec![3]]);
    }
}
