//! Partitioning plan for sparse matrix multiplication (Le Gall, PODC 2016).
//!
//! The sparse algorithm views the product `P = S·T` as the sum of outer
//! products `P = Σ_k col_k(S) · row_k(T)`. Inner index `k` generates
//! `w_k = nnz(col_k(S)) · nnz(row_k(T))` elementary products, and the plan's
//! job is exactly the load balancing of Le Gall's scheme: spread each `k`'s
//! work over a group of *helper* nodes proportional to `w_k / Σ w`, so every
//! node computes and communicates `O(W/n)` of the `W = Σ_k w_k` total —
//! the quantity that shrinks with density and makes sparse instances cheap.
//!
//! Each inner index with positive work gets a `gᵃ × gᵇ` **helper grid**
//! (the tile assignment): helper `(i, j)` multiplies the `i`-th row-range
//! chunk of `col_k(S)` against the `j`-th column-range chunk of `row_k(T)`.
//! The grid aspect ratio is chosen to minimise replication
//! (`col` entries travel `gᵇ` times, `row` entries `gᵃ` times), i.e.
//! `gᵃ ≈ √(h·a/b)` for `h` helpers, `a = nnz(col)`, `b = nnz(row)`. Helper
//! slots wrap around the clique via a running global counter, so the
//! assignment is identical at every node given the broadcast nnz counts.

/// The helper grid of one inner index: `ga · gb` helper slots starting at a
/// global slot offset (slot `(i, j)` lives on node `(base + i·gb + j) % n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelperGrid {
    /// Row-chunk count (splits of the `S` column).
    pub ga: usize,
    /// Column-chunk count (splits of the `T` row).
    pub gb: usize,
    /// First global helper slot of this grid.
    pub base: usize,
}

/// The nnz-aware load-balancing plan of the sparse multiplication, built
/// identically by every node from the broadcast per-index nonzero counts
/// (`a_col[k] = nnz(col_k(S))`, `b_row[k] = nnz(row_k(T))`).
///
/// # Examples
///
/// ```rust
/// use cc_core::SparsePlan;
///
/// // One heavy inner index among light ones gets the bigger helper grid.
/// let a_col = [2, 8, 0, 2];
/// let b_row = [2, 8, 5, 2];
/// let plan = SparsePlan::new(&a_col, &b_row);
/// assert_eq!(plan.total_work(), 2 * 2 + 8 * 8 + 0 + 2 * 2);
/// assert!(plan.grid(1).unwrap().ga * plan.grid(1).unwrap().gb
///     >= plan.grid(0).unwrap().ga * plan.grid(0).unwrap().gb);
/// assert!(plan.grid(2).is_none(), "a zero side contributes nothing");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsePlan {
    n: usize,
    grids: Vec<Option<HelperGrid>>,
    /// Per-owner served slots `(k, i, j)` in ascending order, precomputed
    /// so the hot phases look their slots up in O(1).
    slots: Vec<Vec<(usize, usize, usize)>>,
    a_col: Vec<usize>,
    b_row: Vec<usize>,
    total_work: u128,
}

/// Deterministic integer square root (floor).
fn isqrt(x: u128) -> u128 {
    if x < 2 {
        return x;
    }
    let mut lo = 1u128;
    let mut hi = 1u128 << (x.ilog2() / 2 + 1);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if mid.checked_mul(mid).is_some_and(|sq| sq <= x) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

impl SparsePlan {
    /// Builds the plan for an `n`-node clique (`n = a_col.len()`), where
    /// inner index `k` has `a_col[k]` nonzeros in `col_k(S)` and `b_row[k]`
    /// nonzeros in `row_k(T)`.
    ///
    /// # Panics
    ///
    /// Panics if the count slices differ in length or are empty.
    #[must_use]
    pub fn new(a_col: &[usize], b_row: &[usize]) -> Self {
        let n = a_col.len();
        assert_eq!(n, b_row.len(), "nnz count slices must have equal length");
        assert!(n >= 1, "plan needs at least one inner index");
        let work = |k: usize| -> u128 { a_col[k] as u128 * b_row[k] as u128 };
        let total_work: u128 = (0..n).map(work).sum();

        let mut grids: Vec<Option<HelperGrid>> = vec![None; n];
        let mut slots: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); n];
        let mut next_slot = 0usize;
        for k in 0..n {
            let w = work(k);
            if w == 0 {
                continue; // an empty side annihilates the outer product
            }
            let (a, b) = (a_col[k], b_row[k]);
            // Helpers proportional to this index's share of the work.
            let h = ((n as u128 * w) / total_work).clamp(1, n as u128) as usize;
            // Grid aspect minimising replication `a·gb + b·ga` subject to
            // `ga·gb ≈ h`; no more chunks than entries on either side.
            let ga = (isqrt(h as u128 * a as u128 / b.max(1) as u128) as usize).clamp(1, h.min(a));
            let gb = (h / ga).clamp(1, b);
            grids[k] = Some(HelperGrid {
                ga,
                gb,
                base: next_slot,
            });
            for i in 0..ga {
                for j in 0..gb {
                    slots[(next_slot + i * gb + j) % n].push((k, i, j));
                }
            }
            next_slot = (next_slot + ga * gb) % n;
        }
        Self {
            n,
            grids,
            slots,
            a_col: a_col.to_vec(),
            b_row: b_row.to_vec(),
            total_work,
        }
    }

    /// Clique size / inner dimension.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total elementary products `W = Σ_k a_col[k]·b_row[k]`.
    #[must_use]
    pub fn total_work(&self) -> u128 {
        self.total_work
    }

    /// Helper grid of inner index `k`, or `None` when `k` contributes no
    /// products (one of its sides is all zeros).
    #[must_use]
    pub fn grid(&self, k: usize) -> Option<HelperGrid> {
        self.grids[k]
    }

    /// Node hosting helper slot `(i, j)` of inner index `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` has no grid or `(i, j)` is out of range.
    #[must_use]
    pub fn helper(&self, k: usize, i: usize, j: usize) -> usize {
        let g = self.grids[k].expect("inner index has a helper grid");
        assert!(i < g.ga && j < g.gb, "helper slot out of range");
        (g.base + i * g.gb + j) % self.n
    }

    /// The row-chunk `i ∈ [gᵃ]` responsible for row index `x` of `col_k(S)`
    /// (contiguous ranges of the row space — a sender knows its chunk from
    /// its own id alone, no global nnz ordering needed).
    #[must_use]
    pub fn row_group(&self, k: usize, x: usize) -> usize {
        let g = self.grids[k].expect("inner index has a helper grid");
        x * g.ga / self.n
    }

    /// The column-chunk `j ∈ [gᵇ]` responsible for column index `z` of
    /// `row_k(T)`.
    #[must_use]
    pub fn col_group(&self, k: usize, z: usize) -> usize {
        let g = self.grids[k].expect("inner index has a helper grid");
        z * g.gb / self.n
    }

    /// The helper slots `(k, i, j)` served by node `v`, in ascending
    /// `(k, i, j)` order — the deterministic iteration order of the helper
    /// compute phase. Precomputed at construction; the lookup is O(1).
    #[must_use]
    pub fn slots_of(&self, v: usize) -> &[(usize, usize, usize)] {
        &self.slots[v]
    }

    /// An upper estimate of the words the sparse protocol routes (shipping
    /// replication plus aggregated product returns) for elements of the
    /// given wire width — the quantity the density dispatcher compares
    /// against a dense run. Each record is an index word plus the payload,
    /// and `route_dynamic` charges every payload word twice (destination
    /// header) over two hops: `4·(width + 1)` load units per record.
    #[must_use]
    pub fn estimated_words(&self, width: usize) -> u128 {
        let rec = 4 * (width as u128 + 1);
        let n2 = self.n as u128 * self.n as u128;
        let mut total = 0u128;
        for (k, g) in self.grids.iter().enumerate() {
            let Some(g) = g else { continue };
            let (a, b) = (self.a_col[k] as u128, self.b_row[k] as u128);
            let ship = a * g.gb as u128 + b * g.ga as u128;
            // Products aggregate per (row, column) pair at the helper before
            // the return trip, so output is capped by the tile area.
            let out = (a * b).min(n2);
            total += (ship + out) * rec;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isqrt_is_floor_sqrt() {
        for x in 0u128..200 {
            let r = isqrt(x);
            assert!(r * r <= x && (r + 1) * (r + 1) > x, "x={x} r={r}");
        }
        assert_eq!(isqrt(u128::from(u64::MAX)), (1u128 << 32) - 1);
    }

    #[test]
    fn empty_indices_get_no_grid() {
        let plan = SparsePlan::new(&[3, 0, 5, 2], &[1, 9, 0, 2]);
        assert!(plan.grid(0).is_some());
        assert!(plan.grid(1).is_none(), "a_col = 0");
        assert!(plan.grid(2).is_none(), "b_row = 0");
        assert_eq!(plan.total_work(), 3 + 4);
    }

    #[test]
    fn all_zero_plan_has_no_work() {
        let plan = SparsePlan::new(&[0; 6], &[0; 6]);
        assert_eq!(plan.total_work(), 0);
        assert!((0..6).all(|k| plan.grid(k).is_none()));
        assert!((0..6).all(|v| plan.slots_of(v).is_empty()));
        assert_eq!(plan.estimated_words(1), 0);
    }

    #[test]
    fn slots_partition_every_grid_cell() {
        let n = 16;
        let a: Vec<usize> = (0..n).map(|k| (k * 7) % 13).collect();
        let b: Vec<usize> = (0..n).map(|k| (k * 5 + 3) % 11).collect();
        let plan = SparsePlan::new(&a, &b);
        // Gather every node's served slots; together they must cover each
        // grid exactly once.
        let mut seen: Vec<(usize, usize, usize)> = (0..n)
            .flat_map(|v| plan.slots_of(v).iter().copied())
            .collect();
        seen.sort_unstable();
        let mut expect = Vec::new();
        for k in 0..n {
            if let Some(g) = plan.grid(k) {
                for i in 0..g.ga {
                    for j in 0..g.gb {
                        expect.push((k, i, j));
                        // And the slot's owner agrees with `helper`.
                        let owner = plan.helper(k, i, j);
                        assert!(plan.slots_of(owner).contains(&(k, i, j)));
                    }
                }
            }
        }
        assert_eq!(seen, expect);
    }

    #[test]
    fn groups_stay_in_range_and_are_monotone() {
        let n = 20;
        let a = vec![9usize; n];
        let b = vec![4usize; n];
        let plan = SparsePlan::new(&a, &b);
        for k in 0..n {
            let g = plan.grid(k).expect("uniform positive work");
            assert!(g.ga >= 1 && g.gb >= 1);
            assert!(g.ga * g.gb <= n, "no more helpers than nodes");
            let mut last = 0;
            for x in 0..n {
                let i = plan.row_group(k, x);
                assert!(i < g.ga);
                assert!(i >= last, "row groups are monotone ranges");
                last = i;
            }
            for z in 0..n {
                assert!(plan.col_group(k, z) < g.gb);
            }
        }
    }

    #[test]
    fn heavy_indices_get_more_helpers() {
        let n = 32;
        let mut a = vec![1usize; n];
        let mut b = vec![1usize; n];
        a[3] = 30;
        b[3] = 30;
        let plan = SparsePlan::new(&a, &b);
        let heavy = plan.grid(3).unwrap();
        let light = plan.grid(0).unwrap();
        assert!(
            heavy.ga * heavy.gb > light.ga * light.gb,
            "index with ~900/~930 of the work dominates the helper budget"
        );
    }

    #[test]
    fn estimated_words_shrink_with_density() {
        let n = 64;
        let sparse = SparsePlan::new(&vec![2; n], &vec![2; n]);
        let dense = SparsePlan::new(&vec![n; n], &vec![n; n]);
        assert!(sparse.estimated_words(1) < dense.estimated_words(1) / 100);
    }

    #[test]
    fn grid_aspect_tracks_side_imbalance() {
        // A long-thin workload (big column, tiny row) should split the
        // column side more than the row side.
        let n = 64;
        let mut a = vec![0usize; n];
        let mut b = vec![0usize; n];
        a[0] = 64;
        b[0] = 2;
        // Give index 0 all the work so it receives the full helper budget.
        let plan = SparsePlan::new(&a, &b);
        let g = plan.grid(0).unwrap();
        assert!(
            g.ga >= g.gb,
            "column chunks {} vs row chunks {}",
            g.ga,
            g.gb
        );
    }
}
