//! # cc-core: matrix multiplication in the congested clique
//!
//! This crate implements the primary contribution of *"Algebraic Methods in
//! the Congested Clique"* (PODC 2015): matrix multiplication algorithms for
//! the congested clique and the distance-product machinery built on them.
//!
//! * [`semiring_mm`] — the **3D algorithm** (paper §2.1): `O(n^{1/3})`-round
//!   multiplication over any semiring, by partitioning the `n³`
//!   element-multiplications into `n` subcubes.
//! * [`fast_mm`] — the **fast bilinear algorithm** (paper §2.2):
//!   `O(n^{1-2/σ})`-round multiplication over rings, parameterised by any
//!   [`cc_algebra::BilinearAlgorithm`] with `m = O(d^σ)` multiplications
//!   (Strassen and its tensor powers here; the paper's `ω < 2.373`
//!   algorithms have no implementable tensor description — see DESIGN.md).
//! * [`distance`] — min-plus (distance) products: exact via the 3D
//!   algorithm, weight-capped via the polynomial-ring embedding (Lemma 18),
//!   and `(1+δ)`-approximate via weight scaling (Lemma 20).
//! * [`witness`] — witness matrices for distance products (paper §3.4),
//!   enabling routing-table construction.
//! * [`boolean`] — Boolean semiring products through the integer fast path.
//!
//! Matrices live in the paper's input convention: node `v` holds **row `v`**
//! of each operand and ends with row `v` of the product ([`RowMatrix`]).
//!
//! ## Example
//!
//! ```rust
//! use cc_algebra::{IntRing, Matrix};
//! use cc_clique::Clique;
//! use cc_core::{semiring_mm, RowMatrix};
//!
//! let n = 8;
//! let a = Matrix::from_fn(n, n, |i, j| ((i + j) % 3) as i64);
//! let b = Matrix::from_fn(n, n, |i, j| ((2 * i + j) % 5) as i64);
//! let mut clique = Clique::new(n);
//! let product = semiring_mm::multiply(
//!     &mut clique,
//!     &IntRing,
//!     &RowMatrix::from_matrix(&a),
//!     &RowMatrix::from_matrix(&b),
//! );
//! assert_eq!(product.to_matrix(), Matrix::mul(&IntRing, &a, &b));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boolean;
pub mod distance;
pub mod fast_mm;
mod fast_plan;
mod plan3d;
mod row_matrix;
pub mod semiring_mm;
pub mod witness;

pub use crate::fast_plan::FastPlan;
pub use crate::plan3d::Plan3d;
pub use crate::row_matrix::RowMatrix;
