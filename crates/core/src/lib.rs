//! # cc-core: matrix multiplication in the congested clique
//!
//! This crate implements the primary contribution of *"Algebraic Methods in
//! the Congested Clique"* (PODC 2015): matrix multiplication algorithms for
//! the congested clique and the distance-product machinery built on them.
//!
//! * [`semiring_mm`] — the **3D algorithm** (paper §2.1): `O(n^{1/3})`-round
//!   multiplication over any semiring, by partitioning the `n³`
//!   element-multiplications into `n` subcubes.
//! * [`fast_mm`] — the **fast bilinear algorithm** (paper §2.2):
//!   `O(n^{1-2/σ})`-round multiplication over rings, parameterised by any
//!   [`cc_algebra::BilinearAlgorithm`] with `m = O(d^σ)` multiplications
//!   (Strassen and its tensor powers here; the paper's `ω < 2.373`
//!   algorithms have no implementable tensor description — see DESIGN.md).
//! * [`distance`] — min-plus (distance) products: exact via the 3D
//!   algorithm, weight-capped via the polynomial-ring embedding (Lemma 18),
//!   and `(1+δ)`-approximate via weight scaling (Lemma 20).
//! * [`witness`] — witness matrices for distance products (paper §3.4),
//!   enabling routing-table construction.
//! * [`boolean`] — Boolean semiring products through the integer fast path.
//!
//! ## Sparse & rectangular MM (Le Gall, PODC 2016)
//!
//! The follow-up paper *"Further Algebraic Algorithms in the Congested
//! Clique Model"* (Le Gall, 2016) shows the clique rewards structure the
//! Theorem 1 engines cannot see:
//!
//! * [`sparse_mm`] — nnz-aware multiplication over any semiring: a census
//!   makes the per-index nonzero counts global, a [`SparsePlan`] spreads
//!   the `W = Σ_k nnz(col_k S)·nnz(row_k T)` elementary products over
//!   helper grids, and costs scale with `W/n` instead of the dense
//!   `n^{1/3}`-and-up round counts — plus density-dispatching front doors
//!   ([`sparse_mm::multiply_auto`], [`sparse_mm::multiply_auto_ring`],
//!   [`sparse_mm::distance_product_with_witness_auto`]) that fall back to
//!   [`semiring_mm`] / [`fast_mm`] when sparsity doesn't pay
//!   (`CC_MM=sparse|dense` overrides the choice).
//! * [`rect_mm`] — `n × m · m × n` products ([`RectMatrix`]): a thin inner
//!   dimension is priced as extreme sparsity (padded inner indices get no
//!   helpers), a wide one is summed in `⌈m/n⌉` dispatched slabs.
//!
//! Matrices live in the paper's input convention: node `v` holds **row `v`**
//! of each operand and ends with row `v` of the product ([`RowMatrix`]).
//!
//! ## Example
//!
//! ```rust
//! use cc_algebra::{IntRing, Matrix};
//! use cc_clique::Clique;
//! use cc_core::{semiring_mm, RowMatrix};
//!
//! let n = 8;
//! let a = Matrix::from_fn(n, n, |i, j| ((i + j) % 3) as i64);
//! let b = Matrix::from_fn(n, n, |i, j| ((2 * i + j) % 5) as i64);
//! let mut clique = Clique::new(n);
//! let product = semiring_mm::multiply(
//!     &mut clique,
//!     &IntRing,
//!     &RowMatrix::from_matrix(&a),
//!     &RowMatrix::from_matrix(&b),
//! );
//! assert_eq!(product.to_matrix(), Matrix::mul(&IntRing, &a, &b));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boolean;
pub mod distance;
pub mod fast_mm;
mod fast_plan;
mod plan3d;
pub mod rect_mm;
mod row_matrix;
pub mod semiring_mm;
pub mod sparse_mm;
mod sparse_plan;
pub mod witness;

pub use crate::fast_plan::FastPlan;
pub use crate::plan3d::Plan3d;
pub use crate::rect_mm::RectMatrix;
pub use crate::row_matrix::RowMatrix;
pub use crate::sparse_plan::{HelperGrid, SparsePlan};
