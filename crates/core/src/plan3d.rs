//! Partitioning plan for the semiring 3D algorithm (paper §2.1, Figure 1).

/// The index partitioning used by the 3D algorithm: the `n × n × n`
/// multiplication cube is split into `p³` subcubes (`p = ⌊n^{1/3}⌋`), and
/// the `p³` *active* nodes are identified with digit triples
/// `v = v₁v₂v₃ ∈ [p]³`; node `v₁v₂v₃` computes the block product
/// `S[v₁∗∗, v₂∗∗] · T[v₂∗∗, v₃∗∗]`.
///
/// The paper assumes `n^{1/3}` is an integer; this plan generalises to all
/// `n` by letting the `p³ ≤ n` lowest-numbered nodes be active (the rest
/// participate only as row owners) and by using row/column blocks of size
/// `⌈n/p⌉` with a shorter final block.
///
/// # Examples
///
/// ```rust
/// use cc_core::Plan3d;
/// let plan = Plan3d::new(64);
/// assert_eq!(plan.p(), 4);
/// assert_eq!(plan.active(), 64);
/// assert_eq!(plan.digits(0b_110110 /* 54 */), (3, 1, 2)); // 54 = 3*16 + 1*4 + 2
/// assert_eq!(plan.block_of_row(63), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Plan3d {
    n: usize,
    p: usize,
    bs: usize,
}

impl Plan3d {
    /// Builds the plan for an `n`-node clique.
    ///
    /// # Panics
    ///
    /// Panics if `n < 1`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "empty clique");
        let mut p = 1;
        while (p + 1) * (p + 1) * (p + 1) <= n {
            p += 1;
        }
        let bs = n.div_ceil(p);
        Self { n, p, bs }
    }

    /// Clique / matrix dimension `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Cube side `p = ⌊n^{1/3}⌋`.
    #[must_use]
    pub fn p(&self) -> usize {
        self.p
    }

    /// Number of active nodes, `p³`.
    #[must_use]
    pub fn active(&self) -> usize {
        self.p * self.p * self.p
    }

    /// Row/column block size `⌈n/p⌉` (the final block may be shorter).
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.bs
    }

    /// Digit decomposition of an active node id.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not active.
    #[must_use]
    pub fn digits(&self, v: usize) -> (usize, usize, usize) {
        assert!(
            v < self.active(),
            "node {v} is not active (p³ = {})",
            self.active()
        );
        (v / (self.p * self.p), (v / self.p) % self.p, v % self.p)
    }

    /// Node id of a digit triple.
    ///
    /// # Panics
    ///
    /// Panics if any digit is out of `[p]`.
    #[must_use]
    pub fn node_of(&self, d1: usize, d2: usize, d3: usize) -> usize {
        assert!(
            d1 < self.p && d2 < self.p && d3 < self.p,
            "digit out of range"
        );
        (d1 * self.p + d2) * self.p + d3
    }

    /// The block index of matrix row/column `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r ≥ n`.
    #[must_use]
    pub fn block_of_row(&self, r: usize) -> usize {
        assert!(r < self.n, "row {r} out of range");
        r / self.bs
    }

    /// The row/column range of block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b ≥ p`.
    #[must_use]
    pub fn block_range(&self, b: usize) -> std::ops::Range<usize> {
        assert!(b < self.p, "block {b} out of range (p = {})", self.p);
        b * self.bs..((b + 1) * self.bs).min(self.n)
    }

    /// ASCII rendering of the Figure 1 partitioning: the matrix `S` divided
    /// into the `p × p` grid of blocks `S[x∗∗, y∗∗]`, with one block
    /// highlighted as in the paper's figure.
    #[must_use]
    pub fn render_figure(&self, highlight: (usize, usize)) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "3D plan: n = {}, p = {}, block ⌈n/p⌉ = {} (Figure 1)\n",
            self.n, self.p, self.bs
        ));
        for x in 0..self.p {
            for _sub in 0..2 {
                for y in 0..self.p {
                    let mark = if (x, y) == highlight { "##" } else { "··" };
                    out.push_str(&format!("[{mark}{mark}]"));
                }
                out.push('\n');
            }
        }
        out.push_str(&format!(
            "highlighted: S[{}∗∗, {}∗∗] = rows {:?} × cols {:?}\n",
            highlight.0,
            highlight.1,
            self.block_range(highlight.0),
            self.block_range(highlight.1)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_cube() {
        let plan = Plan3d::new(27);
        assert_eq!(plan.p(), 3);
        assert_eq!(plan.active(), 27);
        assert_eq!(plan.block_size(), 9);
        assert_eq!(plan.digits(26), (2, 2, 2));
        assert_eq!(plan.node_of(2, 2, 2), 26);
        assert_eq!(plan.block_range(2), 18..27);
    }

    #[test]
    fn non_cube_degrades_gracefully() {
        let plan = Plan3d::new(30);
        assert_eq!(plan.p(), 3);
        assert_eq!(plan.active(), 27);
        assert_eq!(plan.block_size(), 10);
        assert_eq!(plan.block_range(2), 20..30);
        // All rows map to a valid block.
        for r in 0..30 {
            assert!(plan.block_of_row(r) < 3);
        }
    }

    #[test]
    fn tiny_clique_has_single_block() {
        let plan = Plan3d::new(5);
        assert_eq!(plan.p(), 1);
        assert_eq!(plan.active(), 1);
        assert_eq!(plan.block_range(0), 0..5);
    }

    #[test]
    fn digits_roundtrip() {
        let plan = Plan3d::new(64);
        for v in 0..plan.active() {
            let (a, b, c) = plan.digits(v);
            assert_eq!(plan.node_of(a, b, c), v);
        }
    }

    #[test]
    fn figure_rendering_mentions_parameters() {
        let plan = Plan3d::new(27);
        let fig = plan.render_figure((1, 2));
        assert!(fig.contains("p = 3"));
        assert!(fig.contains("S[1∗∗, 2∗∗]"));
    }
}
