//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! workspace-local crate provides the small API subset the repository uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`],
//! [`Rng::gen_bool`] and [`Rng::gen`]. The generator is xoshiro256++ seeded
//! through SplitMix64 — deterministic per seed, which is all the callers
//! rely on (every random workload in this repo takes an explicit seed).
//!
//! This is **not** a drop-in statistical replacement for the real `rand`
//! crate: stream values differ from upstream `StdRng`, and only the ranges
//! and primitive types exercised by this workspace are supported.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Draws a value uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits, the standard float-in-[0,1) construction.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Draws a uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types drawable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn draw(rng: &mut impl RngCore) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Unbiased sampling of `x` in `[0, bound)` by rejection (Lemire's method
/// simplified: retry on the biased low zone).
fn uniform_below(rng: &mut impl RngCore, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return (rng.next_u64() as i128 + lo as i128) as $t;
                }
                (lo as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, i64, i32);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++ with
    /// SplitMix64 seeding. Stream values are stable across runs and
    /// platforms for a given seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// `rand::prelude` re-exports.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let sa: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1 << 40)).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1 << 40)).collect();
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range(5i64..=9);
            assert!((5..=9).contains(&x));
            let y = r.gen_range(2usize..4);
            assert!((2..4).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(4);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..2000).filter(|_| r.gen_bool(0.25)).count();
        assert!((300..700).contains(&hits), "hits={hits}");
    }
}
