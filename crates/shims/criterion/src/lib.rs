//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! workspace-local crate provides the API subset the repository's benches
//! use: [`Criterion`], [`BenchmarkId`], benchmark groups with
//! `sample_size`/`bench_function`/`bench_with_input`, [`Bencher::iter`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is simplified relative to upstream: each benchmark runs a
//! short warm-up followed by `sample_size` timed samples and reports
//! min/mean/median wall-clock per iteration on stdout. Measurements are
//! also recorded in-process (see [`Criterion::take_measurements`]) so
//! harness-less benches can export machine-readable results.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// One recorded benchmark result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Group name (empty for top-level `bench_function`).
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Per-iteration sample means, one per sample.
    pub samples_ns: Vec<f64>,
}

impl Measurement {
    /// Mean nanoseconds per iteration across samples.
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64
    }

    /// Median nanoseconds per iteration across samples.
    #[must_use]
    pub fn median_ns(&self) -> f64 {
        let mut s = self.samples_ns.clone();
        s.sort_by(|a, b| a.total_cmp(b));
        s[s.len() / 2]
    }

    /// Minimum nanoseconds per iteration across samples.
    #[must_use]
    pub fn min_ns(&self) -> f64 {
        self.samples_ns
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }
}

/// Benchmark identifier: a function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// `name/parameter`, matching upstream's display form.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            repr: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from a bare parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            repr: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples_ns: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            samples_ns: Vec::new(),
            sample_size,
        }
    }

    /// Times `routine`, recording `sample_size` samples.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up: one untimed run (fills caches, triggers lazy init).
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
        }
    }
}

fn human(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    measurements: Vec<Measurement>,
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a top-level benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(self, String::new(), id.to_string(), 10, f);
        self
    }

    /// Drains every measurement recorded so far.
    pub fn take_measurements(&mut self) -> Vec<Measurement> {
        std::mem::take(&mut self.measurements)
    }
}

fn run_one(
    c: &mut Criterion,
    group: String,
    id: String,
    sample_size: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher::new(sample_size);
    f(&mut b);
    let m = Measurement {
        group: group.clone(),
        id: id.clone(),
        samples_ns: b.samples_ns,
    };
    let label = if group.is_empty() {
        id
    } else {
        format!("{group}/{id}")
    };
    if m.samples_ns.is_empty() {
        println!("{label:<40} (no samples)");
    } else {
        println!(
            "{label:<40} min {:>12}  median {:>12}  mean {:>12}",
            human(m.min_ns()),
            human(m.median_ns()),
            human(m.mean_ns()),
        );
    }
    c.measurements.push(m);
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark identified by `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            self.criterion,
            self.name.clone(),
            id.repr,
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(
            self.criterion,
            self.name.clone(),
            id.into(),
            self.sample_size,
            f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
