//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! workspace-local crate implements the API subset the repository's property
//! tests use: the [`proptest!`] macro, range/tuple/`Just`/`prop_map`/
//! `prop_oneof!` strategies, [`collection::vec`], [`any`], and
//! [`test_runner::Config`] (`ProptestConfig::with_cases`).
//!
//! Semantics are simplified relative to upstream: cases are drawn from a
//! deterministic generator (so failures reproduce across runs), and there is
//! **no shrinking** — a failing case panics with the assertion message of the
//! first failure.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// Deterministic generator driving all strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator for one test case.
        pub fn new(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample an empty range");
            if bound.is_power_of_two() {
                return self.next_u64() & (bound - 1);
            }
            let zone = u64::MAX - (u64::MAX % bound) - 1;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }
    }

    /// A recipe for generating values of an associated type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Strategy generating a single constant value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adaptor.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return (rng.next_u64() as i128 + lo as i128) as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
    }

    /// Weighted union of strategies (built by [`crate::prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total: u64 = arms.iter().map(|&(w, _)| u64::from(w)).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Self { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.sample(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick within total")
        }
    }

    /// Full-range strategy for primitive types (see [`crate::any`]).
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Any<T> {
        /// Creates the strategy.
        pub fn new() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    macro_rules! impl_any {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_any!(u64, i64, u32, i32, usize, u16, i16, u8, i8);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Full-range strategy for a primitive type: `any::<i64>()`.
pub fn any<T>() -> strategy::Any<T>
where
    strategy::Any<T>: strategy::Strategy<Value = T>,
{
    strategy::Any::new()
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-runner configuration.

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Weighted choice between strategies: `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Declares property tests: each function runs its body once per generated
/// case, with arguments drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            // Per-test deterministic seed: hash of the test name, so
            // different properties explore different streams but failures
            // reproduce run-to-run.
            let mut name_seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in stringify!($name).bytes() {
                name_seed ^= b as u64;
                name_seed = name_seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::strategy::TestRng::new(
                    name_seed.wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                );
                $crate::__proptest_bind!(rng; $($args)*);
                $body
            }
        }
    )*};
}

/// Binds property arguments: `name in strategy` draws from the strategy,
/// `name: Type` draws from `any::<Type>()`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $arg:ident in $strategy:expr, $($rest:tt)*) => {
        let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $arg:ident in $strategy:expr) => {
        let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut $rng);
    };
    ($rng:ident; $arg:ident : $ty:ty, $($rest:tt)*) => {
        let $arg = $crate::strategy::Strategy::sample(&$crate::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $arg:ident : $ty:ty) => {
        let $arg = $crate::strategy::Strategy::sample(&$crate::any::<$ty>(), &mut $rng);
    };
}
