//! Approximation-quality experiment for Theorem 9: measured worst-case
//! stretch of the `(1+o(1))`-approximate APSP against the exact oracle,
//! and the accuracy/rounds trade-off as `δ` varies.
//!
//! Usage: `cargo run --release -p cc-bench --bin apsp_accuracy`

use cc_clique::Clique;
use cc_graph::{generators, oracle};

fn main() {
    let n = 27;
    let g = generators::weighted_gnp(n, 0.3, 50, true, 41);
    let exact = oracle::apsp(&g);

    println!("## Theorem 9 accuracy (n = {n}, weights ≤ 50, directed G(n, 0.3))\n");
    println!("| δ | guarantee (1+δ)^⌈log n⌉ | measured max stretch | mean stretch | rounds |");
    println!("|---|---|---|---|---|");
    for &delta in &[1.0, 0.5, 0.25, 0.125] {
        let mut clique = Clique::new(n);
        let approx = cc_apsp::apsp_approx(&mut clique, &g, delta);
        let levels = (n as f64).log2().ceil();
        let bound = (1.0 + delta).powf(levels);
        let mut max_stretch: f64 = 1.0;
        let mut sum_stretch = 0.0;
        let mut pairs = 0usize;
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    continue;
                }
                match (exact[(u, v)].value(), approx.row(u)[v].value()) {
                    (Some(e), Some(a)) if e > 0 => {
                        let stretch = a as f64 / e as f64;
                        assert!(stretch >= 1.0 - 1e-12, "approx below exact at ({u},{v})");
                        assert!(stretch <= bound + 1e-9, "guarantee violated at ({u},{v})");
                        max_stretch = max_stretch.max(stretch);
                        sum_stretch += stretch;
                        pairs += 1;
                    }
                    (Some(0), Some(a)) => assert_eq!(a, 0, "zero distances must stay zero"),
                    (None, None) | (Some(_), Some(_)) => {}
                    (e, a) => panic!("finiteness mismatch at ({u},{v}): {e:?} vs {a:?}"),
                }
            }
        }
        println!(
            "| {delta} | {bound:.3} | {max_stretch:.4} | {:.4} | {} |",
            sum_stretch / pairs as f64,
            clique.rounds()
        );
    }
    println!("\nEvery pair satisfied exact ≤ approx ≤ (1+δ)^⌈log n⌉ · exact.");
}
