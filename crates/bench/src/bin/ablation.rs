//! Ablation experiments for the design choices DESIGN.md calls out:
//!
//! 1. **Label-grid search vs. the paper's `q = ⌈√n⌉`** in the fast MM plan
//!    (DESIGN.md §2 "padding"): the searched plan reduces padding waste.
//! 2. **Two-choice vs. single-hash relays** in the balanced router
//!    (DESIGN.md §5 "Routing"): two choices tighten per-link maxima.
//! 3. **Balanced routing vs. direct links** for the 3D scatter pattern:
//!    why the Lenzen-style primitive is essential for Theorem 1.
//!
//! Usage: `cargo run --release -p cc-bench --bin ablation`

use cc_algebra::{IntRing, Matrix};
use cc_clique::{Clique, CliqueConfig, RelayPolicy};
use cc_core::{fast_mm, FastPlan, RowMatrix};

fn rand_matrix(n: usize, seed: u64) -> Matrix<i64> {
    let mut st = seed;
    Matrix::from_fn(n, n, |_, _| {
        st = st
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((st >> 33) % 9) as i64 - 4
    })
}

fn main() {
    println!("## Ablation 1: fast-MM label grid — searched q vs paper's q = ⌈√n⌉\n");
    println!("| n | q (searched) | rounds | q = ⌈√n⌉ | rounds | saving |");
    println!("|---|---|---|---|---|---|");
    for n in [64usize, 125, 216, 343] {
        let alg = FastPlan::best_strassen(n);
        let a = RowMatrix::from_matrix(&rand_matrix(n, 1));
        let b = RowMatrix::from_matrix(&rand_matrix(n, 2));
        let searched = FastPlan::new(n, &alg);
        let sqrt_q = (1..).find(|q| q * q >= n).expect("q");
        let fixed = FastPlan::with_q(n, &alg, sqrt_q);
        let run = |plan: &FastPlan| {
            let mut clique = Clique::new(n);
            fast_mm::multiply_with_plan(&mut clique, &IntRing, &alg, plan, &a, &b);
            clique.rounds()
        };
        let (rs, rf) = (run(&searched), run(&fixed));
        println!(
            "| {n} | {} | {rs} | {} | {rf} | {:.0}% |",
            searched.q(),
            fixed.q(),
            100.0 * (1.0 - rs as f64 / rf as f64)
        );
    }

    println!("\n## Ablation 2: router relay policy — two-choice vs single hash\n");
    println!("| n | load/node | two-choice rounds | single-hash rounds |");
    println!("|---|---|---|---|");
    for n in [32usize, 64, 128] {
        let per_node = 4 * n; // a routing instance with per-node load 4n
        let run = |policy: RelayPolicy| {
            let cfg = CliqueConfig {
                relay_policy: policy,
                ..CliqueConfig::default()
            };
            let mut clique = Clique::with_config(n, cfg);
            clique.route(|v| {
                (0..n)
                    .filter(|&u| u != v)
                    .map(|u| (u, vec![v as u64; per_node / (n - 1)]))
                    .collect()
            });
            clique.rounds()
        };
        println!(
            "| {n} | {per_node} | {} | {} |",
            run(RelayPolicy::TwoChoice),
            run(RelayPolicy::SingleHash)
        );
    }

    println!("\n## Ablation 3: balanced routing vs direct links (3D scatter shape)\n");
    println!("Pattern: every node sends n^(2/3) words to each of n^(1/3) specific peers.");
    println!("| n | routed rounds | direct rounds | speedup |");
    println!("|---|---|---|---|");
    for n in [64usize, 216, 512] {
        let p = (1..).find(|p: &usize| (p + 1).pow(3) > n).expect("p");
        let chunk = n / p; // ~n^{2/3} words per recipient
        let recipients = p; // ~n^{1/3} recipients
        let pattern = |v: usize| -> Vec<(usize, Vec<u64>)> {
            (1..=recipients)
                .map(|k| ((v + k * 7) % n, vec![0u64; chunk]))
                .collect()
        };
        let mut routed = Clique::new(n);
        routed.route(pattern);
        let mut direct = Clique::new(n);
        direct.exchange(pattern);
        println!(
            "| {n} | {} | {} | {:.1}x |",
            routed.rounds(),
            direct.rounds(),
            direct.rounds() as f64 / routed.rounds() as f64
        );
    }
    println!("\nDirect links pay the full per-pair queue (n^(2/3)); balanced routing");
    println!("spreads it to ~max(out,in)/n, which is what makes Theorem 1 possible.");
}
