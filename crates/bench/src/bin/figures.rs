//! Regenerates the paper's **Figures 1–3** as ASCII diagrams computed from
//! the actual algorithm parameterisations (not hand-drawn):
//!
//! * Figure 1 — the semiring 3D algorithm's block partitioning;
//! * Figure 2 — the fast bilinear algorithm's two-level partitioning;
//! * Figure 3 — the Lemma 12 tile allocation used by O(1) 4-cycle
//!   detection.
//!
//! Usage: `cargo run --release -p cc-bench --bin figures`

use cc_algebra::BilinearAlgorithm;
use cc_core::{FastPlan, Plan3d};
use cc_graph::generators;
use cc_subgraph::TilePlan;

fn main() {
    println!("=== Figure 1: semiring matrix multiplication partitioning (paper §2.1) ===\n");
    let plan = Plan3d::new(64);
    println!("{}", plan.render_figure((1, 2)));
    println!(
        "node v = v1v2v3 computes S[v1**, v2**] · T[v2**, v3**]; e.g. node {} handles {:?}\n",
        plan.node_of(1, 2, 3),
        (1, 2, 3)
    );

    println!("=== Figure 2: fast matrix multiplication partitioning (paper §2.2) ===\n");
    let alg = BilinearAlgorithm::strassen().power(2);
    let fplan = FastPlan::new(49, &alg);
    println!("{}", fplan.render_figure());
    println!(
        "bilinear algorithm: Strassen⊗2 — d = {}, m = {} multiplications, σ = {:.3}\n",
        alg.d(),
        alg.m(),
        alg.sigma()
    );

    println!("=== Figure 3: 4-cycle detection tiling of P(*,*,*) (paper Thm. 4) ===\n");
    let g = generators::preferential_attachment(64, 3, 7);
    let degrees: Vec<usize> = (0..64).map(|v| g.degree(v)).collect();
    let tiles = TilePlan::allocate(&degrees);
    println!("{}", tiles.render_figure());
    println!(
        "input: preferential-attachment graph, n = 64, m = {}; tile sides f(y) ≥ deg(y)/8",
        g.m()
    );
}
