//! Regenerates the paper's **Table 1**: measured round counts and fitted
//! exponents for every problem row, ours vs. prior work, on the simulator.
//!
//! Usage: `cargo run --release -p cc-bench --bin table1`
//! (set `CC_BENCH_QUICK=1` for a reduced sweep).
//!
//! Absolute round counts are implementation constants; the reproduction
//! claims are the *fitted exponents* and the ours-vs-baseline orderings.
//! With Strassen (σ = log₂ 7) the ring-multiplication exponent target is
//! `1 − 2/σ ≈ 0.288` instead of the paper's `0.158` (which needs Le Gall's
//! ω — see DESIGN.md §2).

use cc_algebra::Matrix;
use cc_bench::{sweep, table_header, TableRow};
use cc_clique::Clique;
use cc_core::{fast_mm, semiring_mm, RowMatrix};
use cc_graph::generators;
use cc_subgraph::GirthConfig;

fn quick() -> bool {
    std::env::var("CC_BENCH_QUICK").is_ok_and(|v| v == "1")
}

fn rand_matrix(n: usize, seed: u64) -> Matrix<i64> {
    let mut st = seed;
    Matrix::from_fn(n, n, |_, _| {
        st = st
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((st >> 33) % 9) as i64 - 4
    })
}

fn mm_rows(out: &mut Vec<TableRow>) {
    let sizes: &[usize] = if quick() {
        &[27, 64, 125]
    } else {
        &[27, 64, 125, 216, 343, 512]
    };

    let semiring = sweep(sizes, |n| {
        let (a, b) = (rand_matrix(n, 1), rand_matrix(n, 2));
        let mut clique = Clique::new(n);
        semiring_mm::multiply(
            &mut clique,
            &cc_algebra::IntRing,
            &RowMatrix::from_matrix(&a),
            &RowMatrix::from_matrix(&b),
        );
        clique.rounds()
    });
    let naive = sweep(
        if quick() {
            &[27, 64]
        } else {
            &[27, 64, 125, 216]
        },
        |n| {
            let (a, b) = (rand_matrix(n, 1), rand_matrix(n, 2));
            let mut clique = Clique::new(n);
            cc_baselines::naive::row_gather_mm(
                &mut clique,
                &RowMatrix::from_matrix(&a),
                &RowMatrix::from_matrix(&b),
            );
            clique.rounds()
        },
    );
    out.push(TableRow {
        problem: "matrix multiplication (semiring)".into(),
        paper_bound: "O(n^{1/3})".into(),
        ours: semiring,
        prior_bound: "row-gather naive Θ(n)".into(),
        baseline: naive,
    });

    let ring = sweep(sizes, |n| {
        let (a, b) = (rand_matrix(n, 3), rand_matrix(n, 4));
        let mut clique = Clique::new(n);
        fast_mm::multiply_auto(
            &mut clique,
            &cc_algebra::IntRing,
            &RowMatrix::from_matrix(&a),
            &RowMatrix::from_matrix(&b),
        );
        clique.rounds()
    });
    out.push(TableRow {
        problem: "matrix multiplication (ring)".into(),
        paper_bound: "O(n^{0.158}) [ω]; O(n^{0.288}) w/ Strassen".into(),
        ours: ring,
        prior_bound: "O(n^{0.373}) Drucker et al. (analytic)".into(),
        baseline: vec![],
    });
}

fn triangle_rows(out: &mut Vec<TableRow>) {
    let sizes: &[usize] = if quick() {
        &[27, 64]
    } else {
        &[27, 64, 125, 216, 343]
    };
    let ours = sweep(sizes, |n| {
        let g = generators::gnp(n, 0.3, 11);
        let mut clique = Clique::new(n);
        cc_subgraph::count_triangles(&mut clique, &g);
        clique.rounds()
    });
    let dolev = sweep(sizes, |n| {
        let g = generators::gnp(n, 0.3, 11);
        let mut clique = Clique::new(n);
        cc_baselines::dolev::triangle_count(&mut clique, &g);
        clique.rounds()
    });
    out.push(TableRow {
        problem: "triangle counting".into(),
        paper_bound: "O(n^ρ)".into(),
        ours,
        prior_bound: "O(n^{1/3}) Dolev et al.".into(),
        baseline: dolev,
    });
}

fn four_cycle_rows(out: &mut Vec<TableRow>) {
    let det_sizes: &[usize] = if quick() {
        &[16, 81]
    } else {
        &[16, 81, 256, 512]
    };
    let ours = sweep(det_sizes, |n| {
        let g = generators::gnp(n, 1.5 / n as f64, 5);
        let mut clique = Clique::new(n);
        cc_subgraph::detect_4cycle(&mut clique, &g);
        clique.rounds()
    });
    let dolev_sizes: &[usize] = if quick() { &[16, 81] } else { &[16, 81, 256] };
    let dolev = sweep(dolev_sizes, |n| {
        let g = generators::gnp(n, 1.5 / n as f64, 5);
        let mut clique = Clique::new(n);
        cc_baselines::dolev::kcycle_detect(&mut clique, &g, 4);
        clique.rounds()
    });
    out.push(TableRow {
        problem: "4-cycle detection".into(),
        paper_bound: "O(1) (Theorem 4)".into(),
        ours,
        prior_bound: "O(n^{1/2}) Dolev et al.".into(),
        baseline: dolev,
    });

    let cnt_sizes: &[usize] = if quick() {
        &[27, 64]
    } else {
        &[27, 64, 125, 216, 343]
    };
    let counting = sweep(cnt_sizes, |n| {
        let g = generators::gnp(n, 0.2, 7);
        let mut clique = Clique::new(n);
        cc_subgraph::count_4cycles(&mut clique, &g);
        clique.rounds()
    });
    out.push(TableRow {
        problem: "4-cycle counting".into(),
        paper_bound: "O(n^ρ)".into(),
        ours: counting,
        prior_bound: "O(n^{1/2}) Dolev et al.".into(),
        baseline: vec![],
    });
}

fn kcycle_rows(out: &mut Vec<TableRow>) {
    // One colour-coding trial (the communication pattern is oblivious, so
    // per-trial rounds are colouring independent); w.h.p. detection costs
    // e^k·ln n trials on top, as the paper states.
    let sizes: &[usize] = if quick() { &[16, 27] } else { &[16, 27, 64] };
    let ours = sweep(sizes, |n| {
        let g = generators::planted_cycle(n, 5, 0.05, 3);
        let colours: Vec<usize> = (0..n).map(|v| v % 5).collect();
        let mut clique = Clique::new(n);
        cc_subgraph::detect_colourful_cycle(&mut clique, &g, &colours, 5);
        clique.rounds()
    });
    let dolev_sizes: &[usize] = if quick() { &[32, 64] } else { &[32, 64, 243] };
    let dolev = sweep(dolev_sizes, |n| {
        let g = generators::planted_cycle(n, 5, 0.02, 3);
        let mut clique = Clique::new(n);
        cc_baselines::dolev::kcycle_detect(&mut clique, &g, 5);
        clique.rounds()
    });
    out.push(TableRow {
        problem: "k-cycle detection (k=5, per colouring)".into(),
        paper_bound: "2^{O(k)} n^ρ log n".into(),
        ours,
        prior_bound: "O(n^{1-2/k}) Dolev et al.".into(),
        baseline: dolev,
    });
}

fn girth_rows(out: &mut Vec<TableRow>) {
    let sizes: &[usize] = if quick() {
        &[27, 64]
    } else {
        &[27, 64, 125, 216]
    };
    let ours = sweep(sizes, |n| {
        // Dense graphs take the matrix-multiplication path.
        let g = generators::gnp(n, 0.5, 13);
        let mut clique = Clique::new(n);
        cc_subgraph::girth(&mut clique, &g, GirthConfig::default());
        clique.rounds()
    });
    out.push(TableRow {
        problem: "girth (dense instances)".into(),
        paper_bound: "Õ(n^ρ)".into(),
        ours,
        prior_bound: "— (first non-trivial algorithm)".into(),
        baseline: vec![],
    });
}

fn apsp_rows(out: &mut Vec<TableRow>) {
    let sizes: &[usize] = if quick() {
        &[16, 27]
    } else {
        &[16, 27, 64, 125]
    };
    let exact = sweep(sizes, |n| {
        let g = generators::weighted_gnp(n, 0.25, 9, true, 17);
        let mut clique = Clique::new(n);
        cc_apsp::apsp_exact(&mut clique, &g);
        clique.rounds()
    });
    let bf_sizes: &[usize] = if quick() { &[16, 27] } else { &[16, 27, 64] };
    let bf = sweep(bf_sizes, |n| {
        let g = generators::weighted_gnp(n, 0.25, 9, true, 17);
        let mut clique = Clique::new(n);
        cc_baselines::naive::bellman_ford_apsp(&mut clique, &g);
        clique.rounds()
    });
    out.push(TableRow {
        problem: "weighted directed APSP (exact)".into(),
        paper_bound: "O(n^{1/3} log n)".into(),
        ours: exact,
        prior_bound: "distributed Bellman-Ford Θ(n·D)".into(),
        baseline: bf,
    });

    // Weighted-diameter row: rounds vs the cap U at fixed n.
    let u_sweep: &[usize] = if quick() { &[2, 8] } else { &[2, 4, 8, 16] };
    let diameter = sweep(u_sweep, |u| {
        let n = 27;
        let g = generators::weighted_gnp(n, 0.5, 2, true, 23);
        let mut clique = Clique::new(n);
        cc_apsp::apsp_small_weights(&mut clique, &g, Some(u as i64));
        clique.rounds()
    });
    out.push(TableRow {
        problem: "APSP, weighted diameter U (n=27; sweep over U)".into(),
        paper_bound: "O(U·n^ρ): linear in U".into(),
        ours: diameter,
        prior_bound: "—".into(),
        baseline: vec![],
    });

    let approx_sizes: &[usize] = if quick() { &[16] } else { &[16, 27, 64] };
    let approx = sweep(approx_sizes, |n| {
        let g = generators::weighted_gnp(n, 0.3, 10, true, 29);
        let mut clique = Clique::new(n);
        cc_apsp::apsp_approx(&mut clique, &g, 0.5);
        clique.rounds()
    });
    out.push(TableRow {
        problem: "(1+o(1))-approx APSP (δ=0.5)".into(),
        paper_bound: "O(n^{ρ+o(1)})".into(),
        ours: approx,
        prior_bound: "Õ(n^{1/2}) (2+o(1))-approx, Nanongkai (analytic)".into(),
        baseline: vec![],
    });

    let seidel_sizes: &[usize] = if quick() {
        &[16, 27]
    } else {
        &[16, 27, 64, 125, 216, 343]
    };
    let seidel = sweep(seidel_sizes, |n| {
        let g = generators::gnp(n, 0.15, 31);
        let mut clique = Clique::new(n);
        cc_apsp::apsp_seidel(&mut clique, &g);
        clique.rounds()
    });
    out.push(TableRow {
        problem: "unweighted undirected APSP (Seidel)".into(),
        paper_bound: "Õ(n^ρ)".into(),
        ours: seidel,
        prior_bound: "Õ(n^{1/2}) (2+o(1))-approx, Nanongkai (analytic)".into(),
        baseline: vec![],
    });
}

fn main() {
    let mut rows = Vec::new();
    eprintln!("# regenerating Table 1 (quick={}) ...", quick());
    eprintln!("# matrix multiplication rows");
    mm_rows(&mut rows);
    eprintln!("# triangle row");
    triangle_rows(&mut rows);
    eprintln!("# 4-cycle rows");
    four_cycle_rows(&mut rows);
    eprintln!("# k-cycle row");
    kcycle_rows(&mut rows);
    eprintln!("# girth row");
    girth_rows(&mut rows);
    eprintln!("# APSP rows");
    apsp_rows(&mut rows);

    println!("## Table 1 (regenerated)\n");
    println!("{}", table_header());
    for row in &rows {
        println!("{}", row.to_markdown());
    }
    println!();
    println!("Notes: ρ ≈ 0.288 here (Strassen, σ = log₂7); the paper's 0.158 requires ω < 2.373.");
    println!(
        "Round counts are executed simulator rounds; exponents are log-log least-squares fits."
    );
}
