//! Lower-bound experiments (paper §4, Corollaries 22–24):
//!
//! * Corollary 22: implementations of the trivial Θ(n³) semiring
//!   multiplication need Ω̃(n^{1/3}) rounds — our 3D algorithm's measured
//!   rounds are compared against that floor (it is optimal up to
//!   constants).
//! * Corollary 24: in the **broadcast** congested clique, matrix
//!   multiplication needs Ω̃(n) rounds — demonstrated by the Θ(n) broadcast
//!   upper bound towering over the unicast fast algorithm.
//!
//! Usage: `cargo run --release -p cc-bench --bin lower_bounds`

use cc_algebra::{IntRing, Matrix};
use cc_bench::{fit_exponent, sweep, Sample};
use cc_clique::{Clique, CliqueConfig, Mode};
use cc_core::{fast_mm, semiring_mm, RowMatrix};

fn rand_matrix(n: usize, seed: u64) -> Matrix<i64> {
    let mut st = seed;
    Matrix::from_fn(n, n, |_, _| {
        st = st
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((st >> 33) % 9) as i64 - 4
    })
}

fn main() {
    let sizes = [27usize, 64, 125, 216, 343];

    println!("## Corollary 22: the 3D semiring algorithm against its Ω(n^{{1/3}}) floor\n");
    println!("| n | measured rounds | n^(1/3) floor | ratio |");
    println!("|---|---|---|---|");
    let mut semiring_samples = Vec::new();
    for &n in &sizes {
        let (a, b) = (rand_matrix(n, 1), rand_matrix(n, 2));
        let mut clique = Clique::new(n);
        semiring_mm::multiply(
            &mut clique,
            &IntRing,
            &RowMatrix::from_matrix(&a),
            &RowMatrix::from_matrix(&b),
        );
        let floor = (n as f64).powf(1.0 / 3.0);
        println!(
            "| {n} | {} | {floor:.1} | {:.2} |",
            clique.rounds(),
            clique.rounds() as f64 / floor
        );
        semiring_samples.push(Sample {
            n,
            rounds: clique.rounds(),
        });
    }
    let fit = fit_exponent(&semiring_samples);
    println!(
        "\nfitted exponent {:.3} (R²={:.3}) — matching the Θ(n^{{1/3}}) optimum, \
         so the implementation sits at the Corollary 22 floor up to a constant.\n",
        fit.exponent, fit.r2
    );

    println!("## Corollary 24: broadcast clique vs unicast clique\n");
    println!("| n | broadcast-clique rounds | unicast fast-MM rounds | separation |");
    println!("|---|---|---|---|");
    let bsizes = [16usize, 32, 64, 128, 256];
    let broadcast = sweep(&bsizes, |n| {
        let (a, b) = (rand_matrix(n, 5), rand_matrix(n, 6));
        let cfg = CliqueConfig {
            mode: Mode::Broadcast,
            ..CliqueConfig::default()
        };
        let mut clique = Clique::with_config(n, cfg);
        cc_baselines::broadcast_mm::multiply(
            &mut clique,
            &RowMatrix::from_matrix(&a),
            &RowMatrix::from_matrix(&b),
        );
        clique.rounds()
    });
    let unicast = sweep(&bsizes, |n| {
        let (a, b) = (rand_matrix(n, 5), rand_matrix(n, 6));
        let mut clique = Clique::new(n);
        fast_mm::multiply_auto(
            &mut clique,
            &IntRing,
            &RowMatrix::from_matrix(&a),
            &RowMatrix::from_matrix(&b),
        );
        clique.rounds()
    });
    for (b, u) in broadcast.iter().zip(&unicast) {
        println!(
            "| {} | {} | {} | {:.2}x |",
            b.n,
            b.rounds,
            u.rounds,
            b.rounds as f64 / u.rounds as f64
        );
    }
    let bfit = fit_exponent(&broadcast);
    let ufit = fit_exponent(&unicast);
    println!(
        "\nbroadcast exponent {:.3} (Θ(n), the Corollary 24 regime) vs \
         unicast exponent {:.3} — the separation the paper proves.",
        bfit.exponent, ufit.exponent
    );
}
