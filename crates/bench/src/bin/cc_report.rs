//! `cc-report`: unified bench telemetry collation.
//!
//! Runs one instrumented clique + service workload per transport backend
//! under a full-level in-memory telemetry capture, then writes
//! `BENCH_telemetry.json` at the workspace root: a schema-versioned record
//! holding per-phase wall-clock, per-round link-skew histograms, engine and
//! executor aggregates, and service cache/coalescing gauges — with every
//! existing `BENCH_*.json` artifact spliced in verbatim, so one file tells
//! the whole performance story.
//!
//! Run after `cargo build --release` (the socket and tcp backends exec the
//! `cc-clique-node` worker binary): `cargo run --release -p cc-bench --bin
//! cc-report`.
//!
//! `cc-report --replay <capture.jsonl>` skips the workloads entirely:
//! it parses an existing [`cc_telemetry::JsonlSink`] capture back into a
//! fresh in-memory aggregate and prints the human [`RoundTimeline`] —
//! offline rendering for traces recorded on another machine or an earlier
//! run.

use cc_clique::{Clique, CliqueConfig, ExecutorKind, TransportKind};
use cc_graph::{generators, oracle};
use cc_service::{Query, Service, ServiceConfig, ServiceMode};
use cc_telemetry::{
    self as telemetry, event_from_json, MemorySink, MemorySnapshot, RoundTimeline, Telemetry,
    TraceLevel,
};
use std::fmt::Write as _;

/// Bumped whenever a field is renamed, retyped, or removed (additions are
/// compatible). CI greps the artifact for this exact version.
///
/// v2: distributed capture — per-backend `workers` columns (per-process
/// event attribution), `critical_path` table (per-epoch closer / straggler
/// skew), and the `worker_events_total` counter join the v1 fields.
const SCHEMA_VERSION: u32 = 2;

const N: usize = 16;
const SEED: u64 = 2015;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() >= 2 && args[1] == "--replay" {
        let Some(path) = args.get(2) else {
            eprintln!("usage: cc-report --replay <capture.jsonl>");
            std::process::exit(2);
        };
        replay(path);
        return;
    }

    // The capture must exist before any instrumented layer runs; failing
    // that, `CC_TRACE` from the environment would decide the level and the
    // report could come up empty.
    telemetry::install(Telemetry::with_memory(TraceLevel::Full))
        .expect("cc-report must install telemetry before any workload");
    let mem = telemetry::global()
        .memory()
        .expect("with_memory aggregates in memory");

    let backends: [(&str, TransportKind); 5] = [
        ("inmemory", TransportKind::InMemory),
        ("channel", TransportKind::Channel),
        ("socket", TransportKind::Socket { workers: 2 }),
        (
            "tcp",
            TransportKind::Tcp {
                workers: 2,
                resident: false,
                addr: None,
            },
        ),
        (
            "tcp-peer",
            TransportKind::Tcp {
                workers: 2,
                resident: true,
                addr: None,
            },
        ),
    ];

    let mut sections = String::new();
    for (label, transport) in backends {
        mem.reset();
        run_workloads(transport);
        let snap = mem.snapshot();
        if !sections.is_empty() {
            sections.push_str(",\n");
        }
        let _ = write!(sections, "    \"{label}\": {}", backend_json(&snap));
        let wire = label.split('-').next().unwrap_or(label);
        println!(
            "captured {label}: {} phases, {} transport rounds, {} gauges, \
             {} worker events from {} workers",
            snap.phases.len(),
            snap.transports.get(wire).map_or(0, |t| t.rounds),
            snap.gauges.len(),
            snap.workers.values().map(|w| w.events).sum::<u64>(),
            snap.workers.len()
        );
    }

    let collated = collate_existing_artifacts();
    let json = format!(
        "{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"note\": \"Unified telemetry \
         capture: per backend, a phased clique workload (triangles + exact APSP, n = {N}) \
         and a duplicate-heavy service batch, traced at CC_TRACE=full into the in-memory \
         aggregator. wall/step/barrier figures are nanoseconds; link_hist_pow2[i] counts \
         per-round links carrying [2^i, 2^(i+1)) words; workers holds per-process event \
         attribution merged from the multi-process backends' wire snapshots; critical_path \
         lists, per barrier epoch, the worker that closed it last and its skew over the \
         median lane; collated embeds the standalone BENCH_*.json artifacts \
         verbatim.\",\n  \"backends\": {{\n{sections}\n  }},\n  \
         \"collated\": {collated}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
    std::fs::write(path, &json).expect("write BENCH_telemetry.json");
    println!("wrote {path}");
}

/// The instrumented workload one backend runs: two named clique phases
/// (exercising engine rounds, executor dispatch, and per-round link loads)
/// plus a service batch with duplicates (exercising coalescing, the result
/// cache, and the warm pool gauges).
fn run_workloads(transport: TransportKind) {
    let g = generators::gnp(N, 0.35, SEED);
    let weighted = generators::weighted_gnp(N, 0.3, 9, true, SEED ^ 0xfeed);
    let cfg = CliqueConfig {
        executor: ExecutorKind::Parallel { threads: 2 },
        exec_cutover: Some(2),
        transport,
        ..CliqueConfig::default()
    };

    let mut clique = Clique::with_config(N, cfg.clone());
    let triangles = clique.phase("report.triangles", |c| {
        cc_subgraph::count_triangles_program(c, &g)
    });
    assert_eq!(triangles, oracle::count_triangles(&g), "report run corrupt");
    let tables = clique.phase("report.apsp", |c| cc_apsp::apsp_exact(c, &weighted));
    assert_eq!(tables.dist.n(), N);

    let mut svc = Service::new(ServiceConfig {
        clique: cfg,
        mode: ServiceMode::Batch { instances: 2 },
        ..ServiceConfig::default()
    });
    let gid = svc.register(g);
    for q in [
        Query::TriangleCount,
        Query::TriangleCount,
        Query::ApspTable,
        Query::Distance { s: 0, t: N - 1 },
    ] {
        let _ = svc.submit(gid, q);
    }
    svc.drain();
    // A second pure-hit batch so the hit-rate gauge reflects warm serving.
    let _ = svc.query(gid, Query::TriangleCount);
}

/// One backend's capture as a JSON object (hand-rolled: the workspace has
/// no serde, by design).
fn backend_json(snap: &MemorySnapshot) -> String {
    let mut phases = String::new();
    for (name, p) in &snap.phases {
        if !phases.is_empty() {
            phases.push_str(", ");
        }
        let _ = write!(
            phases,
            "{}: {{\"runs\": {}, \"rounds\": {}, \"words\": {}, \"wall_ns\": {}}}",
            json_string(name),
            p.runs,
            p.rounds,
            p.words,
            p.wall_ns
        );
    }

    let mut transports = String::new();
    for (backend, t) in &snap.transports {
        if !transports.is_empty() {
            transports.push_str(", ");
        }
        let hist: Vec<String> = t.hist.buckets.iter().map(u64::to_string).collect();
        let mean_skew = if t.rounds > 0 {
            t.skew_sum / t.rounds as f64
        } else {
            0.0
        };
        let _ = write!(
            transports,
            "\"{backend}\": {{\"rounds\": {}, \"words\": {}, \"max_link_words\": {}, \
             \"max_round_skew\": {:.4}, \"mean_round_skew\": {:.4}, \"barrier_ns\": {}, \
             \"link_hist_pow2\": [{}], \"frame_batches\": {}, \"frame_bytes\": {}}}",
            t.rounds,
            t.words,
            t.max_link,
            t.max_skew,
            mean_skew,
            t.barrier_ns,
            hist.join(", "),
            t.frame_batches,
            t.frame_bytes
        );
    }

    let mut gauges = String::new();
    for (name, value) in &snap.gauges {
        if !gauges.is_empty() {
            gauges.push_str(", ");
        }
        let _ = write!(gauges, "\"{name}\": {value:.6}");
    }
    let mut counters = String::new();
    for (name, value) in &snap.counters {
        if !counters.is_empty() {
            counters.push_str(", ");
        }
        let _ = write!(counters, "\"{name}\": {value}");
    }

    // Distributed-capture columns (schema v2): one object per worker
    // process, with the busy/idle split derived from its barrier lanes.
    let busy_idle = snap.worker_busy_idle();
    let mut workers = String::new();
    for (id, w) in &snap.workers {
        if !workers.is_empty() {
            workers.push_str(", ");
        }
        let (busy, idle) = busy_idle.get(id).copied().unwrap_or((0, 0));
        let _ = write!(
            workers,
            "\"{id}\": {{\"events\": {}, \"frame_batches\": {}, \"frame_bytes\": {}, \
             \"resident_rounds\": {}, \"peer_bytes\": {}, \"kernel_decisions\": {}, \
             \"config_warnings\": {}, \"busy_ns\": {busy}, \"idle_ns\": {idle}}}",
            w.events,
            w.frame_batches,
            w.frame_bytes,
            w.resident_rounds,
            w.peer_bytes,
            w.kernel_decisions,
            w.config_warnings
        );
    }
    let worker_events_total: u64 = snap.workers.values().map(|w| w.events).sum();

    // Per-epoch critical path: which worker closed each barrier last, and
    // how far ahead of the median lane it ran.
    let mut critical_path = String::new();
    for p in snap.critical_path() {
        if !critical_path.is_empty() {
            critical_path.push_str(", ");
        }
        let skew = if p.median_ns > 0 {
            p.max_ns as f64 / p.median_ns as f64
        } else {
            1.0
        };
        let lanes: Vec<String> = p
            .lanes
            .iter()
            .map(|(w, ns)| format!("[{w}, {ns}]"))
            .collect();
        let _ = write!(
            critical_path,
            "{{\"backend\": \"{}\", \"epoch\": {}, \"closer\": {}, \"max_ns\": {}, \
             \"median_ns\": {}, \"skew\": {:.4}, \"lanes\": [{}]}}",
            p.backend,
            p.epoch,
            p.closer,
            p.max_ns,
            p.median_ns,
            skew,
            lanes.join(", ")
        );
    }

    let e = &snap.engine;
    let d = &snap.dispatch;
    format!(
        "{{\n      \"phases\": {{{phases}}},\n      \"engine\": {{\"barriers\": {}, \
         \"step_ns\": {}, \"barrier_ns\": {}, \"rounds\": {}, \"words\": {}}},\n      \
         \"executor\": {{\"inline\": {}, \"dispatched\": {}, \"pieces\": {}}},\n      \
         \"transport\": {{{transports}}},\n      \"workers\": {{{workers}}},\n      \
         \"worker_events_total\": {worker_events_total},\n      \
         \"critical_path\": [{critical_path}],\n      \"gauges\": {{{gauges}}},\n      \
         \"counters\": {{{counters}}}\n    }}",
        e.barriers, e.step_ns, e.barrier_ns, e.rounds, e.words, d.inline, d.dispatched, d.pieces
    )
}

/// Offline timeline rendering: parses a `JsonlSink` capture line by line
/// (skipping anything `event_from_json` rejects, counting it) into a fresh
/// in-memory aggregate, then prints the same [`RoundTimeline`] a live
/// traced run would show.
fn replay(path: &str) {
    let contents = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cc-report --replay: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let sink = MemorySink::new();
    let (mut parsed, mut skipped) = (0u64, 0u64);
    for line in contents.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match event_from_json(line) {
            Some(event) => {
                use cc_telemetry::TelemetrySink as _;
                sink.record(&event);
                parsed += 1;
            }
            None => skipped += 1,
        }
    }
    print!("{}", RoundTimeline::from_snapshot(&sink.snapshot()));
    println!("replayed {parsed} events from {path} ({skipped} unparsable lines skipped)");
}

/// Embeds every standalone `BENCH_*.json` at the workspace root verbatim
/// (each is a complete JSON document, so splicing preserves validity);
/// absent artifacts are listed rather than silently dropped.
fn collate_existing_artifacts() -> String {
    const ARTIFACTS: [&str; 7] = [
        "kernel",
        "netsim",
        "pool",
        "runtime",
        "service",
        "sparse",
        "transport",
    ];
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../../");
    let mut body = String::new();
    let mut missing = Vec::new();
    for name in ARTIFACTS {
        match std::fs::read_to_string(format!("{root}BENCH_{name}.json")) {
            Ok(contents) => {
                if !body.is_empty() {
                    body.push_str(",\n");
                }
                let _ = write!(body, "    \"{name}\": {}", contents.trim_end());
            }
            Err(_) => missing.push(format!("\"{name}\"")),
        }
    }
    if !body.is_empty() {
        body.push_str(",\n");
    }
    format!("{{\n{body}    \"missing\": [{}]\n  }}", missing.join(", "))
}

/// Minimal JSON string quoting for phase names (ASCII identifiers with
/// dots in practice; escapes cover the general case anyway).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
