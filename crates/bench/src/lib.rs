//! # cc-bench: experiment harness
//!
//! Utilities shared by the experiment binaries that regenerate the paper's
//! evaluation artifacts (Table 1 and Figures 1–3):
//!
//! * round-count measurement sweeps over clique sizes;
//! * log–log least-squares exponent fits (`rounds ≈ c·n^e`);
//! * markdown table emission for EXPERIMENTS.md.
//!
//! Binaries: `table1`, `figures`, `apsp_accuracy`, `lower_bounds`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// One measured point: clique size and executed rounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Clique size `n`.
    pub n: usize,
    /// Rounds the algorithm executed.
    pub rounds: u64,
}

/// Result of a log–log least-squares fit `rounds ≈ c · n^e`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// The fitted exponent `e`.
    pub exponent: f64,
    /// The fitted constant `c`.
    pub constant: f64,
    /// Coefficient of determination of the fit in log space.
    pub r2: f64,
}

/// Fits `rounds ≈ c·n^e` through the samples by least squares in log space.
///
/// # Panics
///
/// Panics with fewer than two samples or any zero round count.
#[must_use]
pub fn fit_exponent(samples: &[Sample]) -> Fit {
    assert!(samples.len() >= 2, "need at least two samples to fit");
    let pts: Vec<(f64, f64)> = samples
        .iter()
        .map(|s| {
            assert!(s.rounds > 0, "zero rounds cannot be fitted in log space");
            ((s.n as f64).ln(), (s.rounds as f64).ln())
        })
        .collect();
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = pts.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = pts
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Fit {
        exponent: slope,
        constant: intercept.exp(),
        r2,
    }
}

/// Runs `algorithm` once per clique size and records executed rounds.
pub fn sweep(sizes: &[usize], mut algorithm: impl FnMut(usize) -> u64) -> Vec<Sample> {
    sizes
        .iter()
        .map(|&n| Sample {
            n,
            rounds: algorithm(n),
        })
        .collect()
}

/// Formats samples as `n=..:r..` pairs for compact table cells.
#[must_use]
pub fn samples_cell(samples: &[Sample]) -> String {
    samples
        .iter()
        .map(|s| format!("{}@{}", s.rounds, s.n))
        .collect::<Vec<_>>()
        .join(", ")
}

/// A row of the regenerated Table 1.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Problem name (matching the paper's Table 1).
    pub problem: String,
    /// The paper's asymptotic claim for "this work".
    pub paper_bound: String,
    /// Measured samples for our implementation.
    pub ours: Vec<Sample>,
    /// Prior-work description.
    pub prior_bound: String,
    /// Measured samples for the implemented baseline (empty if the baseline
    /// is analytic only).
    pub baseline: Vec<Sample>,
}

impl TableRow {
    /// Renders the row as a markdown table line with exponent fits.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let ours_fit = if self.ours.len() >= 2 {
            let f = fit_exponent(&self.ours);
            format!("n^{:.3} (R²={:.3})", f.exponent, f.r2)
        } else {
            "—".into()
        };
        let base_fit = if self.baseline.len() >= 2 {
            let f = fit_exponent(&self.baseline);
            format!("n^{:.3} (R²={:.3})", f.exponent, f.r2)
        } else {
            "—".into()
        };
        let base_cell = if self.baseline.is_empty() {
            "—".into()
        } else {
            samples_cell(&self.baseline)
        };
        format!(
            "| {} | {} | {} | {} | {} | {} | {} |",
            self.problem,
            self.paper_bound,
            samples_cell(&self.ours),
            ours_fit,
            self.prior_bound,
            base_cell,
            base_fit,
        )
    }
}

/// Markdown header matching [`TableRow::to_markdown`].
#[must_use]
pub fn table_header() -> String {
    [
        "| Problem | Paper bound (this work) | Ours: rounds@n | Ours: fit | Prior work | Baseline: rounds@n | Baseline: fit |",
        "|---|---|---|---|---|---|---|",
    ]
    .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_fit_recovers_power_laws() {
        let samples: Vec<Sample> = [8usize, 27, 64, 125, 216]
            .iter()
            .map(|&n| Sample {
                n,
                rounds: (3.0 * (n as f64).powf(1.0 / 3.0)).round() as u64,
            })
            .collect();
        let fit = fit_exponent(&samples);
        assert!(
            (fit.exponent - 1.0 / 3.0).abs() < 0.05,
            "exponent {}",
            fit.exponent
        );
        assert!(fit.r2 > 0.99);
    }

    #[test]
    fn exponent_fit_flat_series() {
        let samples: Vec<Sample> = [16usize, 64, 256]
            .iter()
            .map(|&n| Sample { n, rounds: 12 })
            .collect();
        let fit = fit_exponent(&samples);
        assert!(fit.exponent.abs() < 1e-9);
    }

    #[test]
    fn sweep_invokes_in_order() {
        let samples = sweep(&[2, 4, 8], |n| n as u64);
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[2], Sample { n: 8, rounds: 8 });
    }

    #[test]
    fn markdown_row_renders() {
        let row = TableRow {
            problem: "demo".into(),
            paper_bound: "O(n^0.158)".into(),
            ours: vec![Sample { n: 8, rounds: 4 }, Sample { n: 64, rounds: 8 }],
            prior_bound: "O(n^1/3)".into(),
            baseline: vec![],
        };
        let md = row.to_markdown();
        assert!(md.contains("demo"));
        assert!(md.contains("4@8"));
        assert!(md.starts_with('|') && md.ends_with('|'));
    }
}
