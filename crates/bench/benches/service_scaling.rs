//! Serving throughput: a 20-query triangle-count stream against `n = 64`
//! graphs, served two ways at duplicate ratios {0%, 50%, 90%}:
//!
//! * **cold** — the historical one-shot calling convention: every query
//!   builds a fresh `Clique` and runs the algorithm, no reuse of anything.
//! * **warm** — the `cc-service` path: the stream is submitted as one
//!   batch to a service whose pool is warm (instances reset and reused,
//!   one shared executor) and whose scheduler coalesces in-flight
//!   duplicates. The result cache is cleared between iterations so the
//!   measurement isolates pool warmth + batching, not cross-iteration
//!   caching.
//!
//! Answers are **asserted identical** between the two paths before
//! anything is exported (the serving layer's determinism contract). The
//! exported quantity is queries/second; the acceptance gate is warm
//! beating cold on the duplicate-heavy stream. Results are printed per
//! benchmark and exported to `BENCH_service.json` at the workspace root.

use cc_clique::Clique;
use cc_graph::{generators, Graph};
use cc_service::{Query, Service, ServiceConfig, ServiceMode};
use cc_subgraph::count_triangles_auto;
use criterion::{criterion_group, BenchmarkId, Criterion};

const N: usize = 64;
const STREAM_LEN: usize = 20;
const POOL_INSTANCES: usize = 2;
const DUP_RATIOS: [(u64, f64); 3] = [(0, 0.0), (50, 0.5), (90, 0.9)];

/// The query stream at a duplicate ratio: the first `distinct` queries hit
/// fresh graphs, the rest repeat them round-robin, so exactly
/// `ratio * STREAM_LEN` queries are duplicates of an earlier one.
fn stream(ratio: f64) -> Vec<usize> {
    let distinct = ((STREAM_LEN as f64) * (1.0 - ratio)).round().max(1.0) as usize;
    (0..STREAM_LEN).map(|i| i % distinct).collect()
}

fn cold_pass(graphs: &[Graph], order: &[usize]) -> Vec<u64> {
    order
        .iter()
        .map(|&g| {
            let mut clique = Clique::new(N);
            count_triangles_auto(&mut clique, &graphs[g])
        })
        .collect()
}

fn warm_pass(svc: &mut Service, ids: &[cc_service::GraphId], order: &[usize]) -> Vec<u64> {
    svc.clear_cache();
    let tickets: Vec<_> = order
        .iter()
        .map(|&g| svc.submit(ids[g], Query::TriangleCount))
        .collect();
    svc.drain();
    tickets
        .into_iter()
        .map(|t| {
            svc.take(t)
                .expect("drained batch resolves its tickets")
                .response
                .triangles()
                .expect("triangle response")
        })
        .collect()
}

fn bench_service_scaling(c: &mut Criterion) {
    let graphs: Vec<Graph> = (0..STREAM_LEN as u64)
        .map(|seed| generators::gnp(N, 0.1, 1000 + seed))
        .collect();

    let mut group = c.benchmark_group("service_scaling");
    group.sample_size(10);
    for (pct, ratio) in DUP_RATIOS {
        let order = stream(ratio);

        // One warm service per ratio lane: its pool instances persist
        // across iterations (that is the thing being measured); the cache
        // is cleared inside every pass.
        let mut svc = Service::new(ServiceConfig {
            mode: ServiceMode::Batch {
                instances: POOL_INSTANCES,
            },
            ..ServiceConfig::default()
        });
        let ids: Vec<_> = graphs.iter().map(|g| svc.register(g.clone())).collect();

        // The determinism gate: both paths must report identical answers
        // before either wall-clock means anything.
        let reference = cold_pass(&graphs, &order);
        assert_eq!(
            warm_pass(&mut svc, &ids, &order),
            reference,
            "service answers diverged from one-shot calls at dup={pct}%"
        );

        group.bench_with_input(
            BenchmarkId::new(format!("dup{pct}"), "cold"),
            &order,
            |bench, order| {
                bench.iter(|| cold_pass(&graphs, order));
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("dup{pct}"), "warm"),
            &order,
            |bench, order| {
                bench.iter(|| warm_pass(&mut svc, &ids, order));
            },
        );
    }
    group.finish();
}

criterion_group!(benches_unused, noop);
fn noop(_c: &mut Criterion) {}

fn main() {
    // Hand-rolled entry instead of `criterion_main!` so the shim's recorded
    // measurements can be exported — one measurement pass feeds both the
    // stdout report and BENCH_service.json (same scheme as the pool,
    // sparse, and transport scaling benches).
    let _ = benches_unused;
    let mut criterion = Criterion::default();
    bench_service_scaling(&mut criterion);
    export_json(criterion.take_measurements());
}

/// Writes `BENCH_service.json` at the workspace root (ids look like
/// `dup50/warm`).
fn export_json(measurements: Vec<criterion::Measurement>) {
    use std::fmt::Write as _;

    let host_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let qps = |median_ns: f64| STREAM_LEN as f64 / (median_ns / 1e9);
    let mut records = String::new();
    for (pct, ratio) in DUP_RATIOS {
        let median = |lane: &str| {
            let id = format!("dup{pct}/{lane}");
            measurements
                .iter()
                .find(|m| m.id == id)
                .map(criterion::Measurement::median_ns)
                .unwrap_or_else(|| panic!("no measurement recorded for {id}"))
        };
        let (cold, warm) = (median("cold"), median("warm"));
        if !records.is_empty() {
            records.push_str(",\n");
        }
        let _ = write!(
            records,
            "    {{\"dup_ratio\": {ratio}, \"queries_per_stream\": {STREAM_LEN}, \
             \"cold_median_ns\": {cold:.0}, \"warm_median_ns\": {warm:.0}, \
             \"cold_qps\": {:.1}, \"warm_qps\": {:.1}, \"warm_speedup\": {:.2}}}",
            qps(cold),
            qps(warm),
            cold / warm,
        );
    }
    let json = format!(
        "{{\n  \"host_available_parallelism\": {host_threads},\n  \"n\": {N},\n  \
         \"pool_instances\": {POOL_INSTANCES},\n  \"note\": \"Triangle-count query streams \
         ({STREAM_LEN} queries, n = {N} gnp graphs) served cold (fresh Clique per query, the \
         one-shot convention) vs warm (cc-service batch: warm pool instances + in-flight \
         duplicate coalescing; result cache cleared per iteration so cross-iteration caching \
         is excluded). Answers are asserted identical between paths before export. qps = \
         queries/second from the median stream wall-clock; warm_speedup = cold/warm. The \
         acceptance gate is warm beating cold on the duplicate-heavy (90%) stream.\",\n  \
         \"results\": [\n{records}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    std::fs::write(path, &json).expect("write BENCH_service.json");
    println!("wrote {path}");
}
