//! Wall-clock of the subgraph algorithms (Table 1 rows 3–7 at fixed n).

use cc_clique::Clique;
use cc_graph::generators;
use cc_subgraph::GirthConfig;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_subgraph(c: &mut Criterion) {
    let mut group = c.benchmark_group("subgraph");
    group.sample_size(10);

    let n = 64;
    let dense = generators::gnp(n, 0.3, 11);
    let sparse = generators::gnp(n, 1.5 / n as f64, 5);

    group.bench_function("triangles_ours_n64", |b| {
        b.iter(|| {
            let mut clique = Clique::new(n);
            cc_subgraph::count_triangles(&mut clique, &dense)
        });
    });
    group.bench_function("triangles_dolev_n64", |b| {
        b.iter(|| {
            let mut clique = Clique::new(n);
            cc_baselines::dolev::triangle_count(&mut clique, &dense)
        });
    });
    group.bench_function("c4_detect_theorem4_n64", |b| {
        b.iter(|| {
            let mut clique = Clique::new(n);
            cc_subgraph::detect_4cycle(&mut clique, &sparse)
        });
    });
    group.bench_function("c4_count_n64", |b| {
        b.iter(|| {
            let mut clique = Clique::new(n);
            cc_subgraph::count_4cycles(&mut clique, &dense)
        });
    });
    group.bench_function("c5_count_n64", |b| {
        b.iter(|| {
            let mut clique = Clique::new(n);
            cc_subgraph::count_5cycles(&mut clique, &dense)
        });
    });
    group.bench_function("girth_dense_n64", |b| {
        b.iter(|| {
            let mut clique = Clique::new(n);
            cc_subgraph::girth(&mut clique, &dense, GirthConfig::default())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_subgraph);
criterion_main!(benches);
