//! Wall-clock comparison of the local multiplication kernels: schoolbook
//! vs. recursive Strassen (the compute-side analogue of Theorem 1's
//! communication trade-off).

use cc_algebra::{strassen_mul, IntRing, Matrix};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn rand_matrix(n: usize, seed: u64) -> Matrix<i64> {
    let mut st = seed;
    Matrix::from_fn(n, n, |_, _| {
        st = st
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((st >> 33) % 19) as i64 - 9
    })
}

fn bench_local_mm(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_mm");
    group.sample_size(10);
    for n in [64usize, 128, 256] {
        let a = rand_matrix(n, 1);
        let b = rand_matrix(n, 2);
        group.bench_with_input(BenchmarkId::new("schoolbook", n), &n, |bench, _| {
            bench.iter(|| Matrix::mul(&IntRing, &a, &b));
        });
        group.bench_with_input(BenchmarkId::new("strassen", n), &n, |bench, _| {
            bench.iter(|| strassen_mul(&a, &b));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_local_mm);
criterion_main!(benches);
