//! Kernel-comparison bench for the node-local multiply layer
//! (`CC_KERNEL`): naive schoolbook vs. cache-blocked i-k-j tiles vs.
//! Strassen-routed integer products, and the Boolean `i64`-lift path vs.
//! naive/blocked/bit-packed Boolean kernels, at `n ∈ {64, 256, 512}`.
//!
//! Two invariants are asserted before anything is exported:
//!
//! * every kernel's answer is identical per size (the bit-identity
//!   contract of `Semiring::mul_dense`);
//! * a real clique workload (Seidel APSP + a Boolean product chain) run
//!   under each `CC_KERNEL` value produces identical results, rounds,
//!   words, and pattern fingerprints — only `*_ns` may move.
//!
//! Results are printed per benchmark and exported to `BENCH_kernel.json`
//! at the workspace root, which `cc-report` splices into
//! `BENCH_telemetry.json`. The acceptance signal: `bool/bitset` beats
//! `bool/i64_lift` on median at `n ≥ 256` (64 inner-product lanes per word
//! against a full integer multiply plus threshold pass).

use cc_algebra::kernel::{self, Kernel};
use cc_algebra::{BoolSemiring, Dist, IntRing, Matrix};
use cc_apsp::apsp_seidel;
use cc_clique::{Clique, CliqueConfig, ExecutorKind};
use cc_core::{boolean, FastPlan, RowMatrix};
use cc_graph::generators;
use criterion::{criterion_group, BenchmarkId, Criterion};

const SIZES: [usize; 3] = [64, 256, 512];
const INT_KERNELS: [&str; 3] = ["naive", "blocked", "strassen"];
const BOOL_KERNELS: [&str; 4] = ["i64_lift", "naive", "blocked", "bitset"];

fn rand_int(n: usize, seed: u64) -> Matrix<i64> {
    let mut st = seed;
    Matrix::from_fn(n, n, |_, _| {
        st = st
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((st >> 33) % 19) as i64 - 9
    })
}

fn rand_bool(n: usize, seed: u64) -> Matrix<bool> {
    rand_int(n, seed).map(|&x| x > 0)
}

fn mul_int(label: &str, a: &Matrix<i64>, b: &Matrix<i64>, tile: usize) -> Matrix<i64> {
    match label {
        "naive" => Matrix::mul(&IntRing, a, b),
        "blocked" => kernel::mul_i64_blocked(a, b, tile),
        "strassen" => kernel::mul_i64_strassen(a, b, tile),
        _ => unreachable!("unknown int kernel {label}"),
    }
}

/// The Boolean local paths under comparison. `i64_lift` is the seed-era
/// shape — lift to integers, full schoolbook product, threshold pass —
/// that the bit-packed kernel replaces for Boolean-only consumers.
fn mul_bool(label: &str, a: &Matrix<bool>, b: &Matrix<bool>, tile: usize) -> Matrix<bool> {
    match label {
        "i64_lift" => {
            let ia = a.map(|&x| i64::from(x));
            let ib = b.map(|&x| i64::from(x));
            Matrix::mul(&IntRing, &ia, &ib).map(|&x| x != 0)
        }
        "naive" => Matrix::mul(&BoolSemiring, a, b),
        "blocked" => kernel::mul_bool_blocked(a, b, tile),
        "bitset" => kernel::mul_bool_bitset(a, b),
        _ => unreachable!("unknown bool kernel {label}"),
    }
}

fn bench_kernels(c: &mut Criterion) {
    let tile = kernel::tile();
    let mut group = c.benchmark_group("int");
    group.sample_size(10);
    for n in SIZES {
        let a = rand_int(n, 1);
        let b = rand_int(n, 2);
        let reference = mul_int("naive", &a, &b, tile);
        for label in INT_KERNELS {
            assert_eq!(
                mul_int(label, &a, &b, tile),
                reference,
                "int kernel {label} diverged at n={n}"
            );
            group.bench_with_input(BenchmarkId::new(label, n), &n, |bench, _| {
                bench.iter(|| mul_int(label, &a, &b, tile));
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("bool");
    group.sample_size(10);
    for n in SIZES {
        let a = rand_bool(n, 3);
        let b = rand_bool(n, 4);
        let reference = mul_bool("naive", &a, &b, tile);
        for label in BOOL_KERNELS {
            assert_eq!(
                mul_bool(label, &a, &b, tile),
                reference,
                "bool kernel {label} diverged at n={n}"
            );
            group.bench_with_input(BenchmarkId::new(label, n), &n, |bench, _| {
                bench.iter(|| mul_bool(label, &a, &b, tile));
            });
        }
    }
    group.finish();
}

/// Runs a real clique workload — Seidel APSP plus a Boolean product chain —
/// under one forced kernel, returning everything an observer can see.
fn clique_observation(k: Kernel, n: usize) -> (Matrix<Dist>, Matrix<bool>, u64, u64, Vec<u64>) {
    let _guard = kernel::scoped(k);
    let g = generators::gnp(n, 0.3, 17);
    let adj = RowMatrix::from_matrix(&g.adjacency_matrix().map(|&x| x != 0));
    let alg = FastPlan::best_strassen(n);
    let mut clique = Clique::with_config(
        n,
        CliqueConfig {
            record_patterns: true,
            executor: ExecutorKind::Sequential,
            ..CliqueConfig::default()
        },
    );
    let dist = apsp_seidel(&mut clique, &g).to_matrix();
    let product = boolean::multiply_or(&mut clique, &alg, &adj, &adj, &adj).to_matrix();
    (
        dist,
        product,
        clique.rounds(),
        clique.stats().words(),
        clique.stats().pattern_fingerprints().to_vec(),
    )
}

/// Asserts the bit-identity contract end to end: identical results, rounds,
/// words, and fingerprints across every `CC_KERNEL` value on a real clique
/// workload. Returns the (shared) rounds/words for the export.
fn assert_cross_kernel_identity() -> (u64, u64) {
    let n = 24;
    let reference = clique_observation(Kernel::Naive, n);
    for k in [Kernel::Blocked, Kernel::Bitset] {
        let got = clique_observation(k, n);
        assert_eq!(reference, got, "kernel {k:?} is not observer-equivalent");
    }
    (reference.2, reference.3)
}

criterion_group!(benches_unused, bench_kernels);

fn main() {
    // Hand-rolled entry instead of `criterion_main!` so the shim's recorded
    // measurements can be exported (same scheme as pool_scaling).
    let _ = benches_unused;
    let (rounds, words) = assert_cross_kernel_identity();
    let mut criterion = Criterion::default();
    bench_kernels(&mut criterion);
    export_json(criterion.take_measurements(), rounds, words);
}

/// Writes `BENCH_kernel.json` at the workspace root from the measurements
/// the criterion shim recorded (ids look like `bool/bitset/256`).
fn export_json(measurements: Vec<criterion::Measurement>, rounds: u64, words: u64) {
    use std::fmt::Write as _;

    let host_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut records = String::new();
    for (bench, labels) in [("int", &INT_KERNELS[..]), ("bool", &BOOL_KERNELS[..])] {
        for n in SIZES {
            for label in labels {
                let id = format!("{label}/{n}");
                let m = measurements
                    .iter()
                    .find(|m| m.group == bench && m.id == id)
                    .unwrap_or_else(|| panic!("no measurement recorded for {bench}/{id}"));
                if !records.is_empty() {
                    records.push_str(",\n");
                }
                let _ = write!(
                    records,
                    "    {{\"bench\": \"{bench}\", \"n\": {n}, \"kernel\": \"{label}\", \
                     \"min_ns\": {:.0}, \"median_ns\": {:.0}, \"mean_ns\": {:.0}}}",
                    m.min_ns(),
                    m.median_ns(),
                    m.mean_ns(),
                );
            }
        }
    }
    let json = format!(
        "{{\n  \"host_available_parallelism\": {host_threads},\n  \"tile\": {tile},\n  \
         \"cross_kernel\": {{\"identical\": true, \"rounds\": {rounds}, \"words\": {words}}},\n  \
         \"note\": \"node-local multiply kernels (CC_KERNEL); answers asserted identical across \
         kernels and a clique workload asserted observer-equivalent (results/rounds/words/\
         fingerprints) before export. bool/i64_lift is the seed-era lift+threshold path the \
         bit-packed kernel replaces.\",\n  \"results\": [\n{records}\n  ]\n}}\n",
        tile = kernel::tile(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernel.json");
    std::fs::write(path, &json).expect("write BENCH_kernel.json");
    println!("wrote {path}");
}
