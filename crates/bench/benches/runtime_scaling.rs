//! Runtime scaling: wall-clock of the fast bilinear multiplication at
//! `n ∈ {64, 128, 256}` across executor thread counts `{1, 2, 4, 8}`.
//!
//! Results are printed per benchmark and exported to `BENCH_runtime.json`
//! at the workspace root (schema: host parallelism, then one record per
//! `(n, threads)` with min/median/mean nanoseconds per run). Thread count 1
//! uses [`ExecutorKind::Sequential`] — the reference the parallel executor
//! must beat on multicore hosts; on a single-core host the interesting
//! number is the *overhead* of the parallel machinery, which this bench
//! also surfaces.

use cc_algebra::{IntRing, Matrix};
use cc_clique::{Clique, CliqueConfig, ExecutorKind};
use cc_core::{fast_mm, RowMatrix};
use criterion::{criterion_group, BenchmarkId, Criterion};

fn rand_matrix(n: usize, seed: u64) -> Matrix<i64> {
    let mut st = seed;
    Matrix::from_fn(n, n, |_, _| {
        st = st
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((st >> 33) % 9) as i64 - 4
    })
}

fn kind_for(threads: usize) -> ExecutorKind {
    if threads <= 1 {
        ExecutorKind::Sequential
    } else {
        ExecutorKind::Parallel { threads }
    }
}

fn run_once(n: usize, threads: usize, a: &RowMatrix<i64>, b: &RowMatrix<i64>) -> u64 {
    let cfg = CliqueConfig {
        executor: kind_for(threads),
        ..CliqueConfig::default()
    };
    let mut clique = Clique::with_config(n, cfg);
    let _ = fast_mm::multiply_auto(&mut clique, &IntRing, a, b);
    clique.rounds()
}

fn bench_runtime_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_scaling");
    group.sample_size(10);
    for n in [64usize, 128, 256] {
        let a = RowMatrix::from_matrix(&rand_matrix(n, 1));
        let b = RowMatrix::from_matrix(&rand_matrix(n, 2));
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("fast_mm/n{n}"), format!("t{threads}")),
                &threads,
                |bench, &threads| {
                    bench.iter(|| run_once(n, threads, &a, &b));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches_unused, bench_runtime_scaling);

fn main() {
    // Hand-rolled entry instead of `criterion_main!` so the shim's recorded
    // measurements can be exported — one measurement pass feeds both the
    // stdout report and BENCH_runtime.json. (`criterion_group!` above keeps
    // the conventional registration; `benches_unused` documents that the
    // JSON path owns the Criterion here.)
    let _ = benches_unused;
    let mut criterion = Criterion::default();
    bench_runtime_scaling(&mut criterion);
    export_json(criterion.take_measurements());
}

/// Writes `BENCH_runtime.json` at the workspace root from the measurements
/// the criterion shim recorded (ids look like `fast_mm/n64/t1`).
fn export_json(measurements: Vec<criterion::Measurement>) {
    use std::fmt::Write as _;

    let host_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    // Rounds depend only on n (thread counts never change round accounting);
    // one cheap sequential run per n pins them in the exported record.
    let rounds_of = |n: usize| {
        let a = RowMatrix::from_matrix(&rand_matrix(n, 1));
        let b = RowMatrix::from_matrix(&rand_matrix(n, 2));
        run_once(n, 1, &a, &b)
    };
    let mut records = String::new();
    for n in [64usize, 128, 256] {
        let rounds = rounds_of(n);
        for threads in [1usize, 2, 4, 8] {
            let id = format!("fast_mm/n{n}/t{threads}");
            let m = measurements
                .iter()
                .find(|m| m.id == id)
                .unwrap_or_else(|| panic!("no measurement recorded for {id}"));
            if !records.is_empty() {
                records.push_str(",\n");
            }
            let _ = write!(
                records,
                "    {{\"bench\": \"fast_mm\", \"n\": {n}, \"threads\": {threads}, \
                 \"rounds\": {rounds}, \"min_ns\": {:.0}, \"median_ns\": {:.0}, \
                 \"mean_ns\": {:.0}}}",
                m.min_ns(),
                m.median_ns(),
                m.mean_ns(),
            );
        }
    }
    let json = format!(
        "{{\n  \"host_available_parallelism\": {host_threads},\n  \"note\": \
         \"threads=1 is ExecutorKind::Sequential; speedup from threads>1 requires \
         host_available_parallelism > 1\",\n  \"results\": [\n{records}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json");
    std::fs::write(path, &json).expect("write BENCH_runtime.json");
    println!("wrote {path}");
}
