//! Pool ablation: the persistent worker pool (`ExecutorKind::Parallel`)
//! against the legacy spawn-scoped-threads-per-call backend
//! (`ExecutorKind::Spawn`) and the sequential reference, at
//! `n ∈ {64, 128, 256}`.
//!
//! Two workloads per size:
//!
//! * `fast_mm` — one full fast bilinear multiplication on a clique of `n`
//!   nodes (≈12 executor dispatches per run), the end-to-end view;
//! * `dispatch` — 16 back-to-back `Executor::map` calls over `n` trivial
//!   pieces, isolating per-call dispatch overhead (the quantity the pool
//!   exists to cut: a condvar wake instead of `threads` spawn+joins).
//!
//! The cutover is disabled so small sizes genuinely dispatch — the point is
//! to measure the overhead the cutover otherwise hides. Results are printed
//! per benchmark and exported to `BENCH_pool.json` at the workspace root.
//! On a single-CPU host (see `host_available_parallelism` in the JSON) the
//! interesting signal is overhead, not speedup: `pool` should sit between
//! `seq` and `spawn` at every size.

use cc_algebra::{IntRing, Matrix};
use cc_clique::{Clique, CliqueConfig, Executor, ExecutorKind};
use cc_core::{fast_mm, RowMatrix};
use criterion::{criterion_group, BenchmarkId, Criterion};

const SIZES: [usize; 3] = [64, 128, 256];
const THREADS: usize = 4;
const BACKENDS: [(&str, ExecutorKind); 3] = [
    ("seq", ExecutorKind::Sequential),
    ("spawn", ExecutorKind::Spawn { threads: THREADS }),
    ("pool", ExecutorKind::Parallel { threads: THREADS }),
];

fn rand_matrix(n: usize, seed: u64) -> Matrix<i64> {
    let mut st = seed;
    Matrix::from_fn(n, n, |_, _| {
        st = st
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((st >> 33) % 9) as i64 - 4
    })
}

fn mm_once(n: usize, kind: ExecutorKind, a: &RowMatrix<i64>, b: &RowMatrix<i64>) -> u64 {
    let cfg = CliqueConfig {
        executor: kind,
        exec_cutover: Some(0), // measure dispatch, don't hide it
        ..CliqueConfig::default()
    };
    let mut clique = Clique::with_config(n, cfg);
    let _ = fast_mm::multiply_auto(&mut clique, &IntRing, a, b);
    clique.rounds()
}

fn dispatch_once(exec: &Executor, n: usize) -> u64 {
    let mut acc = 0u64;
    for round in 0..16u64 {
        let out = exec.map(n, |i| i as u64 ^ round);
        acc ^= out[n / 2];
    }
    acc
}

fn bench_pool_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_scaling");
    group.sample_size(10);
    for n in SIZES {
        let a = RowMatrix::from_matrix(&rand_matrix(n, 1));
        let b = RowMatrix::from_matrix(&rand_matrix(n, 2));
        for (label, kind) in BACKENDS {
            group.bench_with_input(
                BenchmarkId::new(format!("fast_mm/n{n}"), label),
                &kind,
                |bench, &kind| {
                    bench.iter(|| mm_once(n, kind, &a, &b));
                },
            );
            // One executor per backend, built outside the timing loop: the
            // pool's whole point is that construction happens once.
            let exec = Executor::with_cutover(kind, 0);
            group.bench_with_input(
                BenchmarkId::new(format!("dispatch/n{n}"), label),
                &(),
                |bench, ()| {
                    bench.iter(|| dispatch_once(&exec, n));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches_unused, bench_pool_scaling);

fn main() {
    // Hand-rolled entry instead of `criterion_main!` so the shim's recorded
    // measurements can be exported — one measurement pass feeds both the
    // stdout report and BENCH_pool.json (same scheme as runtime_scaling).
    let _ = benches_unused;
    let mut criterion = Criterion::default();
    bench_pool_scaling(&mut criterion);
    export_json(criterion.take_measurements());
}

/// Writes `BENCH_pool.json` at the workspace root from the measurements the
/// criterion shim recorded (ids look like `fast_mm/n64/pool`).
fn export_json(measurements: Vec<criterion::Measurement>) {
    use std::fmt::Write as _;

    let host_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut records = String::new();
    for bench in ["fast_mm", "dispatch"] {
        for n in SIZES {
            for (label, _) in BACKENDS {
                let id = format!("{bench}/n{n}/{label}");
                let m = measurements
                    .iter()
                    .find(|m| m.id == id)
                    .unwrap_or_else(|| panic!("no measurement recorded for {id}"));
                if !records.is_empty() {
                    records.push_str(",\n");
                }
                let _ = write!(
                    records,
                    "    {{\"bench\": \"{bench}\", \"n\": {n}, \"backend\": \"{label}\", \
                     \"threads\": {threads}, \"min_ns\": {:.0}, \"median_ns\": {:.0}, \
                     \"mean_ns\": {:.0}}}",
                    m.min_ns(),
                    m.median_ns(),
                    m.mean_ns(),
                    threads = if label == "seq" { 1 } else { THREADS },
                );
            }
        }
    }
    let json = format!(
        "{{\n  \"host_available_parallelism\": {host_threads},\n  \"note\": \
         \"spawn-per-call (ExecutorKind::Spawn) vs persistent pool (ExecutorKind::Parallel) \
         vs sequential; cutover disabled so every call dispatches. On a 1-CPU host read \
         overhead, not speedup: pool should beat spawn at every n.\",\n  \"results\": [\n{records}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pool.json");
    std::fs::write(path, &json).expect("write BENCH_pool.json");
    println!("wrote {path}");
}
