//! Network-condition overhead: Seidel APSP and the resident
//! `TriangleProgram` workload on cliques of growing size, with the fabric
//! conditioned by each `cc-netsim` profile (`off`, `lan`, `wan`, `lossy`,
//! `flaky-node`) over two transport backends (`inmemory`, `channel`).
//!
//! The determinism split is **asserted before anything is exported**: every
//! profile × backend cell must reproduce the unconditioned in-memory run's
//! results, rounds, words, and pattern fingerprints bit for bit — loss is
//! absorbed by retransmission, stragglers only stretch simulated time, and
//! the flaky-node profile's crash/restart cycle re-ships program state
//! without changing a single observable. What conditioning *is* allowed to
//! move are the new columns this bench charts: `sim_time_ns` (the round's
//! simulated completion time, max over delivering links), retransmit
//! counts, and injected fault counts — each a pure function of the netsim
//! seed, alongside the real wall-clock cost of drawing the conditions.

use cc_clique::{Clique, CliqueConfig, NetsimConfig, NetsimProfile, TransportKind};
use cc_graph::generators;
use cc_subgraph::count_triangles_program;
use criterion::{criterion_group, BenchmarkId, Criterion};

const APSP_SIZES: [usize; 2] = [16, 32];
const TRIANGLE_SIZES: [usize; 2] = [32, 64];
const NETSIM_SEED: u64 = 7;
const PROFILES: [NetsimProfile; 5] = [
    NetsimProfile::Off,
    NetsimProfile::Lan,
    NetsimProfile::Wan,
    NetsimProfile::Lossy,
    NetsimProfile::FlakyNode,
];
const BACKENDS: [(&str, TransportKind); 2] = [
    ("inmemory", TransportKind::InMemory),
    ("channel", TransportKind::Channel),
];

/// The deterministic half of one cell: everything the netsim contract says
/// must be bit-identical to the unconditioned run.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Observation {
    rounds: u64,
    words: u64,
    fingerprints: Vec<u64>,
    result: u64,
}

/// The conditioned half: seed-deterministic but profile-dependent.
#[derive(Debug, Clone, Copy)]
struct Conditions {
    sim_ns: u64,
    retransmits: u64,
    faults: u64,
}

fn clique_for(n: usize, kind: TransportKind, profile: NetsimProfile) -> Clique {
    let cfg = CliqueConfig {
        transport: kind,
        netsim: NetsimConfig {
            profile,
            seed: NETSIM_SEED,
        },
        ..CliqueConfig::default()
    };
    Clique::with_config(n, cfg)
}

fn observe(clique: &Clique, result: u64) -> (Observation, Conditions) {
    (
        Observation {
            rounds: clique.rounds(),
            words: clique.stats().words(),
            fingerprints: clique.stats().pattern_fingerprints().to_vec(),
            result,
        },
        Conditions {
            sim_ns: clique.sim_time_ns(),
            retransmits: clique.net_retransmits(),
            faults: clique.net_faults(),
        },
    )
}

fn apsp_once(
    n: usize,
    kind: TransportKind,
    profile: NetsimProfile,
    g: &cc_graph::Graph,
) -> (Observation, Conditions) {
    let mut clique = clique_for(n, kind, profile);
    let dist = cc_apsp::apsp_seidel(&mut clique, g).to_matrix();
    let digest = dist.iter_indexed().fold(0u64, |acc, (_, _, d)| {
        acc.wrapping_mul(31).wrapping_add(d.raw() as u64)
    });
    observe(&clique, digest)
}

fn triangles_once(
    n: usize,
    kind: TransportKind,
    profile: NetsimProfile,
    g: &cc_graph::Graph,
) -> (Observation, Conditions) {
    let mut clique = clique_for(n, kind, profile);
    let count = count_triangles_program(&mut clique, g);
    observe(&clique, count)
}

/// Per-cell deterministic model costs keyed by measurement id.
type ModelCost = (String, u64, u64, Conditions);

#[allow(clippy::type_complexity)]
fn run_workload(
    group: &mut criterion::BenchmarkGroup<'_>,
    model_costs: &mut Vec<ModelCost>,
    workload: &'static str,
    n: usize,
    g: &cc_graph::Graph,
    once: fn(usize, TransportKind, NetsimProfile, &cc_graph::Graph) -> (Observation, Conditions),
) {
    // The determinism gate: the unconditioned in-memory run is the
    // reference every conditioned cell must reproduce bit for bit.
    let (reference, baseline) = once(n, TransportKind::InMemory, NetsimProfile::Off, g);
    assert_eq!(
        (baseline.sim_ns, baseline.retransmits, baseline.faults),
        (0, 0, 0),
        "the off profile must charge no simulated conditions"
    );
    for profile in PROFILES {
        for (backend, kind) in BACKENDS {
            let (obs, cond) = once(n, kind, profile, g);
            assert_eq!(
                obs,
                reference,
                "netsim {} over {backend} diverged from the unconditioned run at n={n}",
                profile.name()
            );
            if !matches!(profile, NetsimProfile::Off) {
                assert!(
                    cond.sim_ns > 0,
                    "profile {} must charge simulated time",
                    profile.name()
                );
                // Seed-determinism of the conditioned half: a second run of
                // the same cell draws the identical schedule.
                let (_, replay) = once(n, kind, profile, g);
                assert_eq!(
                    (cond.sim_ns, cond.retransmits, cond.faults),
                    (replay.sim_ns, replay.retransmits, replay.faults),
                    "profile {} conditions must be a pure function of the seed",
                    profile.name()
                );
            }
            let id = format!("{workload}/n{n}/{}/{backend}", profile.name());
            model_costs.push((id, obs.rounds, obs.words, cond));
            group.bench_with_input(
                BenchmarkId::new(format!("{workload}/n{n}/{}", profile.name()), backend),
                &(kind, profile),
                |bench, &(kind, profile)| {
                    bench.iter(|| once(n, kind, profile, g));
                },
            );
        }
    }
}

fn bench_netsim_scaling(c: &mut Criterion) -> Vec<ModelCost> {
    let mut model_costs = Vec::new();
    let mut group = c.benchmark_group("netsim_scaling");
    group.sample_size(10);
    for n in APSP_SIZES {
        let g = generators::gnp(n, 0.25, 11);
        run_workload(
            &mut group,
            &mut model_costs,
            "apsp_seidel",
            n,
            &g,
            apsp_once,
        );
    }
    for n in TRIANGLE_SIZES {
        let g = generators::gnp(n, 0.3, 5);
        run_workload(
            &mut group,
            &mut model_costs,
            "triangle_program",
            n,
            &g,
            triangles_once,
        );
    }
    group.finish();
    model_costs
}

criterion_group!(benches_unused, noop);
fn noop(_c: &mut Criterion) {}

fn main() {
    // Hand-rolled entry instead of `criterion_main!` so the shim's recorded
    // measurements can be exported — one measurement pass feeds both the
    // stdout report and BENCH_netsim.json (same scheme as transport_scaling).
    let _ = benches_unused;
    let mut criterion = Criterion::default();
    let model_costs = bench_netsim_scaling(&mut criterion);
    export_json(criterion.take_measurements(), &model_costs);
}

/// Writes `BENCH_netsim.json` at the workspace root from the deterministic
/// model costs and the criterion measurements (ids look like
/// `apsp_seidel/n32/lossy/channel`).
fn export_json(measurements: Vec<criterion::Measurement>, model_costs: &[ModelCost]) {
    use std::fmt::Write as _;

    let host_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut records = String::new();
    for (id, rounds, words, cond) in model_costs {
        let mut parts = id.split('/');
        let workload = parts.next().expect("workload segment");
        let n: usize = parts
            .next()
            .and_then(|s| s.strip_prefix('n'))
            .and_then(|s| s.parse().ok())
            .expect("size segment");
        let profile = parts.next().expect("profile segment");
        let backend = parts.next().expect("backend segment");
        let off_median = measurements
            .iter()
            .find(|m| m.id == format!("{workload}/n{n}/off/{backend}"))
            .map(criterion::Measurement::median_ns)
            .expect("unconditioned baseline measured");
        let m = measurements
            .iter()
            .find(|m| m.id == *id)
            .unwrap_or_else(|| panic!("no measurement recorded for {id}"));
        if !records.is_empty() {
            records.push_str(",\n");
        }
        let _ = write!(
            records,
            "    {{\"workload\": \"{workload}\", \"n\": {n}, \"profile\": \"{profile}\", \
             \"transport\": \"{backend}\", \"rounds\": {rounds}, \"words\": {words}, \
             \"sim_time_ns\": {}, \"retransmits\": {}, \"faults\": {}, \
             \"min_ns\": {:.0}, \"median_ns\": {:.0}, \"mean_ns\": {:.0}, \
             \"overhead_vs_off\": {:.2}}}",
            cond.sim_ns,
            cond.retransmits,
            cond.faults,
            m.min_ns(),
            m.median_ns(),
            m.mean_ns(),
            m.median_ns() / off_median,
        );
    }
    let json = format!(
        "{{\n  \"host_available_parallelism\": {host_threads},\n  \"netsim_seed\": \
         {NETSIM_SEED},\n  \"note\": \"Seidel APSP and the resident TriangleProgram workload \
         under every cc-netsim profile (off/lan/wan/lossy/flaky-node) over the inmemory and \
         channel fabrics. Results, rounds, words, and pattern fingerprints are asserted \
         bit-identical to the unconditioned run before export (loss is absorbed by retransmit, \
         flaky-node crash/restart re-ships program state); sim_time_ns is the simulated \
         completion time (max over delivering links per round), asserted reproducible per seed \
         along with retransmits and faults. *_ns is wall-clock including the cost of drawing \
         conditions; overhead_vs_off is the median ratio against the same backend \
         unconditioned.\",\n  \"results\": [\n{records}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_netsim.json");
    std::fs::write(path, &json).expect("write BENCH_netsim.json");
    println!("wrote {path}");
}
