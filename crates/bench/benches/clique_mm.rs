//! Wall-clock of the distributed multiplication algorithms on the
//! simulator (Table 1 rows 1–2 at fixed n), including the round counts as
//! auxiliary output.

use cc_algebra::{IntRing, Matrix};
use cc_clique::Clique;
use cc_core::{fast_mm, semiring_mm, RowMatrix};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn rand_matrix(n: usize, seed: u64) -> Matrix<i64> {
    let mut st = seed;
    Matrix::from_fn(n, n, |_, _| {
        st = st
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((st >> 33) % 9) as i64 - 4
    })
}

fn bench_clique_mm(c: &mut Criterion) {
    let mut group = c.benchmark_group("clique_mm");
    group.sample_size(10);
    for n in [27usize, 64, 125] {
        let a = RowMatrix::from_matrix(&rand_matrix(n, 1));
        let b = RowMatrix::from_matrix(&rand_matrix(n, 2));
        group.bench_with_input(BenchmarkId::new("semiring_3d", n), &n, |bench, _| {
            bench.iter(|| {
                let mut clique = Clique::new(n);
                semiring_mm::multiply(&mut clique, &IntRing, &a, &b)
            });
        });
        group.bench_with_input(BenchmarkId::new("fast_strassen", n), &n, |bench, _| {
            bench.iter(|| {
                let mut clique = Clique::new(n);
                fast_mm::multiply_auto(&mut clique, &IntRing, &a, &b)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_clique_mm);
criterion_main!(benches);
