//! Sparse vs dense multiplication across an nnz sweep: the Le Gall 2016
//! outer-product path (`sparse_mm`) against the dense fast bilinear engine
//! (`fast_mm`) at `n ∈ {64, 128, 256}` and average row densities
//! `{2, 8, 32}` nonzeros.
//!
//! Three cost views per configuration, exported to `BENCH_sparse.json` at
//! the workspace root:
//!
//! * **rounds** and **words** — the model costs the paper is about,
//!   measured once per configuration on fresh cliques (they are
//!   deterministic);
//! * **wall-clock** — the simulator-side view, measured by criterion.
//!
//! The expected shape: sparse rounds/words track the density and stay flat
//! in `n`, dense costs track `n` and ignore density — the crossover is
//! where the [`cc_core::sparse_mm::multiply_auto_ring`] dispatcher flips.

use cc_algebra::{IntRing, Matrix};
use cc_clique::Clique;
use cc_core::{fast_mm, sparse_mm, RowMatrix};
use criterion::{criterion_group, BenchmarkId, Criterion};

const SIZES: [usize; 3] = [64, 128, 256];
const DEGREES: [usize; 3] = [2, 8, 32];
const ENGINES: [&str; 2] = ["sparse", "dense"];

fn rand_sparse(n: usize, avg_nnz_per_row: usize, seed: u64) -> Matrix<i64> {
    let mut st = seed;
    let mut step = move || {
        st = st
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        st >> 33
    };
    let mut m = Matrix::filled(n, n, 0i64);
    for i in 0..n {
        for _ in 0..avg_nnz_per_row {
            let j = (step() as usize) % n;
            m[(i, j)] = (step() % 9) as i64 - 4;
        }
    }
    m
}

fn operands(n: usize, deg: usize) -> (RowMatrix<i64>, RowMatrix<i64>) {
    (
        RowMatrix::from_matrix(&rand_sparse(n, deg, 1 + n as u64 + deg as u64)),
        RowMatrix::from_matrix(&rand_sparse(n, deg, 2 + 3 * n as u64 + deg as u64)),
    )
}

fn run_engine(engine: &str, n: usize, a: &RowMatrix<i64>, b: &RowMatrix<i64>) -> (u64, u64) {
    let mut clique = Clique::new(n);
    let _ = match engine {
        "sparse" => sparse_mm::multiply(&mut clique, &IntRing, a, b),
        "dense" => fast_mm::multiply_auto(&mut clique, &IntRing, a, b),
        _ => unreachable!("unknown engine"),
    };
    (clique.rounds(), clique.stats().words())
}

fn bench_sparse_scaling(c: &mut Criterion) -> Vec<(String, u64, u64)> {
    let mut model_costs = Vec::new();
    let mut group = c.benchmark_group("sparse_scaling");
    group.sample_size(10);
    for n in SIZES {
        for deg in DEGREES {
            let (a, b) = operands(n, deg);
            for engine in ENGINES {
                let id = format!("{engine}/n{n}/d{deg}");
                let (rounds, words) = run_engine(engine, n, &a, &b);
                model_costs.push((id, rounds, words));
                group.bench_with_input(
                    BenchmarkId::new(format!("{engine}/n{n}"), format!("d{deg}")),
                    &engine,
                    |bench, &engine| {
                        bench.iter(|| run_engine(engine, n, &a, &b));
                    },
                );
            }
        }
    }
    group.finish();
    model_costs
}

criterion_group!(benches_unused, noop);
fn noop(_c: &mut Criterion) {}

fn main() {
    // Hand-rolled entry instead of `criterion_main!` so the shim's recorded
    // measurements can be exported — one measurement pass feeds both the
    // stdout report and BENCH_sparse.json (same scheme as pool_scaling).
    let _ = benches_unused;
    let mut criterion = Criterion::default();
    let model_costs = bench_sparse_scaling(&mut criterion);
    export_json(criterion.take_measurements(), &model_costs);
}

/// Writes `BENCH_sparse.json` at the workspace root from the deterministic
/// model costs and the criterion measurements (ids look like
/// `sparse/n64/d2`).
fn export_json(measurements: Vec<criterion::Measurement>, model_costs: &[(String, u64, u64)]) {
    use std::fmt::Write as _;

    let host_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut records = String::new();
    for n in SIZES {
        for deg in DEGREES {
            for engine in ENGINES {
                let id = format!("{engine}/n{n}/d{deg}");
                let m = measurements
                    .iter()
                    .find(|m| m.id == id)
                    .unwrap_or_else(|| panic!("no measurement recorded for {id}"));
                let (_, rounds, words) = model_costs
                    .iter()
                    .find(|(mid, _, _)| *mid == id)
                    .unwrap_or_else(|| panic!("no model costs recorded for {id}"));
                if !records.is_empty() {
                    records.push_str(",\n");
                }
                let _ = write!(
                    records,
                    "    {{\"n\": {n}, \"avg_nnz_per_row\": {deg}, \"engine\": \"{engine}\", \
                     \"rounds\": {rounds}, \"words\": {words}, \"min_ns\": {:.0}, \
                     \"median_ns\": {:.0}, \"mean_ns\": {:.0}}}",
                    m.min_ns(),
                    m.median_ns(),
                    m.mean_ns(),
                );
            }
        }
    }
    let json = format!(
        "{{\n  \"host_available_parallelism\": {host_threads},\n  \"note\": \
         \"Le Gall 2016 sparse outer-product path (sparse_mm) vs dense fast bilinear engine \
         (fast_mm::multiply_auto) on random matrices with avg_nnz_per_row nonzeros per row. \
         Rounds/words are deterministic model costs; *_ns is simulator wall-clock. Sparse costs \
         track density and stay flat in n; dense costs track n and ignore density — the \
         crossover is where multiply_auto_ring's dispatcher flips.\",\n  \"results\": [\n{records}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sparse.json");
    std::fs::write(path, &json).expect("write BENCH_sparse.json");
    println!("wrote {path}");
}
