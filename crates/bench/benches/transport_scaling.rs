//! Transport overhead: one full fast bilinear multiplication (`fast_mm`) on
//! cliques of `n ∈ {64, 128, 256}` nodes, with the traffic carried by each
//! star-topology transport backend — the in-memory sharded flush, per-node
//! thread queues (`channel`), multi-process unix-socket workers (`socket`),
//! and TCP-stream workers (`tcp`) — plus a program-resident workload
//! (`TriangleProgram` via `count_triangles_program`) that additionally runs
//! peer-resident TCP (`tcp-peer`), where shards are shipped to the workers
//! once and per-round words flow worker → worker.
//!
//! Rounds, words, and pattern fingerprints are **asserted identical across
//! backends** before anything is exported (the determinism contract is the
//! whole point of the transport layer); the quantities this bench adds are
//! wall-clock and the `bytes_through_orchestrator` column — the payload
//! bytes that transited the orchestrator process. The export asserts the
//! refactor's payoff: ≈ 0 for peer-resident TCP while the star backends
//! carry every round's words through the parent.
//!
//! The socket/tcp backends' cost includes spawning their worker processes
//! per clique (construction is part of the measured routine, exactly as a
//! caller pays it) plus framing every word twice per barrier — out to the
//! destination shard's worker and back with its round-commit. That is the
//! honest price of crossing a process boundary; the bench quantifies it so
//! the networked-simulation roadmap has a baseline.

use cc_algebra::{IntRing, Matrix};
use cc_clique::{Clique, CliqueConfig, TransportKind};
use cc_core::{fast_mm, RowMatrix};
use cc_graph::generators;
use cc_subgraph::count_triangles_program;
use criterion::{criterion_group, BenchmarkId, Criterion};

const SIZES: [usize; 3] = [64, 128, 256];
const TRIANGLE_SIZES: [usize; 2] = [32, 64];
const SOCKET_WORKERS: usize = 2;
const STAR_BACKENDS: [(&str, TransportKind); 4] = [
    ("inmemory", TransportKind::InMemory),
    ("channel", TransportKind::Channel),
    (
        "socket",
        TransportKind::Socket {
            workers: SOCKET_WORKERS,
        },
    ),
    (
        "tcp",
        TransportKind::Tcp {
            workers: SOCKET_WORKERS,
            resident: false,
            addr: None,
        },
    ),
];
/// The resident workload's extra lane: same TCP fabric, but programs live
/// on the workers and the orchestrator never touches a payload byte.
const TCP_PEER: (&str, TransportKind) = (
    "tcp-peer",
    TransportKind::Tcp {
        workers: SOCKET_WORKERS,
        resident: true,
        addr: None,
    },
);

/// One backend run's deterministic observation: everything that must be
/// bit-identical across backends, plus the per-backend orchestrator bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Observation {
    rounds: u64,
    words: u64,
    fingerprints: Vec<u64>,
    result: u64,
}

fn rand_matrix(n: usize, seed: u64) -> Matrix<i64> {
    let mut st = seed;
    Matrix::from_fn(n, n, |_, _| {
        st = st
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((st >> 33) % 9) as i64 - 4
    })
}

fn clique_for(n: usize, kind: TransportKind) -> Clique {
    let cfg = CliqueConfig {
        transport: kind,
        ..CliqueConfig::default()
    };
    Clique::with_config(n, cfg)
}

fn observe(clique: &Clique, result: u64) -> (Observation, u64) {
    (
        Observation {
            rounds: clique.rounds(),
            words: clique.stats().words(),
            fingerprints: clique.stats().pattern_fingerprints().to_vec(),
            result,
        },
        clique.orchestrator_bytes(),
    )
}

fn mm_once(
    n: usize,
    kind: TransportKind,
    a: &RowMatrix<i64>,
    b: &RowMatrix<i64>,
) -> (Observation, u64) {
    let mut clique = clique_for(n, kind);
    let _ = fast_mm::multiply_auto(&mut clique, &IntRing, a, b);
    observe(&clique, 0)
}

fn triangles_once(n: usize, kind: TransportKind, g: &cc_graph::Graph) -> (Observation, u64) {
    let mut clique = clique_for(n, kind);
    let count = count_triangles_program(&mut clique, g);
    observe(&clique, count)
}

/// Per-row deterministic model costs keyed by measurement id.
type ModelCost = (String, u64, u64, u64);

fn bench_transport_scaling(c: &mut Criterion) -> Vec<ModelCost> {
    let mut model_costs = Vec::new();
    let mut group = c.benchmark_group("transport_scaling");
    group.sample_size(10);
    for n in SIZES {
        let a = RowMatrix::from_matrix(&rand_matrix(n, 1));
        let b = RowMatrix::from_matrix(&rand_matrix(n, 2));
        // The determinism gate: every backend must report the in-memory
        // rounds, words, and fingerprints before its wall-clock means
        // anything.
        let (reference, _) = mm_once(n, TransportKind::InMemory, &a, &b);
        for (label, kind) in STAR_BACKENDS {
            let (obs, orch_bytes) = mm_once(n, kind, &a, &b);
            assert_eq!(
                obs, reference,
                "transport {label} diverged from in-memory at n={n}"
            );
            model_costs.push((
                format!("fast_mm/n{n}/{label}"),
                obs.rounds,
                obs.words,
                orch_bytes,
            ));
            group.bench_with_input(
                BenchmarkId::new(format!("fast_mm/n{n}"), label),
                &kind,
                |bench, &kind| {
                    bench.iter(|| mm_once(n, kind, &a, &b));
                },
            );
        }
    }
    for n in TRIANGLE_SIZES {
        let g = generators::gnp(n, 0.3, 5);
        let (reference, _) = triangles_once(n, TransportKind::InMemory, &g);
        let lanes = STAR_BACKENDS.iter().copied().chain([TCP_PEER]);
        for (label, kind) in lanes {
            let (obs, orch_bytes) = triangles_once(n, kind, &g);
            assert_eq!(
                obs, reference,
                "transport {label} diverged from in-memory at n={n}"
            );
            // The refactor's payoff, gated before export: resident rounds
            // bypass the orchestrator entirely; star process backends carry
            // every payload word through it.
            if label == "tcp-peer" {
                assert_eq!(
                    orch_bytes, 0,
                    "peer-resident rounds must bypass the orchestrator"
                );
            } else if label == "socket" || label == "tcp" {
                assert!(
                    orch_bytes > 0,
                    "star {label} must route payloads via the orchestrator"
                );
            }
            model_costs.push((
                format!("triangle_program/n{n}/{label}"),
                obs.rounds,
                obs.words,
                orch_bytes,
            ));
            group.bench_with_input(
                BenchmarkId::new(format!("triangle_program/n{n}"), label),
                &kind,
                |bench, &kind| {
                    bench.iter(|| triangles_once(n, kind, &g));
                },
            );
        }
    }
    group.finish();
    model_costs
}

criterion_group!(benches_unused, noop);
fn noop(_c: &mut Criterion) {}

fn main() {
    // Hand-rolled entry instead of `criterion_main!` so the shim's recorded
    // measurements can be exported — one measurement pass feeds both the
    // stdout report and BENCH_transport.json (same scheme as pool_scaling
    // and sparse_scaling).
    let _ = benches_unused;
    let mut criterion = Criterion::default();
    let model_costs = bench_transport_scaling(&mut criterion);
    export_json(criterion.take_measurements(), &model_costs);
}

/// Writes `BENCH_transport.json` at the workspace root from the
/// deterministic model costs and the criterion measurements (ids look like
/// `fast_mm/n64/socket` or `triangle_program/n64/tcp-peer`).
fn export_json(measurements: Vec<criterion::Measurement>, model_costs: &[ModelCost]) {
    use std::fmt::Write as _;

    let host_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut rows: Vec<(String, usize, &'static str)> = Vec::new();
    for n in SIZES {
        for (label, _) in STAR_BACKENDS {
            rows.push((format!("fast_mm/n{n}/{label}"), n, "fast_mm"));
        }
    }
    for n in TRIANGLE_SIZES {
        for (label, _) in STAR_BACKENDS.iter().copied().chain([TCP_PEER]) {
            rows.push((
                format!("triangle_program/n{n}/{label}"),
                n,
                "triangle_program",
            ));
        }
    }
    let mut records = String::new();
    for (id, n, workload) in rows {
        let label = id.rsplit('/').next().expect("id has a backend segment");
        let inmemory_median = measurements
            .iter()
            .find(|m| m.id == format!("{workload}/n{n}/inmemory"))
            .map(criterion::Measurement::median_ns)
            .expect("in-memory baseline measured");
        let m = measurements
            .iter()
            .find(|m| m.id == id)
            .unwrap_or_else(|| panic!("no measurement recorded for {id}"));
        let (_, rounds, words, orch_bytes) = model_costs
            .iter()
            .find(|(mid, ..)| *mid == id)
            .unwrap_or_else(|| panic!("no model costs recorded for {id}"));
        if !records.is_empty() {
            records.push_str(",\n");
        }
        let _ = write!(
            records,
            "    {{\"workload\": \"{workload}\", \"n\": {n}, \"transport\": \"{label}\", \
             \"bytes_through_orchestrator\": {orch_bytes}, \"rounds\": {rounds}, \
             \"words\": {words}, \"min_ns\": {:.0}, \"median_ns\": {:.0}, \
             \"mean_ns\": {:.0}, \"overhead_vs_inmemory\": {:.2}}}",
            m.min_ns(),
            m.median_ns(),
            m.mean_ns(),
            m.median_ns() / inmemory_median,
        );
    }
    let json = format!(
        "{{\n  \"host_available_parallelism\": {host_threads},\n  \"socket_workers\": \
         {SOCKET_WORKERS},\n  \"note\": \"fast_mm (star backends) and the resident \
         TriangleProgram workload (star + peer-resident TCP) end-to-end per transport backend. \
         Rounds, words, and pattern fingerprints are asserted bit-identical across backends \
         before export (the determinism contract); *_ns is wall-clock including transport \
         construction (thread spawn for channel, worker-process spawn for socket/tcp). \
         bytes_through_orchestrator counts payload bytes transiting the orchestrator — \
         asserted ~0 for tcp-peer (programs resident on workers, words flow peer-to-peer) and \
         > 0 for the star process backends. overhead_vs_inmemory is the median ratio against \
         the shared-memory fabric.\",\n  \"results\": [\n{records}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_transport.json");
    std::fs::write(path, &json).expect("write BENCH_transport.json");
    println!("wrote {path}");
}
