//! Transport overhead: one full fast bilinear multiplication (`fast_mm`) on
//! cliques of `n ∈ {64, 128, 256}` nodes, with the traffic carried by each
//! transport backend — the in-memory sharded flush, per-node thread queues
//! (`channel`), and multi-process unix-socket workers (`socket`).
//!
//! Rounds and words are **asserted identical across backends** before
//! anything is exported (the determinism contract is the whole point of the
//! transport layer); the quantity this bench adds is wall-clock — what one
//! pays to move the same deterministic traffic through thread queues or
//! across process boundaries instead of shared memory. Results are printed
//! per benchmark and exported to `BENCH_transport.json` at the workspace
//! root.
//!
//! The socket backend's cost includes spawning its worker processes per
//! clique (construction is part of the measured routine, exactly as a
//! caller pays it) plus framing every word twice per barrier — out to the
//! destination shard's worker and back with its round-commit. That is the
//! honest price of crossing a process boundary; the bench quantifies it so
//! the networked-simulation roadmap has a baseline.

use cc_algebra::{IntRing, Matrix};
use cc_clique::{Clique, CliqueConfig, TransportKind};
use cc_core::{fast_mm, RowMatrix};
use criterion::{criterion_group, BenchmarkId, Criterion};

const SIZES: [usize; 3] = [64, 128, 256];
const SOCKET_WORKERS: usize = 2;
const BACKENDS: [(&str, TransportKind); 3] = [
    ("inmemory", TransportKind::InMemory),
    ("channel", TransportKind::Channel),
    (
        "socket",
        TransportKind::Socket {
            workers: SOCKET_WORKERS,
        },
    ),
];

fn rand_matrix(n: usize, seed: u64) -> Matrix<i64> {
    let mut st = seed;
    Matrix::from_fn(n, n, |_, _| {
        st = st
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((st >> 33) % 9) as i64 - 4
    })
}

fn mm_once(n: usize, kind: TransportKind, a: &RowMatrix<i64>, b: &RowMatrix<i64>) -> (u64, u64) {
    let cfg = CliqueConfig {
        transport: kind,
        ..CliqueConfig::default()
    };
    let mut clique = Clique::with_config(n, cfg);
    let _ = fast_mm::multiply_auto(&mut clique, &IntRing, a, b);
    (clique.rounds(), clique.stats().words())
}

fn bench_transport_scaling(c: &mut Criterion) -> Vec<(String, u64, u64)> {
    let mut model_costs = Vec::new();
    let mut group = c.benchmark_group("transport_scaling");
    group.sample_size(10);
    for n in SIZES {
        let a = RowMatrix::from_matrix(&rand_matrix(n, 1));
        let b = RowMatrix::from_matrix(&rand_matrix(n, 2));
        // The determinism gate: every backend must report the in-memory
        // rounds and words before its wall-clock means anything.
        let (ref_rounds, ref_words) = mm_once(n, TransportKind::InMemory, &a, &b);
        for (label, kind) in BACKENDS {
            let (rounds, words) = mm_once(n, kind, &a, &b);
            assert_eq!(
                (rounds, words),
                (ref_rounds, ref_words),
                "transport {label} diverged from in-memory at n={n}"
            );
            model_costs.push((format!("fast_mm/n{n}/{label}"), rounds, words));
            group.bench_with_input(
                BenchmarkId::new(format!("fast_mm/n{n}"), label),
                &kind,
                |bench, &kind| {
                    bench.iter(|| mm_once(n, kind, &a, &b));
                },
            );
        }
    }
    group.finish();
    model_costs
}

criterion_group!(benches_unused, noop);
fn noop(_c: &mut Criterion) {}

fn main() {
    // Hand-rolled entry instead of `criterion_main!` so the shim's recorded
    // measurements can be exported — one measurement pass feeds both the
    // stdout report and BENCH_transport.json (same scheme as pool_scaling
    // and sparse_scaling).
    let _ = benches_unused;
    let mut criterion = Criterion::default();
    let model_costs = bench_transport_scaling(&mut criterion);
    export_json(criterion.take_measurements(), &model_costs);
}

/// Writes `BENCH_transport.json` at the workspace root from the
/// deterministic model costs and the criterion measurements (ids look like
/// `fast_mm/n64/socket`).
fn export_json(measurements: Vec<criterion::Measurement>, model_costs: &[(String, u64, u64)]) {
    use std::fmt::Write as _;

    let host_threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut records = String::new();
    for n in SIZES {
        let inmemory_median = measurements
            .iter()
            .find(|m| m.id == format!("fast_mm/n{n}/inmemory"))
            .map(criterion::Measurement::median_ns)
            .expect("in-memory baseline measured");
        for (label, _) in BACKENDS {
            let id = format!("fast_mm/n{n}/{label}");
            let m = measurements
                .iter()
                .find(|m| m.id == id)
                .unwrap_or_else(|| panic!("no measurement recorded for {id}"));
            let (_, rounds, words) = model_costs
                .iter()
                .find(|(mid, _, _)| *mid == id)
                .unwrap_or_else(|| panic!("no model costs recorded for {id}"));
            if !records.is_empty() {
                records.push_str(",\n");
            }
            let _ = write!(
                records,
                "    {{\"n\": {n}, \"transport\": \"{label}\", \"rounds\": {rounds}, \
                 \"words\": {words}, \"min_ns\": {:.0}, \"median_ns\": {:.0}, \
                 \"mean_ns\": {:.0}, \"overhead_vs_inmemory\": {:.2}}}",
                m.min_ns(),
                m.median_ns(),
                m.mean_ns(),
                m.median_ns() / inmemory_median,
            );
        }
    }
    let json = format!(
        "{{\n  \"host_available_parallelism\": {host_threads},\n  \"socket_workers\": \
         {SOCKET_WORKERS},\n  \"note\": \"fast_mm end-to-end per transport backend. Rounds and \
         words are asserted bit-identical across backends before export (the determinism \
         contract); *_ns is wall-clock including transport construction (thread spawn for \
         channel, worker-process spawn for socket). overhead_vs_inmemory is the median ratio \
         against the shared-memory fabric — the price of moving the same traffic through \
         thread queues or across process boundaries.\",\n  \"results\": [\n{records}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_transport.json");
    std::fs::write(path, &json).expect("write BENCH_transport.json");
    println!("wrote {path}");
}
