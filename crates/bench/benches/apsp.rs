//! Wall-clock of the APSP algorithms (Table 1 rows 8–11 at fixed n).

use cc_clique::Clique;
use cc_graph::generators;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_apsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("apsp");
    group.sample_size(10);

    let n = 27;
    let weighted = generators::weighted_gnp(n, 0.25, 9, true, 17);
    let unweighted = generators::gnp(n, 0.2, 31);

    group.bench_function("exact_squaring_n27", |b| {
        b.iter(|| {
            let mut clique = Clique::new(n);
            cc_apsp::apsp_exact(&mut clique, &weighted)
        });
    });
    group.bench_function("seidel_n27", |b| {
        b.iter(|| {
            let mut clique = Clique::new(n);
            cc_apsp::apsp_seidel(&mut clique, &unweighted)
        });
    });
    group.bench_function("small_weights_u8_n27", |b| {
        let g = generators::weighted_gnp(n, 0.5, 2, true, 23);
        b.iter(|| {
            let mut clique = Clique::new(n);
            cc_apsp::apsp_small_weights(&mut clique, &g, Some(8))
        });
    });
    group.bench_function("approx_delta_half_n27", |b| {
        let g = generators::weighted_gnp(n, 0.3, 10, true, 29);
        b.iter(|| {
            let mut clique = Clique::new(n);
            cc_apsp::apsp_approx(&mut clique, &g, 0.5)
        });
    });
    group.bench_function("bellman_ford_baseline_n27", |b| {
        b.iter(|| {
            let mut clique = Clique::new(n);
            cc_baselines::naive::bellman_ford_apsp(&mut clique, &weighted)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_apsp);
criterion_main!(benches);
