//! Bakes the build's profile directory (`target/<profile>`) into the crate
//! so the socket transport can locate the `cc-clique-node` worker binary at
//! runtime even from contexts whose `current_exe` lives elsewhere (rustdoc
//! compiles doctests into temporary directories). `OUT_DIR` is
//! `target/<profile>/build/cc-transport-<hash>/out`, three levels below the
//! profile directory.

use std::path::PathBuf;

fn main() {
    let out_dir = PathBuf::from(std::env::var("OUT_DIR").expect("cargo sets OUT_DIR"));
    let profile_dir = out_dir
        .ancestors()
        .nth(3)
        .expect("OUT_DIR is nested under the profile directory")
        .to_path_buf();
    println!(
        "cargo:rustc-env=CC_TRANSPORT_PROFILE_DIR={}",
        profile_dir.display()
    );
}
