//! Property tests for the wire format: whatever a backend frames must
//! decode back bit-identically — including maximum-width words, empty
//! payloads, and empty rounds — so a codec bug can never silently corrupt
//! a product. Corrupted bytes must fail to decode rather than alias a
//! different frame.

use cc_transport::{encode_frame_batch, push_frame_bytes, read_frame, write_frame, Frame};
use proptest::collection::vec;
use proptest::prelude::*;
use std::io::Cursor;

/// Word strategy biased toward the boundary values a codec is most likely
/// to mangle: zero, the maximum, and values whose byte patterns are
/// asymmetric.
fn word() -> BoxedStrategy<u64> {
    prop_oneof![
        Just(0u64),
        Just(u64::MAX),
        Just(u64::from(u32::MAX)),
        Just(1u64 << 63),
        any::<u64>(),
    ]
    .boxed()
}

fn frame() -> BoxedStrategy<Frame> {
    let payload = (any::<u64>(), any::<u32>(), any::<u32>(), vec(word(), 0..40))
        .prop_map(|(epoch, src, dst, words)| Frame::Payload {
            epoch,
            src,
            dst,
            words,
        })
        .boxed();
    let bcast = (any::<u64>(), any::<u32>(), vec(word(), 0..40))
        .prop_map(|(epoch, src, words)| Frame::Bcast { epoch, src, words })
        .boxed();
    let commit = (
        any::<u64>(),
        vec((any::<u32>(), any::<u32>(), word()), 0..20),
    )
        .prop_map(|(epoch, loads)| Frame::Commit { epoch, loads })
        .boxed();
    prop_oneof![
        any::<u32>()
            .prop_map(|worker| Frame::Hello { worker })
            .boxed(),
        payload,
        bcast,
        any::<u64>()
            .prop_map(|epoch| Frame::RoundEnd { epoch })
            .boxed(),
        commit,
        Just(Frame::Shutdown).boxed(),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn every_frame_round_trips_the_codec(f in frame()) {
        let bytes = f.encode();
        prop_assert_eq!(Frame::decode(&bytes), Ok(f));
    }

    #[test]
    fn every_frame_round_trips_the_length_prefixed_stream(frames in vec(frame(), 0..12)) {
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).expect("write to Vec");
        }
        let mut cursor = Cursor::new(wire);
        for f in &frames {
            prop_assert_eq!(&read_frame(&mut cursor).expect("read back"), f);
        }
        // The stream is exactly consumed: no trailing bytes invented.
        prop_assert_eq!(cursor.position(), cursor.get_ref().len() as u64);
    }

    #[test]
    fn batched_frames_are_byte_stream_equivalent(frames in vec(frame(), 0..12)) {
        // The socket backend's syscall cut: a whole round's frames coalesce
        // into one writev-style batch. The receiver must not be able to
        // tell — the batch's bytes are exactly the frame-by-frame stream.
        let mut frame_by_frame = Vec::new();
        for f in &frames {
            write_frame(&mut frame_by_frame, f).expect("write to Vec");
        }
        let batch = encode_frame_batch(&frames);
        prop_assert_eq!(&batch, &frame_by_frame, "batching must not change the byte stream");
        // Pre-encoded bodies (the broadcast fan-out path) batch to the
        // same bytes as whole frames.
        let mut from_bodies = Vec::new();
        for f in &frames {
            push_frame_bytes(&mut from_bodies, &f.encode());
        }
        prop_assert_eq!(&from_bodies, &frame_by_frame);
        // And the batch reads back frame by frame, exactly consumed.
        let mut cursor = Cursor::new(batch);
        for f in &frames {
            prop_assert_eq!(&read_frame(&mut cursor).expect("read from batch"), f);
        }
        prop_assert_eq!(cursor.position(), cursor.get_ref().len() as u64);
    }

    #[test]
    fn truncations_never_decode_to_a_different_frame(f in frame(), cut in 0usize..64) {
        let bytes = f.encode();
        if cut > 0 && cut < bytes.len() {
            let truncated = &bytes[..bytes.len() - cut];
            // A truncated encoding must error; decoding it as *some other*
            // valid frame would silently corrupt simulation traffic.
            prop_assert!(Frame::decode(truncated).is_err(), "cut {cut} decoded");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected(f in frame(), junk in vec(any::<u64>(), 1..4)) {
        let mut bytes = f.encode();
        for j in junk {
            bytes.push(j as u8);
        }
        prop_assert!(Frame::decode(&bytes).is_err());
    }
}

#[test]
fn empty_round_is_expressible_and_round_trips() {
    // An empty round on the wire is nothing but its delimiter and commit —
    // there must be no minimum-traffic assumption in the codec.
    let frames = [
        Frame::RoundEnd { epoch: 0 },
        Frame::Commit {
            epoch: 0,
            loads: vec![],
        },
    ];
    let mut wire = Vec::new();
    for f in &frames {
        write_frame(&mut wire, f).unwrap();
    }
    let mut cursor = Cursor::new(wire);
    for f in &frames {
        assert_eq!(&read_frame(&mut cursor).unwrap(), f);
    }
}

#[test]
fn max_width_words_survive_every_lane() {
    // The congested clique charges by the word; a codec that clips the top
    // bits would corrupt wide entries (e.g. packed pairs, INFINITY
    // encodings) only at runtime. Pin the extremes explicitly.
    let f = Frame::Payload {
        epoch: u64::MAX,
        src: u32::MAX,
        dst: 0,
        words: vec![u64::MAX, 0, 1 << 63, u64::from(u32::MAX) + 1],
    };
    assert_eq!(Frame::decode(&f.encode()), Ok(f));
}
