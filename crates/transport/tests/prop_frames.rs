//! Property tests for the wire format: whatever a backend frames must
//! decode back bit-identically — including maximum-width words, empty
//! payloads, and empty rounds — so a codec bug can never silently corrupt
//! a product. Corrupted bytes must fail to decode rather than alias a
//! different frame.

use cc_transport::{encode_frame_batch, push_frame_bytes, read_frame, write_frame, Frame};
use proptest::collection::vec;
use proptest::prelude::*;
use std::io::{Cursor, Read};

/// Word strategy biased toward the boundary values a codec is most likely
/// to mangle: zero, the maximum, and values whose byte patterns are
/// asymmetric.
fn word() -> BoxedStrategy<u64> {
    prop_oneof![
        Just(0u64),
        Just(u64::MAX),
        Just(u64::from(u32::MAX)),
        Just(1u64 << 63),
        any::<u64>(),
    ]
    .boxed()
}

/// A peer-listener address string as the TCP backend produces them
/// (`host:port` from `TcpListener::local_addr`), plus hostname spellings a
/// multi-host run would feed through `CC_TRANSPORT=tcp:<host>:<port>`.
fn addr() -> BoxedStrategy<String> {
    (any::<u8>(), any::<u8>(), any::<u16>())
        .prop_map(|(a, b, port)| match a % 3 {
            0 => format!("127.0.0.1:{port}"),
            1 => format!("10.{a}.{b}.7:{port}"),
            _ => format!("worker-{b}.cluster.internal:{port}"),
        })
        .boxed()
}

fn frame() -> BoxedStrategy<Frame> {
    let payload = (any::<u64>(), any::<u32>(), any::<u32>(), vec(word(), 0..40))
        .prop_map(|(epoch, src, dst, words)| Frame::Payload {
            epoch,
            src,
            dst,
            words,
        })
        .boxed();
    let bcast = (any::<u64>(), any::<u32>(), vec(word(), 0..40))
        .prop_map(|(epoch, src, words)| Frame::Bcast { epoch, src, words })
        .boxed();
    let commit = (
        any::<u64>(),
        vec((any::<u32>(), any::<u32>(), word()), 0..20),
    )
        .prop_map(|(epoch, loads)| Frame::Commit { epoch, loads })
        .boxed();
    // Setup / resident-session frames of the TCP backend.
    let assign = (
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u8>(),
    )
        .prop_map(|(worker, lo, count, n, t)| Frame::Assign {
            worker,
            lo,
            count,
            n,
            trace: match t % 4 {
                0 => "off".to_string(),
                1 => "summary".to_string(),
                2 => "rounds".to_string(),
                _ => "full".to_string(),
            },
        })
        .boxed();
    let peer_addr = (any::<u32>(), addr())
        .prop_map(|(worker, addr)| Frame::PeerAddr { worker, addr })
        .boxed();
    let peers = vec(addr(), 0..8)
        .prop_map(|addrs| Frame::Peers { addrs })
        .boxed();
    let program = (any::<u32>(), vec(word(), 0..40))
        .prop_map(|(node, state)| Frame::Program { node, state })
        .boxed();
    let resident_start = (any::<u64>(), any::<u8>())
        .prop_map(|(epoch, k)| Frame::ResidentStart {
            epoch,
            kind: match k % 3 {
                0 => String::new(),
                1 => "cc.echo-ring".to_string(),
                _ => format!("cc.kind-{k}"),
            },
        })
        .boxed();
    let resident_done = (
        any::<u64>(),
        any::<u32>(),
        word(),
        vec((any::<u32>(), any::<u32>(), word()), 0..20),
    )
        .prop_map(|(epoch, live, peer_bytes, loads)| Frame::ResidentDone {
            epoch,
            live,
            peer_bytes,
            loads,
        })
        .boxed();
    let release = (any::<u64>(), any::<u32>())
        .prop_map(|(epoch, live)| Frame::Release { epoch, live })
        .boxed();
    // Worker telemetry snapshots: event-json lines plus adversarial
    // strings (empty, unicode, embedded quotes) — the codec ships them
    // opaquely, so any byte sequence must survive.
    let telemetry_line = prop_oneof![
        Just(String::new()),
        Just(r#"{"event":"counter","name":"x","value":1}"#.to_string()),
        vec(any::<u32>(), 0..24)
            .prop_map(|cs| {
                cs.into_iter()
                    .map(|c| char::from_u32(c % 0x11_0000).unwrap_or('\u{fffd}'))
                    .collect::<String>()
            })
            .boxed(),
    ]
    .boxed();
    let telemetry = (any::<u32>(), vec(telemetry_line, 0..6))
        .prop_map(|(worker, lines)| Frame::Telemetry { worker, lines })
        .boxed();
    prop_oneof![
        any::<u32>()
            .prop_map(|worker| Frame::Hello { worker })
            .boxed(),
        payload,
        bcast,
        any::<u64>()
            .prop_map(|epoch| Frame::RoundEnd { epoch })
            .boxed(),
        commit,
        Just(Frame::Shutdown).boxed(),
        assign,
        peer_addr,
        peers,
        program,
        resident_start,
        resident_done,
        release,
        telemetry,
    ]
    .boxed()
}

/// An [`io::Read`] that serves the underlying bytes in prescribed chunk
/// sizes (cycling through `chunks`; a zero entry serves one byte), the way
/// a TCP stream delivers a frame across several `read` calls. The codec's
/// reader must reassemble exactly what a contiguous buffer would give.
struct ChunkedReader {
    data: Vec<u8>,
    pos: usize,
    chunks: Vec<usize>,
    turn: usize,
}

impl ChunkedReader {
    fn new(data: Vec<u8>, chunks: Vec<usize>) -> Self {
        Self {
            data,
            pos: 0,
            chunks,
            turn: 0,
        }
    }
}

impl Read for ChunkedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos == self.data.len() {
            return Ok(0);
        }
        let want = self.chunks[self.turn % self.chunks.len()].max(1);
        self.turn += 1;
        let n = want.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Reads `count` frames through a [`ChunkedReader`] and asserts the stream
/// is exactly consumed; returns the decoded frames.
fn read_chunked(wire: Vec<u8>, chunks: Vec<usize>, count: usize) -> Vec<Frame> {
    let mut reader = ChunkedReader::new(wire, chunks);
    let frames: Vec<Frame> = (0..count)
        .map(|i| read_frame(&mut reader).unwrap_or_else(|e| panic!("frame {i}: {e}")))
        .collect();
    assert_eq!(reader.pos, reader.data.len(), "stream exactly consumed");
    frames
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn every_frame_round_trips_the_codec(f in frame()) {
        let bytes = f.encode();
        prop_assert_eq!(Frame::decode(&bytes), Ok(f));
    }

    #[test]
    fn every_frame_round_trips_the_length_prefixed_stream(frames in vec(frame(), 0..12)) {
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).expect("write to Vec");
        }
        let mut cursor = Cursor::new(wire);
        for f in &frames {
            prop_assert_eq!(&read_frame(&mut cursor).expect("read back"), f);
        }
        // The stream is exactly consumed: no trailing bytes invented.
        prop_assert_eq!(cursor.position(), cursor.get_ref().len() as u64);
    }

    #[test]
    fn batched_frames_are_byte_stream_equivalent(frames in vec(frame(), 0..12)) {
        // The socket backend's syscall cut: a whole round's frames coalesce
        // into one writev-style batch. The receiver must not be able to
        // tell — the batch's bytes are exactly the frame-by-frame stream.
        let mut frame_by_frame = Vec::new();
        for f in &frames {
            write_frame(&mut frame_by_frame, f).expect("write to Vec");
        }
        let batch = encode_frame_batch(&frames);
        prop_assert_eq!(&batch, &frame_by_frame, "batching must not change the byte stream");
        // Pre-encoded bodies (the broadcast fan-out path) batch to the
        // same bytes as whole frames.
        let mut from_bodies = Vec::new();
        for f in &frames {
            push_frame_bytes(&mut from_bodies, &f.encode());
        }
        prop_assert_eq!(&from_bodies, &frame_by_frame);
        // And the batch reads back frame by frame, exactly consumed.
        let mut cursor = Cursor::new(batch);
        for f in &frames {
            prop_assert_eq!(&read_frame(&mut cursor).expect("read from batch"), f);
        }
        prop_assert_eq!(cursor.position(), cursor.get_ref().len() as u64);
    }

    #[test]
    fn one_byte_chunks_decode_identically_to_the_contiguous_path(frames in vec(frame(), 0..8)) {
        // The worst TCP delivery: every read returns a single byte, so
        // every length prefix and every multi-byte field straddles reads.
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).expect("write to Vec");
        }
        let contiguous: Vec<Frame> = {
            let mut cursor = Cursor::new(wire.clone());
            (0..frames.len()).map(|_| read_frame(&mut cursor).expect("contiguous")).collect()
        };
        let chunked = read_chunked(wire, vec![1], frames.len());
        prop_assert_eq!(&chunked, &contiguous);
        prop_assert_eq!(&chunked, &frames);
    }

    #[test]
    fn random_chunk_splits_decode_identically_to_the_contiguous_path(
        frames in vec(frame(), 1..8),
        chunks in vec(0usize..48, 1..8),
    ) {
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).expect("write to Vec");
        }
        prop_assert_eq!(&read_chunked(wire, chunks, frames.len()), &frames);
    }

    #[test]
    fn boundary_straddling_splits_decode_identically(f in frame(), lead in 0usize..12) {
        // Force the first read boundary to land inside (or exactly on) the
        // 4-byte length prefix and the leading frame fields, then continue
        // with a co-prime stride so later boundaries straddle the
        // prefix/body seam of the encoding at shifting offsets.
        let mut wire = Vec::new();
        write_frame(&mut wire, &f).expect("write to Vec");
        for stride in [2usize, 3, 5, 7] {
            let chunks = vec![lead, stride];
            prop_assert_eq!(
                &read_chunked(wire.clone(), chunks, 1)[0],
                &f,
                "lead {lead}, stride {stride}"
            );
        }
    }

    #[test]
    fn truncations_never_decode_to_a_different_frame(f in frame(), cut in 0usize..64) {
        let bytes = f.encode();
        if cut > 0 && cut < bytes.len() {
            let truncated = &bytes[..bytes.len() - cut];
            // A truncated encoding must error; decoding it as *some other*
            // valid frame would silently corrupt simulation traffic.
            prop_assert!(Frame::decode(truncated).is_err(), "cut {cut} decoded");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected(f in frame(), junk in vec(any::<u64>(), 1..4)) {
        let mut bytes = f.encode();
        for j in junk {
            bytes.push(j as u8);
        }
        prop_assert!(Frame::decode(&bytes).is_err());
    }
}

#[test]
fn empty_round_is_expressible_and_round_trips() {
    // An empty round on the wire is nothing but its delimiter and commit —
    // there must be no minimum-traffic assumption in the codec.
    let frames = [
        Frame::RoundEnd { epoch: 0 },
        Frame::Commit {
            epoch: 0,
            loads: vec![],
        },
    ];
    let mut wire = Vec::new();
    for f in &frames {
        write_frame(&mut wire, f).unwrap();
    }
    let mut cursor = Cursor::new(wire);
    for f in &frames {
        assert_eq!(&read_frame(&mut cursor).unwrap(), f);
    }
}

#[test]
fn every_two_chunk_split_of_a_frame_decodes() {
    // Exhaustive split sweep on a frame exercising strings, loads, and
    // wide scalars: every possible two-read delivery — including splits
    // inside the 4-byte length prefix — must reassemble bit-identically.
    let frames = [
        Frame::ResidentDone {
            epoch: u64::MAX,
            live: 3,
            peer_bytes: 0xDEAD_BEEF,
            loads: vec![(0, 1, 9), (2, 3, u64::MAX)],
        },
        Frame::Peers {
            addrs: vec![
                "127.0.0.1:4242".into(),
                "worker-1.cluster.internal:9".into(),
            ],
        },
    ];
    for f in frames {
        let mut wire = Vec::new();
        write_frame(&mut wire, &f).unwrap();
        for split in 1..wire.len() {
            let got = read_chunked(wire.clone(), vec![split, wire.len() - split], 1);
            assert_eq!(got[0], f, "split at {split}");
        }
    }
}

#[test]
fn max_width_words_survive_every_lane() {
    // The congested clique charges by the word; a codec that clips the top
    // bits would corrupt wide entries (e.g. packed pairs, INFINITY
    // encodings) only at runtime. Pin the extremes explicitly.
    let f = Frame::Payload {
        epoch: u64::MAX,
        src: u32::MAX,
        dst: 0,
        words: vec![u64::MAX, 0, 1 << 63, u64::from(u32::MAX) + 1],
    };
    assert_eq!(Frame::decode(&f.encode()), Ok(f));
}
