//! Cross-backend equivalence at the transport level: for any round
//! sequence, the channel and socket fabrics must reproduce the in-memory
//! fabric's deliveries and accounting bit for bit — including empty rounds,
//! self messages, and broadcast lanes.

use cc_runtime::{Executor, ExecutorKind};
use cc_transport::{RoundDelivery, Transport, TransportKind};
use proptest::prelude::*;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Drives `rounds` pseudo-random rounds (unicast bursts, self messages,
/// broadcast slabs, and one deliberately empty round) and returns every
/// round's delivery.
fn drive(t: &mut dyn Transport, n: usize, rounds: u64, seed: u64) -> Vec<RoundDelivery> {
    let mut out = Vec::new();
    for r in 0..rounds {
        if r == 1 {
            // An empty round: the rendezvous must still fire.
            out.push(t.finish_round());
            continue;
        }
        for src in 0..n {
            let h = splitmix(seed ^ (r << 32) ^ src as u64);
            for shot in 0..h % 4 {
                let hh = splitmix(h ^ shot);
                let dst = (hh % n as u64) as usize;
                let words: Vec<u64> = (0..1 + (hh >> 8) % 5).map(|j| hh ^ j).collect();
                t.send(src, dst, &words);
            }
            if h.is_multiple_of(3) {
                let slab: Vec<u64> = (0..1 + h % 3).map(|j| h.wrapping_mul(j + 1)).collect();
                t.broadcast(src, slab.into());
            }
        }
        out.push(t.finish_round());
    }
    assert_eq!(t.epoch(), rounds);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn channel_and_socket_match_inmemory(
        n in 2usize..10,
        rounds in 1u64..5,
        seed in 0u64..1_000_000,
        workers in 1usize..4,
    ) {
        let exec = || Executor::new(ExecutorKind::Sequential);
        let mut reference = TransportKind::InMemory.build(n, exec());
        let expected = drive(&mut *reference, n, rounds, seed);
        for kind in [TransportKind::Channel, TransportKind::Socket { workers }] {
            let mut t = kind.build(n, exec());
            let got = drive(&mut *t, n, rounds, seed);
            prop_assert_eq!(&got, &expected, "{:?} diverged", kind);
        }
    }
}

#[test]
fn loads_are_canonical_on_every_backend() {
    for kind in [
        TransportKind::InMemory,
        TransportKind::Channel,
        TransportKind::Socket { workers: 2 },
    ] {
        let mut t = kind.build(5, Executor::new(ExecutorKind::Sequential));
        t.send(3, 1, &[1, 2]);
        t.send(0, 4, &[7]);
        t.broadcast(2, vec![9].into());
        t.send(1, 1, &[5]); // self: free
        let rd = t.finish_round();
        let got: Vec<_> = rd.loads.iter().collect();
        assert_eq!(
            got,
            vec![
                (0, 4, 1),
                (2, 0, 1),
                (2, 1, 1),
                (2, 3, 1),
                (2, 4, 1),
                (3, 1, 2)
            ],
            "{kind:?} loads must be in canonical (src, dst) order"
        );
        assert_eq!(rd.inboxes[1].unicast[1], vec![5], "self delivery");
    }
}

#[test]
fn single_node_clique_is_all_self_traffic() {
    // Degenerate but legal at the transport level: everything is a local
    // move, nothing is ever charged.
    for kind in [
        TransportKind::InMemory,
        TransportKind::Channel,
        TransportKind::Socket { workers: 1 },
    ] {
        let mut t = kind.build(1, Executor::new(ExecutorKind::Sequential));
        t.send(0, 0, &[1, 2, 3]);
        t.broadcast(0, vec![4].into());
        let rd = t.finish_round();
        assert_eq!(rd.loads.words(), 0, "{kind:?}");
        assert_eq!(rd.inboxes[0].unicast[0], vec![1, 2, 3]);
        assert_eq!(&*rd.inboxes[0].broadcast[0][0], &[4]);
    }
}
