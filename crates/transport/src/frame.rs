//! The wire format shared by every non-shared-memory backend.
//!
//! A frame is a self-describing unit of transport traffic: payload words for
//! one link, a broadcast slab, a round delimiter, a worker greeting, or a
//! round-commit token. On byte streams (unix sockets) frames travel
//! length-prefixed (`u32` little-endian byte count, then the encoded frame);
//! the channel backend ships the same encoded bytes through per-node queues,
//! so one codec — and one set of round-trip property tests — covers every
//! backend that leaves shared memory.
//!
//! All integers are little-endian. [`Word`]s are transmitted verbatim as 8
//! bytes, so the full 64-bit width survives the wire (property-tested with
//! `Word::MAX`).

use cc_runtime::Word;
use std::fmt;
use std::io::{self, Read, Write};

/// Hard upper bound on one frame's encoded size (1 GiB). A length prefix
/// beyond this is treated as stream corruption rather than honoured with an
/// allocation.
pub const MAX_FRAME_BYTES: usize = 1 << 30;

/// One unit of transport traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Worker → parent greeting identifying the connecting worker process.
    Hello {
        /// Index of the worker in the orchestrator's spawn order.
        worker: u32,
    },
    /// Unicast payload for the `(src, dst)` link in round `epoch`. Words
    /// are in send order; several payload frames for one link concatenate.
    Payload {
        /// Round this payload belongs to.
        epoch: u64,
        /// Sending node.
        src: u32,
        /// Receiving node.
        dst: u32,
        /// The payload words, in send order.
        words: Vec<Word>,
    },
    /// One broadcast slab from `src` in round `epoch`: delivered to every
    /// node (the sender included), charged on each `src → dst` link with
    /// `dst ≠ src`.
    Bcast {
        /// Round this slab belongs to.
        epoch: u64,
        /// Broadcasting node.
        src: u32,
        /// The slab words.
        words: Vec<Word>,
    },
    /// Round delimiter: all of round `epoch`'s traffic has been sent. An
    /// empty round is a `RoundEnd` with no preceding payload frames.
    RoundEnd {
        /// The round being closed.
        epoch: u64,
    },
    /// Round-commit token: the sender has delivered round `epoch` and
    /// reports the per-link word counts it accounted (canonical
    /// `(src, dst, words)` triples). The barrier rendezvous completes when
    /// every peer's commit for the epoch has been collected.
    Commit {
        /// The round being committed.
        epoch: u64,
        /// Per-link `(src, dst, words)` accounting entries.
        loads: Vec<(u32, u32, u64)>,
    },
    /// Orderly teardown: the peer should exit its receive loop.
    Shutdown,
}

/// Decode-side failure: the bytes are not a well-formed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ended before the frame was complete.
    Truncated,
    /// Bytes remained after a complete frame was decoded.
    Trailing(usize),
    /// Unknown frame tag byte.
    BadTag(u8),
    /// A declared length exceeds [`MAX_FRAME_BYTES`].
    Oversized(u64),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::Trailing(n) => write!(f, "{n} trailing bytes after frame"),
            FrameError::BadTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            FrameError::Oversized(n) => write!(f, "declared length {n} exceeds frame cap"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for io::Error {
    fn from(e: FrameError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

const TAG_HELLO: u8 = 0;
const TAG_PAYLOAD: u8 = 1;
const TAG_BCAST: u8 = 2;
const TAG_ROUND_END: u8 = 3;
const TAG_COMMIT: u8 = 4;
const TAG_SHUTDOWN: u8 = 5;

impl Frame {
    /// Encodes the frame body (no length prefix).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16);
        match self {
            Frame::Hello { worker } => {
                buf.push(TAG_HELLO);
                buf.extend_from_slice(&worker.to_le_bytes());
            }
            Frame::Payload {
                epoch,
                src,
                dst,
                words,
            } => {
                buf.push(TAG_PAYLOAD);
                buf.extend_from_slice(&epoch.to_le_bytes());
                buf.extend_from_slice(&src.to_le_bytes());
                buf.extend_from_slice(&dst.to_le_bytes());
                put_words(&mut buf, words);
            }
            Frame::Bcast { epoch, src, words } => {
                buf.push(TAG_BCAST);
                buf.extend_from_slice(&epoch.to_le_bytes());
                buf.extend_from_slice(&src.to_le_bytes());
                put_words(&mut buf, words);
            }
            Frame::RoundEnd { epoch } => {
                buf.push(TAG_ROUND_END);
                buf.extend_from_slice(&epoch.to_le_bytes());
            }
            Frame::Commit { epoch, loads } => {
                buf.push(TAG_COMMIT);
                buf.extend_from_slice(&epoch.to_le_bytes());
                buf.extend_from_slice(&(loads.len() as u32).to_le_bytes());
                for (src, dst, words) in loads {
                    buf.extend_from_slice(&src.to_le_bytes());
                    buf.extend_from_slice(&dst.to_le_bytes());
                    buf.extend_from_slice(&words.to_le_bytes());
                }
            }
            Frame::Shutdown => buf.push(TAG_SHUTDOWN),
        }
        buf
    }

    /// Decodes one frame body, requiring the buffer to contain exactly one
    /// frame (no trailing bytes).
    pub fn decode(bytes: &[u8]) -> Result<Frame, FrameError> {
        let mut r = Reader { bytes, pos: 0 };
        let frame = match r.u8()? {
            TAG_HELLO => Frame::Hello { worker: r.u32()? },
            TAG_PAYLOAD => Frame::Payload {
                epoch: r.u64()?,
                src: r.u32()?,
                dst: r.u32()?,
                words: r.words()?,
            },
            TAG_BCAST => Frame::Bcast {
                epoch: r.u64()?,
                src: r.u32()?,
                words: r.words()?,
            },
            TAG_ROUND_END => Frame::RoundEnd { epoch: r.u64()? },
            TAG_COMMIT => {
                let epoch = r.u64()?;
                let n = r.u32()? as usize;
                if n.saturating_mul(16) > MAX_FRAME_BYTES {
                    return Err(FrameError::Oversized(n as u64));
                }
                let mut loads = Vec::with_capacity(n.min(r.remaining() / 16));
                for _ in 0..n {
                    loads.push((r.u32()?, r.u32()?, r.u64()?));
                }
                Frame::Commit { epoch, loads }
            }
            TAG_SHUTDOWN => Frame::Shutdown,
            t => return Err(FrameError::BadTag(t)),
        };
        if r.remaining() > 0 {
            return Err(FrameError::Trailing(r.remaining()));
        }
        Ok(frame)
    }
}

fn put_words(buf: &mut Vec<u8>, words: &[Word]) {
    buf.extend_from_slice(&(words.len() as u32).to_le_bytes());
    for w in words {
        buf.extend_from_slice(&w.to_le_bytes());
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&[u8], FrameError> {
        if self.remaining() < n {
            return Err(FrameError::Truncated);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn words(&mut self) -> Result<Vec<Word>, FrameError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(8) > MAX_FRAME_BYTES {
            return Err(FrameError::Oversized(n as u64));
        }
        if self.remaining() < n * 8 {
            return Err(FrameError::Truncated);
        }
        let mut words = Vec::with_capacity(n);
        for _ in 0..n {
            words.push(self.u64()?);
        }
        Ok(words)
    }
}

/// Writes one length-prefixed frame to a byte stream. The caller flushes
/// when the round's traffic is complete.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    let body = frame.encode();
    assert!(body.len() <= MAX_FRAME_BYTES, "frame exceeds wire cap");
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&body)
}

/// Appends one length-prefixed frame to a batch buffer, producing exactly
/// the bytes [`write_frame`] would put on the wire. Batching lets a sender
/// coalesce a whole round's frames into **one** buffer and hand the kernel
/// a single write — the writev-style syscall cut of the socket backend —
/// while the receive side keeps reading frame by frame, none the wiser.
pub fn push_frame(batch: &mut Vec<u8>, frame: &Frame) {
    push_frame_bytes(batch, &frame.encode());
}

/// Appends an already-encoded frame body (from [`Frame::encode`]) to a
/// batch buffer with its length prefix. For senders that encode a frame
/// once and fan it out to several receivers (e.g. broadcast slabs shipped
/// to every worker).
pub fn push_frame_bytes(batch: &mut Vec<u8>, body: &[u8]) {
    assert!(body.len() <= MAX_FRAME_BYTES, "frame exceeds wire cap");
    batch.extend_from_slice(&(body.len() as u32).to_le_bytes());
    batch.extend_from_slice(body);
}

/// Encodes a frame sequence as one contiguous length-prefixed byte batch —
/// bit-identical to writing each frame with [`write_frame`] in order
/// (property-tested in `prop_frames.rs`), so batched and unbatched senders
/// produce the same byte stream.
#[must_use]
pub fn encode_frame_batch(frames: &[Frame]) -> Vec<u8> {
    let mut batch = Vec::new();
    for frame in frames {
        push_frame(&mut batch, frame);
    }
    batch
}

/// Reads one length-prefixed frame from a byte stream.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Frame> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized(len as u64).into());
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Frame::decode(&body).map_err(Into::into)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn codec_round_trips_each_variant() {
        let frames = [
            Frame::Hello { worker: 7 },
            Frame::Payload {
                epoch: 3,
                src: 1,
                dst: 2,
                words: vec![0, 1, Word::MAX],
            },
            Frame::Bcast {
                epoch: u64::MAX,
                src: 0,
                words: vec![],
            },
            Frame::RoundEnd { epoch: 0 },
            Frame::Commit {
                epoch: 9,
                loads: vec![(0, 1, 5), (2, 0, u64::MAX)],
            },
            Frame::Shutdown,
        ];
        for f in frames {
            assert_eq!(Frame::decode(&f.encode()), Ok(f.clone()), "{f:?}");
        }
    }

    #[test]
    fn stream_round_trips_a_frame_sequence() {
        let frames = vec![
            Frame::RoundEnd { epoch: 0 }, // an empty round is just its delimiter
            Frame::Payload {
                epoch: 1,
                src: 0,
                dst: 3,
                words: vec![Word::MAX, 0, 42],
            },
            Frame::RoundEnd { epoch: 1 },
            Frame::Commit {
                epoch: 1,
                loads: vec![(0, 3, 3)],
            },
            Frame::Shutdown,
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut cursor = Cursor::new(wire);
        for f in &frames {
            assert_eq!(&read_frame(&mut cursor).unwrap(), f);
        }
    }

    #[test]
    fn decode_rejects_malformed_inputs() {
        assert_eq!(Frame::decode(&[]), Err(FrameError::Truncated));
        assert_eq!(Frame::decode(&[99]), Err(FrameError::BadTag(99)));
        // Truncated payload: declares 2 words, carries none.
        let mut bytes = Frame::Payload {
            epoch: 1,
            src: 0,
            dst: 1,
            words: vec![1, 2],
        }
        .encode();
        bytes.truncate(bytes.len() - 8);
        assert_eq!(Frame::decode(&bytes), Err(FrameError::Truncated));
        // Trailing garbage after a complete frame.
        let mut bytes = Frame::RoundEnd { epoch: 5 }.encode();
        bytes.push(0);
        assert_eq!(Frame::decode(&bytes), Err(FrameError::Trailing(1)));
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_without_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame(&mut Cursor::new(wire)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
