//! The wire format shared by every non-shared-memory backend.
//!
//! A frame is a self-describing unit of transport traffic: payload words for
//! one link, a broadcast slab, a round delimiter, a worker greeting, or a
//! round-commit token. On byte streams (unix sockets) frames travel
//! length-prefixed (`u32` little-endian byte count, then the encoded frame);
//! the channel backend ships the same encoded bytes through per-node queues,
//! so one codec — and one set of round-trip property tests — covers every
//! backend that leaves shared memory.
//!
//! All integers are little-endian. [`Word`]s are transmitted verbatim as 8
//! bytes, so the full 64-bit width survives the wire (property-tested with
//! `Word::MAX`).

use cc_runtime::Word;
use std::fmt;
use std::io::{self, Read, Write};

/// Hard upper bound on one frame's encoded size (1 GiB). A length prefix
/// beyond this is treated as stream corruption rather than honoured with an
/// allocation.
pub const MAX_FRAME_BYTES: usize = 1 << 30;

/// One unit of transport traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Worker → parent greeting identifying the connecting worker process.
    Hello {
        /// Index of the worker in the orchestrator's spawn order.
        worker: u32,
    },
    /// Unicast payload for the `(src, dst)` link in round `epoch`. Words
    /// are in send order; several payload frames for one link concatenate.
    Payload {
        /// Round this payload belongs to.
        epoch: u64,
        /// Sending node.
        src: u32,
        /// Receiving node.
        dst: u32,
        /// The payload words, in send order.
        words: Vec<Word>,
    },
    /// One broadcast slab from `src` in round `epoch`: delivered to every
    /// node (the sender included), charged on each `src → dst` link with
    /// `dst ≠ src`.
    Bcast {
        /// Round this slab belongs to.
        epoch: u64,
        /// Broadcasting node.
        src: u32,
        /// The slab words.
        words: Vec<Word>,
    },
    /// Round delimiter: all of round `epoch`'s traffic has been sent. An
    /// empty round is a `RoundEnd` with no preceding payload frames.
    RoundEnd {
        /// The round being closed.
        epoch: u64,
    },
    /// Round-commit token: the sender has delivered round `epoch` and
    /// reports the per-link word counts it accounted (canonical
    /// `(src, dst, words)` triples). The barrier rendezvous completes when
    /// every peer's commit for the epoch has been collected.
    Commit {
        /// The round being committed.
        epoch: u64,
        /// Per-link `(src, dst, words)` accounting entries.
        loads: Vec<(u32, u32, u64)>,
    },
    /// Orderly teardown: the peer should exit its receive loop.
    Shutdown,
    /// Orchestrator → worker shard assignment: the worker owns nodes
    /// `lo..lo + count` of an `n`-node clique. Sent once at setup on
    /// backends whose workers learn their shard over the wire (TCP).
    Assign {
        /// Index of the worker in the orchestrator's spawn order.
        worker: u32,
        /// First owned node.
        lo: u32,
        /// Number of owned nodes.
        count: u32,
        /// Clique size.
        n: u32,
        /// Orchestrator-forwarded `CC_TRACE` level name (`"off"`,
        /// `"summary"`, `"rounds"`, `"full"`), so remote workers inherit
        /// the trace level without sharing the orchestrator's environment.
        trace: String,
    },
    /// Worker → orchestrator: the address (`host:port`) the worker's peer
    /// listener is bound to, for the orchestrator's routing table.
    PeerAddr {
        /// The reporting worker.
        worker: u32,
        /// The worker's peer-listener address.
        addr: String,
    },
    /// Orchestrator → worker routing table: `addrs[w]` is worker `w`'s
    /// peer-listener address. Workers dial each other directly from this.
    Peers {
        /// Peer-listener addresses, indexed by worker.
        addrs: Vec<String>,
    },
    /// One node program's serialized state. Orchestrator → worker at
    /// resident setup (ship the shard), worker → orchestrator at resident
    /// teardown (collect finals).
    Program {
        /// The node the state belongs to.
        node: u32,
        /// The program's wire state ([`cc_runtime::WireProgram`]).
        state: Vec<Word>,
    },
    /// Orchestrator → workers: begin a program-resident session at `epoch`
    /// running programs of the named registered kind. Followed by one
    /// [`Frame::Program`] per owned node and a [`Frame::RoundEnd`].
    ResidentStart {
        /// Barrier epoch the session's first round will commit.
        epoch: u64,
        /// Registered program kind ([`cc_runtime::ResidentRegistry`]).
        kind: String,
    },
    /// Worker → orchestrator: one resident round is done — the worker
    /// stepped its shard, exchanged payloads peer-to-peer, and accounted
    /// the loads charged to its owned destinations.
    ResidentDone {
        /// The round being committed.
        epoch: u64,
        /// Owned programs still live after stepping this round.
        live: u32,
        /// Encoded payload bytes this worker sent directly to peers this
        /// round (bytes that did **not** transit the orchestrator).
        peer_bytes: u64,
        /// Per-link `(src, dst, words)` accounting entries for owned dsts.
        loads: Vec<(u32, u32, u64)>,
    },
    /// Orchestrator → workers: the resident barrier for `epoch` is
    /// released; `live` is the clique-wide live count after the round.
    /// `live == 0` ends the session (workers return their finals).
    Release {
        /// The round being released.
        epoch: u64,
        /// Clique-wide live programs after this round.
        live: u32,
    },
    /// Worker → orchestrator telemetry snapshot: event lines drained from
    /// the worker's `WireSink` (one `cc_telemetry::event_json` object per
    /// line), piggybacked on commit/teardown traffic so distributed
    /// capture adds no sockets and no barrier semantics. Never sent when
    /// the forwarded trace level is `off`.
    Telemetry {
        /// The reporting worker.
        worker: u32,
        /// Serialized event lines, in emission order.
        lines: Vec<String>,
    },
}

/// Decode-side failure: the bytes are not a well-formed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ended before the frame was complete.
    Truncated,
    /// Bytes remained after a complete frame was decoded.
    Trailing(usize),
    /// Unknown frame tag byte.
    BadTag(u8),
    /// A declared length exceeds [`MAX_FRAME_BYTES`].
    Oversized(u64),
    /// A string field was not valid UTF-8.
    BadString,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::Trailing(n) => write!(f, "{n} trailing bytes after frame"),
            FrameError::BadTag(t) => write!(f, "unknown frame tag {t:#04x}"),
            FrameError::Oversized(n) => write!(f, "declared length {n} exceeds frame cap"),
            FrameError::BadString => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for io::Error {
    fn from(e: FrameError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

const TAG_HELLO: u8 = 0;
const TAG_PAYLOAD: u8 = 1;
const TAG_BCAST: u8 = 2;
const TAG_ROUND_END: u8 = 3;
const TAG_COMMIT: u8 = 4;
const TAG_SHUTDOWN: u8 = 5;
const TAG_ASSIGN: u8 = 6;
const TAG_PEER_ADDR: u8 = 7;
const TAG_PEERS: u8 = 8;
const TAG_PROGRAM: u8 = 9;
const TAG_RESIDENT_START: u8 = 10;
const TAG_RESIDENT_DONE: u8 = 11;
const TAG_RELEASE: u8 = 12;
const TAG_TELEMETRY: u8 = 13;

impl Frame {
    /// Encodes the frame body (no length prefix).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16);
        match self {
            Frame::Hello { worker } => {
                buf.push(TAG_HELLO);
                buf.extend_from_slice(&worker.to_le_bytes());
            }
            Frame::Payload {
                epoch,
                src,
                dst,
                words,
            } => {
                buf.push(TAG_PAYLOAD);
                buf.extend_from_slice(&epoch.to_le_bytes());
                buf.extend_from_slice(&src.to_le_bytes());
                buf.extend_from_slice(&dst.to_le_bytes());
                put_words(&mut buf, words);
            }
            Frame::Bcast { epoch, src, words } => {
                buf.push(TAG_BCAST);
                buf.extend_from_slice(&epoch.to_le_bytes());
                buf.extend_from_slice(&src.to_le_bytes());
                put_words(&mut buf, words);
            }
            Frame::RoundEnd { epoch } => {
                buf.push(TAG_ROUND_END);
                buf.extend_from_slice(&epoch.to_le_bytes());
            }
            Frame::Commit { epoch, loads } => {
                buf.push(TAG_COMMIT);
                buf.extend_from_slice(&epoch.to_le_bytes());
                buf.extend_from_slice(&(loads.len() as u32).to_le_bytes());
                for (src, dst, words) in loads {
                    buf.extend_from_slice(&src.to_le_bytes());
                    buf.extend_from_slice(&dst.to_le_bytes());
                    buf.extend_from_slice(&words.to_le_bytes());
                }
            }
            Frame::Shutdown => buf.push(TAG_SHUTDOWN),
            Frame::Assign {
                worker,
                lo,
                count,
                n,
                trace,
            } => {
                buf.push(TAG_ASSIGN);
                buf.extend_from_slice(&worker.to_le_bytes());
                buf.extend_from_slice(&lo.to_le_bytes());
                buf.extend_from_slice(&count.to_le_bytes());
                buf.extend_from_slice(&n.to_le_bytes());
                put_string(&mut buf, trace);
            }
            Frame::PeerAddr { worker, addr } => {
                buf.push(TAG_PEER_ADDR);
                buf.extend_from_slice(&worker.to_le_bytes());
                put_string(&mut buf, addr);
            }
            Frame::Peers { addrs } => {
                buf.push(TAG_PEERS);
                buf.extend_from_slice(&(addrs.len() as u32).to_le_bytes());
                for addr in addrs {
                    put_string(&mut buf, addr);
                }
            }
            Frame::Program { node, state } => {
                buf.push(TAG_PROGRAM);
                buf.extend_from_slice(&node.to_le_bytes());
                put_words(&mut buf, state);
            }
            Frame::ResidentStart { epoch, kind } => {
                buf.push(TAG_RESIDENT_START);
                buf.extend_from_slice(&epoch.to_le_bytes());
                put_string(&mut buf, kind);
            }
            Frame::ResidentDone {
                epoch,
                live,
                peer_bytes,
                loads,
            } => {
                buf.push(TAG_RESIDENT_DONE);
                buf.extend_from_slice(&epoch.to_le_bytes());
                buf.extend_from_slice(&live.to_le_bytes());
                buf.extend_from_slice(&peer_bytes.to_le_bytes());
                buf.extend_from_slice(&(loads.len() as u32).to_le_bytes());
                for (src, dst, words) in loads {
                    buf.extend_from_slice(&src.to_le_bytes());
                    buf.extend_from_slice(&dst.to_le_bytes());
                    buf.extend_from_slice(&words.to_le_bytes());
                }
            }
            Frame::Release { epoch, live } => {
                buf.push(TAG_RELEASE);
                buf.extend_from_slice(&epoch.to_le_bytes());
                buf.extend_from_slice(&live.to_le_bytes());
            }
            Frame::Telemetry { worker, lines } => {
                buf.push(TAG_TELEMETRY);
                buf.extend_from_slice(&worker.to_le_bytes());
                buf.extend_from_slice(&(lines.len() as u32).to_le_bytes());
                for line in lines {
                    put_string(&mut buf, line);
                }
            }
        }
        buf
    }

    /// Decodes one frame body, requiring the buffer to contain exactly one
    /// frame (no trailing bytes).
    pub fn decode(bytes: &[u8]) -> Result<Frame, FrameError> {
        let mut r = Reader { bytes, pos: 0 };
        let frame = match r.u8()? {
            TAG_HELLO => Frame::Hello { worker: r.u32()? },
            TAG_PAYLOAD => Frame::Payload {
                epoch: r.u64()?,
                src: r.u32()?,
                dst: r.u32()?,
                words: r.words()?,
            },
            TAG_BCAST => Frame::Bcast {
                epoch: r.u64()?,
                src: r.u32()?,
                words: r.words()?,
            },
            TAG_ROUND_END => Frame::RoundEnd { epoch: r.u64()? },
            TAG_COMMIT => {
                let epoch = r.u64()?;
                let n = r.u32()? as usize;
                if n.saturating_mul(16) > MAX_FRAME_BYTES {
                    return Err(FrameError::Oversized(n as u64));
                }
                let mut loads = Vec::with_capacity(n.min(r.remaining() / 16));
                for _ in 0..n {
                    loads.push((r.u32()?, r.u32()?, r.u64()?));
                }
                Frame::Commit { epoch, loads }
            }
            TAG_SHUTDOWN => Frame::Shutdown,
            TAG_ASSIGN => Frame::Assign {
                worker: r.u32()?,
                lo: r.u32()?,
                count: r.u32()?,
                n: r.u32()?,
                trace: r.string()?,
            },
            TAG_PEER_ADDR => Frame::PeerAddr {
                worker: r.u32()?,
                addr: r.string()?,
            },
            TAG_PEERS => {
                let n = r.u32()? as usize;
                if n > MAX_FRAME_BYTES / 4 {
                    return Err(FrameError::Oversized(n as u64));
                }
                let mut addrs = Vec::with_capacity(n.min(r.remaining() / 4));
                for _ in 0..n {
                    addrs.push(r.string()?);
                }
                Frame::Peers { addrs }
            }
            TAG_PROGRAM => Frame::Program {
                node: r.u32()?,
                state: r.words()?,
            },
            TAG_RESIDENT_START => Frame::ResidentStart {
                epoch: r.u64()?,
                kind: r.string()?,
            },
            TAG_RESIDENT_DONE => {
                let epoch = r.u64()?;
                let live = r.u32()?;
                let peer_bytes = r.u64()?;
                let n = r.u32()? as usize;
                if n.saturating_mul(16) > MAX_FRAME_BYTES {
                    return Err(FrameError::Oversized(n as u64));
                }
                let mut loads = Vec::with_capacity(n.min(r.remaining() / 16));
                for _ in 0..n {
                    loads.push((r.u32()?, r.u32()?, r.u64()?));
                }
                Frame::ResidentDone {
                    epoch,
                    live,
                    peer_bytes,
                    loads,
                }
            }
            TAG_RELEASE => Frame::Release {
                epoch: r.u64()?,
                live: r.u32()?,
            },
            TAG_TELEMETRY => {
                let worker = r.u32()?;
                let n = r.u32()? as usize;
                if n > MAX_FRAME_BYTES / 4 {
                    return Err(FrameError::Oversized(n as u64));
                }
                let mut lines = Vec::with_capacity(n.min(r.remaining() / 4));
                for _ in 0..n {
                    lines.push(r.string()?);
                }
                Frame::Telemetry { worker, lines }
            }
            t => return Err(FrameError::BadTag(t)),
        };
        if r.remaining() > 0 {
            return Err(FrameError::Trailing(r.remaining()));
        }
        Ok(frame)
    }
}

fn put_words(buf: &mut Vec<u8>, words: &[Word]) {
    buf.extend_from_slice(&(words.len() as u32).to_le_bytes());
    for w in words {
        buf.extend_from_slice(&w.to_le_bytes());
    }
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&[u8], FrameError> {
        if self.remaining() < n {
            return Err(FrameError::Truncated);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn string(&mut self) -> Result<String, FrameError> {
        let n = self.u32()? as usize;
        if n > MAX_FRAME_BYTES {
            return Err(FrameError::Oversized(n as u64));
        }
        let bytes = self.take(n)?.to_vec();
        String::from_utf8(bytes).map_err(|_| FrameError::BadString)
    }

    fn words(&mut self) -> Result<Vec<Word>, FrameError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(8) > MAX_FRAME_BYTES {
            return Err(FrameError::Oversized(n as u64));
        }
        if self.remaining() < n * 8 {
            return Err(FrameError::Truncated);
        }
        let mut words = Vec::with_capacity(n);
        for _ in 0..n {
            words.push(self.u64()?);
        }
        Ok(words)
    }
}

/// Writes one length-prefixed frame to a byte stream. The caller flushes
/// when the round's traffic is complete.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    let body = frame.encode();
    assert!(body.len() <= MAX_FRAME_BYTES, "frame exceeds wire cap");
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&body)
}

/// Appends one length-prefixed frame to a batch buffer, producing exactly
/// the bytes [`write_frame`] would put on the wire. Batching lets a sender
/// coalesce a whole round's frames into **one** buffer and hand the kernel
/// a single write — the writev-style syscall cut of the socket backend —
/// while the receive side keeps reading frame by frame, none the wiser.
pub fn push_frame(batch: &mut Vec<u8>, frame: &Frame) {
    push_frame_bytes(batch, &frame.encode());
}

/// Appends an already-encoded frame body (from [`Frame::encode`]) to a
/// batch buffer with its length prefix. For senders that encode a frame
/// once and fan it out to several receivers (e.g. broadcast slabs shipped
/// to every worker).
pub fn push_frame_bytes(batch: &mut Vec<u8>, body: &[u8]) {
    assert!(body.len() <= MAX_FRAME_BYTES, "frame exceeds wire cap");
    batch.extend_from_slice(&(body.len() as u32).to_le_bytes());
    batch.extend_from_slice(body);
}

/// Encodes a frame sequence as one contiguous length-prefixed byte batch —
/// bit-identical to writing each frame with [`write_frame`] in order
/// (property-tested in `prop_frames.rs`), so batched and unbatched senders
/// produce the same byte stream.
#[must_use]
pub fn encode_frame_batch(frames: &[Frame]) -> Vec<u8> {
    let mut batch = Vec::new();
    for frame in frames {
        push_frame(&mut batch, frame);
    }
    batch
}

/// Reads one length-prefixed frame from a byte stream.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Frame> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized(len as u64).into());
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Frame::decode(&body).map_err(Into::into)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn codec_round_trips_each_variant() {
        let frames = [
            Frame::Hello { worker: 7 },
            Frame::Payload {
                epoch: 3,
                src: 1,
                dst: 2,
                words: vec![0, 1, Word::MAX],
            },
            Frame::Bcast {
                epoch: u64::MAX,
                src: 0,
                words: vec![],
            },
            Frame::RoundEnd { epoch: 0 },
            Frame::Commit {
                epoch: 9,
                loads: vec![(0, 1, 5), (2, 0, u64::MAX)],
            },
            Frame::Shutdown,
            Frame::Assign {
                worker: 2,
                lo: 8,
                count: 4,
                n: 16,
                trace: "full".to_string(),
            },
            Frame::PeerAddr {
                worker: 1,
                addr: "127.0.0.1:4821".to_string(),
            },
            Frame::Peers {
                addrs: vec!["127.0.0.1:1".to_string(), String::new()],
            },
            Frame::Program {
                node: 5,
                state: vec![Word::MAX, 0, 7],
            },
            Frame::ResidentStart {
                epoch: 11,
                kind: "cc.triangle".to_string(),
            },
            Frame::ResidentDone {
                epoch: 11,
                live: 3,
                peer_bytes: u64::MAX,
                loads: vec![(1, 0, 9)],
            },
            Frame::Release { epoch: 11, live: 0 },
            Frame::Telemetry {
                worker: 1,
                lines: vec![
                    "{\"event\":\"counter\",\"name\":\"c\",\"delta\":1}".to_string(),
                    String::new(),
                ],
            },
        ];
        for f in frames {
            assert_eq!(Frame::decode(&f.encode()), Ok(f.clone()), "{f:?}");
        }
    }

    #[test]
    fn strings_must_be_utf8() {
        let mut bytes = Frame::PeerAddr {
            worker: 0,
            addr: "ab".to_string(),
        }
        .encode();
        let at = bytes.len() - 2;
        bytes[at] = 0xff; // invalid UTF-8 continuation
        bytes[at + 1] = 0xfe;
        assert_eq!(Frame::decode(&bytes), Err(FrameError::BadString));
    }

    #[test]
    fn stream_round_trips_a_frame_sequence() {
        let frames = vec![
            Frame::RoundEnd { epoch: 0 }, // an empty round is just its delimiter
            Frame::Payload {
                epoch: 1,
                src: 0,
                dst: 3,
                words: vec![Word::MAX, 0, 42],
            },
            Frame::RoundEnd { epoch: 1 },
            Frame::Commit {
                epoch: 1,
                loads: vec![(0, 3, 3)],
            },
            Frame::Shutdown,
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut cursor = Cursor::new(wire);
        for f in &frames {
            assert_eq!(&read_frame(&mut cursor).unwrap(), f);
        }
    }

    #[test]
    fn decode_rejects_malformed_inputs() {
        assert_eq!(Frame::decode(&[]), Err(FrameError::Truncated));
        assert_eq!(Frame::decode(&[99]), Err(FrameError::BadTag(99)));
        // Truncated payload: declares 2 words, carries none.
        let mut bytes = Frame::Payload {
            epoch: 1,
            src: 0,
            dst: 1,
            words: vec![1, 2],
        }
        .encode();
        bytes.truncate(bytes.len() - 8);
        assert_eq!(Frame::decode(&bytes), Err(FrameError::Truncated));
        // Trailing garbage after a complete frame.
        let mut bytes = Frame::RoundEnd { epoch: 5 }.encode();
        bytes.push(0);
        assert_eq!(Frame::decode(&bytes), Err(FrameError::Trailing(1)));
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_without_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame(&mut Cursor::new(wire)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
