//! # cc-transport: pluggable message transports for the congested clique
//!
//! Every simulated round ends at a barrier where each node's sends become
//! each node's next inbox and the per-link word counts are charged. This
//! crate makes the fabric carrying that traffic **pluggable**: the
//! [`Transport`] trait covers per-round send/recv, the barrier rendezvous,
//! and per-link word accounting, and three deterministic backends implement
//! it:
//!
//! * [`InMemoryTransport`] — the classical single-process fabric: a
//!   destination-major queue matrix drained by a sharded flush on the
//!   configured [`Executor`]. The reference semantics, and the fastest.
//! * [`ChannelTransport`] — cross-thread message passing: one OS thread and
//!   one MPSC inbox queue per simulated node; the parent feeds encoded
//!   [`Frame`]s into each inbox, and rounds are delimited by an epoch
//!   rendezvous (every node returns its assembled inbox and accounting for
//!   the epoch before the round is charged).
//! * [`SocketTransport`] — true multi-process simulation: a parent
//!   orchestrator spawns `cc-clique-node` worker processes, each owning a
//!   contiguous shard of nodes, and exchanges length-prefixed frames over
//!   unix domain sockets. The round barrier is a round-commit token: the
//!   round completes only when every worker has committed the epoch with
//!   its accounting.
//! * [`TcpTransport`] — the same orchestrator/worker protocol over TCP
//!   (loopback by default, multi-host with an explicit bind address), plus
//!   a **program-resident** mode: [`cc_runtime::WireProgram`] shards are
//!   shipped to the workers once, per-round traffic flows worker→worker
//!   over a direct peer mesh, and the orchestrator's per-round role shrinks
//!   to brokering the barrier (commit tokens and epochs) and collecting
//!   final states — the star becomes a clique.
//!
//! ## Determinism contract
//!
//! For any send pattern, every backend produces the same deliveries, the
//! same canonical `(src, dst)`-ordered [`LinkLoads`], and therefore the same
//! round counts and pattern fingerprints, bit for bit. Backends differ only
//! in *where* the traffic physically travels: thread queues, socket buffers,
//! or shared memory.
//!
//! The backend is chosen through [`TransportKind`]; like the executor's
//! `CC_EXECUTOR`, the `CC_TRANSPORT` environment variable retargets every
//! default-configured simulation in the process
//! ([`TransportKind::from_env_or`]), which is how CI runs the full suite on
//! each fabric.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod fabric;
pub mod frame;
mod inmemory;
mod pending;
mod socket;
mod tcp;
mod traced;

pub use crate::channel::ChannelTransport;
pub use crate::fabric::TransportFabric;
pub use crate::frame::{
    encode_frame_batch, push_frame, push_frame_bytes, read_frame, write_frame, Frame, FrameError,
    MAX_FRAME_BYTES,
};
pub use crate::inmemory::InMemoryTransport;
pub use crate::socket::{worker_main, SocketTransport, DEFAULT_SOCKET_WORKERS};
pub use crate::tcp::{tcp_worker_main, TcpTransport, DEFAULT_TCP_WORKERS};
pub use crate::traced::TracedTransport;

use cc_runtime::{Executor, LinkLoads, ResidentOutcome, Word};
use std::fmt;
use std::net::SocketAddr;
use std::sync::Arc;

/// What one node received at a round barrier.
///
/// Unicast words from each source are concatenated in send order; broadcast
/// slabs keep their per-slab identity (and, on the in-memory backend, their
/// allocation — recipients share the sender's `Arc`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Delivered {
    /// `unicast[src]` — words this node received from `src`, in send order.
    pub unicast: Vec<Vec<Word>>,
    /// `broadcast[src]` — broadcast slabs from `src`, in send order. Every
    /// node receives every slab, the sender included.
    pub broadcast: Vec<Vec<Arc<[Word]>>>,
}

impl Delivered {
    /// An empty delivery for a clique of `n` nodes.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        Self {
            unicast: vec![Vec::new(); n],
            broadcast: vec![Vec::new(); n],
        }
    }
}

/// Everything a round barrier yields: per-node deliveries (node order) and
/// the round's per-link word accounting in canonical `(src, dst)` order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundDelivery {
    /// One [`Delivered`] per node, in node order.
    pub inboxes: Vec<Delivered>,
    /// Canonical `(src, dst)`-ordered link loads; self-links are free and
    /// never appear.
    pub loads: LinkLoads,
}

/// A synchronous-round message fabric for `n` clique nodes.
///
/// Usage is strictly round-structured: any number of [`Transport::send`] /
/// [`Transport::broadcast`] calls queue the current round's traffic, then
/// one [`Transport::finish_round`] executes the barrier — rendezvous with
/// every peer, deliver, account — and advances the epoch. All backends are
/// deterministic: identical call sequences yield identical
/// [`RoundDelivery`]s on every backend.
pub trait Transport: fmt::Debug + Send {
    /// Human-readable backend name (`"inmemory"`, `"channel"`, `"socket"`).
    fn name(&self) -> &'static str;

    /// Number of simulated nodes.
    fn n(&self) -> usize;

    /// Queues `words` on the `(src, dst)` link for the current round.
    /// Payloads for one link concatenate in send order. Self-addressed
    /// traffic (`src == dst`) is delivered but never charged.
    fn send(&mut self, src: usize, dst: usize, words: &[Word]);

    /// Queues `words` on the `(src, dst)` link, taking ownership (backends
    /// may move the buffer instead of copying it).
    fn send_vec(&mut self, src: usize, dst: usize, words: Vec<Word>) {
        self.send(src, dst, &words);
    }

    /// Queues a broadcast slab from `src` for the current round: delivered
    /// to every node (the sender included), charged on every `src → dst`
    /// link with `dst ≠ src`.
    fn broadcast(&mut self, src: usize, slab: Arc<[Word]>);

    /// Executes the round barrier: every peer rendezvous on the current
    /// epoch, queued traffic is delivered, and the round's link loads are
    /// returned in canonical order. Advances the epoch. A round with no
    /// queued traffic is legal and yields empty deliveries and loads.
    fn finish_round(&mut self) -> RoundDelivery;

    /// Rounds completed so far (the current epoch).
    fn epoch(&self) -> u64;

    /// Whether this backend hosts node programs *worker-resident*: program
    /// state ships to the workers once and per-round traffic flows over
    /// direct peer links instead of through the orchestrator. Backends that
    /// return `true` must implement [`Transport::run_resident`].
    fn is_resident(&self) -> bool {
        false
    }

    /// Runs a full program-resident session: ships the encoded `states`
    /// (kind key `kind`, one state per node, node order) to the workers,
    /// drives rounds peer-to-peer until every program halts — invoking
    /// `on_round` with each round's canonical link loads, exactly as the
    /// engine's classical loop would — and returns the final states.
    /// Advances the epoch once per executed round, keeping epoch counts
    /// bit-identical to the star backends. `None` means the backend does
    /// not host programs (the default) and the caller should fall back to
    /// the classical round loop.
    fn run_resident(
        &mut self,
        kind: &str,
        states: Vec<Vec<Word>>,
        on_round: &mut dyn FnMut(&LinkLoads),
    ) -> Option<ResidentOutcome> {
        let _ = (kind, states, on_round);
        None
    }

    /// Total *payload* bytes (encoded `Payload`/`Bcast` frames) the
    /// orchestrating process shipped at round barriers so far. Control
    /// traffic — handshakes, program shards, commit tokens — is excluded,
    /// so a program-resident session reports `0`: its round payloads never
    /// touch the orchestrator. In-process backends report `0` as there is
    /// no wire at all.
    fn orchestrator_bytes(&self) -> u64 {
        0
    }

    /// Accumulated *simulated* time spent at round barriers, in
    /// nanoseconds. `0` on every ordinary backend: real fabrics take the
    /// time they take and report nothing. Only a network-conditioning
    /// wrapper (cc-netsim's `NetsimTransport`) models link latency, and it
    /// accumulates each round's slowest-link completion time here.
    fn sim_time_ns(&self) -> u64 {
        0
    }

    /// Total simulated retransmissions performed by a lossy conditioning
    /// wrapper. `0` on every ordinary backend (real fabrics are reliable
    /// byte streams; loss is a *model*, not an observation).
    fn net_retransmits(&self) -> u64 {
        0
    }

    /// Total simulated node faults (crashes) injected by a conditioning
    /// wrapper. `0` on every ordinary backend.
    fn net_faults(&self) -> u64 {
        0
    }

    /// True when this fabric injects node crash/restart faults, in which
    /// case the engine must drive [`cc_runtime::WireProgram`]s through the
    /// checkpointable classical loop (polling [`Transport::take_crash`]
    /// each round) rather than a resident session it cannot interrupt.
    fn has_fault_plan(&self) -> bool {
        false
    }

    /// Takes the node index the fault plan crashed at the last barrier, if
    /// any. The caller (the engine's recovery loop) responds by re-shipping
    /// that node's serialized program state — see
    /// [`Transport::on_recovery`]. Draining is destructive: a crash is
    /// handled exactly once.
    fn take_crash(&mut self) -> Option<usize> {
        None
    }

    /// Notifies the fabric that `node` was restarted and its re-shipped
    /// program state occupies `state_words` words, letting a conditioning
    /// wrapper charge the recovery's simulated cost. A no-op by default.
    fn on_recovery(&mut self, node: usize, state_words: usize) {
        let _ = (node, state_words);
    }
}

/// Which [`Transport`] backend a simulation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Single-process shared-memory fabric (the reference semantics and the
    /// default): destination-major queues drained by an executor-sharded
    /// flush.
    #[default]
    InMemory,
    /// Cross-thread fabric: one node thread + MPSC inbox queue per node,
    /// rounds delimited by an epoch rendezvous.
    Channel,
    /// Multi-process fabric: `cc-clique-node` worker processes over unix
    /// domain sockets, barrier via per-epoch round-commit tokens.
    Socket {
        /// Worker process count; `0` means [`DEFAULT_SOCKET_WORKERS`]
        /// (clamped to `n`).
        workers: usize,
    },
    /// Multi-process fabric over TCP: the same orchestrator/worker frame
    /// protocol as [`TransportKind::Socket`], host-portable, with an
    /// optional program-resident mode where rounds flow worker→worker over
    /// a direct peer mesh.
    Tcp {
        /// Worker process count; `0` means [`DEFAULT_TCP_WORKERS`]
        /// (clamped to `n`).
        workers: usize,
        /// Program-resident mode (`tcp-peer` / `peer` specs): ship
        /// [`cc_runtime::WireProgram`] shards to the workers and exchange
        /// rounds peer-to-peer, the orchestrator brokering only the
        /// barrier.
        resident: bool,
        /// Explicit orchestrator bind address (multi-host runs); `None`
        /// binds an ephemeral loopback port.
        addr: Option<SocketAddr>,
    },
}

impl TransportKind {
    /// Parses a backend spec: `inmemory`/`memory`/`mem`, `channel`/`mpsc`,
    /// `socket`/`unix` (optionally suffixed `:<workers>` as in `socket:8`),
    /// or `tcp`/`tcp-peer`/`peer` with the grammar
    /// `tcp[:<workers>][:<host>:<port>]` — `tcp`, `tcp:4`,
    /// `tcp:4:10.0.0.1:9000`, `tcp:10.0.0.1:9000`. The `tcp-peer`/`peer`
    /// spellings select the program-resident mode with the same suffix
    /// grammar. `None` for unknown names **or** malformed suffixes —
    /// `socket:banana` must not silently mean "default workers".
    #[must_use]
    pub fn parse(raw: &str) -> Option<Self> {
        let lower = raw.to_ascii_lowercase();
        let (name, rest) = match lower.split_once(':') {
            Some((name, rest)) => (name, Some(rest)),
            None => (lower.as_str(), None),
        };
        match name {
            "inmemory" | "in-memory" | "memory" | "mem" if rest.is_none() => {
                Some(TransportKind::InMemory)
            }
            "channel" | "mpsc" if rest.is_none() => Some(TransportKind::Channel),
            "socket" | "unix" => Some(TransportKind::Socket {
                workers: match rest {
                    Some(w) => w.parse().ok()?,
                    None => 0,
                },
            }),
            "tcp" | "tcp-star" => Self::parse_tcp(rest, false),
            "tcp-peer" | "peer" => Self::parse_tcp(rest, true),
            _ => None,
        }
    }

    /// The `tcp` suffix grammar: nothing, `<workers>`, `<host>:<port>`, or
    /// `<workers>:<host>:<port>` — a first segment that parses as a number
    /// is a worker count, anything else must be a socket address.
    fn parse_tcp(rest: Option<&str>, resident: bool) -> Option<Self> {
        let (workers, addr) = match rest {
            None => (0, None),
            Some(rest) => match rest.split_once(':') {
                None => (rest.parse::<usize>().ok()?, None),
                Some((first, tail)) => match first.parse::<usize>() {
                    Ok(w) => (w, Some(tail.parse::<SocketAddr>().ok()?)),
                    Err(_) => (0, Some(rest.parse::<SocketAddr>().ok()?)),
                },
            },
        };
        Some(TransportKind::Tcp {
            workers,
            resident,
            addr,
        })
    }

    /// Resolves a `CC_TRANSPORT` spec: `None` (unset) resolves to the
    /// fallback, a parseable value to its kind, and a malformed value to an
    /// error carrying the raw spec so the caller can report the
    /// misconfiguration instead of swallowing it. A thin wrapper over the
    /// shared [`cc_runtime::env_config::resolve`].
    pub fn resolve(spec: Option<&str>, fallback: TransportKind) -> Result<Self, String> {
        cc_runtime::env_config::resolve(spec, fallback, Self::parse)
    }

    /// Reads the backend from the `CC_TRANSPORT` environment variable,
    /// falling back to `fallback` when unset. An unrecognised value is a
    /// misconfiguration, not a preference for the default: it is reported
    /// once per process (the shared [`cc_runtime::env_config`] contract)
    /// before falling back.
    #[must_use]
    pub fn from_env_or(fallback: TransportKind) -> Self {
        cc_runtime::env_config::from_env_or(
            "cc-transport",
            "CC_TRANSPORT",
            "inmemory, channel, socket[:workers], or tcp[-peer][:workers][:host:port]",
            fallback,
            Self::parse,
        )
    }

    /// Builds a transport of this kind for `n` nodes. The executor is used
    /// by the in-memory backend to shard its flush; other backends have
    /// their own concurrency (node threads, worker processes) and ignore
    /// it.
    #[must_use]
    pub fn build(self, n: usize, exec: Executor) -> Box<dyn Transport> {
        let inner: Box<dyn Transport> = match self {
            TransportKind::InMemory => Box::new(InMemoryTransport::new(n, exec)),
            TransportKind::Channel => Box::new(ChannelTransport::new(n)),
            TransportKind::Socket { workers } => Box::new(SocketTransport::new(n, workers)),
            TransportKind::Tcp {
                workers,
                resident,
                addr,
            } => Box::new(TcpTransport::new(n, workers, resident, addr)),
        };
        // Observer-only instrumentation: wrapped at build time only when
        // round tracing is on, so untraced runs keep the bare backend.
        if cc_telemetry::global().enabled(cc_telemetry::TraceLevel::Rounds) {
            Box::new(TracedTransport::new(inner))
        } else {
            inner
        }
    }
}

/// Merges per-destination load triples into one canonical [`LinkLoads`]:
/// globally sorted by `(src, dst)`, zero and self entries already excluded
/// by construction of the inputs (and re-filtered by `add`).
pub(crate) fn merge_loads(mut triples: Vec<(usize, usize, usize)>) -> LinkLoads {
    triples.sort_unstable();
    let mut loads = LinkLoads::new();
    for (src, dst, words) in triples {
        loads.add(src, dst, words);
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_accepts_known_names() {
        assert_eq!(
            TransportKind::parse("inmemory"),
            Some(TransportKind::InMemory)
        );
        assert_eq!(TransportKind::parse("MEM"), Some(TransportKind::InMemory));
        assert_eq!(
            TransportKind::parse("channel"),
            Some(TransportKind::Channel)
        );
        assert_eq!(TransportKind::parse("mpsc"), Some(TransportKind::Channel));
        assert_eq!(
            TransportKind::parse("socket"),
            Some(TransportKind::Socket { workers: 0 })
        );
        assert_eq!(
            TransportKind::parse("unix:8"),
            Some(TransportKind::Socket { workers: 8 })
        );
        assert_eq!(
            TransportKind::parse("socket:0"),
            Some(TransportKind::Socket { workers: 0 }),
            "an explicit 0 means the default worker count"
        );
        assert_eq!(TransportKind::parse("telepathy"), None);
    }

    #[test]
    fn parser_accepts_tcp_specs() {
        let tcp = |workers, resident, addr: Option<&str>| TransportKind::Tcp {
            workers,
            resident,
            addr: addr.map(|a| a.parse().unwrap()),
        };
        assert_eq!(TransportKind::parse("tcp"), Some(tcp(0, false, None)));
        assert_eq!(TransportKind::parse("tcp:4"), Some(tcp(4, false, None)));
        assert_eq!(
            TransportKind::parse("tcp:4:10.0.0.1:9000"),
            Some(tcp(4, false, Some("10.0.0.1:9000")))
        );
        assert_eq!(
            TransportKind::parse("tcp:127.0.0.1:9000"),
            Some(tcp(0, false, Some("127.0.0.1:9000")))
        );
        assert_eq!(TransportKind::parse("tcp-peer"), Some(tcp(0, true, None)));
        assert_eq!(TransportKind::parse("peer:3"), Some(tcp(3, true, None)));
        assert_eq!(
            TransportKind::parse("tcp-peer:2:127.0.0.1:7000"),
            Some(tcp(2, true, Some("127.0.0.1:7000")))
        );
        // Malformed suffixes reject the whole spec, same as socket.
        assert_eq!(TransportKind::parse("tcp:banana"), None);
        assert_eq!(TransportKind::parse("tcp:"), None);
        assert_eq!(TransportKind::parse("tcp:4:nothost"), None);
        assert_eq!(TransportKind::parse("tcp:10.0.0.1"), None, "port required");
    }

    #[test]
    fn parser_rejects_malformed_worker_suffixes() {
        // `socket:banana` must not silently mean "default workers" — the
        // whole spec is rejected so `from_env_or` falls back (and warns).
        assert_eq!(TransportKind::parse("socket:banana"), None);
        assert_eq!(TransportKind::parse("socket:"), None, "empty suffix");
        assert_eq!(TransportKind::parse("socket:-1"), None);
        assert_eq!(TransportKind::parse("socket:4x"), None);
        assert_eq!(
            TransportKind::parse("channel:2"),
            None,
            "worker suffixes are socket-only"
        );
    }

    #[test]
    fn resolution_reports_malformed_specs() {
        // Unset and well-formed specs resolve silently; malformed specs
        // surface as errors (from_env_or prints the warning once), never
        // resolve silently to anything.
        let fb = TransportKind::InMemory;
        assert_eq!(TransportKind::resolve(None, fb), Ok(fb));
        assert_eq!(
            TransportKind::resolve(Some("channel"), fb),
            Ok(TransportKind::Channel)
        );
        assert_eq!(
            TransportKind::resolve(Some("sockets"), fb),
            Err("sockets".to_string())
        );
        assert_eq!(TransportKind::resolve(Some(""), fb), Err(String::new()));
    }
}
