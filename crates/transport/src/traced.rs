//! Observer-only instrumentation wrapper applied around any backend when
//! round tracing is enabled.

use crate::{RoundDelivery, Transport};
use cc_runtime::Word;
use cc_telemetry::{Event, LinkHistogram, TraceLevel};
use std::sync::Arc;
use std::time::Instant;

/// Wraps a [`Transport`] and emits one [`Event::TransportRound`] per
/// barrier: link count, words, max-vs-mean skew, a per-link word-count
/// histogram, and the barrier wall-clock. Applied by
/// [`crate::TransportKind::build`] only when the global telemetry handle is
/// enabled at [`TraceLevel::Rounds`], so untraced runs never pay for the
/// wrapper — and the delivery itself is forwarded untouched, keeping the
/// determinism contract trivially intact.
#[derive(Debug)]
pub struct TracedTransport {
    inner: Box<dyn Transport>,
}

impl TracedTransport {
    /// Wraps `inner`.
    #[must_use]
    pub fn new(inner: Box<dyn Transport>) -> Self {
        Self { inner }
    }
}

impl Transport for TracedTransport {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn send(&mut self, src: usize, dst: usize, words: &[Word]) {
        self.inner.send(src, dst, words);
    }

    fn send_vec(&mut self, src: usize, dst: usize, words: Vec<Word>) {
        self.inner.send_vec(src, dst, words);
    }

    fn broadcast(&mut self, src: usize, slab: Arc<[Word]>) {
        self.inner.broadcast(src, slab);
    }

    fn finish_round(&mut self) -> RoundDelivery {
        let start = Instant::now();
        let rd = self.inner.finish_round();
        let barrier_ns = start.elapsed().as_nanos() as u64;

        let tel = cc_telemetry::global();
        tel.emit(TraceLevel::Rounds, || {
            let mut links = 0usize;
            let mut words = 0u64;
            let mut max_link = 0u64;
            let mut hist = LinkHistogram::default();
            for (_, _, w) in rd.loads.iter() {
                let w = w as u64;
                links += 1;
                words += w;
                max_link = max_link.max(w);
                hist.add(w);
            }
            Event::TransportRound {
                backend: self.inner.name(),
                // `finish_round` already advanced the epoch; report the one
                // this barrier committed.
                epoch: self.inner.epoch().saturating_sub(1),
                links,
                words,
                max_link,
                mean_link: if links > 0 {
                    words as f64 / links as f64
                } else {
                    0.0
                },
                barrier_ns,
                hist,
            }
        });
        rd
    }

    fn epoch(&self) -> u64 {
        self.inner.epoch()
    }

    fn is_resident(&self) -> bool {
        self.inner.is_resident()
    }

    fn run_resident(
        &mut self,
        kind: &str,
        states: Vec<Vec<cc_runtime::Word>>,
        on_round: &mut dyn FnMut(&cc_runtime::LinkLoads),
    ) -> Option<cc_runtime::ResidentOutcome> {
        self.inner.run_resident(kind, states, on_round)
    }

    fn orchestrator_bytes(&self) -> u64 {
        self.inner.orchestrator_bytes()
    }

    fn sim_time_ns(&self) -> u64 {
        self.inner.sim_time_ns()
    }

    fn net_retransmits(&self) -> u64 {
        self.inner.net_retransmits()
    }

    fn net_faults(&self) -> u64 {
        self.inner.net_faults()
    }

    fn has_fault_plan(&self) -> bool {
        self.inner.has_fault_plan()
    }

    fn take_crash(&mut self) -> Option<usize> {
        self.inner.take_crash()
    }

    fn on_recovery(&mut self, node: usize, state_words: usize) {
        self.inner.on_recovery(node, state_words);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InMemoryTransport;
    use cc_runtime::Executor;

    #[test]
    fn traced_wrapper_is_delivery_transparent() {
        let exec = Executor::default();
        let mut plain: Box<dyn Transport> = Box::new(InMemoryTransport::new(4, exec.clone()));
        let mut traced: Box<dyn Transport> = Box::new(TracedTransport::new(Box::new(
            InMemoryTransport::new(4, exec),
        )));
        for t in [&mut plain, &mut traced] {
            t.send(0, 1, &[7, 8]);
            t.send(2, 3, &[9]);
            t.broadcast(1, vec![42].into());
        }
        let a = plain.finish_round();
        let b = traced.finish_round();
        assert_eq!(a, b, "wrapper must not perturb deliveries or loads");
        assert_eq!(plain.epoch(), traced.epoch());
        assert_eq!(traced.name(), "inmemory", "name forwards to the backend");
        assert_eq!(traced.n(), 4);
    }
}
