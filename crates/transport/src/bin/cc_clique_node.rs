//! The worker process of the unix-socket transport: simulates a contiguous
//! shard of clique nodes on behalf of an orchestrator (see
//! `cc_transport::SocketTransport`), speaking length-prefixed frames over a
//! unix domain socket.
//!
//! Usage: `cc-clique-node <socket-path> <worker> <lo> <count> <n>`

use std::path::Path;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 6 {
        eprintln!("usage: cc-clique-node <socket-path> <worker> <lo> <count> <n>");
        exit(2);
    }
    let parse = |i: usize| -> usize {
        args[i].parse().unwrap_or_else(|_| {
            eprintln!("cc-clique-node: bad numeric argument {:?}", args[i]);
            exit(2);
        })
    };
    let (worker, lo, count, n) = (parse(2), parse(3), parse(4), parse(5));
    if let Err(e) = cc_transport::worker_main(Path::new(&args[1]), worker as u32, lo, count, n) {
        eprintln!("cc-clique-node worker {worker}: {e}");
        exit(1);
    }
}
