//! The worker process of the multi-process transports: simulates a
//! contiguous shard of clique nodes on behalf of an orchestrator, speaking
//! length-prefixed frames.
//!
//! Usage:
//! * unix-socket star mode (`cc_transport::SocketTransport`):
//!   `cc-clique-node <socket-path> <worker> <lo> <count> <n> [trace]` —
//!   the optional `trace` is the orchestrator-forwarded `CC_TRACE` level
//!   name (defaults to `off`)
//! * TCP star / program-resident mode (`cc_transport::TcpTransport`):
//!   `cc-clique-node tcp://<host>:<port> <worker>` — the shard assignment
//!   and peer routing table arrive over the wire. Only the builtin
//!   registry programs are decodable here; algorithm programs need the
//!   facade's `cc-clique-host` binary.

use std::path::Path;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() >= 2 {
        if let Some(addr) = args[1].strip_prefix("tcp://") {
            if args.len() != 3 {
                eprintln!("usage: cc-clique-node tcp://<host>:<port> <worker>");
                exit(2);
            }
            let worker: u32 = args[2].parse().unwrap_or_else(|_| {
                eprintln!("cc-clique-node: bad worker index {:?}", args[2]);
                exit(2);
            });
            let registry = cc_runtime::ResidentRegistry::with_builtins();
            if let Err(e) = cc_transport::tcp_worker_main(addr, worker, registry) {
                eprintln!("cc-clique-node tcp worker {worker}: {e}");
                exit(1);
            }
            return;
        }
    }
    if args.len() != 6 && args.len() != 7 {
        eprintln!("usage: cc-clique-node <socket-path> <worker> <lo> <count> <n> [trace]");
        exit(2);
    }
    let parse = |i: usize| -> usize {
        args[i].parse().unwrap_or_else(|_| {
            eprintln!("cc-clique-node: bad numeric argument {:?}", args[i]);
            exit(2);
        })
    };
    let (worker, lo, count, n) = (parse(2), parse(3), parse(4), parse(5));
    let trace = args.get(6).map_or("off", String::as_str);
    if let Err(e) =
        cc_transport::worker_main(Path::new(&args[1]), worker as u32, lo, count, n, trace)
    {
        eprintln!("cc-clique-node worker {worker}: {e}");
        exit(1);
    }
}
