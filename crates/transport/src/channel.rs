//! The cross-thread backend: one OS thread and one MPSC inbox queue per
//! simulated node, rounds delimited by an epoch rendezvous.

use crate::frame::Frame;
use crate::pending::Pending;
use crate::{merge_loads, Delivered, RoundDelivery, Transport};
use cc_runtime::Word;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One node's barrier contribution: its id, the epoch it is committing,
/// its assembled delivery, and its per-link accounting (entries
/// `(src, self, words)` in `src` order).
type NodeCommit = (usize, u64, Delivered, Vec<(usize, usize, usize)>);

/// Cross-thread message passing: each simulated node is an OS thread owning
/// an MPSC inbox queue of encoded [`Frame`]s (the same wire format the
/// socket backend puts on the wire, so the codec is exercised on this lane
/// too). Per round, the parent feeds every node its incoming frames and a
/// `RoundEnd` delimiter; each node assembles its delivery and accounting
/// off-thread and answers through a shared commit channel. The round
/// barrier is the **epoch rendezvous**: `finish_round` returns only after
/// all `n` nodes have committed the current epoch, and every frame and
/// commit carries the epoch so a desynchronised round fails loudly instead
/// of silently corrupting a product.
#[derive(Debug)]
pub struct ChannelTransport {
    pending: Pending,
    epoch: u64,
    /// Per-node inbox queues (frame bytes).
    inboxes: Vec<Sender<Vec<u8>>>,
    /// Shared commit channel the rendezvous collects from.
    commits: Receiver<NodeCommit>,
    workers: Vec<JoinHandle<()>>,
    /// Encoded payload/broadcast bytes the parent posted onto node queues —
    /// this backend is star-shaped too, just over thread queues.
    orchestrator_bytes: u64,
}

impl ChannelTransport {
    /// Creates the fabric, spawning one node thread per simulated node.
    /// Threads park on their inbox queue between rounds and are joined on
    /// drop.
    #[must_use]
    pub fn new(n: usize) -> Self {
        let (commit_tx, commits) = mpsc::channel::<NodeCommit>();
        let mut inboxes = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for node in 0..n {
            let (tx, rx) = mpsc::channel::<Vec<u8>>();
            let commit_tx = commit_tx.clone();
            inboxes.push(tx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("cc-node-{node}"))
                    .spawn(move || node_loop(node, n, &rx, &commit_tx))
                    .expect("spawn node thread"),
            );
        }
        Self {
            pending: Pending::new(n),
            epoch: 0,
            inboxes,
            commits,
            workers,
            orchestrator_bytes: 0,
        }
    }

    fn post(&self, node: usize, bytes: Vec<u8>) {
        self.inboxes[node]
            .send(bytes)
            .expect("node thread hung up mid-simulation");
    }

    /// Receives one commit, failing loudly if any node thread has died
    /// instead of committing. A plain blocking `recv` would deadlock here:
    /// with `n ≥ 2` the surviving threads keep the shared commit channel
    /// open, so a single panicked node would leave the rendezvous waiting
    /// forever rather than surfacing the panic.
    fn recv_commit(&self) -> NodeCommit {
        loop {
            match self
                .commits
                .recv_timeout(std::time::Duration::from_millis(50))
            {
                Ok(commit) => return commit,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    for (node, h) in self.workers.iter().enumerate() {
                        assert!(
                            !h.is_finished(),
                            "node thread {node} died before committing the round"
                        );
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    panic!("all node threads died before committing the round")
                }
            }
        }
    }
}

impl Transport for ChannelTransport {
    fn name(&self) -> &'static str {
        "channel"
    }

    fn n(&self) -> usize {
        self.pending.n()
    }

    fn send(&mut self, src: usize, dst: usize, words: &[Word]) {
        self.pending.send(src, dst, words);
    }

    fn send_vec(&mut self, src: usize, dst: usize, words: Vec<Word>) {
        self.pending.send_vec(src, dst, words);
    }

    fn broadcast(&mut self, src: usize, slab: Arc<[Word]>) {
        self.pending.broadcast(src, slab);
    }

    fn finish_round(&mut self) -> RoundDelivery {
        let n = self.pending.n();
        let epoch = self.epoch;
        // Feed every node its incoming links (src order), then the
        // broadcast slabs, then the round delimiter.
        for dst in 0..n {
            for src in 0..n {
                let words = std::mem::take(&mut self.pending.queues[dst * n + src]);
                if words.is_empty() {
                    continue;
                }
                let frame = Frame::Payload {
                    epoch,
                    src: src as u32,
                    dst: dst as u32,
                    words,
                };
                let bytes = frame.encode();
                self.orchestrator_bytes += bytes.len() as u64;
                self.post(dst, bytes);
            }
        }
        for (src, slabs) in self.pending.take_bcasts().into_iter().enumerate() {
            for slab in slabs {
                let bytes = Frame::Bcast {
                    epoch,
                    src: src as u32,
                    words: slab.to_vec(),
                }
                .encode();
                for dst in 0..n {
                    self.orchestrator_bytes += bytes.len() as u64;
                    self.post(dst, bytes.clone());
                }
            }
        }
        let end = Frame::RoundEnd { epoch }.encode();
        for dst in 0..n {
            self.post(dst, end.clone());
        }

        // Epoch rendezvous: every node must commit this round before it is
        // delivered and charged.
        let mut inboxes: Vec<Option<Delivered>> = (0..n).map(|_| None).collect();
        let mut all_loads = Vec::new();
        for _ in 0..n {
            let (node, e, delivered, loads) = self.recv_commit();
            assert_eq!(e, epoch, "node {node} committed a different epoch");
            assert!(inboxes[node].is_none(), "node {node} committed twice");
            inboxes[node] = Some(delivered);
            all_loads.extend(loads);
        }
        self.epoch += 1;
        RoundDelivery {
            inboxes: inboxes
                .into_iter()
                .map(|d| d.expect("every node committed"))
                .collect(),
            loads: merge_loads(all_loads),
        }
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn orchestrator_bytes(&self) -> u64 {
        self.orchestrator_bytes
    }
}

impl Drop for ChannelTransport {
    fn drop(&mut self) {
        let bytes = Frame::Shutdown.encode();
        for tx in &self.inboxes {
            // A node that already exited (e.g. after a panic) has dropped
            // its receiver; that is fine during teardown.
            let _ = tx.send(bytes.clone());
        }
        for h in self.workers.drain(..) {
            if h.join().is_err() && !std::thread::panicking() {
                panic!("channel transport node thread panicked");
            }
        }
    }
}

/// One node's receive loop: buffer the epoch's frames, and on the round
/// delimiter assemble the delivery and accounting and commit.
fn node_loop(me: usize, n: usize, rx: &Receiver<Vec<u8>>, commit: &Sender<NodeCommit>) {
    let mut epoch = 0u64;
    'rounds: loop {
        let mut delivered = Delivered::empty(n);
        loop {
            let Ok(bytes) = rx.recv() else {
                return; // parent dropped the transport
            };
            match Frame::decode(&bytes).expect("malformed frame on node inbox queue") {
                Frame::Payload {
                    epoch: e,
                    src,
                    dst,
                    words,
                } => {
                    assert_eq!(e, epoch, "node {me}: payload from a different epoch");
                    assert_eq!(dst as usize, me, "node {me}: misrouted payload");
                    let lane = &mut delivered.unicast[src as usize];
                    if lane.is_empty() {
                        *lane = words;
                    } else {
                        lane.extend(words);
                    }
                }
                Frame::Bcast {
                    epoch: e,
                    src,
                    words,
                } => {
                    assert_eq!(e, epoch, "node {me}: broadcast from a different epoch");
                    delivered.broadcast[src as usize].push(words.into());
                }
                Frame::RoundEnd { epoch: e } => {
                    assert_eq!(e, epoch, "node {me}: round delimiter epoch mismatch");
                    break;
                }
                Frame::Shutdown => return,
                other => panic!("node {me}: unexpected frame {other:?}"),
            }
        }
        let mut loads = Vec::new();
        for src in 0..n {
            if src == me {
                continue; // self messages are local moves and free
            }
            let words = delivered.unicast[src].len()
                + delivered.broadcast[src]
                    .iter()
                    .map(|s| s.len())
                    .sum::<usize>();
            if words > 0 {
                loads.push((src, me, words));
            }
        }
        if commit.send((me, epoch, delivered, loads)).is_err() {
            break 'rounds; // parent gone
        }
        epoch += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_unicast_and_broadcast_with_inmemory_accounting() {
        let mut t = ChannelTransport::new(4);
        t.send(0, 1, &[1, 2, 3]);
        t.send(0, 1, &[4]); // concatenates in send order
        t.send(2, 2, &[9]); // self: delivered, free
        t.broadcast(3, vec![7, 7].into());
        let rd = t.finish_round();
        assert_eq!(rd.inboxes[1].unicast[0], vec![1, 2, 3, 4]);
        assert_eq!(rd.inboxes[2].unicast[2], vec![9]);
        for dst in 0..4 {
            assert_eq!(rd.inboxes[dst].broadcast[3].len(), 1);
            assert_eq!(&*rd.inboxes[dst].broadcast[3][0], &[7, 7]);
        }
        // Loads: (0,1,4) plus (3,d,2) for d != 3, canonical order.
        let got: Vec<_> = rd.loads.iter().collect();
        assert_eq!(got, vec![(0, 1, 4), (3, 0, 2), (3, 1, 2), (3, 2, 2)]);
        assert_eq!(rd.loads.rounds(), 4);
        assert_eq!(t.epoch(), 1);
    }

    #[test]
    #[should_panic(expected = "died before committing")]
    fn a_dead_node_thread_fails_the_rendezvous_loudly() {
        // The deadlock regression: with n >= 2, one panicked node thread
        // leaves the shared commit channel open (the survivors hold sender
        // clones), so a plain blocking recv would hang the barrier forever.
        // The rendezvous must notice the death and panic instead.
        let mut t = ChannelTransport::new(3);
        t.inboxes[1]
            .send(vec![255, 0, 0]) // garbage frame: node 1 panics on decode
            .unwrap();
        let _ = t.finish_round();
    }

    #[test]
    fn empty_rounds_rendezvous_cleanly() {
        let mut t = ChannelTransport::new(3);
        for expected in 1..=5u64 {
            let rd = t.finish_round();
            assert_eq!(rd.loads.words(), 0);
            assert!(rd
                .inboxes
                .iter()
                .all(|d| d.unicast.iter().all(Vec::is_empty)));
            assert_eq!(t.epoch(), expected);
        }
    }
}
