//! The TCP backend: the socket orchestrator/worker protocol made
//! host-portable, plus the **program-resident** mode that turns the star
//! into a clique.
//!
//! ## Star mode (`CC_TRANSPORT=tcp`)
//!
//! Identical round structure to [`crate::SocketTransport`], with TCP
//! streams instead of unix sockets: the orchestrator ships every round's
//! frames to the workers and collects echoed inbox rows plus per-epoch
//! round-commit tokens. Works across hosts, but every payload still
//! transits the orchestrator.
//!
//! ## Program-resident mode (`CC_TRANSPORT=tcp-peer`)
//!
//! The multi-layer refactor this backend exists for. At setup, each worker
//! binds a *peer listener* and reports its address ([`Frame::PeerAddr`]);
//! the orchestrator answers with the shard assignment ([`Frame::Assign`])
//! and the full routing table ([`Frame::Peers`]). When the engine runs
//! [`cc_runtime::WireProgram`]s, the encoded program states ship to the
//! workers **once** ([`Frame::ResidentStart`] + [`Frame::Program`]); each
//! round the workers step their shards locally, exchange payloads directly
//! over the peer mesh, and the orchestrator's role shrinks to brokering
//! the barrier: collect one [`Frame::ResidentDone`] commit token per
//! worker (carrying the shard's link accounting and live count), merge the
//! loads, release the round ([`Frame::Release`]). When every program has
//! halted the workers return their final states and the engine decodes
//! them — results, rounds, words, and fingerprints bit-identical to every
//! other backend.
//!
//! The peer mesh is established lazily on the first resident session:
//! worker `i` dials every `j < i` from the routing table and accepts from
//! every `j > i`, identifying links with [`Frame::Hello`]. One reader
//! thread per link drains incoming frames into a shared queue, so the
//! blocking batched writes on the send side can never distributed-deadlock.

use crate::frame::{push_frame, push_frame_bytes, read_frame, write_frame, Frame};
use crate::pending::Pending;
use crate::socket::{find_worker_binary, shard};
use crate::{merge_loads, Delivered, RoundDelivery, Transport};
use cc_runtime::{
    step_node, Control, LinkLoads, NodeInbox, ResidentNode, ResidentOutcome, ResidentRegistry, Word,
};
use std::io::{self, BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::{Child, Command};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Default worker-process count when [`crate::TransportKind::Tcp`] has
/// `workers: 0` (clamped to `n`).
pub const DEFAULT_TCP_WORKERS: usize = 2;

/// How long the orchestrator waits for all workers to connect (and workers
/// wait for their peers) before declaring the setup failed.
const ACCEPT_DEADLINE: Duration = Duration::from_secs(30);

/// The TCP orchestrator: spawns (or, with `CC_TCP_EXTERN=1`, waits for)
/// `cc-clique-host` / `cc-clique-node` workers, runs the socket backend's
/// star protocol for classical rounds, and hosts program-resident sessions
/// where per-round traffic bypasses it entirely (see the module docs).
#[derive(Debug)]
pub struct TcpTransport {
    pending: Pending,
    epoch: u64,
    resident: bool,
    workers: Vec<Worker>,
    /// Encoded payload/broadcast bytes shipped through this orchestrator.
    /// Star rounds add every round's traffic; resident rounds add nothing —
    /// that asymmetry is the refactor's measurable win.
    orchestrator_bytes: u64,
    /// Encoded payload bytes exchanged worker→worker across all resident
    /// sessions (reported by the workers' commit tokens).
    peer_bytes: u64,
}

#[derive(Debug)]
struct Worker {
    /// `None` for externally-launched workers (`CC_TCP_EXTERN=1`).
    child: Option<Child>,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Destination shard `[lo, hi)` this worker simulates.
    lo: usize,
    hi: usize,
}

impl Worker {
    /// Reads the next frame during a round barrier, turning an I/O failure
    /// into a diagnosis instead of an opaque error: a worker whose stream
    /// dies mid-barrier has crashed (or been killed), and the whole round
    /// must fail loudly — the remaining workers are released by the
    /// orchestrator's teardown, never left deadlocked on a barrier that
    /// cannot complete.
    fn read_barrier_frame(&mut self, what: &str) -> Frame {
        match read_frame(&mut self.reader) {
            Ok(frame) => frame,
            Err(e) => self.barrier_failure(what, &e),
        }
    }

    /// Ships one coalesced batch, with the same loud diagnosis on failure
    /// (a dead worker surfaces here as a broken pipe).
    fn ship_batch(&mut self, batch: &[u8], what: &str) {
        if let Err(e) = self
            .writer
            .write_all(batch)
            .and_then(|()| self.writer.flush())
        {
            self.barrier_failure(what, &e);
        }
    }

    /// Panics with the worker's exit status when the process is known to be
    /// gone, or the raw I/O error otherwise.
    fn barrier_failure(&mut self, what: &str, e: &io::Error) -> ! {
        let status = self
            .child
            .as_mut()
            .and_then(|c| c.try_wait().ok().flatten());
        match status {
            Some(status) => panic!(
                "tcp worker (shard {}..{}) died mid-barrier ({status}) while the \
                 orchestrator was waiting for {what}: {e}",
                self.lo, self.hi
            ),
            None => panic!(
                "tcp worker (shard {}..{}) became unreachable mid-barrier while the \
                 orchestrator was waiting for {what}: {e}",
                self.lo, self.hi
            ),
        }
    }
}

impl TcpTransport {
    /// Binds the orchestrator listener (an ephemeral loopback port unless
    /// `addr` pins one), launches `workers` worker processes (`0` means
    /// [`DEFAULT_TCP_WORKERS`], clamped to `n`) unless `CC_TCP_EXTERN=1`
    /// defers to externally-run ones, completes the Hello/PeerAddr
    /// handshake, and distributes shard assignments plus the peer routing
    /// table.
    ///
    /// # Panics
    ///
    /// Panics if the worker binary cannot be found or the workers fail to
    /// connect — a broken multi-process setup must fail loudly, not
    /// degrade into a different backend.
    #[must_use]
    pub fn new(n: usize, workers: usize, resident: bool, addr: Option<SocketAddr>) -> Self {
        let w = if workers == 0 {
            DEFAULT_TCP_WORKERS
        } else {
            workers
        }
        .clamp(1, n);
        let bind = addr.unwrap_or_else(|| "127.0.0.1:0".parse().expect("loopback addr"));
        let listener =
            TcpListener::bind(bind).unwrap_or_else(|e| panic!("bind orchestrator {bind}: {e}"));
        let local = listener.local_addr().expect("orchestrator local addr");
        listener
            .set_nonblocking(true)
            .expect("non-blocking accept loop");

        // With CC_TCP_EXTERN=1 the workers are launched out-of-band (other
        // hosts, other shells): print where to point them and wait.
        let external = std::env::var("CC_TCP_EXTERN").is_ok_and(|v| v == "1");
        let mut children: Vec<Option<Child>> = Vec::with_capacity(w);
        if external {
            eprintln!(
                "cc-transport: waiting for {w} external workers; run \
                 `cc-clique-host tcp://{local} <worker-index>` on each host"
            );
            children.resize_with(w, || None);
        } else {
            let bin = find_worker_binary(&["cc-clique-host", "cc-clique-node"]);
            for worker in 0..w {
                let child = Command::new(&bin)
                    .arg(format!("tcp://{local}"))
                    .arg(worker.to_string())
                    .spawn()
                    .unwrap_or_else(|e| panic!("spawn {}: {e}", bin.display()));
                children.push(Some(child));
            }
        }

        // Workers connect in arbitrary order, identify themselves with a
        // Hello frame, and report their peer-listener address.
        let mut slots: Vec<Option<(Worker, String)>> = (0..w).map(|_| None).collect();
        let deadline = Instant::now() + ACCEPT_DEADLINE;
        for _ in 0..w {
            let stream = accept_one(&listener, &mut children, deadline);
            stream.set_nodelay(true).expect("nodelay worker stream");
            stream
                .set_nonblocking(false)
                .expect("blocking worker stream");
            let mut reader = BufReader::new(stream.try_clone().expect("clone worker stream"));
            let writer = BufWriter::new(stream);
            let worker = match read_frame(&mut reader).expect("worker greeting") {
                Frame::Hello { worker } => worker as usize,
                other => panic!("expected Hello from worker, got {other:?}"),
            };
            let peer_addr = match read_frame(&mut reader).expect("worker peer address") {
                Frame::PeerAddr { worker: pw, addr } => {
                    assert_eq!(pw as usize, worker, "PeerAddr for a different worker");
                    addr
                }
                other => panic!("expected PeerAddr from worker, got {other:?}"),
            };
            assert!(worker < w, "worker index {worker} out of range");
            assert!(slots[worker].is_none(), "worker {worker} connected twice");
            let (lo, hi) = shard(n, w, worker);
            slots[worker] = Some((
                Worker {
                    child: children[worker].take(),
                    reader,
                    writer,
                    lo,
                    hi,
                },
                peer_addr,
            ));
        }

        let (mut workers, addrs): (Vec<Worker>, Vec<String>) = slots
            .into_iter()
            .map(|s| s.expect("every worker connected"))
            .unzip();

        // Distribute the shard assignment and the routing table; the peer
        // mesh itself is dialled lazily on the first resident session. The
        // assignment carries the orchestrator's trace level so workers
        // inherit it over the handshake instead of from a (possibly
        // absent) shared environment.
        let trace = cc_telemetry::global().level().name().to_string();
        for (idx, wk) in workers.iter_mut().enumerate() {
            let mut batch = Vec::new();
            push_frame(
                &mut batch,
                &Frame::Assign {
                    worker: idx as u32,
                    lo: wk.lo as u32,
                    count: (wk.hi - wk.lo) as u32,
                    n: n as u32,
                    trace: trace.clone(),
                },
            );
            push_frame(
                &mut batch,
                &Frame::Peers {
                    addrs: addrs.clone(),
                },
            );
            wk.writer
                .write_all(&batch)
                .and_then(|()| wk.writer.flush())
                .expect("ship assignment to worker");
        }

        Self {
            pending: Pending::new(n),
            epoch: 0,
            resident,
            workers,
            orchestrator_bytes: 0,
            peer_bytes: 0,
        }
    }

    /// Total worker→worker payload bytes reported across all resident
    /// sessions so far.
    #[must_use]
    pub fn peer_bytes(&self) -> u64 {
        self.peer_bytes
    }
}

impl Transport for TcpTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn n(&self) -> usize {
        self.pending.n()
    }

    fn send(&mut self, src: usize, dst: usize, words: &[Word]) {
        self.pending.send(src, dst, words);
    }

    fn send_vec(&mut self, src: usize, dst: usize, words: Vec<Word>) {
        self.pending.send_vec(src, dst, words);
    }

    fn broadcast(&mut self, src: usize, slab: Arc<[Word]>) {
        self.pending.broadcast(src, slab);
    }

    fn finish_round(&mut self) -> RoundDelivery {
        // The star round barrier, identical to the socket backend's: ship
        // one coalesced batch per worker, collect echoed rows and commit
        // tokens, reassemble broadcast lanes from the orchestrator's slabs.
        let n = self.pending.n();
        let epoch = self.epoch;
        let bcasts = self.pending.take_bcasts();
        let bcast_frames: Vec<Vec<u8>> = bcasts
            .iter()
            .enumerate()
            .flat_map(|(src, slabs)| {
                slabs.iter().map(move |slab| {
                    Frame::Bcast {
                        epoch,
                        src: src as u32,
                        words: slab.to_vec(),
                    }
                    .encode()
                })
            })
            .collect();

        for wk in &mut self.workers {
            let mut batch = Vec::new();
            let mut frames = 0usize;
            for dst in wk.lo..wk.hi {
                for src in 0..n {
                    let words = std::mem::take(&mut self.pending.queues[dst * n + src]);
                    if words.is_empty() {
                        continue;
                    }
                    let frame = Frame::Payload {
                        epoch,
                        src: src as u32,
                        dst: dst as u32,
                        words,
                    };
                    push_frame(&mut batch, &frame);
                    frames += 1;
                }
            }
            for bytes in &bcast_frames {
                push_frame_bytes(&mut batch, bytes);
                frames += 1;
            }
            // Payload so far, delimiter below: only the former counts as
            // bytes funnelled through the orchestrator.
            self.orchestrator_bytes += batch.len() as u64;
            push_frame(&mut batch, &Frame::RoundEnd { epoch });
            frames += 1;
            cc_telemetry::global().emit(cc_telemetry::TraceLevel::Full, || {
                cc_telemetry::Event::FrameBatch {
                    backend: "tcp",
                    frames,
                    bytes: batch.len(),
                }
            });
            wk.ship_batch(&batch, "a round batch acknowledgement");
        }

        let mut inboxes = vec![Delivered::empty(n); n];
        let mut all_loads = Vec::new();
        let barrier_start = Instant::now();
        for (idx, wk) in self.workers.iter_mut().enumerate() {
            loop {
                match wk.read_barrier_frame("the star round's echoes and commit token") {
                    Frame::Payload {
                        epoch: e,
                        src,
                        dst,
                        words,
                    } => {
                        assert_eq!(e, epoch, "worker echoed a different epoch");
                        let (src, dst) = (src as usize, dst as usize);
                        assert!(
                            (wk.lo..wk.hi).contains(&dst),
                            "worker echoed a destination outside its shard"
                        );
                        let lane = &mut inboxes[dst].unicast[src];
                        if lane.is_empty() {
                            *lane = words;
                        } else {
                            lane.extend(words);
                        }
                    }
                    Frame::Telemetry { worker, lines } => {
                        cc_telemetry::global().merge_worker(worker, &lines);
                    }
                    Frame::Commit { epoch: e, loads } => {
                        assert_eq!(e, epoch, "round-commit token for a different epoch");
                        all_loads.extend(
                            loads
                                .into_iter()
                                .map(|(s, d, w)| (s as usize, d as usize, w as usize)),
                        );
                        cc_telemetry::global().emit(cc_telemetry::TraceLevel::Rounds, || {
                            cc_telemetry::Event::BarrierLane {
                                backend: "tcp",
                                epoch,
                                worker: idx as u32,
                                wall_ns: barrier_start.elapsed().as_nanos() as u64,
                            }
                        });
                        break;
                    }
                    other => panic!("unexpected frame from worker: {other:?}"),
                }
            }
        }

        for delivered in &mut inboxes {
            for (src, slabs) in bcasts.iter().enumerate() {
                if !slabs.is_empty() {
                    delivered.broadcast[src] = slabs.clone();
                }
            }
        }

        self.epoch += 1;
        RoundDelivery {
            inboxes,
            loads: merge_loads(all_loads),
        }
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn is_resident(&self) -> bool {
        self.resident
    }

    fn run_resident(
        &mut self,
        kind: &str,
        states: Vec<Vec<Word>>,
        on_round: &mut dyn FnMut(&LinkLoads),
    ) -> Option<ResidentOutcome> {
        if !self.resident {
            return None;
        }
        let n = self.pending.n();
        assert_eq!(states.len(), n, "one program state per node");
        let mut epoch = self.epoch;

        // Ship phase: each worker receives the session header and its
        // shard's encoded program states, once.
        for wk in &mut self.workers {
            let mut batch = Vec::new();
            push_frame(
                &mut batch,
                &Frame::ResidentStart {
                    epoch,
                    kind: kind.to_string(),
                },
            );
            for (node, state) in states.iter().enumerate().take(wk.hi).skip(wk.lo) {
                push_frame(
                    &mut batch,
                    &Frame::Program {
                        node: node as u32,
                        state: state.clone(),
                    },
                );
            }
            push_frame(&mut batch, &Frame::RoundEnd { epoch });
            wk.ship_batch(&batch, "a resident session start");
        }

        // Barrier-broker loop: one ResidentDone commit token per worker
        // per round, loads merged into the same canonical order every
        // other backend produces, then the Release that lets the next
        // round start. No payload ever crosses this process.
        let mut engine_rounds = 0u64;
        loop {
            let mut all_loads = Vec::new();
            let mut live_total = 0u64;
            let mut round_peer_bytes = 0u64;
            let barrier_start = Instant::now();
            for (idx, wk) in self.workers.iter_mut().enumerate() {
                loop {
                    match wk.read_barrier_frame("a resident round-commit token") {
                        Frame::Telemetry { worker, lines } => {
                            cc_telemetry::global().merge_worker(worker, &lines);
                        }
                        Frame::ResidentDone {
                            epoch: e,
                            live,
                            peer_bytes,
                            loads,
                        } => {
                            assert_eq!(e, epoch, "resident commit for a different epoch");
                            live_total += live as u64;
                            round_peer_bytes += peer_bytes;
                            all_loads.extend(
                                loads
                                    .into_iter()
                                    .map(|(s, d, w)| (s as usize, d as usize, w as usize)),
                            );
                            cc_telemetry::global().emit(cc_telemetry::TraceLevel::Rounds, || {
                                cc_telemetry::Event::BarrierLane {
                                    backend: "tcp",
                                    epoch,
                                    worker: idx as u32,
                                    wall_ns: barrier_start.elapsed().as_nanos() as u64,
                                }
                            });
                            break;
                        }
                        other => panic!("unexpected frame from resident worker: {other:?}"),
                    }
                }
            }
            let loads = merge_loads(all_loads);
            engine_rounds += 1;
            self.peer_bytes += round_peer_bytes;
            cc_telemetry::global().emit(cc_telemetry::TraceLevel::Rounds, || {
                cc_telemetry::Event::ResidentRound {
                    backend: "tcp",
                    epoch,
                    live: live_total,
                    peer_bytes: round_peer_bytes,
                    orchestrator_bytes: 0,
                }
            });
            on_round(&loads);
            let mut release = Vec::new();
            push_frame(
                &mut release,
                &Frame::Release {
                    epoch,
                    live: live_total as u32,
                },
            );
            for wk in &mut self.workers {
                wk.ship_batch(&release, "a round release acknowledgement");
            }
            epoch += 1;
            if live_total == 0 {
                break;
            }
        }

        // Collect finals: each worker returns its shard's encoded states.
        let mut finals: Vec<Vec<Word>> = vec![Vec::new(); n];
        for wk in &mut self.workers {
            let mut got = 0usize;
            loop {
                match wk.read_barrier_frame("the resident session's final states") {
                    Frame::Program { node, state } => {
                        let node = node as usize;
                        assert!(
                            (wk.lo..wk.hi).contains(&node),
                            "final state outside the worker's shard"
                        );
                        finals[node] = state;
                        got += 1;
                    }
                    Frame::Telemetry { worker, lines } => {
                        cc_telemetry::global().merge_worker(worker, &lines);
                    }
                    Frame::RoundEnd { epoch: e } => {
                        assert_eq!(e, epoch, "finals delimiter epoch mismatch");
                        break;
                    }
                    other => panic!("unexpected frame in resident finals: {other:?}"),
                }
            }
            assert_eq!(got, wk.hi - wk.lo, "worker returned a partial shard");
        }

        self.epoch = epoch;
        Some(ResidentOutcome {
            finals,
            engine_rounds,
        })
    }

    fn orchestrator_bytes(&self) -> u64 {
        self.orchestrator_bytes
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        for wk in &mut self.workers {
            let _ = write_frame(&mut wk.writer, &Frame::Shutdown);
            let _ = wk.writer.flush();
        }
        // Drain each stream to EOF before reaping: workers flush their
        // final telemetry snapshot on Shutdown, after all barrier traffic.
        // Anything unparseable (or a stream already dead) just ends the
        // drain — teardown must never fail on observer data.
        for wk in &mut self.workers {
            while let Ok(frame) = read_frame(&mut wk.reader) {
                if let Frame::Telemetry { worker, lines } = frame {
                    cc_telemetry::global().merge_worker(worker, &lines);
                }
            }
        }
        for wk in &mut self.workers {
            if let Some(child) = &mut wk.child {
                let _ = child.wait();
            }
        }
    }
}

/// Accepts one worker connection, polling so a worker that died before
/// connecting is reported instead of hanging the orchestrator forever.
fn accept_one(
    listener: &TcpListener,
    children: &mut [Option<Child>],
    deadline: Instant,
) -> TcpStream {
    loop {
        match listener.accept() {
            Ok((stream, _)) => return stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                for (i, child) in children.iter_mut().enumerate() {
                    if let Some(c) = child {
                        if let Ok(Some(status)) = c.try_wait() {
                            panic!("tcp worker {i} exited before connecting: {status}");
                        }
                    }
                }
                assert!(
                    Instant::now() < deadline,
                    "tcp workers did not connect within {ACCEPT_DEADLINE:?}"
                );
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => panic!("accept worker connection: {e}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// The direct worker→worker links of one worker, plus the shared queue its
/// per-link reader threads drain into. Built lazily on the first resident
/// session and reused for every later one.
#[derive(Debug)]
struct Mesh {
    me: usize,
    /// `writers[j]` — the link to worker `j` (`None` at `me`).
    writers: Vec<Option<BufWriter<TcpStream>>>,
    /// Frames from all peers, tagged with the sending worker. Per-link
    /// FIFO order is preserved (one reader thread per link, one channel
    /// sender each).
    rx: mpsc::Receiver<(usize, io::Result<Frame>)>,
    /// `owner[dst]` — the worker simulating destination `dst`.
    owner: Vec<usize>,
}

impl Mesh {
    /// Establishes the full mesh: dial every lower-indexed peer, accept
    /// every higher-indexed one, identify links by Hello exchange, spawn
    /// one reader thread per link.
    fn connect(peers: &[String], me: usize, n: usize, listener: &TcpListener) -> io::Result<Self> {
        let w = peers.len();
        let (tx, rx) = mpsc::channel();
        let mut writers: Vec<Option<BufWriter<TcpStream>>> = (0..w).map(|_| None).collect();

        // Dial phase: lower-indexed peers are listening already (every
        // worker bound its listener before greeting the orchestrator), and
        // the TCP backlog absorbs dials that land before the peer accepts.
        for (j, addr) in peers.iter().enumerate().take(me) {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            let reader = BufReader::new(stream.try_clone()?);
            let mut writer = BufWriter::new(stream);
            write_frame(&mut writer, &Frame::Hello { worker: me as u32 })?;
            writer.flush()?;
            spawn_link_reader(j, reader, tx.clone());
            writers[j] = Some(writer);
        }

        // Accept phase: higher-indexed peers dial us and identify
        // themselves.
        let deadline = Instant::now() + ACCEPT_DEADLINE;
        for _ in me + 1..w {
            let (stream, _) = poll_accept(listener, deadline)?;
            stream.set_nodelay(true)?;
            let mut reader = BufReader::new(stream.try_clone()?);
            let writer = BufWriter::new(stream);
            let j = match read_frame(&mut reader)? {
                Frame::Hello { worker } => worker as usize,
                other => {
                    return Err(protocol_error(&format!(
                        "expected Hello on peer link, got {other:?}"
                    )))
                }
            };
            check(j < w && j > me && writers[j].is_none(), "bad peer identity")?;
            spawn_link_reader(j, reader, tx.clone());
            writers[j] = Some(writer);
        }

        let owner = (0..w)
            .flat_map(|j| {
                let (lo, hi) = shard(n, w, j);
                std::iter::repeat_n(j, hi - lo)
            })
            .collect();
        Ok(Self {
            me,
            writers,
            rx,
            owner,
        })
    }

    /// Indices of all peer workers (everyone but `me`).
    fn peer_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.writers.len()).filter(move |&j| j != self.me)
    }
}

/// One reader thread per peer link: drains frames into the shared queue so
/// peers' blocking batch writes always complete, whatever order rounds
/// interleave in.
fn spawn_link_reader(
    peer: usize,
    mut reader: BufReader<TcpStream>,
    tx: mpsc::Sender<(usize, io::Result<Frame>)>,
) {
    std::thread::spawn(move || loop {
        match read_frame(&mut reader) {
            Ok(frame) => {
                if tx.send((peer, Ok(frame))).is_err() {
                    return; // session dropped the receiver
                }
            }
            Err(e) => {
                // EOF when the peer exits is normal teardown; report and
                // stop either way.
                let _ = tx.send((peer, Err(e)));
                return;
            }
        }
    });
}

/// Blocking-with-deadline accept on the worker's peer listener.
fn poll_accept(listener: &TcpListener, deadline: Instant) -> io::Result<(TcpStream, SocketAddr)> {
    listener.set_nonblocking(true)?;
    loop {
        match listener.accept() {
            Ok(pair) => {
                listener.set_nonblocking(false)?;
                pair.0.set_nonblocking(false)?;
                return Ok(pair);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "peer did not dial within the accept deadline",
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(e),
        }
    }
}

/// The TCP worker process body: connect to the orchestrator, bind a peer
/// listener and report it, take the shard assignment and routing table,
/// then serve star rounds and program-resident sessions until told to shut
/// down. `addr` is the orchestrator's `host:port` (no scheme prefix);
/// `registry` supplies the decodable program kinds — transport-only
/// binaries pass [`ResidentRegistry::with_builtins`], the facade's
/// `cc-clique-host` registers algorithm programs on top.
pub fn tcp_worker_main(addr: &str, worker: u32, registry: ResidentRegistry) -> io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    // The peer listener binds the interface this worker reaches the
    // orchestrator through, so the advertised address is routable from the
    // other workers in multi-host runs.
    let peer_listener = TcpListener::bind((stream.local_addr()?.ip(), 0))?;
    let peer_addr = peer_listener.local_addr()?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    write_frame(&mut writer, &Frame::Hello { worker })?;
    write_frame(
        &mut writer,
        &Frame::PeerAddr {
            worker,
            addr: peer_addr.to_string(),
        },
    )?;
    writer.flush()?;

    let (lo, count, n, trace) = match read_frame(&mut reader)? {
        Frame::Assign {
            worker: w,
            lo,
            count,
            n,
            trace,
        } => {
            check(w == worker, "assignment for a different worker")?;
            (lo as usize, count as usize, n as usize, trace)
        }
        other => return Err(protocol_error(&format!("expected Assign, got {other:?}"))),
    };
    let peers = match read_frame(&mut reader)? {
        Frame::Peers { addrs } => addrs,
        other => return Err(protocol_error(&format!("expected Peers, got {other:?}"))),
    };
    let wire = install_wire_sink(&trace);

    let mut mesh: Option<Mesh> = None;
    let mut epoch = 0u64;
    loop {
        match read_frame(&mut reader)? {
            Frame::Shutdown => {
                flush_telemetry(&mut writer, worker, wire.as_deref())?;
                return Ok(());
            }
            Frame::ResidentStart { epoch: e, kind } => {
                check(e == epoch, "resident session from a different epoch")?;
                let mesh = match &mut mesh {
                    Some(m) => m,
                    none => none.insert(Mesh::connect(&peers, worker as usize, n, &peer_listener)?),
                };
                epoch = resident_session(
                    &mut reader,
                    &mut writer,
                    mesh,
                    &registry,
                    &kind,
                    epoch,
                    lo,
                    count,
                    n,
                    worker,
                    wire.as_deref(),
                )?;
            }
            first => {
                epoch = star_round(
                    &mut reader,
                    &mut writer,
                    first,
                    epoch,
                    lo,
                    count,
                    n,
                    worker,
                    wire.as_deref(),
                )?;
            }
        }
    }
}

/// Installs the worker's telemetry from the orchestrator-forwarded trace
/// level name: a buffering [`cc_telemetry::WireSink`] when tracing is on
/// (events ship back piggybacked on commits), an explicit Off handle when
/// it isn't — the forwarded spec wins over whatever `CC_TRACE` the worker
/// process inherited, so multi-host workers behave like the orchestrator.
/// First-install-wins still applies: if the worker process already
/// initialised telemetry (in-process tests), the existing handle stays and
/// no events ship.
pub(crate) fn install_wire_sink(trace: &str) -> Option<Arc<cc_telemetry::WireSink>> {
    let level = cc_telemetry::TraceSpec::parse(trace)
        .map(|spec| spec.level)
        .unwrap_or_default();
    if level == cc_telemetry::TraceLevel::Off {
        let _ = cc_telemetry::install(cc_telemetry::Telemetry::off());
        return None;
    }
    let wire = Arc::new(cc_telemetry::WireSink::new());
    match cc_telemetry::install(cc_telemetry::Telemetry::with_sink(level, wire.clone())) {
        Ok(()) => Some(wire),
        Err(_) => None, // someone beat us to it; don't ship a dead buffer
    }
}

/// Appends one `Frame::Telemetry` carrying the wire sink's drained lines
/// to `batch`, if there is anything to ship. Returns without touching the
/// batch when tracing is off or nothing was captured, so an untraced run
/// puts zero extra bytes on the wire.
pub(crate) fn push_telemetry(
    batch: &mut Vec<u8>,
    worker: u32,
    wire: Option<&cc_telemetry::WireSink>,
) {
    let Some(wire) = wire else { return };
    if wire.is_empty() {
        return;
    }
    push_frame(
        batch,
        &Frame::Telemetry {
            worker,
            lines: wire.drain(),
        },
    );
}

/// Writes the final telemetry flush directly to the orchestrator stream
/// (the Shutdown path, where no batch is being assembled).
fn flush_telemetry(
    writer: &mut BufWriter<TcpStream>,
    worker: u32,
    wire: Option<&cc_telemetry::WireSink>,
) -> io::Result<()> {
    let mut batch = Vec::new();
    push_telemetry(&mut batch, worker, wire);
    if batch.is_empty() {
        return Ok(());
    }
    writer.write_all(&batch)?;
    writer.flush()
}

/// One classical star round, primed with the already-read `first` frame:
/// buffer the epoch's frames, assemble the owned shard's inbox rows and
/// accounting, echo the rows, commit the epoch. Identical semantics to the
/// unix-socket worker loop.
#[allow(clippy::too_many_arguments)]
fn star_round(
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    first: Frame,
    epoch: u64,
    lo: usize,
    count: usize,
    n: usize,
    worker: u32,
    wire: Option<&cc_telemetry::WireSink>,
) -> io::Result<u64> {
    // rows[(dst - lo) * n + src]: assembled unicast lanes for the shard.
    let mut rows: Vec<Vec<Word>> = vec![Vec::new(); count * n];
    let mut bcast_words = vec![0usize; n];
    let mut frame = first;
    loop {
        match frame {
            Frame::Payload {
                epoch: e,
                src,
                dst,
                words,
            } => {
                check(e == epoch, "payload from a different epoch")?;
                let (src, dst) = (src as usize, dst as usize);
                check(
                    src < n && (lo..lo + count).contains(&dst),
                    "misrouted payload",
                )?;
                let lane = &mut rows[(dst - lo) * n + src];
                if lane.is_empty() {
                    *lane = words;
                } else {
                    lane.extend(words);
                }
            }
            Frame::Bcast {
                epoch: e,
                src,
                words,
            } => {
                check(e == epoch, "broadcast from a different epoch")?;
                check((src as usize) < n, "broadcast source out of range")?;
                bcast_words[src as usize] += words.len();
            }
            Frame::RoundEnd { epoch: e } => {
                check(e == epoch, "round delimiter epoch mismatch")?;
                break;
            }
            other => return Err(protocol_error(&format!("unexpected frame {other:?}"))),
        }
        frame = read_frame(reader)?;
    }

    let mut loads: Vec<(u32, u32, u64)> = Vec::new();
    let mut batch = Vec::new();
    let mut echoed = 0usize;
    for d in 0..count {
        let dst = lo + d;
        for src in 0..n {
            let row = std::mem::take(&mut rows[d * n + src]);
            let charged = if src == dst {
                0 // self messages are local moves and free
            } else {
                row.len() + bcast_words[src]
            };
            if !row.is_empty() {
                let frame = Frame::Payload {
                    epoch,
                    src: src as u32,
                    dst: dst as u32,
                    words: row,
                };
                push_frame(&mut batch, &frame);
                echoed += 1;
            }
            if charged > 0 {
                loads.push((src as u32, dst as u32, charged as u64));
            }
        }
    }
    // Account the echo batch in the worker's own event stream, then ship
    // telemetry *before* the commit token: the orchestrator's barrier
    // loop merges telemetry frames and breaks on the commit, so the
    // snapshot rides the same rendezvous with no extra read.
    let commit_body = Frame::Commit { epoch, loads }.encode();
    cc_telemetry::global().emit(cc_telemetry::TraceLevel::Full, || {
        cc_telemetry::Event::FrameBatch {
            backend: "tcp",
            frames: echoed + 1,
            bytes: batch.len() + commit_body.len() + 4,
        }
    });
    push_telemetry(&mut batch, worker, wire);
    push_frame_bytes(&mut batch, &commit_body);
    writer.write_all(&batch)?;
    writer.flush()?;
    Ok(epoch + 1)
}

/// One full program-resident session: decode the shipped shard, then per
/// round — step the owned programs exactly as the engine steps them,
/// exchange payloads directly with the peer workers, account the owned
/// destinations' loads with the engine's formula, commit with a
/// [`Frame::ResidentDone`] token, and wait for the orchestrator's
/// [`Frame::Release`] — until the clique-wide live count hits zero, then
/// return the final encoded states. Returns the epoch after the session.
#[allow(clippy::too_many_arguments)]
fn resident_session(
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    mesh: &mut Mesh,
    registry: &ResidentRegistry,
    kind: &str,
    mut epoch: u64,
    lo: usize,
    count: usize,
    n: usize,
    worker: u32,
    wire: Option<&cc_telemetry::WireSink>,
) -> io::Result<u64> {
    // Receive the shard: one encoded program per owned node.
    let mut programs: Vec<Option<Box<dyn ResidentNode>>> = (0..count).map(|_| None).collect();
    loop {
        match read_frame(reader)? {
            Frame::Program { node, state } => {
                let node = node as usize;
                check(
                    (lo..lo + count).contains(&node),
                    "program outside the owned shard",
                )?;
                let program = registry.decode(kind, node, n, &state).ok_or_else(|| {
                    protocol_error(&format!(
                        "unknown resident program kind {kind:?}; register it in the worker binary"
                    ))
                })?;
                programs[node - lo] = Some(program);
            }
            Frame::RoundEnd { epoch: e } => {
                check(e == epoch, "resident ship delimiter epoch mismatch")?;
                break;
            }
            other => return Err(protocol_error(&format!("unexpected frame {other:?}"))),
        }
    }
    let mut programs: Vec<Box<dyn ResidentNode>> = programs
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            p.ok_or_else(|| protocol_error(&format!("missing program for node {}", lo + i)))
        })
        .collect::<io::Result<_>>()?;

    let mut halted = vec![false; count];
    let mut inboxes: Vec<NodeInbox> = (0..count)
        .map(|_| NodeInbox::from_parts(vec![Vec::new(); n], vec![Vec::new(); n]))
        .collect();
    let mut round = 0u64;
    loop {
        // Step phase: exactly the engine's loop — halted programs produce
        // empty outboxes, a program's same-round sends are delivered even
        // when it halts this round.
        let mut outboxes = Vec::with_capacity(count);
        for (i, program) in programs.iter_mut().enumerate() {
            if halted[i] {
                outboxes.push(Default::default());
                continue;
            }
            let (control, outbox) = step_node(program.as_mut(), lo + i, n, round, &inboxes[i]);
            if control == Control::Halt {
                halted[i] = true;
            }
            outboxes.push(outbox);
        }
        let live_local = halted.iter().filter(|&&h| !h).count();
        round += 1;

        // Exchange phase: owned-destination traffic lands locally, the
        // rest ships straight to the owning peer; broadcasts ship to every
        // peer and apply locally to the whole owned shard.
        let mut rows: Vec<Vec<Word>> = vec![Vec::new(); count * n];
        let mut bcast_words = vec![0usize; n];
        let mut bcast_slabs: Vec<Vec<Arc<[Word]>>> = vec![Vec::new(); n];
        let mut batches: Vec<Vec<u8>> = vec![Vec::new(); mesh.writers.len()];
        let mut batch_frames = vec![0usize; mesh.writers.len()];
        for (i, outbox) in outboxes.into_iter().enumerate() {
            let src = lo + i;
            let (unicast, broadcast) = outbox.into_parts();
            for (dst, words) in unicast {
                if (lo..lo + count).contains(&dst) {
                    let lane = &mut rows[(dst - lo) * n + src];
                    if lane.is_empty() {
                        *lane = words;
                    } else {
                        lane.extend(words);
                    }
                } else {
                    push_frame(
                        &mut batches[mesh.owner[dst]],
                        &Frame::Payload {
                            epoch,
                            src: src as u32,
                            dst: dst as u32,
                            words,
                        },
                    );
                    batch_frames[mesh.owner[dst]] += 1;
                }
            }
            for slab in broadcast {
                bcast_words[src] += slab.len();
                let bytes = Frame::Bcast {
                    epoch,
                    src: src as u32,
                    words: slab.to_vec(),
                }
                .encode();
                for j in mesh.peer_indices() {
                    push_frame_bytes(&mut batches[j], &bytes);
                    batch_frames[j] += 1;
                }
                bcast_slabs[src].push(slab);
            }
        }
        let mut peer_bytes = 0u64;
        for j in mesh.peer_indices() {
            push_frame(&mut batches[j], &Frame::RoundEnd { epoch });
            batch_frames[j] += 1;
            peer_bytes += batches[j].len() as u64;
        }
        for (j, batch) in batches.iter().enumerate() {
            if j == mesh.me {
                continue;
            }
            let w = mesh.writers[j].as_mut().expect("mesh link");
            w.write_all(batch)?;
            w.flush()?;
            cc_telemetry::global().emit(cc_telemetry::TraceLevel::Full, || {
                cc_telemetry::Event::FrameBatch {
                    backend: "tcp",
                    frames: batch_frames[j],
                    bytes: batch.len(),
                }
            });
        }

        // Drain peers until every link has delimited the round. The
        // Release barrier guarantees no peer can be a round ahead, so
        // every frame seen here belongs to this epoch.
        let mut ends = 0usize;
        let peer_count = mesh.writers.len() - 1;
        while ends < peer_count {
            let (_peer, frame) = mesh
                .rx
                .recv()
                .map_err(|_| protocol_error("peer mesh closed mid-round"))?;
            match frame? {
                Frame::Payload {
                    epoch: e,
                    src,
                    dst,
                    words,
                } => {
                    check(e == epoch, "peer payload from a different epoch")?;
                    let (src, dst) = (src as usize, dst as usize);
                    check(
                        src < n && (lo..lo + count).contains(&dst),
                        "misrouted peer payload",
                    )?;
                    let lane = &mut rows[(dst - lo) * n + src];
                    if lane.is_empty() {
                        *lane = words;
                    } else {
                        lane.extend(words);
                    }
                }
                Frame::Bcast {
                    epoch: e,
                    src,
                    words,
                } => {
                    check(e == epoch, "peer broadcast from a different epoch")?;
                    let src = src as usize;
                    check(src < n, "peer broadcast source out of range")?;
                    bcast_words[src] += words.len();
                    bcast_slabs[src].push(words.into());
                }
                Frame::RoundEnd { epoch: e } => {
                    check(e == epoch, "peer round delimiter epoch mismatch")?;
                    ends += 1;
                }
                other => return Err(protocol_error(&format!("unexpected peer frame {other:?}"))),
            }
        }

        // Accounting: the engine's per-link formula over the owned
        // destinations (self links free, broadcast charged on every
        // outgoing link of its source).
        let mut loads: Vec<(u32, u32, u64)> = Vec::new();
        for d in 0..count {
            let dst = lo + d;
            for src in 0..n {
                let charged = if src == dst {
                    0
                } else {
                    rows[d * n + src].len() + bcast_words[src]
                };
                if charged > 0 {
                    loads.push((src as u32, dst as u32, charged as u64));
                }
            }
        }

        // Next round's inboxes: per-source unicast lanes plus the full
        // broadcast lane set (every node hears every slab, sender
        // included) — the same shape `Delivered` carries on the star
        // backends.
        for d in 0..count {
            let unicast: Vec<Vec<Word>> = (0..n)
                .map(|src| std::mem::take(&mut rows[d * n + src]))
                .collect();
            inboxes[d] = NodeInbox::from_parts(unicast, bcast_slabs.clone());
        }

        // The worker's own view of the round: its shard's live count and
        // the bytes it pushed into the mesh.
        cc_telemetry::global().emit(cc_telemetry::TraceLevel::Rounds, || {
            cc_telemetry::Event::ResidentRound {
                backend: "tcp",
                epoch,
                live: live_local as u64,
                peer_bytes,
                orchestrator_bytes: 0,
            }
        });
        // Commit the round and wait for the clique-wide barrier release;
        // buffered telemetry rides just ahead of the commit token.
        let mut commit = Vec::new();
        push_telemetry(&mut commit, worker, wire);
        push_frame(
            &mut commit,
            &Frame::ResidentDone {
                epoch,
                live: live_local as u32,
                peer_bytes,
                loads,
            },
        );
        writer.write_all(&commit)?;
        writer.flush()?;
        let live_total = match read_frame(reader)? {
            Frame::Release { epoch: e, live } => {
                check(e == epoch, "release for a different epoch")?;
                live
            }
            other => return Err(protocol_error(&format!("expected Release, got {other:?}"))),
        };
        epoch += 1;
        if live_total == 0 {
            break;
        }
    }

    // Teardown: return the shard's final states, with any telemetry
    // captured since the last commit riding ahead of the delimiter.
    let mut batch = Vec::new();
    for (i, program) in programs.iter().enumerate() {
        push_frame(
            &mut batch,
            &Frame::Program {
                node: (lo + i) as u32,
                state: program.encode_state(),
            },
        );
    }
    push_telemetry(&mut batch, worker, wire);
    push_frame(&mut batch, &Frame::RoundEnd { epoch });
    writer.write_all(&batch)?;
    writer.flush()?;
    Ok(epoch)
}

fn check(ok: bool, msg: &str) -> io::Result<()> {
    if ok {
        Ok(())
    } else {
        Err(protocol_error(msg))
    }
}

fn protocol_error(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransportFabric;
    use cc_runtime::{EchoRingProgram, Engine, ExecutorKind, Fabric as _};

    fn run_echo_ring(fabric: &mut dyn cc_runtime::Fabric, n: usize) -> (Vec<Vec<Word>>, u64, u64) {
        let engine = Engine::new(ExecutorKind::Sequential);
        let mut loads_log = Vec::new();
        let report = engine.run_wire_traced_on(
            fabric,
            (0..n).map(|_| EchoRingProgram::new(3)).collect(),
            |loads: &LinkLoads| loads_log.push(format!("{:?}", loads.iter().collect::<Vec<_>>())),
        );
        let logs = report.programs.iter().map(|p| p.log().to_vec()).collect();
        assert!(!loads_log.is_empty());
        (logs, report.rounds, report.words)
    }

    #[test]
    fn tcp_star_matches_inmemory() {
        let n = 5;
        let mut reference =
            cc_runtime::EngineFabric::new(cc_runtime::Executor::new(ExecutorKind::Sequential));
        let expected = run_echo_ring(&mut reference, n);

        let mut transport = TcpTransport::new(n, 2, false, None);
        let mut fabric = TransportFabric::new(&mut transport);
        assert!(!fabric.is_resident());
        let got = run_echo_ring(&mut fabric, n);
        assert_eq!(got, expected);
        assert!(
            transport.orchestrator_bytes() > 0,
            "star rounds funnel payloads through the orchestrator"
        );
    }

    #[test]
    fn tcp_resident_matches_inmemory_and_bypasses_the_orchestrator() {
        let n = 5;
        let mut reference =
            cc_runtime::EngineFabric::new(cc_runtime::Executor::new(ExecutorKind::Sequential));
        let expected = run_echo_ring(&mut reference, n);

        let mut transport = TcpTransport::new(n, 3, true, None);
        let mut fabric = TransportFabric::new(&mut transport);
        assert!(fabric.is_resident());
        let got = run_echo_ring(&mut fabric, n);
        assert_eq!(got, expected, "resident results/rounds/words identical");
        assert_eq!(
            transport.orchestrator_bytes(),
            0,
            "no payload crossed the orchestrator"
        );
        assert!(
            transport.peer_bytes() > 0,
            "payloads travelled worker→worker"
        );
        // Epoch parity with the star backends: one epoch per engine round.
        let star_epochs = {
            let mut star = TcpTransport::new(n, 2, false, None);
            let mut fabric = TransportFabric::new(&mut star);
            run_echo_ring(&mut fabric, n);
            star.epoch()
        };
        assert_eq!(transport.epoch(), star_epochs);
    }

    #[test]
    fn killed_worker_fails_the_round_barrier_loudly() {
        let n = 6;
        let mut transport = TcpTransport::new(n, 2, false, None);
        // A warm round proves the fabric works before the sabotage.
        transport.send(0, 1, &[1, 2]);
        let _ = transport.finish_round();

        // Kill worker 0's process and reap it, so the next barrier meets a
        // dead stream rather than a slow worker.
        let child = transport.workers[0]
            .child
            .as_mut()
            .expect("spawned workers carry a child handle");
        child.kill().expect("kill tcp worker");
        let _ = child.wait();

        transport.send(0, 1, &[3]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = transport.finish_round();
        }));
        // The regression this pins: the barrier must fail with a diagnosis,
        // not hang waiting for a commit token that can never arrive (the
        // test harness itself would time out) and not report an opaque
        // broken-pipe error.
        let payload = result.expect_err("a dead worker must fail the barrier");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .expect("panic payload is a message");
        assert!(
            msg.contains("mid-barrier"),
            "barrier failure must diagnose the dead worker: {msg}"
        );
    }

    #[test]
    fn tcp_resident_single_worker_degenerates_gracefully() {
        // w clamps to 1 ⇒ no peer links at all; everything is local and
        // the orchestrator still only brokers the barrier.
        let n = 3;
        let mut transport = TcpTransport::new(n, 1, true, None);
        let engine = Engine::new(ExecutorKind::Sequential);
        let mut fabric = TransportFabric::new(&mut transport);
        let report = engine.run_wire_traced_on(
            &mut fabric,
            (0..n).map(|_| EchoRingProgram::new(2)).collect(),
            |_: &LinkLoads| {},
        );
        let mut reference =
            cc_runtime::EngineFabric::new(cc_runtime::Executor::new(ExecutorKind::Sequential));
        let expected = engine.run_wire_traced_on(
            &mut reference,
            (0..n).map(|_| EchoRingProgram::new(2)).collect(),
            |_: &LinkLoads| {},
        );
        for (a, b) in report.programs.iter().zip(&expected.programs) {
            assert_eq!(a.log(), b.log());
        }
        assert_eq!(report.rounds, expected.rounds);
        assert_eq!(transport.orchestrator_bytes(), 0);
    }
}
