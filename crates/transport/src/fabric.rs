//! Adapter plugging a [`Transport`] into the runtime engine's round barrier.

use crate::Transport;
use cc_runtime::{Fabric, LinkLoads, NodeInbox, NodeOutbox, ResidentOutcome, Word};

/// Routes [`cc_runtime::Engine`] round barriers through a [`Transport`]:
/// each engine round's outboxes are shipped onto the fabric, the barrier is
/// the transport's round rendezvous, and the returned accounting comes from
/// the transport's per-link word counts. On the in-memory backend this is
/// behaviourally identical to the engine's built-in
/// [`cc_runtime::EngineFabric`] (same loads, same inbox assembly, shared
/// broadcast slabs); on channel and socket backends the same program
/// traffic physically crosses thread queues or process boundaries.
#[derive(Debug)]
pub struct TransportFabric<'a> {
    transport: &'a mut dyn Transport,
}

impl<'a> TransportFabric<'a> {
    /// Wraps a transport for the duration of one engine run.
    #[must_use]
    pub fn new(transport: &'a mut dyn Transport) -> Self {
        Self { transport }
    }
}

impl Fabric for TransportFabric<'_> {
    fn deliver_round(
        &mut self,
        n: usize,
        outboxes: Vec<NodeOutbox>,
    ) -> (Vec<NodeInbox>, LinkLoads) {
        assert_eq!(n, self.transport.n(), "engine and transport disagree on n");
        for (src, outbox) in outboxes.into_iter().enumerate() {
            let (unicast, broadcast) = outbox.into_parts();
            for (dst, words) in unicast {
                self.transport.send_vec(src, dst, words);
            }
            for slab in broadcast {
                self.transport.broadcast(src, slab);
            }
        }
        let round = self.transport.finish_round();
        let inboxes = round
            .inboxes
            .into_iter()
            .map(|d| NodeInbox::from_parts(d.unicast, d.broadcast))
            .collect();
        (inboxes, round.loads)
    }

    fn is_resident(&self) -> bool {
        self.transport.is_resident()
    }

    fn run_resident(
        &mut self,
        kind: &str,
        states: Vec<Vec<Word>>,
        on_round: &mut dyn FnMut(&LinkLoads),
    ) -> Option<ResidentOutcome> {
        self.transport.run_resident(kind, states, on_round)
    }

    fn has_fault_plan(&self) -> bool {
        self.transport.has_fault_plan()
    }

    fn take_crash(&mut self) -> Option<usize> {
        self.transport.take_crash()
    }

    fn on_recovery(&mut self, node: usize, state_words: usize) {
        self.transport.on_recovery(node, state_words);
    }
}
