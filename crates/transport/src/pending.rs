//! The parent-side buffer accumulating one round's outgoing traffic.

use cc_runtime::Word;
use std::sync::Arc;

/// One round's queued traffic, laid out exactly like the historical
/// `Network`: a destination-major `n × n` queue matrix
/// (`queues[dst * n + src]`) so one destination's incoming links occupy a
/// contiguous block, plus per-source broadcast slab lists. The outer
/// allocations persist across rounds; the barrier drains entries in place.
#[derive(Debug)]
pub(crate) struct Pending {
    n: usize,
    /// `queues[dst * n + src]` (destination-major).
    pub(crate) queues: Vec<Vec<Word>>,
    /// `bcasts[src]` — broadcast slabs queued by `src`, in send order.
    pub(crate) bcasts: Vec<Vec<Arc<[Word]>>>,
}

impl Pending {
    pub(crate) fn new(n: usize) -> Self {
        assert!(n >= 1, "transport needs at least one node");
        Self {
            n,
            queues: vec![Vec::new(); n * n],
            bcasts: vec![Vec::new(); n],
        }
    }

    pub(crate) fn n(&self) -> usize {
        self.n
    }

    pub(crate) fn send(&mut self, src: usize, dst: usize, words: &[Word]) {
        self.check(src, dst);
        self.queues[dst * self.n + src].extend_from_slice(words);
    }

    pub(crate) fn send_vec(&mut self, src: usize, dst: usize, words: Vec<Word>) {
        self.check(src, dst);
        let q = &mut self.queues[dst * self.n + src];
        if q.is_empty() {
            *q = words;
        } else {
            q.extend(words);
        }
    }

    pub(crate) fn broadcast(&mut self, src: usize, slab: Arc<[Word]>) {
        assert!(src < self.n, "node index out of range (n={})", self.n);
        if !slab.is_empty() {
            self.bcasts[src].push(slab);
        }
    }

    /// Per-source broadcast word totals (what each slab set charges on
    /// every outgoing link).
    pub(crate) fn bcast_words(&self) -> Vec<usize> {
        self.bcasts
            .iter()
            .map(|slabs| slabs.iter().map(|s| s.len()).sum())
            .collect()
    }

    /// Removes and returns the queued broadcast slabs, leaving the buffer
    /// ready for the next round.
    pub(crate) fn take_bcasts(&mut self) -> Vec<Vec<Arc<[Word]>>> {
        std::mem::replace(&mut self.bcasts, vec![Vec::new(); self.n])
    }

    fn check(&self, src: usize, dst: usize) {
        assert!(
            src < self.n && dst < self.n,
            "node index out of range (n={})",
            self.n
        );
    }
}
