//! The multi-process backend: a parent orchestrator and `cc-clique-node`
//! worker processes exchanging length-prefixed frames over unix sockets.

use crate::frame::{push_frame, push_frame_bytes, read_frame, write_frame, Frame};
use crate::pending::Pending;
use crate::{merge_loads, Delivered, RoundDelivery, Transport};
use cc_runtime::Word;
use std::io::{self, BufReader, BufWriter, Write as _};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default worker-process count when [`crate::TransportKind::Socket`] has
/// `workers: 0` (clamped to `n`). Two processes is the cheapest
/// configuration that still exercises every cross-process code path; raise
/// it (`CC_TRANSPORT=socket:8`) to spread node shards wider.
pub const DEFAULT_SOCKET_WORKERS: usize = 2;

/// How long the orchestrator waits for all workers to connect before
/// declaring the spawn failed.
const ACCEPT_DEADLINE: Duration = Duration::from_secs(30);

/// True multi-process simulation: the orchestrator spawns `cc-clique-node`
/// worker processes, each simulating a contiguous shard of destination
/// nodes, and ships every round's traffic to them as length-prefixed
/// [`Frame`]s over a unix domain socket. Each worker assembles its nodes'
/// inboxes, computes its shard of the per-link accounting, echoes the
/// assembled rows back, and closes the round with a **round-commit token**
/// ([`Frame::Commit`]) carrying the epoch; the barrier completes only when
/// every worker has committed the epoch, so a lost or reordered round fails
/// loudly.
///
/// Broadcast slabs cross the socket once per worker (real traffic, counted
/// by the workers); the delivered broadcast lanes are reassembled from the
/// orchestrator's copy of the slabs rather than echoed back, exactly as a
/// distributed deployment would avoid returning immutable shared data to
/// the node that published it.
///
/// The worker binary is located via the `CC_NODE_BIN` environment variable,
/// next to the current executable, or in the build's target directory.
#[derive(Debug)]
pub struct SocketTransport {
    pending: Pending,
    epoch: u64,
    workers: Vec<Worker>,
    socket_path: PathBuf,
    /// Encoded payload/broadcast bytes shipped through this orchestrator —
    /// on the star topology, all of the round traffic.
    orchestrator_bytes: u64,
}

#[derive(Debug)]
struct Worker {
    child: Child,
    reader: BufReader<UnixStream>,
    writer: BufWriter<UnixStream>,
    /// Destination shard `[lo, hi)` this worker simulates.
    lo: usize,
    hi: usize,
}

impl SocketTransport {
    /// Spawns `workers` `cc-clique-node` processes (`0` means
    /// [`DEFAULT_SOCKET_WORKERS`], always clamped to `n`) and connects them
    /// over a fresh unix socket.
    ///
    /// # Panics
    ///
    /// Panics if the worker binary cannot be found or the processes fail to
    /// connect — a broken multi-process setup must fail loudly, not degrade
    /// into a different backend.
    #[must_use]
    pub fn new(n: usize, workers: usize) -> Self {
        let w = if workers == 0 {
            DEFAULT_SOCKET_WORKERS
        } else {
            workers
        }
        .clamp(1, n);
        let socket_path = fresh_socket_path();
        let listener = UnixListener::bind(&socket_path)
            .unwrap_or_else(|e| panic!("bind {}: {e}", socket_path.display()));
        listener
            .set_nonblocking(true)
            .expect("non-blocking accept loop");
        let bin = node_binary();

        // Workers inherit the orchestrator's trace level through argv (the
        // spawn-time analogue of the TCP backend's `Frame::Assign` field),
        // so a traced run captures worker-side events without relying on
        // the child re-reading `CC_TRACE` from the environment.
        let trace = cc_telemetry::global().level().name();
        let mut children = Vec::with_capacity(w);
        for worker in 0..w {
            let (lo, hi) = shard(n, w, worker);
            let child = Command::new(&bin)
                .arg(&socket_path)
                .args([
                    worker.to_string(),
                    lo.to_string(),
                    (hi - lo).to_string(),
                    n.to_string(),
                    trace.to_string(),
                ])
                .spawn()
                .unwrap_or_else(|e| panic!("spawn {}: {e}", bin.display()));
            children.push(Some(child));
        }

        // Workers connect in arbitrary order and identify themselves with a
        // Hello frame.
        let mut slots: Vec<Option<Worker>> = (0..w).map(|_| None).collect();
        let deadline = Instant::now() + ACCEPT_DEADLINE;
        for _ in 0..w {
            let stream = accept_one(&listener, &mut children, deadline);
            stream
                .set_nonblocking(false)
                .expect("blocking worker stream");
            let mut reader = BufReader::new(stream.try_clone().expect("clone worker stream"));
            let writer = BufWriter::new(stream);
            let worker = match read_frame(&mut reader).expect("worker greeting") {
                Frame::Hello { worker } => worker as usize,
                other => panic!("expected Hello from worker, got {other:?}"),
            };
            let (lo, hi) = shard(n, w, worker);
            assert!(slots[worker].is_none(), "worker {worker} connected twice");
            slots[worker] = Some(Worker {
                child: children[worker].take().expect("child handle"),
                reader,
                writer,
                lo,
                hi,
            });
        }

        Self {
            pending: Pending::new(n),
            epoch: 0,
            workers: slots
                .into_iter()
                .map(|s| s.expect("every worker connected"))
                .collect(),
            socket_path,
            orchestrator_bytes: 0,
        }
    }
}

impl Transport for SocketTransport {
    fn name(&self) -> &'static str {
        "socket"
    }

    fn n(&self) -> usize {
        self.pending.n()
    }

    fn send(&mut self, src: usize, dst: usize, words: &[Word]) {
        self.pending.send(src, dst, words);
    }

    fn send_vec(&mut self, src: usize, dst: usize, words: Vec<Word>) {
        self.pending.send_vec(src, dst, words);
    }

    fn broadcast(&mut self, src: usize, slab: Arc<[Word]>) {
        self.pending.broadcast(src, slab);
    }

    fn finish_round(&mut self) -> RoundDelivery {
        let n = self.pending.n();
        let epoch = self.epoch;
        let bcasts = self.pending.take_bcasts();
        let bcast_frames: Vec<Vec<u8>> = bcasts
            .iter()
            .enumerate()
            .flat_map(|(src, slabs)| {
                slabs.iter().map(move |slab| {
                    Frame::Bcast {
                        epoch,
                        src: src as u32,
                        words: slab.to_vec(),
                    }
                    .encode()
                })
            })
            .collect();

        // Ship phase: every worker receives its shard's unicast queues, all
        // broadcast slabs, and the round delimiter — coalesced into **one**
        // length-prefixed batch per (worker, round), handed to the kernel
        // as a single write instead of one syscall per frame (the byte
        // stream is identical either way; `prop_frames.rs` pins that).
        // Workers drain their input completely before echoing, so these
        // writes cannot deadlock against the echo phase.
        for wk in &mut self.workers {
            let mut batch = Vec::new();
            let mut frames = 0usize;
            for dst in wk.lo..wk.hi {
                for src in 0..n {
                    let words = std::mem::take(&mut self.pending.queues[dst * n + src]);
                    if words.is_empty() {
                        continue;
                    }
                    let frame = Frame::Payload {
                        epoch,
                        src: src as u32,
                        dst: dst as u32,
                        words,
                    };
                    push_frame(&mut batch, &frame);
                    frames += 1;
                }
            }
            for bytes in &bcast_frames {
                push_frame_bytes(&mut batch, bytes);
                frames += 1;
            }
            // Everything batched so far is round payload funnelled through
            // the orchestrator (the star topology's defining cost); the
            // round delimiter below is control traffic and uncounted.
            self.orchestrator_bytes += batch.len() as u64;
            push_frame(&mut batch, &Frame::RoundEnd { epoch });
            frames += 1;
            cc_telemetry::global().emit(cc_telemetry::TraceLevel::Full, || {
                cc_telemetry::Event::FrameBatch {
                    backend: "socket",
                    frames,
                    bytes: batch.len(),
                }
            });
            wk.writer
                .write_all(&batch)
                .and_then(|()| wk.writer.flush())
                .expect("ship round batch to worker");
        }

        // Barrier: collect every worker's echoed inbox rows and its
        // round-commit token for this epoch.
        let mut inboxes = vec![Delivered::empty(n); n];
        let mut all_loads = Vec::new();
        let barrier_start = Instant::now();
        for (idx, wk) in self.workers.iter_mut().enumerate() {
            loop {
                match read_frame(&mut wk.reader).expect("read worker round") {
                    Frame::Payload {
                        epoch: e,
                        src,
                        dst,
                        words,
                    } => {
                        assert_eq!(e, epoch, "worker echoed a different epoch");
                        let (src, dst) = (src as usize, dst as usize);
                        assert!(
                            (wk.lo..wk.hi).contains(&dst),
                            "worker echoed a destination outside its shard"
                        );
                        let lane = &mut inboxes[dst].unicast[src];
                        if lane.is_empty() {
                            *lane = words;
                        } else {
                            lane.extend(words);
                        }
                    }
                    Frame::Telemetry { worker, lines } => {
                        cc_telemetry::global().merge_worker(worker, &lines);
                    }
                    Frame::Commit { epoch: e, loads } => {
                        assert_eq!(e, epoch, "round-commit token for a different epoch");
                        all_loads.extend(
                            loads
                                .into_iter()
                                .map(|(s, d, w)| (s as usize, d as usize, w as usize)),
                        );
                        cc_telemetry::global().emit(cc_telemetry::TraceLevel::Rounds, || {
                            cc_telemetry::Event::BarrierLane {
                                backend: "socket",
                                epoch,
                                worker: idx as u32,
                                wall_ns: barrier_start.elapsed().as_nanos() as u64,
                            }
                        });
                        break;
                    }
                    other => panic!("unexpected frame from worker: {other:?}"),
                }
            }
        }

        // Broadcast lanes: reassembled from the orchestrator's slabs (the
        // workers counted them; see the struct docs).
        for delivered in &mut inboxes {
            for (src, slabs) in bcasts.iter().enumerate() {
                if !slabs.is_empty() {
                    delivered.broadcast[src] = slabs.clone();
                }
            }
        }

        self.epoch += 1;
        RoundDelivery {
            inboxes,
            loads: merge_loads(all_loads),
        }
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn orchestrator_bytes(&self) -> u64 {
        self.orchestrator_bytes
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        for wk in &mut self.workers {
            let _ = write_frame(&mut wk.writer, &Frame::Shutdown);
            let _ = wk.writer.flush();
        }
        // Workers flush any buffered telemetry as their last frames before
        // exiting; drain each stream to EOF so those snapshots land in the
        // merged capture.
        for wk in &mut self.workers {
            while let Ok(frame) = read_frame(&mut wk.reader) {
                if let Frame::Telemetry { worker, lines } = frame {
                    cc_telemetry::global().merge_worker(worker, &lines);
                }
            }
        }
        for wk in &mut self.workers {
            let _ = wk.child.wait();
        }
        let _ = std::fs::remove_file(&self.socket_path);
    }
}

/// The contiguous destination shard `[lo, hi)` of `worker` among `w`
/// workers over `n` nodes.
pub(crate) fn shard(n: usize, w: usize, worker: usize) -> (usize, usize) {
    (worker * n / w, (worker + 1) * n / w)
}

fn fresh_socket_path() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("cc-clique-{}-{id}.sock", std::process::id()))
}

/// Locates the `cc-clique-node` worker binary (see
/// [`find_worker_binary`]).
fn node_binary() -> PathBuf {
    find_worker_binary(&["cc-clique-node"])
}

/// Locates a worker binary by trying each candidate `names` entry: the
/// `CC_NODE_BIN` override first, then next to (or one/two levels above) the
/// current executable — which covers installed binaries, test executables
/// in `target/<profile>/deps`, and examples in `target/<profile>/examples`
/// — then the build-time target directory baked in by `build.rs` (which
/// covers doctests, whose executables live in temporary directories).
/// Earlier `names` win over later ones, so a registry-rich facade binary
/// can shadow the builtin-only fallback.
pub(crate) fn find_worker_binary(names: &[&str]) -> PathBuf {
    if let Ok(path) = std::env::var("CC_NODE_BIN") {
        return PathBuf::from(path);
    }
    let mut candidates = Vec::new();
    for name in names {
        if let Ok(exe) = std::env::current_exe() {
            if let Some(dir) = exe.parent() {
                candidates.push(dir.join(name));
                candidates.push(dir.join("..").join(name));
                candidates.push(dir.join("..").join("..").join(name));
            }
        }
        candidates.push(PathBuf::from(env!("CC_TRANSPORT_PROFILE_DIR")).join(name));
    }
    for c in &candidates {
        if c.is_file() {
            return c.clone();
        }
    }
    panic!(
        "worker binary not found (searched {candidates:?}); build it with \
         `cargo build` or point CC_NODE_BIN at it"
    );
}

/// Accepts one worker connection, polling so that a worker that died before
/// connecting (bad binary, crash on startup) is reported instead of hanging
/// the orchestrator forever.
fn accept_one(
    listener: &UnixListener,
    children: &mut [Option<Child>],
    deadline: Instant,
) -> UnixStream {
    loop {
        match listener.accept() {
            Ok((stream, _)) => return stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                for (i, child) in children.iter_mut().enumerate() {
                    if let Some(c) = child {
                        if let Ok(Some(status)) = c.try_wait() {
                            panic!("cc-clique-node worker {i} exited before connecting: {status}");
                        }
                    }
                }
                assert!(
                    Instant::now() < deadline,
                    "cc-clique-node workers did not connect within {ACCEPT_DEADLINE:?}"
                );
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => panic!("accept worker connection: {e}"),
        }
    }
}

/// The `cc-clique-node` worker process body: connect to the orchestrator,
/// greet, then serve rounds — buffer the epoch's frames, assemble the owned
/// destination shard's inbox rows and per-link accounting, echo the rows,
/// and commit the epoch — until told to shut down.
///
/// `lo` is the first owned destination, `count` the shard width, `n` the
/// clique size. `trace` is the orchestrator-forwarded `CC_TRACE` level
/// name; when it enables capture, the worker buffers its event stream in a
/// [`cc_telemetry::WireSink`] and ships snapshots back ahead of each
/// round-commit token ([`Frame::Telemetry`]).
pub fn worker_main(
    socket: &std::path::Path,
    worker: u32,
    lo: usize,
    count: usize,
    n: usize,
    trace: &str,
) -> io::Result<()> {
    let wire = crate::tcp::install_wire_sink(trace);
    let stream = UnixStream::connect(socket)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    write_frame(&mut writer, &Frame::Hello { worker })?;
    writer.flush()?;

    let mut epoch = 0u64;
    loop {
        // rows[(dst - lo) * n + src]: assembled unicast lanes for the shard.
        let mut rows: Vec<Vec<Word>> = vec![Vec::new(); count * n];
        let mut bcast_words = vec![0usize; n];
        loop {
            match read_frame(&mut reader)? {
                Frame::Payload {
                    epoch: e,
                    src,
                    dst,
                    words,
                } => {
                    check(e == epoch, "payload from a different epoch")?;
                    let (src, dst) = (src as usize, dst as usize);
                    check(
                        src < n && (lo..lo + count).contains(&dst),
                        "misrouted payload",
                    )?;
                    let lane = &mut rows[(dst - lo) * n + src];
                    if lane.is_empty() {
                        *lane = words;
                    } else {
                        lane.extend(words);
                    }
                }
                Frame::Bcast {
                    epoch: e,
                    src,
                    words,
                } => {
                    check(e == epoch, "broadcast from a different epoch")?;
                    check((src as usize) < n, "broadcast source out of range")?;
                    bcast_words[src as usize] += words.len();
                }
                Frame::RoundEnd { epoch: e } => {
                    check(e == epoch, "round delimiter epoch mismatch")?;
                    break;
                }
                Frame::Shutdown => {
                    // Final telemetry flush: whatever the sink buffered
                    // since the last commit travels as the worker's last
                    // frames before exit.
                    let mut batch = Vec::new();
                    crate::tcp::push_telemetry(&mut batch, worker, wire.as_deref());
                    if !batch.is_empty() {
                        writer.write_all(&batch)?;
                        writer.flush()?;
                    }
                    return Ok(());
                }
                other => return Err(protocol_error(&format!("unexpected frame {other:?}"))),
            }
        }

        // Echo phase, batched like the parent's ship phase: the shard's
        // assembled rows and the round-commit token travel back as one
        // length-prefixed batch — one write per (worker, round).
        let mut loads: Vec<(u32, u32, u64)> = Vec::new();
        let mut batch = Vec::new();
        let mut echoed = 0usize;
        for d in 0..count {
            let dst = lo + d;
            for src in 0..n {
                let row = std::mem::take(&mut rows[d * n + src]);
                let charged = if src == dst {
                    0 // self messages are local moves and free
                } else {
                    row.len() + bcast_words[src]
                };
                if !row.is_empty() {
                    let frame = Frame::Payload {
                        epoch,
                        src: src as u32,
                        dst: dst as u32,
                        words: row,
                    };
                    push_frame(&mut batch, &frame);
                    echoed += 1;
                }
                if charged > 0 {
                    loads.push((src as u32, dst as u32, charged as u64));
                }
            }
        }
        let commit_body = Frame::Commit { epoch, loads }.encode();
        cc_telemetry::global().emit(cc_telemetry::TraceLevel::Full, || {
            cc_telemetry::Event::FrameBatch {
                backend: "socket",
                frames: echoed + 1,
                bytes: batch.len() + commit_body.len() + 4,
            }
        });
        // Buffered telemetry rides just ahead of the commit token, so the
        // orchestrator's barrier loop merges it before the round closes.
        crate::tcp::push_telemetry(&mut batch, worker, wire.as_deref());
        push_frame_bytes(&mut batch, &commit_body);
        writer.write_all(&batch)?;
        writer.flush()?;
        epoch += 1;
    }
}

fn check(ok: bool, msg: &str) -> io::Result<()> {
    if ok {
        Ok(())
    } else {
        Err(protocol_error(msg))
    }
}

fn protocol_error(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_partition_the_node_range() {
        for n in [1, 2, 5, 16, 257] {
            for w in 1..=n.min(8) {
                let mut covered = 0;
                for worker in 0..w {
                    let (lo, hi) = shard(n, w, worker);
                    assert_eq!(lo, covered, "shards must be contiguous");
                    assert!(hi > lo || n < w, "no empty shards when n >= w");
                    covered = hi;
                }
                assert_eq!(covered, n);
            }
        }
    }
}
