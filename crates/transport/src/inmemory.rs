//! The single-process shared-memory backend: the historical destination-major
//! sharded flush, behind the [`Transport`] trait.

use crate::pending::Pending;
use crate::{merge_loads, Delivered, RoundDelivery, Transport};
use cc_runtime::{Executor, Word};
use std::sync::Arc;

/// The classical fabric: queued traffic lives in a destination-major queue
/// matrix and the barrier drains it with a flush **sharded by destination**
/// on the configured [`Executor`] — each piece is one destination's
/// contiguous block of `n` per-source queues, owned by exactly one worker.
/// Loads merge back into canonical `(src, dst)` order, so round counts and
/// pattern fingerprints are identical to sequential execution (and to every
/// other backend).
///
/// Broadcast slabs are delivered zero-copy: every recipient's
/// [`Delivered::broadcast`] lane references the sender's `Arc<[Word]>`
/// allocation.
#[derive(Debug)]
pub struct InMemoryTransport {
    pending: Pending,
    exec: Executor,
    epoch: u64,
}

impl InMemoryTransport {
    /// Creates the fabric for `n` nodes, flushing on `exec`.
    #[must_use]
    pub fn new(n: usize, exec: Executor) -> Self {
        Self {
            pending: Pending::new(n),
            exec,
            epoch: 0,
        }
    }
}

impl Transport for InMemoryTransport {
    fn name(&self) -> &'static str {
        "inmemory"
    }

    fn n(&self) -> usize {
        self.pending.n()
    }

    fn send(&mut self, src: usize, dst: usize, words: &[Word]) {
        self.pending.send(src, dst, words);
    }

    fn send_vec(&mut self, src: usize, dst: usize, words: Vec<Word>) {
        self.pending.send_vec(src, dst, words);
    }

    fn broadcast(&mut self, src: usize, slab: Arc<[Word]>) {
        self.pending.broadcast(src, slab);
    }

    fn finish_round(&mut self) -> RoundDelivery {
        let n = self.pending.n();
        let bcast_words = self.pending.bcast_words();
        let bcasts = self.pending.take_bcasts();
        /// One destination's barrier result: its link loads and its
        /// assembled delivery.
        type DstFlush = (Vec<(usize, usize, usize)>, Delivered);

        let per_dst: Vec<DstFlush> =
            self.exec
                .map_chunks_mut(&mut self.pending.queues, n, |dst, block| {
                    let mut loads = Vec::new();
                    let mut unicast = Vec::with_capacity(n);
                    let mut broadcast = vec![Vec::new(); n];
                    for (src, q) in block.iter_mut().enumerate() {
                        let words = std::mem::take(q);
                        let charged = if src == dst {
                            0 // self messages are local moves and free
                        } else {
                            words.len() + bcast_words[src]
                        };
                        if charged > 0 {
                            loads.push((src, dst, charged));
                        }
                        unicast.push(words);
                        if !bcasts[src].is_empty() {
                            // Zero-copy: recipients share the sender's slabs.
                            broadcast[src] = bcasts[src].clone();
                        }
                    }
                    (loads, Delivered { unicast, broadcast })
                });

        let mut all_loads = Vec::new();
        let mut inboxes = Vec::with_capacity(n);
        for (loads, delivered) in per_dst {
            all_loads.extend(loads);
            inboxes.push(delivered);
        }
        self.epoch += 1;
        RoundDelivery {
            inboxes,
            loads: merge_loads(all_loads),
        }
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_runtime::ExecutorKind;

    fn seq(n: usize) -> InMemoryTransport {
        InMemoryTransport::new(n, Executor::new(ExecutorKind::Sequential))
    }

    #[test]
    fn rounds_equal_max_link_queue_and_queues_drain() {
        let mut t = seq(3);
        t.send(0, 1, &[1, 2, 3]);
        t.send(1, 2, &[4]);
        t.send(2, 0, &[5, 6]);
        let rd = t.finish_round();
        assert_eq!(rd.loads.rounds(), 3);
        assert_eq!(rd.loads.words(), 6);
        assert_eq!(rd.inboxes[1].unicast[0], vec![1, 2, 3]);
        assert_eq!(rd.inboxes[2].unicast[1], vec![4]);
        assert_eq!(rd.inboxes[0].unicast[2], vec![5, 6]);
        assert_eq!(t.epoch(), 1);
        let empty = t.finish_round();
        assert_eq!(empty.loads.rounds(), 0);
        assert_eq!(t.epoch(), 2);
    }

    #[test]
    fn self_messages_are_delivered_free() {
        let mut t = seq(2);
        t.send(0, 0, &[7, 8, 9]);
        t.send(0, 1, &[1]);
        let rd = t.finish_round();
        assert_eq!(rd.loads.rounds(), 1);
        assert_eq!(rd.loads.words(), 1);
        assert_eq!(rd.inboxes[0].unicast[0], vec![7, 8, 9]);
    }

    #[test]
    fn broadcast_slabs_are_shared_and_charged_per_link() {
        let mut t = seq(4);
        let slab: Arc<[Word]> = vec![5, 6].into();
        t.broadcast(1, slab.clone());
        let rd = t.finish_round();
        // 2 words on each of the 3 outgoing links.
        assert_eq!(rd.loads.rounds(), 2);
        assert_eq!(rd.loads.words(), 6);
        for dst in 0..4 {
            assert_eq!(rd.inboxes[dst].broadcast[1].len(), 1, "self included");
            assert!(
                Arc::ptr_eq(&rd.inboxes[dst].broadcast[1][0], &slab),
                "delivery must share the sender's allocation"
            );
        }
    }

    #[test]
    fn parallel_flush_matches_sequential() {
        let fill = |t: &mut InMemoryTransport| {
            for src in 0..7 {
                for dst in 0..7 {
                    if (src + 2 * dst) % 3 == 0 {
                        let words: Vec<Word> = (0..(src + dst) as u64 % 5)
                            .map(|w| w + 10 * src as u64)
                            .collect();
                        t.send(src, dst, &words);
                    }
                }
            }
            t.send(0, 1, &[99, 98, 97]);
            t.broadcast(3, vec![1, 2, 3].into());
        };
        let mut a = seq(7);
        fill(&mut a);
        let ra = a.finish_round();
        let mut b = InMemoryTransport::new(
            7,
            Executor::with_cutover(ExecutorKind::Parallel { threads: 3 }, 0),
        );
        fill(&mut b);
        let rb = b.finish_round();
        assert_eq!(ra, rb, "sharded flush must match the serial walk");
    }
}
