//! # cc-netsim: deterministic link conditions and fault injection
//!
//! The paper's round/word bounds assume a perfect synchronous clique;
//! production links have latency skew, stragglers, loss, and crashing
//! nodes. This crate conditions any [`Transport`] with those imperfections
//! — **deterministically**. [`NetsimTransport`] wraps a backend the same
//! way `TracedTransport` does and models, per round:
//!
//! * **latency + stragglers** — every delivering link draws a seeded
//!   latency (`base + per_word · words + jitter`, occasionally multiplied
//!   by a straggler factor); the round's *simulated* completion time is
//!   the max over links and accumulates in
//!   [`Transport::sim_time_ns`], a new accounting column alongside
//!   rounds/words;
//! * **loss + retransmit** — links draw losses and pay retransmits with
//!   exponential backoff in simulated time; a link that exhausts its
//!   retry budget fails loudly (panic), never silently;
//! * **crash/restart fault plans** — on a schedule derived from the seed,
//!   a node "crashes" after a barrier; the engine's recovery loop
//!   re-ships its serialized [`cc_runtime::WireProgram`] state
//!   ([`Transport::take_crash`] / [`Transport::on_recovery`]) and the
//!   wrapper charges the outage and re-ship cost to simulated time.
//!
//! ## Determinism split
//!
//! Conditioning is an *observer* of deliveries: results, rounds, words,
//! pattern fingerprints, and barrier epochs stay bit-identical to the
//! unconditioned fabric — under loss and under crash recovery (the
//! `WireProgram` codec contract makes a restarted node bit-identical to
//! one that never crashed). What *does* move — `sim_time_ns`, retransmit
//! and fault counts — is a pure function of
//! `(seed, epoch, src, dst)`: every draw comes from one splitmix64 chain
//! over those coordinates, so a rerun with the same seed reproduces every
//! delay, loss, and crash exactly, on any backend.
//!
//! Profiles are selected like every other knob in the workspace:
//! `CC_NETSIM=off|lan|wan|lossy|flaky-node[:seed]` retargets every
//! default-configured simulation ([`NetsimConfig::from_env_or`]), or set
//! [`NetsimConfig`] on the clique config directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cc_runtime::{LinkLoads, ResidentOutcome, Word};
use cc_telemetry::{Event, TraceLevel};
use cc_transport::{RoundDelivery, Transport};
use std::sync::Arc;

/// Default RNG seed when a profile spec carries no `:seed` suffix.
pub const DEFAULT_NETSIM_SEED: u64 = 0x5eed_c0de;

/// Retransmit budget per link per round. With the lossiest built-in
/// profile (8% loss) the chance of exhausting it is ~`0.08^12` ≈ 1e-13
/// per link-round: the budget exists to turn a *misconfigured* model into
/// a loud failure, not to fire under the shipped profiles.
pub const MAX_DELIVERY_ATTEMPTS: u32 = 12;

/// Simulated outage cost of one node crash, in multiples of the profile's
/// base link latency (detection + restart before the state re-ship).
const CRASH_OUTAGE_MULT: u64 = 50;

/// The built-in network-condition profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetsimProfile {
    /// No conditioning: the wrapper is never installed and the fabric
    /// behaves exactly as before (the default).
    #[default]
    Off,
    /// Datacenter LAN: tens of microseconds per link, light jitter, rare
    /// mild stragglers, no loss.
    Lan,
    /// Wide-area links: tens of milliseconds, heavy jitter, noticeable
    /// stragglers, occasional loss.
    Wan,
    /// A degraded fabric: moderate latency with 8% per-link loss — the
    /// retransmit/backoff machinery carries real weight.
    Lossy,
    /// A cluster with an unreliable member: mild LAN-like links plus a
    /// seeded node crash every few barriers, exercising the
    /// crash/restart recovery path.
    FlakyNode,
}

impl NetsimProfile {
    /// Stable lowercase profile name (`"off"`, `"lan"`, …).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            NetsimProfile::Off => "off",
            NetsimProfile::Lan => "lan",
            NetsimProfile::Wan => "wan",
            NetsimProfile::Lossy => "lossy",
            NetsimProfile::FlakyNode => "flaky-node",
        }
    }

    /// The link model this profile conditions rounds with.
    fn model(self) -> LinkModel {
        match self {
            // `Off` never builds a wrapper; the zero model is inert anyway.
            NetsimProfile::Off => LinkModel {
                base_ns: 0,
                per_word_ns: 0,
                jitter_ns: 0,
                straggler_permille: 0,
                straggler_mult: 1,
                loss_permille: 0,
                crash_period: 0,
            },
            NetsimProfile::Lan => LinkModel {
                base_ns: 50_000,
                per_word_ns: 8,
                jitter_ns: 30_000,
                straggler_permille: 5,
                straggler_mult: 4,
                loss_permille: 0,
                crash_period: 0,
            },
            NetsimProfile::Wan => LinkModel {
                base_ns: 40_000_000,
                per_word_ns: 64,
                jitter_ns: 15_000_000,
                straggler_permille: 20,
                straggler_mult: 3,
                loss_permille: 2,
                crash_period: 0,
            },
            NetsimProfile::Lossy => LinkModel {
                base_ns: 2_000_000,
                per_word_ns: 16,
                jitter_ns: 1_000_000,
                straggler_permille: 10,
                straggler_mult: 4,
                loss_permille: 80,
                crash_period: 0,
            },
            NetsimProfile::FlakyNode => LinkModel {
                base_ns: 500_000,
                per_word_ns: 8,
                jitter_ns: 200_000,
                straggler_permille: 10,
                straggler_mult: 3,
                loss_permille: 5,
                crash_period: 12,
            },
        }
    }
}

/// Which network conditions a simulation runs under: a profile plus the
/// seed every latency/loss/crash draw derives from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetsimConfig {
    /// Condition profile ([`NetsimProfile::Off`] disables the layer).
    pub profile: NetsimProfile,
    /// Root seed of the per-`(epoch, src, dst)` draw chain.
    pub seed: u64,
}

impl Default for NetsimConfig {
    fn default() -> Self {
        Self {
            profile: NetsimProfile::Off,
            seed: DEFAULT_NETSIM_SEED,
        }
    }
}

impl NetsimConfig {
    /// Whether conditioning is on at all.
    #[must_use]
    pub fn enabled(self) -> bool {
        self.profile != NetsimProfile::Off
    }

    /// Parses a `CC_NETSIM` spec: a profile name (`off`, `lan`, `wan`,
    /// `lossy`, `flaky-node`/`flaky`), optionally suffixed `:<seed>` as in
    /// `lossy:7`. `off` takes no suffix. `None` for unknown names **or**
    /// malformed suffixes — `lossy:banana` must not silently mean "default
    /// seed" (the shared `env_config` contract).
    #[must_use]
    pub fn parse(raw: &str) -> Option<Self> {
        let lower = raw.to_ascii_lowercase();
        let (name, rest) = match lower.split_once(':') {
            Some((name, rest)) => (name, Some(rest)),
            None => (lower.as_str(), None),
        };
        let profile = match name {
            "off" | "none" => NetsimProfile::Off,
            "lan" => NetsimProfile::Lan,
            "wan" => NetsimProfile::Wan,
            "lossy" => NetsimProfile::Lossy,
            "flaky-node" | "flaky" => NetsimProfile::FlakyNode,
            _ => return None,
        };
        let seed = match rest {
            None => DEFAULT_NETSIM_SEED,
            // `off:anything` is malformed: there is no seed to configure.
            Some(_) if profile == NetsimProfile::Off => return None,
            Some(s) => s.parse().ok()?,
        };
        Some(Self { profile, seed })
    }

    /// Resolves a `CC_NETSIM` spec against a fallback: `None` (unset)
    /// resolves to the fallback, a parseable value to its config, and a
    /// malformed value to an error carrying the raw spec. A thin wrapper
    /// over the shared [`cc_runtime::env_config::resolve`].
    pub fn resolve(spec: Option<&str>, fallback: NetsimConfig) -> Result<Self, String> {
        cc_runtime::env_config::resolve(spec, fallback, Self::parse)
    }

    /// Reads the conditioning config from the `CC_NETSIM` environment
    /// variable, falling back to `fallback` when unset. An unrecognised
    /// value is a misconfiguration, not a preference for the default: it
    /// is reported once per process (the shared
    /// [`cc_runtime::env_config`] contract) before falling back.
    #[must_use]
    pub fn from_env_or(fallback: NetsimConfig) -> Self {
        cc_runtime::env_config::from_env_or(
            "cc-netsim",
            "CC_NETSIM",
            "off, lan, wan, lossy, or flaky-node (optionally :<seed>)",
            fallback,
            Self::parse,
        )
    }
}

/// The per-link condition parameters one profile applies.
#[derive(Debug, Clone, Copy)]
struct LinkModel {
    /// Fixed per-delivery latency floor, simulated ns.
    base_ns: u64,
    /// Additional latency per word carried.
    per_word_ns: u64,
    /// Uniform jitter range added on top (`[0, jitter_ns)`).
    jitter_ns: u64,
    /// Per-mille chance a link straggles this round.
    straggler_permille: u64,
    /// Latency multiplier a straggling link pays.
    straggler_mult: u64,
    /// Per-mille chance one delivery attempt is lost.
    loss_permille: u64,
    /// Inject a node crash after every `crash_period`-th barrier
    /// (`0` = no fault plan).
    crash_period: u64,
}

/// splitmix64 finalisation step — the workspace's standard seeded-draw
/// primitive (same constants as the route/batch seeds elsewhere).
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Draw salts: disjoint input lanes of the per-link chain.
const SALT_JITTER: u64 = 0;
const SALT_STRAGGLE: u64 = 1;
const SALT_CRASH: u64 = 2;
/// Loss attempts use `SALT_LOSS + attempt`, one draw per attempt.
const SALT_LOSS: u64 = 16;

/// One deterministic draw keyed by `(seed, epoch, src, dst, salt)` — the
/// whole conditioning layer's only randomness source, so identical seeds
/// replay identical conditions on any backend.
fn draw(seed: u64, epoch: u64, src: u64, dst: u64, salt: u64) -> u64 {
    let mut h = splitmix(seed ^ 0x6e65_7473_696d); // "netsim"
    h = splitmix(h ^ epoch);
    h = splitmix(h ^ (src << 32) ^ dst);
    splitmix(h ^ salt)
}

/// One round's simulated aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct RoundSim {
    /// The slowest link's simulated delivery time.
    sim_ns: u64,
    /// Retransmissions across all links.
    retransmits: u64,
    /// Links hit by straggler injection.
    stragglers: u64,
}

/// Conditions one committed round: draws every delivering link's latency,
/// straggler status, and loss/retransmit sequence, and returns the round's
/// simulated aggregate. Emits per-link retransmit events at
/// [`TraceLevel::Full`] and the round aggregate at [`TraceLevel::Rounds`].
///
/// # Panics
///
/// Panics when a link exhausts [`MAX_DELIVERY_ATTEMPTS`]: past the budget
/// the modelled network is considered partitioned, and a silent hang or
/// fallback would mask the misconfiguration.
fn condition_round(
    model: &LinkModel,
    profile: &'static str,
    seed: u64,
    epoch: u64,
    loads: &LinkLoads,
) -> RoundSim {
    let tel = cc_telemetry::global();
    let mut sim = RoundSim::default();
    let mut links = 0usize;
    for (src, dst, words) in loads.iter() {
        links += 1;
        let (s, d) = (src as u64, dst as u64);
        let jitter = match model.jitter_ns {
            0 => 0,
            j => draw(seed, epoch, s, d, SALT_JITTER) % j,
        };
        let wire_ns = model.base_ns + model.per_word_ns * words as u64 + jitter;
        let mut link_ns = wire_ns;

        // Loss: each attempt draws independently; a lost attempt pays an
        // exponentially growing backoff plus the resend itself.
        let mut attempts = 1u32;
        let mut backoff = model.base_ns.max(1);
        while model.loss_permille > 0
            && draw(seed, epoch, s, d, SALT_LOSS + u64::from(attempts)) % 1000 < model.loss_permille
        {
            assert!(
                attempts < MAX_DELIVERY_ATTEMPTS,
                "cc-netsim[{profile}]: link {src}->{dst} exhausted its retransmit budget \
                 ({MAX_DELIVERY_ATTEMPTS} attempts) at epoch {epoch} — the modelled network \
                 is effectively partitioned"
            );
            attempts += 1;
            sim.retransmits += 1;
            link_ns += backoff + wire_ns;
            backoff = backoff.saturating_mul(2);
        }
        if attempts > 1 {
            tel.emit(TraceLevel::Full, || Event::NetsimRetransmit {
                profile,
                epoch,
                src,
                dst,
                attempts,
            });
        }

        // Stragglers multiply the whole (retransmit-inclusive) link time.
        if model.straggler_permille > 0
            && draw(seed, epoch, s, d, SALT_STRAGGLE) % 1000 < model.straggler_permille
        {
            link_ns = link_ns.saturating_mul(model.straggler_mult);
            sim.stragglers += 1;
        }
        sim.sim_ns = sim.sim_ns.max(link_ns);
    }
    // An empty barrier still synchronises: charge the latency floor.
    if links == 0 {
        sim.sim_ns = model.base_ns;
    }
    tel.emit(TraceLevel::Rounds, || Event::NetsimRound {
        profile,
        epoch,
        links,
        sim_ns: sim.sim_ns,
        retransmits: sim.retransmits,
        stragglers: sim.stragglers,
    });
    sim
}

/// A [`Transport`] decorator applying a [`NetsimProfile`]'s conditions to
/// every round barrier. Deliveries pass through untouched (the determinism
/// contract); the wrapper only *accounts*: simulated time, retransmits,
/// stragglers, and — for fault-plan profiles — crash/restart injections
/// surfaced through [`Transport::take_crash`] for the engine's recovery
/// loop.
#[derive(Debug)]
pub struct NetsimTransport {
    inner: Box<dyn Transport>,
    profile: &'static str,
    model: LinkModel,
    seed: u64,
    sim_time_ns: u64,
    retransmits: u64,
    faults: u64,
    pending_crash: Option<usize>,
}

impl NetsimTransport {
    /// Wraps `inner` under `cfg`'s conditions. [`NetsimProfile::Off`]
    /// returns `inner` unchanged — an off profile costs nothing, not even
    /// a forwarding layer.
    #[must_use]
    pub fn wrap(inner: Box<dyn Transport>, cfg: NetsimConfig) -> Box<dyn Transport> {
        if !cfg.enabled() {
            return inner;
        }
        Box::new(Self {
            inner,
            profile: cfg.profile.name(),
            model: cfg.profile.model(),
            seed: cfg.seed,
            sim_time_ns: 0,
            retransmits: 0,
            faults: 0,
            pending_crash: None,
        })
    }

    /// Injects a crash if the fault plan schedules one after the barrier
    /// that just committed `epoch`.
    fn maybe_crash(&mut self, epoch: u64) {
        if self.model.crash_period == 0 || !(epoch + 1).is_multiple_of(self.model.crash_period) {
            return;
        }
        let node = (draw(self.seed, epoch, 0, 0, SALT_CRASH) % self.inner.n() as u64) as usize;
        self.pending_crash = Some(node);
        self.faults += 1;
        // Detection + restart outage, before the state re-ship.
        self.sim_time_ns += CRASH_OUTAGE_MULT * self.model.base_ns;
        let profile = self.profile;
        cc_telemetry::global().emit(TraceLevel::Summary, || Event::NetsimFault {
            profile,
            epoch,
            node,
            kind: "crash",
            state_words: 0,
        });
    }
}

impl Transport for NetsimTransport {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn send(&mut self, src: usize, dst: usize, words: &[Word]) {
        self.inner.send(src, dst, words);
    }

    fn send_vec(&mut self, src: usize, dst: usize, words: Vec<Word>) {
        self.inner.send_vec(src, dst, words);
    }

    fn broadcast(&mut self, src: usize, slab: Arc<[Word]>) {
        self.inner.broadcast(src, slab);
    }

    fn finish_round(&mut self) -> RoundDelivery {
        let rd = self.inner.finish_round();
        // `finish_round` already advanced the epoch; condition the one
        // this barrier committed.
        let epoch = self.inner.epoch().saturating_sub(1);
        let sim = condition_round(&self.model, self.profile, self.seed, epoch, &rd.loads);
        self.sim_time_ns += sim.sim_ns;
        self.retransmits += sim.retransmits;
        self.maybe_crash(epoch);
        rd
    }

    fn epoch(&self) -> u64 {
        self.inner.epoch()
    }

    fn is_resident(&self) -> bool {
        // A fault plan needs the checkpointable classical loop: resident
        // sessions run to completion worker-side and cannot be interrupted
        // for a mid-flight restart.
        self.model.crash_period == 0 && self.inner.is_resident()
    }

    fn run_resident(
        &mut self,
        kind: &str,
        states: Vec<Vec<Word>>,
        on_round: &mut dyn FnMut(&LinkLoads),
    ) -> Option<ResidentOutcome> {
        let (model, profile, seed) = (self.model, self.profile, self.seed);
        let mut epoch = self.inner.epoch();
        let mut sim_ns = 0u64;
        let mut retransmits = 0u64;
        let outcome = self.inner.run_resident(kind, states, &mut |loads| {
            let sim = condition_round(&model, profile, seed, epoch, loads);
            sim_ns += sim.sim_ns;
            retransmits += sim.retransmits;
            epoch += 1;
            on_round(loads);
        });
        self.sim_time_ns += sim_ns;
        self.retransmits += retransmits;
        outcome
    }

    fn orchestrator_bytes(&self) -> u64 {
        self.inner.orchestrator_bytes()
    }

    fn sim_time_ns(&self) -> u64 {
        self.sim_time_ns
    }

    fn net_retransmits(&self) -> u64 {
        self.retransmits
    }

    fn net_faults(&self) -> u64 {
        self.faults
    }

    fn has_fault_plan(&self) -> bool {
        self.model.crash_period > 0
    }

    fn take_crash(&mut self) -> Option<usize> {
        self.pending_crash.take()
    }

    fn on_recovery(&mut self, node: usize, state_words: usize) {
        // Re-shipping the checkpoint travels the same modelled link.
        self.sim_time_ns += self.model.base_ns + self.model.per_word_ns * state_words as u64;
        let profile = self.profile;
        let epoch = self.inner.epoch().saturating_sub(1);
        cc_telemetry::global().emit(TraceLevel::Summary, || Event::NetsimFault {
            profile,
            epoch,
            node,
            kind: "recover",
            state_words,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_runtime::{EchoRingProgram, Engine, EngineFabric, Executor, ExecutorKind};
    use cc_transport::{InMemoryTransport, TransportFabric};

    fn lossy(seed: u64) -> NetsimConfig {
        NetsimConfig {
            profile: NetsimProfile::Lossy,
            seed,
        }
    }

    fn wrapped(n: usize, cfg: NetsimConfig) -> Box<dyn Transport> {
        NetsimTransport::wrap(
            Box::new(InMemoryTransport::new(n, Executor::default())),
            cfg,
        )
    }

    #[test]
    fn parser_accepts_profiles_and_seeds() {
        let c = |profile, seed| Some(NetsimConfig { profile, seed });
        assert_eq!(
            NetsimConfig::parse("off"),
            c(NetsimProfile::Off, DEFAULT_NETSIM_SEED)
        );
        assert_eq!(
            NetsimConfig::parse("LAN"),
            c(NetsimProfile::Lan, DEFAULT_NETSIM_SEED)
        );
        assert_eq!(NetsimConfig::parse("wan:9"), c(NetsimProfile::Wan, 9));
        assert_eq!(NetsimConfig::parse("lossy:0"), c(NetsimProfile::Lossy, 0));
        assert_eq!(
            NetsimConfig::parse("flaky-node:42"),
            c(NetsimProfile::FlakyNode, 42)
        );
        assert_eq!(
            NetsimConfig::parse("flaky"),
            c(NetsimProfile::FlakyNode, DEFAULT_NETSIM_SEED)
        );
        assert_eq!(NetsimConfig::parse("ideal"), None);
    }

    #[test]
    fn parser_rejects_malformed_seed_suffixes() {
        // `lossy:banana` must not silently mean "default seed" — the whole
        // spec is rejected so `from_env_or` falls back (and warns once).
        assert_eq!(NetsimConfig::parse("lossy:banana"), None);
        assert_eq!(NetsimConfig::parse("lossy:"), None, "empty suffix");
        assert_eq!(NetsimConfig::parse("lan:-3"), None);
        assert_eq!(NetsimConfig::parse("wan:7x"), None);
        assert_eq!(NetsimConfig::parse("off:7"), None, "off takes no seed");
        assert_eq!(NetsimConfig::parse(""), None);
    }

    #[test]
    fn resolution_reports_malformed_specs() {
        let fb = NetsimConfig::default();
        assert_eq!(NetsimConfig::resolve(None, fb), Ok(fb));
        assert_eq!(
            NetsimConfig::resolve(Some("lossy:3"), fb),
            Ok(NetsimConfig {
                profile: NetsimProfile::Lossy,
                seed: 3
            })
        );
        assert_eq!(
            NetsimConfig::resolve(Some("chaos"), fb),
            Err("chaos".to_string())
        );
        assert_eq!(NetsimConfig::resolve(Some(""), fb), Err(String::new()));
    }

    #[test]
    fn off_profile_is_free_and_transparent() {
        let t = wrapped(4, NetsimConfig::default());
        assert_eq!(t.sim_time_ns(), 0);
        assert!(!t.has_fault_plan());
        // Off never installs the wrapper at all: the inner backend's name
        // comes straight through and no conditioning state exists.
        assert_eq!(t.name(), "inmemory");
    }

    #[test]
    fn conditioning_is_delivery_transparent() {
        let mut plain: Box<dyn Transport> =
            Box::new(InMemoryTransport::new(4, Executor::default()));
        let mut conditioned = wrapped(4, lossy(7));
        for t in [&mut plain, &mut conditioned] {
            t.send(0, 1, &[7, 8]);
            t.send(2, 3, &[9]);
            t.broadcast(1, vec![42].into());
        }
        let a = plain.finish_round();
        let b = conditioned.finish_round();
        assert_eq!(a, b, "conditioning must not perturb deliveries or loads");
        assert_eq!(plain.epoch(), conditioned.epoch());
        assert!(
            conditioned.sim_time_ns() > 0,
            "a delivering round costs simulated time"
        );
        assert_eq!(plain.sim_time_ns(), 0, "bare backends report none");
    }

    #[test]
    fn sim_time_is_a_pure_function_of_the_seed() {
        let run = |seed: u64| {
            let mut t = wrapped(6, lossy(seed));
            for round in 0..20u64 {
                for src in 0..6 {
                    t.send(src, (src + 1) % 6, &[round, round + 1]);
                }
                t.broadcast(0, vec![round].into());
                let _ = t.finish_round();
            }
            (t.sim_time_ns(), t.net_retransmits())
        };
        let (sim_a, rt_a) = run(41);
        let (sim_b, rt_b) = run(41);
        assert_eq!(sim_a, sim_b, "same seed, same simulated time");
        assert_eq!(rt_a, rt_b, "same seed, same retransmit count");
        assert!(sim_a > 0);
        assert!(
            rt_a > 0,
            "20 rounds × 7 links at 8% loss should retransmit (got 0)"
        );
        let (sim_c, _) = run(99);
        assert_ne!(sim_a, sim_c, "different seeds draw different conditions");
    }

    #[test]
    #[should_panic(expected = "retransmit budget")]
    fn exhausting_the_retransmit_budget_fails_loudly() {
        // A 100% loss model can never deliver: the budget must trip a
        // loud panic, not hang in backoff forever.
        let model = LinkModel {
            base_ns: 1_000,
            per_word_ns: 1,
            jitter_ns: 0,
            straggler_permille: 0,
            straggler_mult: 1,
            loss_permille: 1000,
            crash_period: 0,
        };
        let mut loads = LinkLoads::new();
        loads.add(0, 1, 4);
        let _ = condition_round(&model, "partitioned", 7, 0, &loads);
    }

    #[test]
    fn flaky_profile_schedules_seeded_crashes() {
        let cfg = NetsimConfig {
            profile: NetsimProfile::FlakyNode,
            seed: 5,
        };
        let mut t = wrapped(8, cfg);
        assert!(t.has_fault_plan());
        let mut crashes = Vec::new();
        for round in 0..24u64 {
            t.send(0, 1, &[round]);
            let _ = t.finish_round();
            if let Some(node) = t.take_crash() {
                crashes.push((round, node));
            }
        }
        // crash_period = 12: exactly after barriers 11 and 23.
        assert_eq!(crashes.len(), 2, "got {crashes:?}");
        assert_eq!(crashes[0].0, 11);
        assert_eq!(crashes[1].0, 23);
        assert_eq!(t.net_faults(), 2);
        assert!(t.take_crash().is_none(), "crashes surface exactly once");

        // The schedule is a pure function of the seed.
        let mut t2 = wrapped(8, cfg);
        for round in 0..24u64 {
            t2.send(0, 1, &[round]);
            let _ = t2.finish_round();
            if let Some(node) = t2.take_crash() {
                let expect = crashes[if round == 11 { 0 } else { 1 }];
                assert_eq!((round, node), expect);
            }
        }
    }

    #[test]
    fn crash_recovery_replays_the_faultless_engine_run() {
        // EchoRing for 30 rounds under the flaky profile: two crashes land
        // mid-run, the engine re-ships state through the WireProgram codec,
        // and the final states match an unconditioned run bit for bit.
        let engine = Engine::new(ExecutorKind::Sequential);
        let n = 6;
        let programs = || (0..n).map(|_| EchoRingProgram::new(30)).collect::<Vec<_>>();

        let mut plain_fabric = EngineFabric::new(engine.executor());
        let plain = engine.run_wire_traced_on(&mut plain_fabric, programs(), |_| {});

        let cfg = NetsimConfig {
            profile: NetsimProfile::FlakyNode,
            seed: 17,
        };
        let mut transport = wrapped(n, cfg);
        let report = {
            let mut fabric = TransportFabric::new(transport.as_mut());
            engine.run_wire_traced_on(&mut fabric, programs(), |_| {})
        };

        assert_eq!(report.rounds, plain.rounds);
        assert_eq!(report.words, plain.words);
        assert_eq!(report.engine_rounds, plain.engine_rounds);
        for (node, (a, b)) in report.programs.iter().zip(&plain.programs).enumerate() {
            assert_eq!(a, b, "node {node} diverged under crash recovery");
        }
        assert!(
            transport.net_faults() >= 2,
            "31 barriers at crash_period 12 must crash at least twice"
        );
        assert!(transport.sim_time_ns() > 0);
    }
}
