//! Property tests for the subgraph algorithms: counting formulas and
//! detectors against the centralized oracles on randomly generated
//! workloads, including the structured families (hypercubes, caveman
//! communities, near-regular graphs) that stress different degree
//! profiles.

use cc_clique::Clique;
use cc_graph::{generators, oracle, Graph};
use proptest::prelude::*;

fn arb_sparse() -> impl Strategy<Value = Graph> {
    (10usize..26, 0u64..500).prop_map(|(n, seed)| generators::gnp(n, 1.8 / n as f64, seed))
}

fn arb_medium() -> impl Strategy<Value = Graph> {
    (10usize..22, 0u64..500, 2u32..7)
        .prop_map(|(n, seed, d)| generators::gnp(n, f64::from(d) / 20.0, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn all_counters_agree_on_the_same_graph(g in arb_medium()) {
        let n = g.n();
        let mut c = Clique::new(n);
        prop_assert_eq!(
            cc_subgraph::count_triangles(&mut c, &g),
            oracle::count_triangles(&g)
        );
        let mut c = Clique::new(n);
        prop_assert_eq!(cc_subgraph::count_4cycles(&mut c, &g), oracle::count_4cycles(&g));
        let mut c = Clique::new(n);
        prop_assert_eq!(cc_subgraph::count_5cycles(&mut c, &g), oracle::count_5cycles(&g));
    }

    #[test]
    fn detection_and_counting_are_consistent(g in arb_sparse()) {
        // detect_4cycle must say "yes" exactly when count_4cycles > 0.
        let mut c1 = Clique::new(g.n());
        let count = cc_subgraph::count_4cycles(&mut c1, &g);
        let mut c2 = Clique::new(g.n());
        let detected = cc_subgraph::detect_4cycle(&mut c2, &g);
        prop_assert_eq!(detected, count > 0);
    }

    #[test]
    fn sparse_square_matches_fast_square(g in arb_sparse()) {
        use cc_algebra::IntRing;
        use cc_core::{fast_mm, RowMatrix};
        let n = g.n();
        let mut c1 = Clique::new(n);
        if let Some(sq) = cc_subgraph::sparse_square(&mut c1, &g) {
            let a = RowMatrix::from_fn(n, |u, v| i64::from(g.has_edge(u, v)));
            let mut c2 = Clique::new(n);
            let full = fast_mm::multiply_auto(&mut c2, &IntRing, &a, &a);
            prop_assert_eq!(sq.to_matrix(), full.to_matrix());
        }
    }

    #[test]
    fn girth_matches_oracle_on_random_graphs(g in arb_medium()) {
        let mut c = Clique::new(g.n());
        prop_assert_eq!(
            cc_subgraph::girth(&mut c, &g, cc_subgraph::GirthConfig::default()),
            oracle::girth(&g)
        );
    }
}

#[test]
fn structured_families_end_to_end() {
    let families: Vec<(&str, Graph)> = vec![
        ("hypercube Q4", generators::hypercube(4)),
        ("caveman 4x5", generators::caveman(4, 5)),
        ("near-regular 24/4", generators::near_regular(24, 4, 3)),
        ("grid 5x5", generators::grid(5, 5)),
    ];
    for (name, g) in families {
        let n = g.n();
        let mut c = Clique::new(n);
        assert_eq!(
            cc_subgraph::count_triangles(&mut c, &g),
            oracle::count_triangles(&g),
            "{name}: triangles"
        );
        let mut c = Clique::new(n);
        assert_eq!(
            cc_subgraph::count_4cycles(&mut c, &g),
            oracle::count_4cycles(&g),
            "{name}: 4-cycles"
        );
        let mut c = Clique::new(n);
        assert_eq!(
            cc_subgraph::girth(&mut c, &g, cc_subgraph::GirthConfig::default()),
            oracle::girth(&g),
            "{name}: girth"
        );
        let mut c = Clique::new(n);
        assert_eq!(
            cc_subgraph::detect_4cycle(&mut c, &g),
            oracle::has_k_cycle(&g, 4),
            "{name}: C4 detection"
        );
    }
}
