//! Triangle counting as a [`NodeProgram`] state machine (Corollary 2 on
//! the runtime engine).
//!
//! [`crate::count_triangles_3d`] is coordinator-style: a driver closure per
//! communication step, with the simulator moving the words. This module
//! expresses the *same* algorithm — the 3D semiring product `A²` (paper
//! §2.1) followed by the distributed trace `tr(A²·A)` — as a per-node state
//! machine driven round-by-round by [`cc_clique::Clique::run_programs`]:
//! every node owns its adjacency row, computes only on its own state and
//! inbox, and the engine's round barrier is the only synchronisation.
//!
//! ## Balanced routing without a coordinator
//!
//! The closure algorithm leans on [`cc_clique::Clique::route`] — balanced
//! Valiant relaying — for its scatter and gather. The communication pattern
//! of the 3D product is *oblivious* (it depends only on `n`, never on the
//! matrix contents), so the state machine can reproduce the exact same
//! relaying without headers and without a coordinator: every node derives
//! the full global pattern from `n`, hashes each word to its relay with the
//! same deterministic hash the simulator uses
//! ([`cc_clique::RelayPolicy::SingleHash`]), and relays forward received
//! words by re-enumerating the sender's pattern. Destinations reassemble
//! payloads the same way. Per-round link loads — and therefore executed
//! rounds, total words, and the final count — are **identical** to
//! [`crate::count_triangles_3d`] on a `SingleHash` clique, which the tests
//! pin exactly.
//!
//! Engine-round schedule (7 barriers):
//!
//! | round | action |
//! |-------|--------|
//! | 0 | scatter phase A: row slices → relays |
//! | 1 | scatter phase B: relays → subcube owners |
//! | 2 | block product; gather phase A: partial rows → relays |
//! | 3 | gather phase B: relays → row owners |
//! | 4 | assemble row of `A²`; transpose sends for the trace |
//! | 5 | local dot product; broadcast it |
//! | 6 | sum broadcasts → `tr(A²·A)`; halt |

use cc_clique::{Clique, Control, NodeProgram, RoundCtx, WireProgram};
use cc_core::Plan3d;
use cc_graph::Graph;

/// SplitMix64 finaliser — **must** match the simulator's relay hash
/// (`cc_clique`'s `splitmix`) for the program's relay choices, and hence
/// its per-round link loads, to coincide with [`cc_clique::Clique::route`]
/// under [`cc_clique::RelayPolicy::SingleHash`]. The round-parity tests
/// pin this.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The relay the simulator's `route` assigns to word `j` of a
/// `(src, dst)` message under the single-hash policy.
fn relay_of(seed: u64, n: usize, src: usize, dst: usize, j: usize) -> usize {
    let h = splitmix(seed ^ ((src as u64) << 42) ^ ((dst as u64) << 21) ^ j as u64);
    (h % n as u64) as usize
}

/// One route step of the oblivious 3D pattern: the `(dst, words)` message
/// list a given source emits, in emission order, with only the *lengths*
/// recorded — every node can tabulate any other node's list from `n`
/// alone, which is what lets relays forward without headers.
fn scatter_pattern(plan: &Plan3d, src: usize) -> Vec<(usize, usize)> {
    let p = plan.p();
    let rb = plan.block_of_row(src);
    let mut out = Vec::with_capacity(2 * p * p);
    // S[src, u₂∗] slices to every active (rb, u₂, u₃)…
    for u2 in 0..p {
        let len = plan.block_range(u2).len();
        for u3 in 0..p {
            out.push((plan.node_of(rb, u2, u3), len));
        }
    }
    // …then T[src, u₃∗] slices to every active (u₁, rb, u₃), exactly the
    // emission order of `semiring_mm`'s scatter generator.
    for u3 in 0..p {
        let len = plan.block_range(u3).len();
        for u1 in 0..p {
            out.push((plan.node_of(u1, rb, u3), len));
        }
    }
    out
}

/// The gather step's pattern: active node `src = (u₁, u₂, u₃)` returns one
/// partial-product row slice (length `|block(u₃)|`) to each row owner in
/// `block(u₁)`; inactive nodes return nothing.
fn gather_pattern(plan: &Plan3d, src: usize) -> Vec<(usize, usize)> {
    if src >= plan.active() {
        return Vec::new();
    }
    let (u1, _, u3) = plan.digits(src);
    let len = plan.block_range(u3).len();
    plan.block_range(u1).map(|r| (r, len)).collect()
}

/// Phase A of a route step: split this node's real messages word-by-word
/// over the hashed relays, preserving the global enumeration order so
/// relays and destinations can reconstruct the streams.
fn send_via_relays(ctx: &mut RoundCtx<'_>, seed: u64, messages: &[(usize, Vec<u64>)]) {
    let n = ctx.n();
    let src = ctx.node();
    let mut per_relay: Vec<Vec<u64>> = vec![Vec::new(); n];
    for (dst, words) in messages {
        for (j, &w) in words.iter().enumerate() {
            per_relay[relay_of(seed, n, src, *dst, j)].push(w);
        }
    }
    for (relay, words) in per_relay.into_iter().enumerate() {
        if !words.is_empty() {
            ctx.send(relay, words);
        }
    }
}

/// Phase B of a route step: forward every word this node relayed to its
/// final destination, derived by re-enumerating each sender's oblivious
/// pattern (no headers on the wire — the pattern is common knowledge).
fn forward_as_relay(
    ctx: &mut RoundCtx<'_>,
    seed: u64,
    pattern: impl Fn(usize) -> Vec<(usize, usize)>,
) {
    let n = ctx.n();
    let me = ctx.node();
    let mut per_dst: Vec<Vec<u64>> = vec![Vec::new(); n];
    for src in 0..n {
        let stream = ctx.received(src);
        let mut cursor = 0usize;
        for (dst, len) in pattern(src) {
            for j in 0..len {
                if relay_of(seed, n, src, dst, j) == me {
                    per_dst[dst].push(stream[cursor]);
                    cursor += 1;
                }
            }
        }
        debug_assert_eq!(cursor, stream.len(), "relay stream fully consumed");
    }
    for (dst, words) in per_dst.into_iter().enumerate() {
        if !words.is_empty() {
            ctx.send(dst, words);
        }
    }
}

/// After phase B: reassemble, per source, the concatenated payloads of the
/// messages addressed to this node, in the source's emission order — the
/// exact view `Clique::route` would have delivered.
fn reassemble(
    ctx: &RoundCtx<'_>,
    seed: u64,
    pattern: impl Fn(usize) -> Vec<(usize, usize)>,
) -> Vec<Vec<u64>> {
    let n = ctx.n();
    let me = ctx.node();
    let mut cursors = vec![0usize; n]; // per-relay read positions
    let mut out: Vec<Vec<u64>> = vec![Vec::new(); n];
    for (src, out_src) in out.iter_mut().enumerate() {
        for (dst, len) in pattern(src) {
            if dst != me {
                continue;
            }
            for j in 0..len {
                let relay = relay_of(seed, n, src, dst, j);
                let stream = ctx.received(relay);
                out_src.push(stream[cursors[relay]]);
                cursors[relay] += 1;
            }
        }
    }
    out
}

/// Triangle counting as a per-node state machine: the 3D product `A² = A·A`
/// over ℤ followed by the distributed trace `tr(A²·A)`, with every
/// communication step balanced by coordinator-free oblivious relaying. See
/// the module docs for the round schedule and the cost-parity contract.
#[derive(Debug, Clone)]
pub struct TriangleProgram {
    /// This node's adjacency row (the only graph knowledge it holds).
    row: Vec<i64>,
    directed: bool,
    /// Relay-balancing seed; must equal the clique's `route_seed` for load
    /// parity with the closure algorithm.
    seed: u64,
    plan: Plan3d,
    /// This node's row of `A²`, assembled in round 4.
    sq_row: Vec<i64>,
    /// The triangle count, set in the final round.
    count: Option<u64>,
}

impl TriangleProgram {
    /// Builds node `v`'s program. `seed` is the clique's `route_seed`.
    #[must_use]
    pub fn new(g: &Graph, v: usize, seed: u64) -> Self {
        let n = g.n();
        Self {
            row: (0..n).map(|u| i64::from(g.has_edge(v, u))).collect(),
            directed: g.is_directed(),
            seed,
            plan: Plan3d::new(n),
            sq_row: Vec::new(),
            count: None,
        }
    }

    /// The triangle count, once the program has halted.
    #[must_use]
    pub fn count(&self) -> Option<u64> {
        self.count
    }

    /// The scatter messages node `me` emits (lengths follow
    /// [`scatter_pattern`]; contents are its own row slices).
    fn scatter_messages(&self, me: usize) -> Vec<(usize, Vec<u64>)> {
        let plan = &self.plan;
        let p = plan.p();
        let my_rb = plan.block_of_row(me);
        let encode = |r: std::ops::Range<usize>| -> Vec<u64> {
            self.row[r].iter().map(|&x| x as u64).collect()
        };
        let mut out = Vec::with_capacity(2 * p * p);
        for u2 in 0..p {
            let payload = encode(plan.block_range(u2));
            for u3 in 0..p {
                out.push((plan.node_of(my_rb, u2, u3), payload.clone()));
            }
        }
        for u3 in 0..p {
            let payload = encode(plan.block_range(u3));
            for u1 in 0..p {
                out.push((plan.node_of(u1, my_rb, u3), payload.clone()));
            }
        }
        out
    }
}

impl WireProgram for TriangleProgram {
    const KIND: &'static str = "cc.triangle";

    fn encode_state(&self) -> Vec<u64> {
        // Layout: [directed, seed, count-flag, count, |sq_row|, sq_row…,
        // row…]. The plan is derived state — decode recomputes it from `n`.
        let mut state = Vec::with_capacity(5 + self.sq_row.len() + self.row.len());
        state.push(u64::from(self.directed));
        state.push(self.seed);
        state.push(u64::from(self.count.is_some()));
        state.push(self.count.unwrap_or(0));
        state.push(self.sq_row.len() as u64);
        state.extend(self.sq_row.iter().map(|&x| x as u64));
        state.extend(self.row.iter().map(|&x| x as u64));
        state
    }

    fn decode_state(_node: usize, n: usize, state: &[u64]) -> Self {
        let sq_len = state[4] as usize;
        let (sq_row, row) = state[5..].split_at(sq_len);
        debug_assert_eq!(row.len(), n, "adjacency row must cover the clique");
        Self {
            row: row.iter().map(|&x| x as i64).collect(),
            directed: state[0] != 0,
            seed: state[1],
            plan: Plan3d::new(n),
            sq_row: sq_row.iter().map(|&x| x as i64).collect(),
            count: (state[2] != 0).then_some(state[3]),
        }
    }
}

impl NodeProgram for TriangleProgram {
    fn round(&mut self, ctx: &mut RoundCtx<'_>) -> Control {
        let n = ctx.n();
        let seed = self.seed;
        let plan = self.plan;
        match ctx.round() {
            // Scatter phase A: row slices word-hashed to relays.
            0 => {
                let msgs = self.scatter_messages(ctx.node());
                send_via_relays(ctx, seed, &msgs);
                Control::Continue
            }
            // Scatter phase B: forward as relay.
            1 => {
                forward_as_relay(ctx, seed, |src| scatter_pattern(&plan, src));
                Control::Continue
            }
            // Block product on the subcube owners; gather phase A.
            2 => {
                let me = ctx.node();
                let mut msgs: Vec<(usize, Vec<u64>)> = Vec::new();
                if me < plan.active() {
                    let from = reassemble(ctx, seed, |src| scatter_pattern(&plan, src));
                    let (u1, u2, u3) = plan.digits(me);
                    let (r1, r2, r3) = (
                        plan.block_range(u1),
                        plan.block_range(u2),
                        plan.block_range(u3),
                    );
                    let (h1, h2, h3) = (r1.len(), r2.len(), r3.len());
                    // Decode S and T blocks exactly as `semiring_mm` does:
                    // senders emit the S slice first, then (when the row's
                    // block is u₂) the T slice.
                    let mut s_blk = vec![0i64; h1 * h2];
                    let mut t_blk = vec![0i64; h2 * h3];
                    for (idx, r) in r1.clone().enumerate() {
                        let vals = &from[r];
                        for j in 0..h2 {
                            s_blk[idx * h2 + j] = vals[j] as i64;
                        }
                    }
                    for (idx, r) in r2.clone().enumerate() {
                        let vals = &from[r];
                        let off = if plan.block_of_row(r) == u1 { h2 } else { 0 };
                        for j in 0..h3 {
                            t_blk[idx * h3 + j] = vals[off + j] as i64;
                        }
                    }
                    // Schoolbook block product (ℤ, like IntRing).
                    let mut prod = vec![0i64; h1 * h3];
                    for i in 0..h1 {
                        for k in 0..h2 {
                            let s = s_blk[i * h2 + k];
                            if s == 0 {
                                continue;
                            }
                            for j in 0..h3 {
                                prod[i * h3 + j] += s * t_blk[k * h3 + j];
                            }
                        }
                    }
                    msgs = plan
                        .block_range(u1)
                        .enumerate()
                        .map(|(idx, r)| {
                            (
                                r,
                                prod[idx * h3..(idx + 1) * h3]
                                    .iter()
                                    .map(|&x| x as u64)
                                    .collect(),
                            )
                        })
                        .collect();
                }
                send_via_relays(ctx, seed, &msgs);
                Control::Continue
            }
            // Gather phase B: forward as relay.
            3 => {
                forward_as_relay(ctx, seed, |src| gather_pattern(&plan, src));
                Control::Continue
            }
            // Assemble the A² row; start the trace's transpose exchange.
            4 => {
                let me = ctx.node();
                let from = reassemble(ctx, seed, |src| gather_pattern(&plan, src));
                let p = plan.p();
                let rb = plan.block_of_row(me);
                let mut row = vec![0i64; n];
                for u2 in 0..p {
                    for u3 in 0..p {
                        // Active node (rb, u₂, u₃) addressed this row owner
                        // exactly one message — its partial-product slice
                        // over block(u₃) — so `from[u]` is that slice
                        // verbatim; accumulate in (u₂, u₃) order exactly
                        // like the closure algorithm's step 4.
                        let u = plan.node_of(rb, u2, u3);
                        let vals = &from[u];
                        for (slot, j) in plan.block_range(u3).enumerate() {
                            row[j] += vals[slot] as i64;
                        }
                    }
                }
                self.sq_row = row;
                // Transpose for the trace: send A[me][u] to u, one word per
                // ordered pair, exactly like `traces::transpose`.
                for u in 0..n {
                    if u != me {
                        ctx.send(u, vec![self.row[u] as u64]);
                    }
                }
                Control::Continue
            }
            // Local dot product; broadcast it (the `sum_all` of the trace).
            5 => {
                let me = ctx.node();
                let dot: i64 = (0..n)
                    .map(|v| {
                        let yt = if v == me {
                            self.row[me]
                        } else {
                            ctx.received(v)[0] as i64
                        };
                        self.sq_row[v] * yt
                    })
                    .sum();
                ctx.broadcast(vec![dot as u64]);
                Control::Continue
            }
            // Sum the broadcast dots: the trace, hence the count.
            _ => {
                let mut trace = 0i64;
                for src in 0..n {
                    for slab in ctx.broadcasts_from(src) {
                        trace += slab[0] as i64;
                    }
                }
                let denom = if self.directed { 3 } else { 6 };
                debug_assert_eq!(trace % denom, 0, "trace {trace} not divisible");
                self.count = Some((trace / denom) as u64);
                Control::Halt
            }
        }
    }
}

/// Runs [`TriangleProgram`] on the clique's engine and returns the count
/// every node agreed on.
///
/// Round-cost parity with [`crate::count_triangles_3d`] holds when the
/// clique uses [`cc_clique::RelayPolicy::SingleHash`] (the program's
/// header-free relaying reproduces that policy's hash exactly); under
/// two-choice relaying the counts still agree and the costs differ only by
/// the policy's balancing slack.
///
/// The programs go through [`Clique::run_wire_programs`], so on a
/// program-resident fabric (`CC_TRANSPORT=tcp-peer`) the per-node state
/// machines execute inside the worker processes and exchange rounds
/// directly with each other — with the count, rounds, words, and
/// fingerprints bit-identical to every other backend.
///
/// # Panics
///
/// Panics if `clique.n() != g.n()`.
pub fn count_triangles_program(clique: &mut Clique, g: &Graph) -> u64 {
    let n = clique.n();
    assert_eq!(g.n(), n, "graph and clique sizes must match");
    let seed = clique.config().route_seed;
    let programs = (0..n).map(|v| TriangleProgram::new(g, v, seed)).collect();
    let done = clique.phase("triangles_program", |c| c.run_wire_programs(programs));
    let count = done[0].count().expect("program ran to completion");
    debug_assert!(
        done.iter().all(|p| p.count() == Some(count)),
        "all nodes must agree on the count"
    );
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triangles::count_triangles_3d;
    use cc_clique::{CliqueConfig, ExecutorKind, RelayPolicy};
    use cc_graph::{generators, oracle};

    /// A clique whose routing policy the program's header-free relaying
    /// reproduces exactly.
    fn single_hash_clique(n: usize, executor: ExecutorKind) -> Clique {
        Clique::with_config(
            n,
            CliqueConfig {
                relay_policy: RelayPolicy::SingleHash,
                executor,
                exec_cutover: Some(2),
                ..CliqueConfig::default()
            },
        )
    }

    #[test]
    fn counts_match_the_oracle() {
        for g in [
            generators::complete(9),
            generators::petersen(),
            generators::grid(3, 4),
            generators::gnp(20, 0.3, 7),
            generators::gnp(27, 0.25, 3),
        ] {
            let mut clique = single_hash_clique(g.n(), ExecutorKind::Sequential);
            assert_eq!(
                count_triangles_program(&mut clique, &g),
                oracle::count_triangles(&g),
                "n={} m={}",
                g.n(),
                g.m()
            );
        }
    }

    #[test]
    fn directed_counts_match() {
        for seed in 0..3 {
            let g = generators::gnp_directed(15, 0.2, seed);
            let mut clique = single_hash_clique(15, ExecutorKind::Sequential);
            assert_eq!(
                count_triangles_program(&mut clique, &g),
                oracle::count_triangles(&g),
                "seed={seed}"
            );
        }
    }

    /// The satellite contract: the state machine's counts *and* round
    /// costs match the closure-based `count_triangles` algorithm (its 3D
    /// engine, on the routing policy the program replicates) — not merely
    /// approximately, but word-for-word and round-for-round.
    #[test]
    fn counts_and_round_costs_match_count_triangles() {
        for (n, p, seed) in [(16usize, 0.4, 1u64), (27, 0.3, 2), (30, 0.25, 5)] {
            let g = generators::gnp(n, p, seed);

            let mut closure_clique = single_hash_clique(n, ExecutorKind::Sequential);
            let closure_count = count_triangles_3d(&mut closure_clique, &g);

            let mut program_clique = single_hash_clique(n, ExecutorKind::Sequential);
            let program_count = count_triangles_program(&mut program_clique, &g);

            assert_eq!(program_count, closure_count, "n={n} counts must match");
            assert_eq!(
                program_clique.rounds(),
                closure_clique.rounds(),
                "n={n} round costs must match the closure algorithm"
            );
            assert_eq!(
                program_clique.stats().words(),
                closure_clique.stats().words(),
                "n={n} word costs must match the closure algorithm"
            );
        }
    }

    #[test]
    fn program_is_executor_independent() {
        let g = generators::gnp(24, 0.3, 11);
        let run = |kind: ExecutorKind| {
            let mut clique = single_hash_clique(24, kind);
            let count = count_triangles_program(&mut clique, &g);
            (count, clique.rounds(), clique.stats().words())
        };
        let seq = run(ExecutorKind::Sequential);
        let pooled = run(ExecutorKind::Parallel { threads: 4 });
        let spawn = run(ExecutorKind::Spawn { threads: 3 });
        assert_eq!(seq, pooled, "pooled backend must match sequential");
        assert_eq!(seq, spawn, "spawn backend must match sequential");
        assert_eq!(seq.0, oracle::count_triangles(&g));
    }

    #[test]
    fn wire_state_round_trips_mid_run_and_after_halt() {
        // The resident contract: encode/decode must reproduce the program
        // exactly at *any* barrier, not just before round 0 — workers
        // re-encode final states for collection, and a decoded program must
        // behave bit-identically from wherever it was snapshotted.
        let g = generators::gnp(12, 0.4, 9);
        let mut clique = single_hash_clique(12, ExecutorKind::Sequential);
        let done = clique.phase("t", |c| {
            c.run_programs((0..12).map(|v| TriangleProgram::new(&g, v, 7)).collect())
        });
        for (node, p) in done.iter().enumerate() {
            let back = TriangleProgram::decode_state(node, 12, &WireProgram::encode_state(p));
            assert_eq!(back.row, p.row, "node {node}");
            assert_eq!(back.sq_row, p.sq_row, "node {node}");
            assert_eq!(back.count, p.count, "node {node}");
            assert_eq!(back.seed, p.seed);
            assert_eq!(back.directed, p.directed);
        }
        // Pre-run state (empty sq_row, no count) survives the trip too.
        let fresh = TriangleProgram::new(&g, 3, 7);
        let back = TriangleProgram::decode_state(3, 12, &WireProgram::encode_state(&fresh));
        assert_eq!(back.sq_row, fresh.sq_row);
        assert_eq!(back.count, None);
    }

    #[test]
    fn two_choice_policy_still_counts_correctly() {
        // Under two-choice relaying the loads differ (the program replays
        // the single-hash policy), but the delivered words — and the count
        // — are identical.
        let g = generators::gnp(18, 0.35, 4);
        let mut clique = Clique::new(18);
        assert_eq!(
            count_triangles_program(&mut clique, &g),
            oracle::count_triangles(&g)
        );
    }
}
