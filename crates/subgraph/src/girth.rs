//! Girth computation (Theorem 15 and Corollary 16).

use crate::colour_coding;
use crate::four_cycle_detection;
use crate::triangles;
use cc_clique::{pack_pair, unpack_pair, Clique};
use cc_core::{boolean, FastPlan, RowMatrix};
use cc_graph::Graph;

/// Parameters for the undirected girth algorithm.
#[derive(Debug, Clone, Copy)]
pub struct GirthConfig {
    /// The cut-off cycle length `ℓ = ⌈2 + 2/ρ⌉` of Theorem 15: denser
    /// graphs than the Lemma 14 bound for girth `ℓ` must contain a cycle of
    /// length at most `ℓ`. Defaults to `9`, matching
    /// `ρ = 1 − 2/log₂ 7 ≈ 0.2876` (Strassen; the paper's
    /// `ρ < 0.1572` would give `ℓ = 15`).
    pub ell: usize,
    /// Random colourings attempted per cycle length `k ≥ 5` (lengths 3 and
    /// 4 use the deterministic counting/detection algorithms).
    pub trials: usize,
    /// RNG seed for the colour-coding trials.
    pub seed: u64,
}

impl Default for GirthConfig {
    fn default() -> Self {
        Self {
            ell: 9,
            trials: 100,
            seed: 0xc1c1e,
        }
    }
}

/// Computes the girth of an undirected, unweighted graph in `Õ(n^ρ)`
/// rounds (Theorem 15); returns `None` for forests.
///
/// Dense graphs (more than `n^{1+1/⌊ℓ/2⌋} + n` edges) must have girth at
/// most `ℓ` by the Lemma 14 trade-off, so short cycles are searched with
/// matrix-multiplication detectors (triangle counting for `k = 3`, the
/// Theorem 4 detector for `k = 4`, colour coding beyond). Sparse graphs are
/// simply gathered everywhere in `O(m/n)` rounds and solved locally.
///
/// The colour-coding stage is one-sided Monte Carlo; if it misses every
/// `k ≤ ℓ` (probability vanishing in `cfg.trials`) the algorithm falls back
/// to gathering the graph, preserving correctness at extra round cost.
///
/// # Panics
///
/// Panics if the graph is directed or sizes mismatch.
pub fn girth(clique: &mut Clique, g: &Graph, cfg: GirthConfig) -> Option<usize> {
    let n = clique.n();
    assert_eq!(g.n(), n, "graph and clique sizes must match");
    assert!(!g.is_directed(), "use directed_girth for directed graphs");

    clique.phase("girth", |clique| {
        // Everyone learns the edge count from the degree broadcast.
        let total_deg = clique.sum_all(|v| g.degree(v) as i64);
        let m = (total_deg / 2) as f64;
        let threshold = (n as f64).powf(1.0 + 1.0 / (cfg.ell / 2) as f64) + n as f64;

        if m <= threshold {
            return gather_and_solve(clique, g);
        }

        // Dense: girth ≤ ℓ. Try increasing cycle lengths.
        if triangles::count_triangles(clique, g) > 0 {
            return Some(3);
        }
        if four_cycle_detection::detect_4cycle(clique, g) {
            return Some(4);
        }
        for k in 5..=cfg.ell {
            if colour_coding::detect_k_cycle(clique, g, k, cfg.seed ^ k as u64, cfg.trials) {
                return Some(k);
            }
        }
        // Monte Carlo missed (or the graph is a pathological borderline
        // case); fall back to the exact gather path.
        gather_and_solve(clique, g)
    })
}

fn gather_and_solve(clique: &mut Clique, g: &Graph) -> Option<usize> {
    // Per-node edge packing runs on the configured executor; relay
    // assignment and round costs are identical to the sequential gossip.
    let words = clique.gossip_par(|v| {
        g.neighbors(v)
            .filter(|&u| u > v)
            .map(|u| pack_pair(v, u))
            .collect()
    });
    let mut local = Graph::undirected(g.n());
    for w in words {
        let (u, v) = unpack_pair(w);
        local.add_edge(u, v);
    }
    cc_graph::oracle::girth(&local)
}

/// Computes the girth of a directed graph in `Õ(n^ρ)` rounds
/// (Corollary 16); returns `None` for acyclic graphs. Deterministic.
///
/// Uses the Itai–Rodeh doubling scheme: Boolean matrices
/// `B⁽ⁱ⁾[u][v] = 1` iff a path of length `1..=i` runs from `u` to `v`,
/// computed by `B⁽²ⁱ⁾ = B⁽ⁱ⁾B⁽ⁱ⁾ ∨ A` (equation 4). The first power of two
/// with a non-trivial diagonal brackets the girth; binary search with the
/// stored powers pins it down with `O(log n)` further products.
///
/// # Panics
///
/// Panics if the graph is undirected or sizes mismatch.
pub fn directed_girth(clique: &mut Clique, g: &Graph) -> Option<usize> {
    let n = clique.n();
    assert_eq!(g.n(), n, "graph and clique sizes must match");
    assert!(g.is_directed(), "use girth for undirected graphs");

    let alg = FastPlan::best_strassen(n);
    let a = RowMatrix::par_from_fn(&clique.executor(), n, |u, v| g.has_edge(u, v));

    clique.phase("directed_girth", |clique| {
        let has_cycle_diag =
            |clique: &mut Clique, b: &RowMatrix<bool>| clique.or_all(|v| b.row(v)[v]);

        // Doubling phase: B(1), B(2), B(4), ...
        let mut powers: Vec<RowMatrix<bool>> = vec![a.clone()]; // powers[j] = B(2^j)
        let mut reach = 1usize;
        loop {
            let last = powers.last().expect("non-empty");
            if has_cycle_diag(clique, last) {
                break;
            }
            if reach >= n {
                return None; // no closed walk of length ≤ n ⟹ acyclic
            }
            let next = boolean::multiply_or(clique, &alg, last, last, &a);
            powers.push(next);
            reach *= 2;
        }

        let hit = powers.len() - 1; // B(2^hit) has a diagonal one
        if hit == 0 {
            return Some(1); // cannot happen without self-loops, but sound
        }
        // Girth lies in (2^(hit-1), 2^hit]. Walk the remaining powers.
        let mut lo = 1usize << (hit - 1);
        let mut lo_mat = powers[hit - 1].clone();
        for j in (0..hit - 1).rev() {
            // Candidate B(lo + 2^j) = B(lo)·B(2^j) ∨ A.
            let cand = boolean::multiply_or(clique, &alg, &lo_mat, &powers[j], &a);
            if !has_cycle_diag(clique, &cand) {
                lo += 1 << j;
                lo_mat = cand;
            }
        }
        Some(lo + 1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{generators, oracle};

    fn check_undirected(g: &Graph) {
        let mut clique = Clique::new(g.n());
        assert_eq!(
            girth(&mut clique, g, GirthConfig::default()),
            oracle::girth(g),
            "n={} m={}",
            g.n(),
            g.m()
        );
    }

    fn check_directed(g: &Graph) {
        let mut clique = Clique::new(g.n());
        assert_eq!(directed_girth(&mut clique, g), oracle::directed_girth(g));
    }

    #[test]
    fn sparse_graphs_take_the_gather_path() {
        check_undirected(&generators::cycle(11));
        check_undirected(&generators::petersen());
        check_undirected(&generators::path(9));
        check_undirected(&generators::grid(4, 4));
    }

    #[test]
    fn dense_graphs_take_the_detection_path() {
        // K_16: m = 120 > 16^{1.25} + 16 ≈ 48: dense, girth 3.
        let g = generators::complete(16);
        let mut clique = Clique::new(16);
        assert_eq!(girth(&mut clique, &g, GirthConfig::default()), Some(3));

        // Dense bipartite: triangle-free, girth 4, m = 256 > 32^{1.25}+32 ≈ 108.
        let b = generators::complete_bipartite(16, 16);
        let mut clique = Clique::new(32);
        assert_eq!(girth(&mut clique, &b, GirthConfig::default()), Some(4));
    }

    #[test]
    fn random_graphs_match_oracle() {
        for seed in 0..4 {
            check_undirected(&generators::gnp(20, 0.1, seed));
            check_undirected(&generators::gnp(24, 0.3, seed + 7));
        }
    }

    #[test]
    fn directed_cycles_of_every_length() {
        for len in [2usize, 3, 5, 8, 11] {
            check_directed(&generators::directed_cycle(len));
        }
    }

    #[test]
    fn directed_girth_on_random_and_acyclic_graphs() {
        for seed in 0..5 {
            check_directed(&generators::gnp_directed(18, 0.15, seed));
        }
        // DAG: edges only forward.
        let mut dag = Graph::directed(12);
        for u in 0..12 {
            for v in (u + 1)..12 {
                if (u + v) % 3 == 0 {
                    dag.add_edge(u, v);
                }
            }
        }
        check_directed(&dag);
    }

    #[test]
    fn directed_girth_mixed_lengths() {
        // Two disjoint directed cycles: girth is the shorter one.
        let g = generators::disjoint_union(
            &generators::directed_cycle(7),
            &generators::directed_cycle(4),
        );
        check_directed(&g);
    }
}
