//! Constant-round 4-cycle detection (Theorem 4, Lemmas 12–13).
//!
//! The paper's only purely combinatorial contribution: detect a 4-cycle in
//! `O(1)` rounds without matrix multiplication.
//!
//! 1. **Degree phase.** Everyone broadcasts its degree. Node `x` computes
//!    `|P(x,∗,∗)| = Σ_{y ∈ N(x)} deg(y)`, the number of 2-walks starting at
//!    `x`. If this reaches `2n−1`, pigeonhole forces two distinct 2-walks to
//!    a common endpoint `z ≠ x`, i.e. a 4-cycle — stop.
//! 2. **Tile phase (Lemma 12).** Otherwise `Σ_y deg(y)² < 2n²`, so disjoint
//!    tiles `A(y) × B(y)` with `|A(y)| = |B(y)| ≥ deg(y)/8` fit in a
//!    `k × k` square (`k` = largest power of two ≤ n), allocated by a buddy
//!    (quadtree) scheme all nodes compute identically from the broadcast
//!    degrees.
//! 3. **Distribution phase (Lemma 13).** `y` splits `N(y)` into pieces
//!    `N_A(y,a)` of size ≤ 8, ships them along the tile rows and columns,
//!    and the column nodes `b` reassemble the 2-walk sets `W(b)` — a
//!    partition of all 2-walks with `|W(b)| = O(n)`.
//! 4. **Gather phase.** Each walk `(x, y, z)` is routed to `x` (per-node
//!    loads are `O(n)`, so this is `O(1)` rounds); `x` reports a 4-cycle
//!    iff two walks share an endpoint `z ≠ x`.

use cc_clique::{pack_pair, unpack_pair, Clique};
use cc_graph::Graph;
use std::collections::BTreeMap;

/// One tile `A(y) × B(y)` of the Lemma 12 allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// First row (node id) of `A(y)`.
    pub row0: usize,
    /// First column (node id) of `B(y)`.
    pub col0: usize,
    /// Side length `f(y)` (a power of two).
    pub size: usize,
}

/// The deterministic tile allocation of Lemma 12: disjoint squares
/// `A(y) × B(y) ⊆ [k] × [k]` with side `f(y) = max(1, 2^⌊log₂(deg(y)/4)⌋)`
/// for every node of positive degree.
///
/// All nodes compute the same plan from the broadcast degree sequence.
#[derive(Debug, Clone)]
pub struct TilePlan {
    k: usize,
    tiles: Vec<Option<Tile>>,
}

impl TilePlan {
    /// Allocates tiles for the given degree sequence.
    ///
    /// # Panics
    ///
    /// Panics if the tiles cannot fit, i.e. `Σ f(y)² > k²`. The caller must
    /// guarantee `Σ deg(y)² < 2n²` and `n ≥ 8` (the phase-1 test of the
    /// detection algorithm establishes exactly this).
    #[must_use]
    pub fn allocate(degrees: &[usize]) -> Self {
        let n = degrees.len();
        let k = usize::BITS - n.leading_zeros() - 1;
        let k = 1usize << k; // largest power of two ≤ n
        let f = |deg: usize| -> usize {
            if deg == 0 {
                0
            } else if deg < 8 {
                1
            } else {
                let t = deg / 4;
                1 << (usize::BITS - t.leading_zeros() - 1)
            }
        };
        let mut order: Vec<(usize, usize)> = degrees
            .iter()
            .enumerate()
            .map(|(y, &d)| (y, f(d)))
            .filter(|&(_, s)| s > 0)
            .collect();
        // Largest tiles first; ties by node id for determinism.
        order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        // Buddy allocator over the k × k square.
        let mut free: BTreeMap<usize, Vec<(usize, usize)>> = BTreeMap::new();
        free.insert(k, vec![(0, 0)]);
        let mut tiles = vec![None; n];
        for (y, size) in order {
            // Find the smallest free block that fits.
            let found = free
                .range(size..)
                .find(|(_, blocks)| !blocks.is_empty())
                .map(|(&s, _)| s);
            let mut s = found.unwrap_or_else(|| {
                panic!("tile allocation overflow (Lemma 12 precondition violated)")
            });
            let (mut r, mut c) = free
                .get_mut(&s)
                .expect("found size")
                .pop()
                .expect("non-empty");
            // Split down to the requested size, quadrant by quadrant.
            while s > size {
                s /= 2;
                let e = free.entry(s).or_default();
                e.push((r + s, c + s));
                e.push((r + s, c));
                e.push((r, c + s));
                // Keep the top-left quadrant; keep free lists deterministic.
            }
            let _ = (&mut r, &mut c);
            tiles[y] = Some(Tile {
                row0: r,
                col0: c,
                size,
            });
        }
        Self { k, tiles }
    }

    /// Side of the allocation square (largest power of two ≤ n).
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The tile of node `y`, if `deg(y) > 0`.
    #[must_use]
    pub fn tile(&self, y: usize) -> Option<Tile> {
        self.tiles[y]
    }

    /// Nodes whose tile's row range `A(y)` contains node `a`.
    #[must_use]
    pub fn tiles_with_row(&self, a: usize) -> Vec<usize> {
        self.tiles
            .iter()
            .enumerate()
            .filter_map(|(y, t)| {
                t.filter(|t| (t.row0..t.row0 + t.size).contains(&a))
                    .map(|_| y)
            })
            .collect()
    }

    /// Nodes whose tile's column range `B(y)` contains node `b`.
    #[must_use]
    pub fn tiles_with_col(&self, b: usize) -> Vec<usize> {
        self.tiles
            .iter()
            .enumerate()
            .filter_map(|(y, t)| {
                t.filter(|t| (t.col0..t.col0 + t.size).contains(&b))
                    .map(|_| y)
            })
            .collect()
    }

    /// ASCII rendering of the allocation (Figure 3): the `k × k` square with
    /// each tile drawn as a letter block (scaled down for large `k`).
    #[must_use]
    pub fn render_figure(&self) -> String {
        let scale = (self.k / 32).max(1);
        let side = self.k / scale;
        let mut grid = vec![vec!['·'; side]; side];
        for (y, t) in self.tiles.iter().enumerate() {
            if let Some(t) = t {
                let ch = char::from(b'A' + (y % 26) as u8);
                #[allow(clippy::needless_range_loop)] // r, c are geometry coordinates
                for r in (t.row0 / scale)..((t.row0 + t.size).div_ceil(scale)).min(side) {
                    for c in (t.col0 / scale)..((t.col0 + t.size).div_ceil(scale)).min(side) {
                        grid[r][c] = ch;
                    }
                }
            }
        }
        let mut out = format!(
            "tile allocation over the {0}×{0} square (Figure 3), 1 char = {1}×{1} cells:\n",
            self.k, scale
        );
        for row in grid {
            out.push_str(&row.into_iter().collect::<String>());
            out.push('\n');
        }
        out
    }

    fn check_disjoint(&self) -> bool {
        let mut seen = vec![false; self.k * self.k];
        for t in self.tiles.iter().flatten() {
            for r in t.row0..t.row0 + t.size {
                for c in t.col0..t.col0 + t.size {
                    if seen[r * self.k + c] {
                        return false;
                    }
                    seen[r * self.k + c] = true;
                }
            }
        }
        true
    }
}

/// Splits a sorted neighbour list into `parts` pieces of size ≤ 8 by
/// round-robin; piece `j` is `N_A(y, row0+j)` / `N_B(y, col0+j)`.
fn piece(neighbors: &[usize], parts: usize, j: usize) -> Vec<usize> {
    neighbors.iter().copied().skip(j).step_by(parts).collect()
}

/// Detects whether the graph contains a 4-cycle, in `O(1)` rounds
/// (Theorem 4).
///
/// For `n < 8` the tile square cannot be guaranteed to fit and the
/// algorithm falls back to gathering the (constant-size) graph.
///
/// # Panics
///
/// Panics if `clique.n() != g.n()` or the graph is directed.
///
/// # Examples
///
/// ```rust
/// use cc_clique::Clique;
/// use cc_graph::generators;
/// use cc_subgraph::detect_4cycle;
///
/// let g = generators::grid(3, 3); // grids are full of 4-cycles
/// let mut clique = Clique::new(9);
/// assert!(detect_4cycle(&mut clique, &g));
///
/// let t = generators::petersen(); // girth 5: no 4-cycle
/// let mut clique = Clique::new(10);
/// assert!(!detect_4cycle(&mut clique, &t));
/// ```
pub fn detect_4cycle(clique: &mut Clique, g: &Graph) -> bool {
    let n = clique.n();
    assert_eq!(g.n(), n, "graph and clique sizes must match");
    assert!(!g.is_directed(), "Theorem 4 applies to undirected graphs");

    clique.phase("detect_c4", |clique| {
        // Per-node work (piece generation, walk reassembly, the final
        // endpoint scan) runs on the configured executor via the `_par`
        // primitives; costs and results are identical to the sequential
        // path.
        let exec = clique.executor();
        if n < 8 {
            let words = clique.gossip_par(|v| {
                g.neighbors(v)
                    .filter(|&u| u > v)
                    .map(|u| pack_pair(v, u))
                    .collect()
            });
            let mut local = Graph::undirected(n);
            for w in words {
                let (u, v) = unpack_pair(w);
                local.add_edge(u, v);
            }
            return cc_graph::oracle::has_k_cycle(&local, 4);
        }

        // Phase 1: broadcast degrees; pigeonhole test.
        let degrees: Vec<usize> = clique
            .broadcast(|v| g.degree(v) as u64)
            .into_iter()
            .map(|w| w as usize)
            .collect();
        let two_walks: Vec<usize> =
            exec.map(n, |x| g.neighbors(x).map(|y| degrees[y]).sum::<usize>());
        if clique.or_all(|x| two_walks[x] >= 2 * n - 1) {
            return true;
        }

        // Phase 2: Lemma 12 tile plan (identical local computation).
        let plan = TilePlan::allocate(&degrees);
        debug_assert!(plan.check_disjoint(), "Lemma 12: tiles must be disjoint");

        let sorted_neighbors: Vec<Vec<usize>> = exec.map(n, |y| g.neighbors(y).collect());

        // Step 1: y sends N_A(y, a) to each a ∈ A(y); ≤ 8 words per link.
        let inbox_a = clique.exchange_par(|y| {
            let Some(t) = plan.tile(y) else {
                return Vec::new();
            };
            (0..t.size)
                .map(|j| {
                    (
                        t.row0 + j,
                        piece(&sorted_neighbors[y], t.size, j)
                            .iter()
                            .map(|&x| x as u64)
                            .collect(),
                    )
                })
                .collect()
        });

        // Step 2: a forwards N_A(y, a) to each b ∈ B(y); the tiles are
        // disjoint, so each (a, b) link carries at most one piece (≤ 8 words).
        let inbox_b = clique.exchange_par(|a| {
            let mut out = Vec::new();
            for y in plan.tiles_with_row(a) {
                let t = plan.tile(y).expect("tile exists");
                let payload: Vec<u64> = inbox_a.received(a, y).to_vec();
                for j in 0..t.size {
                    out.push((t.col0 + j, payload.clone()));
                }
            }
            out
        });

        // Step 3 (local): b reassembles N(y) and builds W(y, b).
        // Step 4: route each walk (x, y, z) to x.
        let walks = clique.route_dynamic_par(|b| {
            let mut out = Vec::new();
            for y in plan.tiles_with_col(b) {
                let t = plan.tile(y).expect("tile exists");
                // N(y) = interleaved union of the pieces from all a ∈ A(y).
                let mut ny = Vec::with_capacity(degrees[y]);
                let pieces: Vec<&[u64]> = (0..t.size)
                    .map(|j| inbox_b.received(b, t.row0 + j))
                    .collect();
                let mut idx = 0;
                loop {
                    let mut any = false;
                    for p in &pieces {
                        if let Some(&w) = p.get(idx) {
                            ny.push(w as usize);
                            any = true;
                        }
                    }
                    if !any {
                        break;
                    }
                    idx += 1;
                }
                debug_assert_eq!(ny.len(), degrees[y], "N({y}) reassembly");
                ny.sort_unstable();
                let nb = piece(&ny, t.size, b - t.col0);
                let mut count = 0usize;
                for &x in &ny {
                    for &z in &nb {
                        out.push((x, vec![pack_pair(y, z)]));
                        count += 1;
                    }
                }
                debug_assert!(count <= 8 * degrees[y], "Lemma 13 bound per tile");
            }
            out
        });

        // Each x checks for two walks meeting at the same z ≠ x (scanned on
        // the executor; the verdict is one OR-reduce round).
        let found = exec.map(n, |x| {
            let mut seen: Vec<(usize, usize)> = Vec::new(); // (z, y)
            for src in 0..n {
                for &w in walks.received(x, src) {
                    let (y, z) = unpack_pair(w);
                    if z == x {
                        continue;
                    }
                    if seen.iter().any(|&(zz, yy)| zz == z && yy != y) {
                        return true;
                    }
                    seen.push((z, y));
                }
            }
            false
        });
        clique.or_all(|x| found[x])
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators;
    use cc_graph::oracle;

    fn check(g: &Graph) {
        let mut clique = Clique::new(g.n());
        assert_eq!(
            detect_4cycle(&mut clique, g),
            oracle::has_k_cycle(g, 4),
            "graph with n={} m={}",
            g.n(),
            g.m()
        );
    }

    #[test]
    fn tile_plan_is_disjoint_and_sized() {
        for seed in 0..5 {
            let g = generators::gnp(40, 0.2, seed);
            let degrees: Vec<usize> = (0..40).map(|v| g.degree(v)).collect();
            if degrees.iter().map(|&d| d * d).sum::<usize>() >= 2 * 40 * 40 {
                continue;
            }
            let plan = TilePlan::allocate(&degrees);
            assert!(plan.check_disjoint(), "seed {seed}");
            for (y, &d) in degrees.iter().enumerate() {
                if d > 0 {
                    let t = plan.tile(y).expect("tile for positive degree");
                    assert!(t.size * 8 >= d, "f(y) ≥ deg/8 violated: {t:?} deg {d}");
                    assert!(t.size.is_power_of_two());
                }
            }
        }
    }

    #[test]
    fn detects_on_positive_graphs() {
        check(&generators::cycle(4));
        check(&generators::grid(3, 3));
        check(&generators::complete(8));
        check(&generators::complete_bipartite(2, 2));
        check(&generators::complete_bipartite(5, 5));
    }

    #[test]
    fn rejects_on_negative_graphs() {
        check(&generators::petersen());
        check(&generators::cycle(9));
        check(&generators::path(12));
        check(&generators::complete(3).padded(7));
    }

    #[test]
    fn random_graphs_match_oracle() {
        for seed in 0..8 {
            check(&generators::gnp(24, 0.08, seed));
            check(&generators::gnp(24, 0.15, seed + 100));
        }
    }

    #[test]
    fn dense_graphs_hit_the_pigeonhole_path() {
        let g = generators::complete(32);
        let mut clique = Clique::new(32);
        assert!(detect_4cycle(&mut clique, &g));
        // Degree broadcast + OR: just a few rounds.
        assert!(
            clique.rounds() <= 4,
            "pigeonhole path should be ~2 rounds, got {}",
            clique.rounds()
        );
    }

    #[test]
    fn rounds_are_constant_across_sizes() {
        // Sparse-ish graphs that exercise the full tile machinery. Averaged
        // over seeds: a single G(n, 1.5/n) instance has noticeable variance
        // in max degree and hence tile loads.
        let rounds = |n: usize| {
            let total: u64 = (0..5)
                .map(|seed| {
                    let g = generators::gnp(n, 1.5 / n as f64, 7 + seed);
                    let mut clique = Clique::new(n);
                    detect_4cycle(&mut clique, &g);
                    clique.rounds()
                })
                .sum();
            total / 5
        };
        let r32 = rounds(32);
        let r256 = rounds(256);
        assert!(
            r256 <= r32 + 16,
            "rounds should not grow with n: {r32} at n=32 vs {r256} at n=256"
        );
    }

    #[test]
    fn tiny_graphs_use_fallback() {
        check(&generators::cycle(4));
        check(&generators::path(5));
        check(&generators::complete(5));
    }

    #[test]
    fn figure_render_shows_tiles() {
        let g = generators::gnp(32, 0.3, 3);
        let degrees: Vec<usize> = (0..32).map(|v| g.degree(v)).collect();
        let plan = TilePlan::allocate(&degrees);
        let fig = plan.render_figure();
        assert!(fig.contains("32×32") || fig.contains("square"));
    }
}
