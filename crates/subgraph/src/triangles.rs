//! Triangle counting (Corollary 2, after Itai–Rodeh).

use crate::traces;
use cc_algebra::IntRing;
use cc_clique::Clique;
use cc_core::{fast_mm, semiring_mm, sparse_mm, RowMatrix};
use cc_graph::Graph;

/// Counts triangles in `O(n^ρ)` rounds: undirected triangles
/// `tr(A³)/6`, directed 3-cycles `tr(A³)/3` (Corollary 2).
///
/// The trace is computed as `tr(A²·A)` with one fast multiplication, a
/// transpose round, and a broadcast sum.
///
/// # Panics
///
/// Panics if `clique.n() != g.n()`.
///
/// # Examples
///
/// ```rust
/// use cc_clique::Clique;
/// use cc_graph::generators;
/// use cc_subgraph::count_triangles;
///
/// let g = generators::complete(5);
/// let mut clique = Clique::new(5);
/// assert_eq!(count_triangles(&mut clique, &g), 10);
/// ```
pub fn count_triangles(clique: &mut Clique, g: &Graph) -> u64 {
    let n = clique.n();
    assert_eq!(g.n(), n, "graph and clique sizes must match");
    let a = RowMatrix::par_from_fn(&clique.executor(), n, |u, v| i64::from(g.has_edge(u, v)));
    clique.phase("triangles", |clique| {
        let a2 = fast_mm::multiply_auto(clique, &IntRing, &a, &a);
        let tr = traces::trace_of_product(clique, &a2, &a);
        finish_count(clique, g, tr)
    })
}

/// Density-dispatching triangle count: the square `A²` goes through the
/// sparse/dense front door ([`cc_core::sparse_mm::multiply_auto_ring`]),
/// so sparse graphs ride the Le Gall 2016 nnz-aware path (rounds bound by
/// `Σ deg(y)²/n`, constant for bounded degree) while dense graphs fall
/// back to the fast bilinear engine — automatically, from one degree
/// census (`CC_MM=sparse|dense` overrides).
///
/// # Panics
///
/// Panics if `clique.n() != g.n()`.
pub fn count_triangles_auto(clique: &mut Clique, g: &Graph) -> u64 {
    let n = clique.n();
    assert_eq!(g.n(), n, "graph and clique sizes must match");
    let a = RowMatrix::par_from_fn(&clique.executor(), n, |u, v| i64::from(g.has_edge(u, v)));
    clique.phase("triangles", |clique| {
        let a2 = sparse_mm::multiply_auto_ring(clique, &IntRing, &a, &a);
        let tr = traces::trace_of_product(clique, &a2, &a);
        finish_count(clique, g, tr)
    })
}

/// [`count_triangles`] with the product computed by the 3D *semiring*
/// algorithm instead of the fast bilinear one — `O(n^{1/3})` rounds with
/// smaller constants at moderate `n` (this is, in essence, the Dolev et al.
/// bound achieved through Theorem 1's first part). Exposed so experiments
/// can compare the two engines on identical workloads.
///
/// # Panics
///
/// Panics if `clique.n() != g.n()`.
pub fn count_triangles_3d(clique: &mut Clique, g: &Graph) -> u64 {
    let n = clique.n();
    assert_eq!(g.n(), n, "graph and clique sizes must match");
    let a = RowMatrix::par_from_fn(&clique.executor(), n, |u, v| i64::from(g.has_edge(u, v)));
    clique.phase("triangles3d", |clique| {
        let a2 = semiring_mm::multiply(clique, &IntRing, &a, &a);
        let tr = traces::trace_of_product(clique, &a2, &a);
        finish_count(clique, g, tr)
    })
}

fn finish_count(_clique: &mut Clique, g: &Graph, tr: i64) -> u64 {
    let denom = if g.is_directed() { 3 } else { 6 };
    debug_assert_eq!(tr % denom, 0, "trace {tr} not divisible by {denom}");
    (tr / denom) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{generators, oracle};

    fn check(g: &Graph) {
        let mut clique = Clique::new(g.n());
        assert_eq!(count_triangles(&mut clique, g), oracle::count_triangles(g));
    }

    #[test]
    fn known_undirected_graphs() {
        check(&generators::complete(4));
        check(&generators::complete(7));
        check(&generators::cycle(5));
        check(&generators::petersen());
        check(&generators::complete_bipartite(3, 4));
        check(&generators::grid(3, 3));
    }

    #[test]
    fn random_graphs_match_oracle() {
        for seed in 0..4 {
            check(&generators::gnp(20, 0.3, seed));
            check(&generators::gnp(33, 0.15, seed + 10));
        }
    }

    #[test]
    fn directed_graphs_match_oracle() {
        check(&generators::directed_cycle(3));
        for seed in 0..3 {
            check(&generators::gnp_directed(15, 0.2, seed));
        }
    }

    #[test]
    fn empty_and_sparse() {
        check(&generators::path(8));
        check(&Graph::undirected(6));
    }

    #[test]
    fn semiring_3d_variant_matches_fast_variant() {
        for seed in 0..3 {
            let g = generators::gnp(24, 0.3, seed);
            let mut c1 = Clique::new(24);
            let mut c2 = Clique::new(24);
            assert_eq!(
                count_triangles(&mut c1, &g),
                count_triangles_3d(&mut c2, &g),
                "seed={seed}"
            );
        }
        let d = generators::gnp_directed(15, 0.2, 4);
        let mut clique = Clique::new(15);
        assert_eq!(
            count_triangles_3d(&mut clique, &d),
            oracle::count_triangles(&d)
        );
    }

    #[test]
    fn auto_dispatch_matches_oracle_on_both_regimes() {
        // Sparse regime (bounded degree) and dense regime through the same
        // front door; both must agree with the centralized oracle.
        for g in [
            generators::gnp(32, 1.5 / 32.0, 3),
            generators::cycle(24),
            generators::gnp(24, 0.5, 4),
            generators::complete(16),
        ] {
            let mut clique = Clique::new(g.n());
            assert_eq!(
                count_triangles_auto(&mut clique, &g),
                oracle::count_triangles(&g),
                "n={} m={}",
                g.n(),
                g.m()
            );
        }
    }

    #[test]
    fn auto_dispatch_is_cheaper_on_sparse_graphs() {
        // The point of the front door: a bounded-degree graph must cost
        // less through dispatch than through the always-dense engine.
        let g = generators::gnp(64, 1.5 / 64.0, 9);
        let mut ca = Clique::new(64);
        let auto = count_triangles_auto(&mut ca, &g);
        let mut cd = Clique::new(64);
        let dense = count_triangles(&mut cd, &g);
        assert_eq!(auto, dense);
        if cc_core::sparse_mm::forced_kind().is_none() {
            assert!(
                ca.stats().words() < cd.stats().words(),
                "dispatched words {} vs dense words {}",
                ca.stats().words(),
                cd.stats().words()
            );
        }
    }

    #[test]
    fn round_cost_is_sublinear() {
        let g = generators::gnp(64, 0.4, 2);
        let mut clique = Clique::new(64);
        count_triangles(&mut clique, &g);
        assert!(
            clique.rounds() < 64,
            "triangle counting should be well below n rounds (got {})",
            clique.rounds()
        );
    }
}
