//! # cc-subgraph: subgraph detection and counting in the congested clique
//!
//! Distributed implementations of the paper's Section 3.1–3.2 applications:
//!
//! * [`count_triangles`] / [`count_4cycles`] — Corollary 2: trace-formula
//!   counting in `O(n^ρ)` rounds via fast matrix multiplication;
//! * [`count_5cycles`] — the 5-cycle trace formula the paper notes in
//!   passing (Alon–Yuster–Zwick);
//! * [`colour_coding`] — Lemma 11 and Theorem 3: `k`-cycle detection via
//!   colour coding in `2^{O(k)} n^ρ log n` rounds;
//! * [`four_cycle_detection`] — Theorem 4: the novel **O(1)-round**
//!   combinatorial 4-cycle detector (Lemmas 12–13);
//! * [`girth`] — Theorem 15 and Corollary 16: girth of undirected and
//!   directed graphs in `Õ(n^ρ)` rounds.
//!
//! Since PR 3, sparse instances get first-class treatment (Le Gall,
//! PODC 2016): [`sparse_square`] is a thin wrapper over the general
//! [`cc_core::sparse_mm`] subsystem (the Theorem 4 two-walk gate in front),
//! and [`count_triangles_auto`] dispatches its `A²` between the sparse and
//! dense engines from a degree census.
//!
//! Every algorithm takes the input in the model's convention — node `v`
//! knows its incident edges — and is validated against the centralized
//! oracles of [`cc_graph::oracle`].
//!
//! ## Example
//!
//! ```rust
//! use cc_clique::Clique;
//! use cc_graph::generators;
//! use cc_subgraph::{count_triangles, count_4cycles};
//!
//! let g = generators::complete(6);
//! let mut clique = Clique::new(6);
//! assert_eq!(count_triangles(&mut clique, &g), 20);
//! let mut clique = Clique::new(6);
//! assert_eq!(count_4cycles(&mut clique, &g), 45);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod colour_coding;
pub mod four_cycle_detection;
mod four_cycles;
mod girth;
mod sparse_square;
pub mod traces;
mod triangle_program;
mod triangles;

pub use crate::colour_coding::{default_trials, detect_colourful_cycle, detect_k_cycle};
pub use crate::four_cycle_detection::{detect_4cycle, TilePlan};
pub use crate::four_cycles::{count_4cycles, count_5cycles};
pub use crate::girth::{directed_girth, girth, GirthConfig};
pub use crate::sparse_square::sparse_square;
pub use crate::triangle_program::{count_triangles_program, TriangleProgram};
pub use crate::triangles::{count_triangles, count_triangles_3d, count_triangles_auto};
