//! The sparse-multiplication reading of Theorem 4.
//!
//! The paper remarks that the key part of its 4-cycle detector "can be
//! interpreted as an efficient routine for sparse matrix multiplication,
//! under a specific definition of sparseness": whenever
//! `Σ_y deg(y)² < 2n²` (equivalently, every node starts at most `2n−2`
//! 2-walks), the full square `A²` of the adjacency matrix — not just a
//! cycle indicator — can be assembled row-by-row in `O(1)` rounds.
//!
//! Since PR 3 the heavy lifting lives in [`cc_core::sparse_mm`], the
//! first-class Le Gall 2016 sparse-multiplication subsystem: for an
//! adjacency matrix, the plan's per-index work `nnz(col_y)·nnz(row_y)` is
//! exactly `deg(y)²`, so the Theorem 4 precondition `Σ deg(y)² < 2n²`
//! bounds the sparse plan's total work by `2n²` and the general machinery
//! delivers `A²` with `O(n)` words per node — constant rounds, as the
//! remark promises. This module keeps the paper's *contract* (the density
//! gate, reporting the dense case honestly instead of silently degrading)
//! and delegates the multiplication to the shared path.

use cc_algebra::IntRing;
use cc_clique::Clique;
use cc_core::{sparse_mm, RowMatrix};
use cc_graph::Graph;

/// Computes `A²` over the integers in `O(1)` rounds, or returns `None` if
/// the graph is too dense for the Theorem 4 bound (some node starts
/// `≥ 2n−1` 2-walks). All nodes learn which case occurred (one broadcast).
///
/// A thin wrapper over [`cc_core::sparse_mm::multiply`]: the Theorem 4
/// two-walk gate in front, the general nnz-aware sparse path behind. (The
/// historical `n ≥ 8` restriction of the tile-square implementation is
/// gone — the general path handles every clique size.)
///
/// # Panics
///
/// Panics if the graph is directed or sizes mismatch.
pub fn sparse_square(clique: &mut Clique, g: &Graph) -> Option<RowMatrix<i64>> {
    let n = clique.n();
    assert_eq!(g.n(), n, "graph and clique sizes must match");
    assert!(
        !g.is_directed(),
        "the square gate applies to undirected graphs"
    );

    clique.phase("sparse_square", |clique| {
        // The density gate (Theorem 4 phase 1): degree broadcast, per-node
        // two-walk counts on the executor, one OR round for the verdict.
        let exec = clique.executor();
        let degrees: Vec<usize> = clique
            .broadcast(|v| g.degree(v) as u64)
            .into_iter()
            .map(|w| w as usize)
            .collect();
        let two_walks: Vec<usize> = exec.map(n, |x| g.neighbors(x).map(|y| degrees[y]).sum());
        if clique.or_all(|x| two_walks[x] >= 2 * n - 1) {
            return None; // dense: fall back to Theorem 1 multiplication
        }

        let a = RowMatrix::par_from_fn(&exec, n, |u, v| i64::from(g.has_edge(u, v)));
        Some(sparse_mm::multiply(clique, &IntRing, &a, &a))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_algebra::{IntRing, Matrix};
    use cc_graph::generators;

    fn check(g: &Graph) {
        let mut clique = Clique::new(g.n());
        let sq = sparse_square(&mut clique, g).expect("sparse instance");
        let a = g.adjacency_matrix();
        assert_eq!(
            sq.to_matrix(),
            Matrix::mul(&IntRing, &a, &a),
            "n={} m={}",
            g.n(),
            g.m()
        );
    }

    #[test]
    fn matches_a_squared_on_sparse_graphs() {
        check(&generators::cycle(12));
        check(&generators::petersen());
        check(&generators::grid(4, 4));
        check(&generators::path(9));
        for seed in 0..4 {
            check(&generators::gnp(24, 2.0 / 24.0, seed));
        }
    }

    #[test]
    fn tiny_cliques_are_supported() {
        // The old tile-square implementation demanded n ≥ 8; the general
        // sparse path behind the wrapper has no such floor.
        check(&generators::path(3));
        check(&generators::cycle(5));
        check(&generators::path(2));
    }

    #[test]
    fn dense_graphs_are_reported() {
        let g = generators::complete(16);
        let mut clique = Clique::new(16);
        assert!(sparse_square(&mut clique, &g).is_none());
    }

    #[test]
    fn rounds_stay_constant() {
        let rounds = |n: usize| {
            let g = generators::gnp(n, 1.2 / n as f64, 3);
            let mut clique = Clique::new(n);
            let _ = sparse_square(&mut clique, &g);
            clique.rounds()
        };
        let (small, large) = (rounds(32), rounds(256));
        assert!(
            large <= small + 16,
            "O(1) rounds expected: {small} vs {large}"
        );
    }

    #[test]
    fn diagonal_equals_degree() {
        let g = generators::gnp(20, 0.1, 7);
        let mut clique = Clique::new(20);
        if let Some(sq) = sparse_square(&mut clique, &g) {
            for v in 0..20 {
                assert_eq!(sq.row(v)[v], g.degree(v) as i64);
            }
        }
    }

    #[test]
    fn density_boundary_is_exact() {
        // K₅ + 4 isolated nodes: every clique node starts 4·4 = 16 = 2n−2
        // two-walks — exactly at the threshold, accepted.
        let at = generators::complete(5).padded(4);
        let mut clique = Clique::new(9);
        let sq = sparse_square(&mut clique, &at).expect("2n−2 two-walks is still sparse");
        let a = at.adjacency_matrix();
        assert_eq!(sq.to_matrix(), Matrix::mul(&IntRing, &a, &a));

        // One pendant edge more: node 0's neighbours now see 3·4 + 5 = 17
        // = 2n−1 two-walks — one over, rejected.
        let mut over = at.clone();
        over.add_edge(0, 5);
        let mut clique = Clique::new(9);
        assert!(sparse_square(&mut clique, &over).is_none());
    }

    #[test]
    fn wrapper_agrees_with_the_general_sparse_path() {
        // The thin-wrapper contract: behind the gate, `sparse_square` IS
        // `sparse_mm::multiply` on the adjacency matrix.
        let g = generators::gnp(24, 2.0 / 24.0, 11);
        let mut c1 = Clique::new(24);
        let sq = sparse_square(&mut c1, &g).expect("sparse instance");
        let a = RowMatrix::from_matrix(&g.adjacency_matrix());
        let mut c2 = Clique::new(24);
        let direct = cc_core::sparse_mm::multiply(&mut c2, &IntRing, &a, &a);
        assert_eq!(sq.to_matrix(), direct.to_matrix());
    }
}
