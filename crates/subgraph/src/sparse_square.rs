//! The sparse-multiplication reading of Theorem 4.
//!
//! The paper remarks that the key part of its 4-cycle detector "can be
//! interpreted as an efficient routine for sparse matrix multiplication,
//! under a specific definition of sparseness": whenever
//! `Σ_y deg(y)² < 2n²` (equivalently, every node starts at most `2n−2`
//! 2-walks), the full square `A²` of the adjacency matrix — not just a
//! cycle indicator — can be assembled row-by-row in `O(1)` rounds, because
//! `A²[x][z] = |P(x, ∗, z)|` and the Lemma 12/13 tiling delivers all
//! 2-walks from `x` to node `x` with `O(n)` words per node.
//!
//! This module makes the remark concrete: [`sparse_square`] returns `A²`
//! in constant rounds when the sparseness condition holds, and reports the
//! dense case honestly instead of silently degrading.

use crate::four_cycle_detection::TilePlan;
use cc_clique::{pack_pair, unpack_pair, Clique};
use cc_core::RowMatrix;
use cc_graph::Graph;

/// Computes `A²` over the integers in `O(1)` rounds, or returns `None` if
/// the graph is too dense for the Theorem 4 tiling (some node starts
/// `≥ 2n−1` 2-walks). All nodes learn which case occurred (one broadcast).
///
/// # Panics
///
/// Panics if the graph is directed, `n < 8`, or sizes mismatch.
pub fn sparse_square(clique: &mut Clique, g: &Graph) -> Option<RowMatrix<i64>> {
    let n = clique.n();
    assert_eq!(g.n(), n, "graph and clique sizes must match");
    assert!(!g.is_directed(), "the tiling applies to undirected graphs");
    assert!(n >= 8, "the tile square needs n >= 8");

    clique.phase("sparse_square", |clique| {
        // Piece generation, walk reassembly, and the final row counts are
        // per-node work fanned out on the configured executor; the
        // communication phases use the `_par` primitives.
        let exec = clique.executor();
        let degrees: Vec<usize> = clique
            .broadcast(|v| g.degree(v) as u64)
            .into_iter()
            .map(|w| w as usize)
            .collect();
        let two_walks: Vec<usize> = exec.map(n, |x| g.neighbors(x).map(|y| degrees[y]).sum());
        if clique.or_all(|x| two_walks[x] >= 2 * n - 1) {
            return None; // dense: fall back to Theorem 1 multiplication
        }

        let plan = TilePlan::allocate(&degrees);
        let sorted_neighbors: Vec<Vec<usize>> = exec.map(n, |y| g.neighbors(y).collect());

        // Steps 1–2 of Theorem 4: ship neighbourhood pieces along tiles.
        let inbox_a = clique.exchange_par(|y| {
            let Some(t) = plan.tile(y) else {
                return Vec::new();
            };
            (0..t.size)
                .map(|j| {
                    let piece: Vec<u64> = sorted_neighbors[y]
                        .iter()
                        .skip(j)
                        .step_by(t.size)
                        .map(|&x| x as u64)
                        .collect();
                    (t.row0 + j, piece)
                })
                .collect()
        });
        let inbox_b = clique.exchange_par(|a| {
            let mut out = Vec::new();
            for y in plan.tiles_with_row(a) {
                let t = plan.tile(y).expect("tile exists");
                let payload: Vec<u64> = inbox_a.received(a, y).to_vec();
                for j in 0..t.size {
                    out.push((t.col0 + j, payload.clone()));
                }
            }
            out
        });

        // Step 3–4: column nodes emit every 2-walk (x, y, z) to x.
        let walks = clique.route_dynamic_par(|b| {
            let mut out = Vec::new();
            for y in plan.tiles_with_col(b) {
                let t = plan.tile(y).expect("tile exists");
                let pieces: Vec<&[u64]> = (0..t.size)
                    .map(|j| inbox_b.received(b, t.row0 + j))
                    .collect();
                let mut ny = Vec::with_capacity(degrees[y]);
                let mut idx = 0;
                loop {
                    let mut any = false;
                    for p in &pieces {
                        if let Some(&w) = p.get(idx) {
                            ny.push(w as usize);
                            any = true;
                        }
                    }
                    if !any {
                        break;
                    }
                    idx += 1;
                }
                ny.sort_unstable();
                let nb: Vec<usize> = ny
                    .iter()
                    .copied()
                    .skip(b - t.col0)
                    .step_by(t.size)
                    .collect();
                for &x in &ny {
                    for &z in &nb {
                        out.push((x, vec![pack_pair(y, z)]));
                    }
                }
            }
            out
        });

        // Row x of A² is the multiset of walk endpoints, tallied per node
        // on the executor.
        Some(RowMatrix::from_rows(exec.map(n, |x| {
            let mut row = vec![0i64; n];
            for src in 0..n {
                for &w in walks.received(x, src) {
                    let (_, z) = unpack_pair(w);
                    row[z] += 1;
                }
            }
            row
        })))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_algebra::{IntRing, Matrix};
    use cc_graph::generators;

    fn check(g: &Graph) {
        let mut clique = Clique::new(g.n());
        let sq = sparse_square(&mut clique, g).expect("sparse instance");
        let a = g.adjacency_matrix();
        assert_eq!(
            sq.to_matrix(),
            Matrix::mul(&IntRing, &a, &a),
            "n={} m={}",
            g.n(),
            g.m()
        );
    }

    #[test]
    fn matches_a_squared_on_sparse_graphs() {
        check(&generators::cycle(12));
        check(&generators::petersen());
        check(&generators::grid(4, 4));
        check(&generators::path(9));
        for seed in 0..4 {
            check(&generators::gnp(24, 2.0 / 24.0, seed));
        }
    }

    #[test]
    fn dense_graphs_are_reported() {
        let g = generators::complete(16);
        let mut clique = Clique::new(16);
        assert!(sparse_square(&mut clique, &g).is_none());
    }

    #[test]
    fn rounds_stay_constant() {
        let rounds = |n: usize| {
            let g = generators::gnp(n, 1.2 / n as f64, 3);
            let mut clique = Clique::new(n);
            let _ = sparse_square(&mut clique, &g);
            clique.rounds()
        };
        let (small, large) = (rounds(32), rounds(256));
        assert!(
            large <= small + 16,
            "O(1) rounds expected: {small} vs {large}"
        );
    }

    #[test]
    fn diagonal_equals_degree() {
        let g = generators::gnp(20, 0.1, 7);
        let mut clique = Clique::new(20);
        if let Some(sq) = sparse_square(&mut clique, &g) {
            for v in 0..20 {
                assert_eq!(sq.row(v)[v], g.degree(v) as i64);
            }
        }
    }
}
