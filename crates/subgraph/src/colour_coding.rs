//! `k`-cycle detection via colour coding (Lemma 11, Theorem 3).
//!
//! Following Alon–Yuster–Zwick, a *colourful* `k`-cycle (one node of each
//! colour) is found with Boolean matrix products over the recursion
//!
//! ```text
//!   C(X) = ⋁_{Y ⊆ X, |Y| = ⌈|X|/2⌉}  C(Y) · A · C(X∖Y)      (paper eq. 3)
//! ```
//!
//! where `C(X)[u][v] = 1` iff some path from `u` to `v` uses exactly one
//! node of each colour in `X`. Products are evaluated over ℤ with the fast
//! bilinear algorithm and thresholded, as the paper prescribes, giving
//! `O(3^k n^ρ)` rounds. Theorem 3 then repeats the test with fresh random
//! colourings: each trial succeeds with probability `≥ k!/k^k > e^{-k}`,
//! and the error is one-sided (a report of "found" is always correct).

use cc_algebra::BilinearAlgorithm;
use cc_clique::Clique;
use cc_core::{boolean, FastPlan, RowMatrix};
use cc_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// The paper's trial count for Theorem 3: `⌈e^k · ln n⌉` random colourings
/// give success with high probability.
#[must_use]
pub fn default_trials(n: usize, k: usize) -> usize {
    ((k as f64).exp() * (n.max(2) as f64).ln()).ceil() as usize
}

/// Detects a *colourful* `k`-cycle under the given colouring
/// `colours: V → [k]` (Lemma 11). Deterministic; one-sided correct for any
/// colouring, and complete whenever some `k`-cycle is colourful.
///
/// # Panics
///
/// Panics if `k < 2`, any colour is `≥ k`, or sizes mismatch.
pub fn detect_colourful_cycle(clique: &mut Clique, g: &Graph, colours: &[usize], k: usize) -> bool {
    let n = clique.n();
    assert_eq!(g.n(), n, "graph and clique sizes must match");
    assert_eq!(colours.len(), n, "one colour per node");
    assert!(k >= 2, "cycles have length at least 2");
    assert!(colours.iter().all(|&c| c < k), "colours must lie in [k]");

    let alg = FastPlan::best_strassen(n);
    let a = RowMatrix::from_fn(n, |u, v| g.has_edge(u, v));

    clique.phase("colour_coding", |clique| {
        let mut memo: HashMap<u32, RowMatrix<bool>> = HashMap::new();
        let full: u32 = if k == 32 { u32::MAX } else { (1u32 << k) - 1 };
        let c_full = c_of(clique, &alg, &a, colours, full, &mut memo);
        // A colourful k-cycle exists iff C([k])[u][v] = 1 and (v, u) ∈ E;
        // node u checks its in-edges locally.
        clique.or_all(|u| (0..n).any(|v| c_full.row(u)[v] && g.in_neighbors(u).any(|w| w == v)))
    })
}

/// Recursive evaluation of `C(X)` with memoisation on the colour set mask.
fn c_of(
    clique: &mut Clique,
    alg: &BilinearAlgorithm,
    a: &RowMatrix<bool>,
    colours: &[usize],
    mask: u32,
    memo: &mut HashMap<u32, RowMatrix<bool>>,
) -> RowMatrix<bool> {
    if let Some(c) = memo.get(&mask) {
        return c.clone();
    }
    let n = a.n();
    let size = mask.count_ones() as usize;
    let result = if size == 1 {
        let colour = mask.trailing_zeros() as usize;
        RowMatrix::from_fn(n, |u, v| u == v && colours[u] == colour)
    } else {
        let half = size.div_ceil(2);
        let mut acc = RowMatrix::from_fn(n, |_, _| false);
        for y in subsets_of_size(mask, half) {
            let left = c_of(clique, alg, a, colours, y, memo);
            let right = c_of(clique, alg, a, colours, mask & !y, memo);
            let la = boolean::multiply(clique, alg, &left, a);
            let prod = boolean::multiply(clique, alg, &la, &right);
            acc = acc.map_indexed(|u, v, &x| x || prod.row(u)[v]);
        }
        acc
    };
    memo.insert(mask, result.clone());
    result
}

/// Enumerates the sub-masks of `mask` with exactly `size` bits set.
fn subsets_of_size(mask: u32, size: usize) -> Vec<u32> {
    let bits: Vec<u32> = (0..32).filter(|&b| mask >> b & 1 == 1).collect();
    let mut out = Vec::new();
    let mut choose = vec![0usize; size];
    fn rec(
        bits: &[u32],
        size: usize,
        start: usize,
        depth: usize,
        cur: u32,
        out: &mut Vec<u32>,
        choose: &mut [usize],
    ) {
        let _ = choose;
        if depth == size {
            out.push(cur);
            return;
        }
        for i in start..bits.len() {
            rec(
                bits,
                size,
                i + 1,
                depth + 1,
                cur | 1 << bits[i],
                out,
                choose,
            );
        }
    }
    rec(&bits, size, 0, 0, 0, &mut out, &mut choose);
    out
}

/// Theorem 3: detects a `k`-cycle (directed or undirected) with `trials`
/// random colourings. One-sided Monte Carlo: `true` is always correct;
/// `false` is correct with probability `≥ 1 − (1 − e^{-k})^{trials}`
/// whenever a `k`-cycle exists ([`default_trials`] gives the paper's
/// high-probability count).
///
/// # Panics
///
/// Panics if `k < 2` or sizes mismatch.
pub fn detect_k_cycle(clique: &mut Clique, g: &Graph, k: usize, seed: u64, trials: usize) -> bool {
    let n = clique.n();
    assert_eq!(g.n(), n, "graph and clique sizes must match");
    let mut rng = StdRng::seed_from_u64(seed);
    clique.phase("kcycle", |clique| {
        for _ in 0..trials {
            // Conceptually each node draws its own colour; shared seeded
            // randomness keeps the simulation deterministic.
            let colours: Vec<usize> = (0..n).map(|_| rng.gen_range(0..k)).collect();
            if detect_colourful_cycle(clique, g, &colours, k) {
                return true;
            }
        }
        false
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators;

    /// Colour a planted cycle 0..k-1 in order; everyone else gets colour 0.
    fn planted_colouring(n: usize, cycle: &[usize]) -> Vec<usize> {
        let mut colours = vec![0usize; n];
        for (i, &v) in cycle.iter().enumerate() {
            colours[v] = i;
        }
        colours
    }

    #[test]
    fn subsets_enumeration() {
        let subs = subsets_of_size(0b10110, 2);
        assert_eq!(subs.len(), 3);
        assert!(subs.contains(&0b00110));
        assert!(subs.contains(&0b10010));
        assert!(subs.contains(&0b10100));
    }

    #[test]
    fn colourful_detection_on_planted_cycles() {
        for k in [3usize, 4, 5, 6] {
            let n = 12;
            let mut g = Graph::undirected(n);
            let cycle: Vec<usize> = (0..k).collect();
            for i in 0..k {
                g.add_edge(cycle[i], cycle[(i + 1) % k]);
            }
            let colours = planted_colouring(n, &cycle);
            let mut clique = Clique::new(n);
            assert!(
                detect_colourful_cycle(&mut clique, &g, &colours, k),
                "k={k}"
            );
        }
    }

    #[test]
    fn colourful_detection_never_false_positive() {
        // A path has no cycles: no colouring can make it report one.
        let g = generators::path(10);
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let colours: Vec<usize> = (0..10).map(|_| rng.gen_range(0..4)).collect();
            let mut clique = Clique::new(10);
            assert!(!detect_colourful_cycle(&mut clique, &g, &colours, 4));
        }
    }

    #[test]
    fn colourful_detection_requires_exact_length() {
        // C6 contains no 5-cycle; colourful 5-detection must fail for any
        // colouring into 5 colours.
        let g = generators::cycle(6);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let colours: Vec<usize> = (0..6).map(|_| rng.gen_range(0..5)).collect();
            let mut clique = Clique::new(6);
            assert!(!detect_colourful_cycle(&mut clique, &g, &colours, 5));
        }
    }

    #[test]
    fn directed_colourful_cycles_respect_orientation() {
        let g = generators::directed_cycle(4);
        let colours = vec![0, 1, 2, 3];
        let mut clique = Clique::new(4);
        assert!(detect_colourful_cycle(&mut clique, &g, &colours, 4));
        // Reverse one edge: no directed 4-cycle remains.
        let mut h = Graph::directed(4);
        h.add_edge(0, 1);
        h.add_edge(1, 2);
        h.add_edge(2, 3);
        h.add_edge(0, 3);
        let mut clique = Clique::new(4);
        assert!(!detect_colourful_cycle(&mut clique, &h, &colours, 4));
    }

    #[test]
    fn randomised_detection_finds_planted_cycles() {
        let g = generators::planted_cycle(14, 5, 0.05, 3);
        let mut clique = Clique::new(14);
        assert!(detect_k_cycle(&mut clique, &g, 5, 1234, 60));
    }

    #[test]
    fn randomised_detection_is_sound_on_acyclic_graphs() {
        let g = generators::path(12);
        let mut clique = Clique::new(12);
        assert!(!detect_k_cycle(&mut clique, &g, 4, 5, 10));
    }

    #[test]
    fn default_trials_matches_paper_form() {
        let t = default_trials(100, 3);
        let expect = (3f64.exp() * 100f64.ln()).ceil() as usize;
        assert_eq!(t, expect);
    }
}
