//! Distributed trace computations shared by the counting formulas.
//!
//! The counting corollaries need traces of small powers of the adjacency
//! matrix. Computing `tr(Aᵏ)` does not require materialising `Aᵏ`: with the
//! rows of `A^⌈k/2⌉` and `A^⌊k/2⌋` distributed, one transpose exchange
//! (a single round — each ordered pair carries exactly one entry) and a
//! broadcast-sum reduce the trace, since
//! `tr(X·Y) = Σ_{u,v} X[u][v] · Y[v][u]`.

use cc_clique::Clique;
use cc_core::RowMatrix;

/// Transposes a row-distributed integer matrix: node `v` sends entry
/// `M[v][u]` to node `u`, one word per ordered pair — exactly one round.
/// Message generation and row reassembly are per-node work evaluated on the
/// clique's configured executor.
pub fn transpose(clique: &mut Clique, m: &RowMatrix<i64>) -> RowMatrix<i64> {
    let n = clique.n();
    let inbox = clique.phase("transpose", |c| {
        c.exchange_par(|v| {
            (0..n)
                .filter(|&u| u != v)
                .map(|u| (u, vec![m.row(v)[u] as u64]))
                .collect()
        })
    });
    RowMatrix::par_from_fn(&clique.executor(), n, |u, v| {
        if u == v {
            m.row(u)[u]
        } else {
            inbox.received(u, v)[0] as i64
        }
    })
}

/// Computes `tr(X·Y) = Σ_{u,v} X[u][v]·Y[v][u]` for row-distributed integer
/// matrices: one transpose round plus one broadcast round (each node's dot
/// product runs on the executor before the broadcast).
pub fn trace_of_product(clique: &mut Clique, x: &RowMatrix<i64>, y: &RowMatrix<i64>) -> i64 {
    let n = clique.n();
    let yt = transpose(clique, y);
    let dots = clique.executor().map(n, |u| {
        (0..n).map(|v| x.row(u)[v] * yt.row(u)[v]).sum::<i64>()
    });
    clique.sum_all(|u| dots[u])
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_algebra::{IntRing, Matrix};

    fn rand_matrix(n: usize, seed: u64) -> Matrix<i64> {
        let mut st = seed;
        Matrix::from_fn(n, n, |_, _| {
            st = st
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((st >> 33) % 7) as i64 - 3
        })
    }

    #[test]
    fn transpose_is_correct_and_single_round() {
        let n = 10;
        let m = rand_matrix(n, 3);
        let mut clique = Clique::new(n);
        let t = transpose(&mut clique, &RowMatrix::from_matrix(&m));
        assert_eq!(t.to_matrix(), m.transpose());
        assert_eq!(clique.rounds(), 1);
    }

    #[test]
    fn trace_of_product_matches_local() {
        let n = 9;
        let x = rand_matrix(n, 5);
        let y = rand_matrix(n, 6);
        let mut clique = Clique::new(n);
        let got = trace_of_product(
            &mut clique,
            &RowMatrix::from_matrix(&x),
            &RowMatrix::from_matrix(&y),
        );
        let local = Matrix::mul(&IntRing, &x, &y).trace(&IntRing);
        assert_eq!(got, local);
        assert_eq!(clique.rounds(), 2, "transpose + broadcast");
    }
}
