//! 4-cycle and 5-cycle counting via trace formulas (Corollary 2 and the
//! Alon–Yuster–Zwick extensions the paper points to).

use crate::traces;
use cc_algebra::IntRing;
use cc_clique::Clique;
use cc_core::{fast_mm, RowMatrix};
use cc_graph::Graph;

/// Counts 4-cycles in `O(n^ρ)` rounds (Corollary 2).
///
/// For undirected graphs,
/// `#C₄ = (tr(A⁴) − Σ_v (2·deg(v)² − deg(v))) / 8`;
/// for directed graphs,
/// `#C₄ = (tr(A⁴) − Σ_v (2·δ(v)² − δ(v))) / 4`,
/// where `δ(v)` counts neighbours joined to `v` in both directions.
/// The trace needs one fast multiplication (`A²`), a transpose round, and a
/// broadcast sum; the degree corrections are local knowledge plus one
/// broadcast.
///
/// # Panics
///
/// Panics if `clique.n() != g.n()`.
pub fn count_4cycles(clique: &mut Clique, g: &Graph) -> u64 {
    let n = clique.n();
    assert_eq!(g.n(), n, "graph and clique sizes must match");
    let a = RowMatrix::from_fn(n, |u, v| i64::from(g.has_edge(u, v)));
    clique.phase("four_cycles", |clique| {
        let a2 = fast_mm::multiply_auto(clique, &IntRing, &a, &a);
        let tr4 = traces::trace_of_product(clique, &a2, &a2);
        let correction = clique.sum_all(|v| {
            let d = if g.is_directed() {
                g.mutual_degree(v)
            } else {
                g.degree(v)
            } as i64;
            2 * d * d - d
        });
        let denom = if g.is_directed() { 4 } else { 8 };
        let num = tr4 - correction;
        debug_assert!(
            num >= 0 && num % denom == 0,
            "trace formula mismatch: {num}/{denom}"
        );
        (num / denom) as u64
    })
}

/// Counts 5-cycles in an undirected graph in `O(n^ρ)` rounds using the
/// Harary–Manvel trace formula
/// `#C₅ = (tr(A⁵) − 5·tr(A³) − 5·Σ_v (deg(v)−2)·A³[v][v]) / 10`,
/// which needs only `A²`, `A³ = A²·A`, local degrees, and two reduces —
/// exactly the "small powers of A and local information" the paper appeals
/// to for `k ∈ {5, 6, 7}`.
///
/// # Panics
///
/// Panics if the graph is directed or `clique.n() != g.n()`.
pub fn count_5cycles(clique: &mut Clique, g: &Graph) -> u64 {
    let n = clique.n();
    assert_eq!(g.n(), n, "graph and clique sizes must match");
    assert!(
        !g.is_directed(),
        "count_5cycles expects an undirected graph"
    );
    let a = RowMatrix::from_fn(n, |u, v| i64::from(g.has_edge(u, v)));
    clique.phase("five_cycles", |clique| {
        let a2 = fast_mm::multiply_auto(clique, &IntRing, &a, &a);
        let a3 = fast_mm::multiply_auto(clique, &IntRing, &a2, &a);
        let tr5 = traces::trace_of_product(clique, &a3, &a2);
        let tr3 = clique.sum_all(|v| a3.row(v)[v]);
        let weighted = clique.sum_all(|v| (g.degree(v) as i64 - 2) * a3.row(v)[v]);
        let num = tr5 - 5 * tr3 - 5 * weighted;
        debug_assert!(num >= 0 && num % 10 == 0, "trace formula mismatch: {num}");
        (num / 10) as u64
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{generators, oracle};

    fn check4(g: &Graph) {
        let mut clique = Clique::new(g.n());
        assert_eq!(count_4cycles(&mut clique, g), oracle::count_4cycles(g));
    }

    fn check5(g: &Graph) {
        let mut clique = Clique::new(g.n());
        assert_eq!(count_5cycles(&mut clique, g), oracle::count_5cycles(g));
    }

    #[test]
    fn four_cycles_on_known_graphs() {
        check4(&generators::cycle(4));
        check4(&generators::complete(5));
        check4(&generators::complete_bipartite(3, 3));
        check4(&generators::petersen());
        check4(&generators::grid(3, 4));
        check4(&generators::path(7));
    }

    #[test]
    fn four_cycles_on_random_graphs() {
        for seed in 0..4 {
            check4(&generators::gnp(18, 0.3, seed));
            check4(&generators::gnp(30, 0.2, seed + 50));
        }
    }

    #[test]
    fn four_cycles_directed() {
        check4(&generators::directed_cycle(4));
        for seed in 0..3 {
            check4(&generators::gnp_directed(14, 0.25, seed));
        }
        // A bidirected triangle contains directed 4-cycles? No — but mutual
        // edges create 2-cycles that the δ correction must remove.
        let mut g = Graph::directed(4);
        for (u, v) in [
            (0, 1),
            (1, 0),
            (1, 2),
            (2, 1),
            (2, 3),
            (3, 2),
            (3, 0),
            (0, 3),
        ] {
            g.add_edge(u, v);
        }
        check4(&g);
    }

    #[test]
    fn five_cycles_on_known_graphs() {
        check5(&generators::cycle(5));
        check5(&generators::complete(5));
        check5(&generators::complete(6));
        check5(&generators::petersen());
        check5(&generators::complete_bipartite(3, 3));
        check5(&generators::grid(3, 3));
    }

    #[test]
    fn five_cycles_on_random_graphs() {
        for seed in 0..4 {
            check5(&generators::gnp(16, 0.3, seed));
        }
        check5(&generators::gnp(24, 0.25, 9));
    }
}
