//! Naive baselines: whole-graph gather, distributed Bellman–Ford APSP, and
//! row-gather matrix multiplication — the `Θ(n)`-round class that the
//! paper's algorithms improve upon.

use cc_algebra::{Dist, IntRing, Matrix, Semiring, INFINITY};
use cc_clique::{pack_pair, unpack_pair, Clique};
use cc_core::RowMatrix;
use cc_graph::Graph;

/// "Learn everything": every node obtains the full edge list (weights
/// included) in `O(m/n)` rounds via the gossip primitive. Returns the
/// reconstructed graph (identical at every node).
///
/// # Panics
///
/// Panics if `clique.n() != g.n()`, or if a weight exceeds 32 bits
/// (edges are packed as two words).
pub fn gather_graph(clique: &mut Clique, g: &Graph) -> Graph {
    let n = clique.n();
    assert_eq!(g.n(), n, "graph and clique sizes must match");
    let words = clique.phase("gather_graph", |c| {
        c.gossip(|v| {
            let mut out = Vec::new();
            for (u, w) in g
                .neighbors(v)
                .map(|u| (u, g.weight(v, u).expect("edge weight")))
            {
                if g.is_directed() || v < u {
                    assert!(
                        (0..=u32::MAX as i64).contains(&w),
                        "weight must fit 32 bits"
                    );
                    out.push(pack_pair(v, u));
                    out.push(w as u64);
                }
            }
            out
        })
    });
    let mut local = if g.is_directed() {
        Graph::directed(n)
    } else {
        Graph::undirected(n)
    };
    for pair in words.chunks_exact(2) {
        let (v, u) = unpack_pair(pair[0]);
        local.add_weighted_edge(v, u, pair[1] as i64);
    }
    local
}

/// Distributed Bellman–Ford APSP: node `u` maintains the distance column
/// `d(s, u)` for every source `s` and exchanges it with its graph
/// neighbours each iteration (`n` words per graph edge per iteration), for
/// hop-diameter many iterations — `Θ(n·D)` rounds, the combinatorial
/// baseline against which Table 1's APSP rows are measured.
///
/// # Panics
///
/// Panics if weights are negative or sizes mismatch.
pub fn bellman_ford_apsp(clique: &mut Clique, g: &Graph) -> RowMatrix<Dist> {
    let n = clique.n();
    assert_eq!(g.n(), n, "graph and clique sizes must match");
    assert!(
        g.edges().iter().all(|&(_, _, w)| w >= 0),
        "non-negative weights required"
    );

    // columns[u][s] = current estimate of d(s, u).
    let mut columns: Vec<Vec<Dist>> = (0..n)
        .map(|u| {
            (0..n)
                .map(|s| if s == u { Dist::zero() } else { INFINITY })
                .collect()
        })
        .collect();

    clique.phase("bellman_ford", |clique| {
        loop {
            // Each node sends its column to every out-neighbour in G.
            let inbox = clique.exchange(|w| {
                let payload: Vec<u64> = columns[w].iter().map(|d| d.raw() as u64).collect();
                g.neighbors(w).map(|u| (u, payload.clone())).collect()
            });
            let mut changed = vec![false; n];
            for u in 0..n {
                for w in g.in_neighbors(u) {
                    let edge = Dist::finite(g.weight(w, u).expect("edge weight"));
                    let col = inbox.received(u, w);
                    for s in 0..n {
                        let cand = Dist::from_raw(col[s] as i64) + edge;
                        if cand < columns[u][s] {
                            columns[u][s] = cand;
                            changed[u] = true;
                        }
                    }
                }
            }
            if !clique.or_all(|u| changed[u]) {
                break;
            }
        }
    });
    // Convert columns to the row convention: d(s, ·) at node s — one
    // all-to-all transpose round.
    let inbox = clique.exchange(|u| {
        (0..n)
            .filter(|&s| s != u)
            .map(|s| (s, vec![columns[u][s].raw() as u64]))
            .collect()
    });
    RowMatrix::from_fn(n, |s, u| {
        if s == u {
            Dist::zero()
        } else {
            Dist::from_raw(inbox.received(s, u)[0] as i64)
        }
    })
}

/// Naive matrix multiplication: every node gathers all of `B` (`n²` words
/// through the gossip primitive, `Θ(n)` rounds) and multiplies its own row
/// locally. The baseline for Theorem 1's semiring row.
pub fn row_gather_mm(
    clique: &mut Clique,
    a: &RowMatrix<i64>,
    b: &RowMatrix<i64>,
) -> RowMatrix<i64> {
    let n = clique.n();
    assert_eq!(a.n(), n, "operand A dimension must equal clique size");
    assert_eq!(b.n(), n, "operand B dimension must equal clique size");
    let words = clique.phase("row_gather_mm", |c| {
        c.gossip(|v| b.row(v).iter().map(|&x| x as u64).collect())
    });
    // Rebuild B locally (contributions arrive in (source, index) order).
    let full_b = Matrix::from_fn(n, n, |i, j| words[i * n + j] as i64);
    RowMatrix::from_fn(n, |u, v| {
        (0..n)
            .map(|w| IntRing.mul(&a.row(u)[w], &full_b[(w, v)]))
            .sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{generators, oracle};

    #[test]
    fn gather_reconstructs_the_graph() {
        let g = generators::weighted_gnp(15, 0.3, 9, false, 4);
        let mut clique = Clique::new(15);
        let local = gather_graph(&mut clique, &g);
        assert_eq!(local, g);
        // O(m/n) + O(1) rounds.
        assert!(clique.rounds() <= 2 * (2 * g.m() as u64 / 14) + 10);
    }

    #[test]
    fn bellman_ford_matches_oracle() {
        for seed in 0..3 {
            let g = generators::weighted_gnp(14, 0.3, 7, true, seed);
            let mut clique = Clique::new(14);
            let d = bellman_ford_apsp(&mut clique, &g);
            assert_eq!(d.to_matrix(), oracle::apsp(&g), "seed={seed}");
        }
    }

    #[test]
    fn bellman_ford_costs_linear_rounds_per_iteration() {
        let g = generators::cycle(16);
        let mut clique = Clique::new(16);
        let _ = bellman_ford_apsp(&mut clique, &g);
        // Hop diameter 8, n words per edge per iteration: many rounds.
        assert!(clique.rounds() >= 16 * 8, "rounds {}", clique.rounds());
    }

    #[test]
    fn row_gather_mm_matches_local() {
        let n = 12;
        let mut st = 5u64;
        let mut next = move || {
            st = st.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((st >> 33) % 7) as i64 - 3
        };
        let a = Matrix::from_fn(n, n, |_, _| next());
        let b = Matrix::from_fn(n, n, |_, _| next());
        let mut clique = Clique::new(n);
        let p = row_gather_mm(
            &mut clique,
            &RowMatrix::from_matrix(&a),
            &RowMatrix::from_matrix(&b),
        );
        assert_eq!(p.to_matrix(), Matrix::mul(&IntRing, &a, &b));
        // Gathering n² words costs at least n-ish rounds.
        assert!(
            clique.rounds() as usize >= n - 2,
            "rounds {}",
            clique.rounds()
        );
    }
}
