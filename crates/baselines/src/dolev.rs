//! The partition-based algorithms of Dolev, Lenzen and Peled
//! ("Tri, tri again", DISC 2012) — the combinatorial prior work in
//! Table 1's triangle and cycle rows.

use cc_algebra::Semiring;
use cc_clique::{Clique, WordWriter};
use cc_graph::Graph;

/// Partition of `V` into `parts` near-equal consecutive classes.
fn part_of(n: usize, parts: usize, v: usize) -> usize {
    let size = n.div_ceil(parts);
    (v / size).min(parts - 1)
}

fn part_range(n: usize, parts: usize, p: usize) -> std::ops::Range<usize> {
    let size = n.div_ceil(parts);
    (p * size).min(n)..((p + 1) * size).min(n)
}

/// Dolev et al. triangle counting: `V` is split into `p = ⌊n^{1/3}⌋`
/// classes; the node with index `(i, j, k)` learns the bipartite edge sets
/// `E(Vᵢ, Vⱼ)`, `E(Vⱼ, Vₖ)`, `E(Vᵢ, Vₖ)` and counts the triangles
/// `x < y < z` with `x ∈ Vᵢ, y ∈ Vⱼ, z ∈ Vₖ`. Deterministic, `O(n^{1/3})`
/// rounds — the bound our Corollary 2 implementation must beat
/// asymptotically.
///
/// # Panics
///
/// Panics if `clique.n() != g.n()`.
pub fn triangle_count(clique: &mut Clique, g: &Graph) -> u64 {
    let n = clique.n();
    assert_eq!(g.n(), n, "graph and clique sizes must match");
    let mut p = 1usize;
    while (p + 1) * (p + 1) * (p + 1) <= n {
        p += 1;
    }
    let node_of = |i: usize, j: usize, k: usize| (i * p + j) * p + k;

    clique.phase("dolev.triangles", |clique| {
        // Row owners ship adjacency slices to every tuple node that needs
        // them: (b, *, *) nodes need A[v, V_j] and A[v, V_k]; (*, b, *)
        // nodes need A[v, V_k].
        let inbox = clique.route(|v| {
            let b = part_of(n, p, v);
            let mut out = Vec::new();
            let slice = |range: std::ops::Range<usize>| {
                let mut w = WordWriter::new();
                for u in range {
                    cc_algebra::BoolSemiring.write_elem(&g.has_edge(v, u), &mut w);
                }
                w.into_words()
            };
            for j in 0..p {
                for k in 0..p {
                    let mut payload = slice(part_range(n, p, j));
                    payload.extend(slice(part_range(n, p, k)));
                    out.push((node_of(b, j, k), payload));
                }
            }
            for i in 0..p {
                for k in 0..p {
                    out.push((node_of(i, b, k), slice(part_range(n, p, k))));
                }
            }
            out
        });

        // Each tuple node counts its triangles locally.
        clique.sum_all(|u| {
            if u >= p * p * p {
                return 0;
            }
            let (i, j, k) = (u / (p * p), (u / p) % p, u % p);
            let (ri, rj, rk) = (
                part_range(n, p, i),
                part_range(n, p, j),
                part_range(n, p, k),
            );
            // Decode: from x ∈ Vᵢ we received A[x, Vⱼ] ++ A[x, Vₖ] (and, if
            // x is also in Vⱼ — i.e. i == j — a further A[x, Vₖ] slice);
            // from y ∈ Vⱼ we received A[y, Vₖ].
            let read = |src: usize, offset: usize, len: usize| -> Vec<bool> {
                let words = inbox.received(u, src);
                words[offset..offset + len]
                    .iter()
                    .map(|&w| w != 0)
                    .collect()
            };
            let mut count = 0i64;
            for x in ri.clone() {
                let exj = read(x, 0, rj.len());
                let exk = read(x, rj.len(), rk.len());
                for (yi, y) in rj.clone().enumerate() {
                    if !(x < y && exj[yi]) {
                        continue;
                    }
                    // A[y, V_k] sits after any (i-tuple) slices y sent us.
                    let y_offset = if part_of(n, p, y) == i {
                        rj.len() + rk.len()
                    } else {
                        0
                    };
                    let eyk = read(y, y_offset, rk.len());
                    for (zi, z) in rk.clone().enumerate() {
                        if y < z && exk[zi] && eyk[zi] {
                            count += 1;
                        }
                    }
                }
            }
            count
        }) as u64
    })
}

/// Dolev et al. `k`-cycle detection: `V` is split into `t = ⌊n^{1/k}⌋`
/// classes; the node with tuple `(c₁, …, c_k)` learns all edges inside
/// `V_{c₁} ∪ … ∪ V_{c_k}` and searches locally for a cycle
/// `x₁ ∈ V_{c₁} → ⋯ → x_k ∈ V_{c_k} → x₁` with distinct nodes. Costs
/// `O(k²·n^{1-2/k})` rounds — the prior-work bound in Table 1's cycle rows.
///
/// # Panics
///
/// Panics if `k < 3` (undirected) / `k < 2` (directed) or sizes mismatch.
pub fn kcycle_detect(clique: &mut Clique, g: &Graph, k: usize) -> bool {
    let n = clique.n();
    assert_eq!(g.n(), n, "graph and clique sizes must match");
    let min_k = if g.is_directed() { 2 } else { 3 };
    assert!(k >= min_k, "cycles need length at least {min_k}");
    let mut t = 1usize;
    while (t + 1).pow(k as u32) <= n {
        t += 1;
    }
    let tuples = t.pow(k as u32);
    let tuple_of = |u: usize| -> Vec<usize> {
        let mut digits = Vec::with_capacity(k);
        let mut x = u;
        for _ in 0..k {
            digits.push(x % t);
            x /= t;
        }
        digits
    };

    clique.phase("dolev.kcycle", |clique| {
        // Row owners ship their adjacency slice A[v, V_c] to every tuple
        // node whose tuple contains part(v), for every part c in that tuple.
        let inbox = clique.route(|v| {
            let b = part_of(n, t, v);
            let mut out = Vec::new();
            for u in 0..tuples {
                let tup = tuple_of(u);
                if !tup.contains(&b) {
                    continue;
                }
                // Deterministic order: slices for tuple positions ascending.
                let mut w = WordWriter::new();
                for &c in &tup {
                    for x in part_range(n, t, c) {
                        cc_algebra::BoolSemiring.write_elem(&g.has_edge(v, x), &mut w);
                    }
                }
                out.push((u, w.into_words()));
            }
            out
        });

        clique.or_all(|u| {
            if u >= tuples {
                return false;
            }
            let tup = tuple_of(u);
            // Rebuild the induced edge lookup on the union of parts.
            let members: Vec<usize> = tup.iter().flat_map(|&c| part_range(n, t, c)).collect();
            let slice_len: usize = tup.iter().map(|&c| part_range(n, t, c).len()).sum();
            let has = |x: usize, yi: usize| -> bool {
                // x's slice covers `members` in order; find x's payload.
                let words = inbox.received(u, x);
                debug_assert_eq!(words.len(), slice_len);
                words[yi] != 0
            };
            if k == 4 {
                // Specialised cubic check: for each (x₁, x₃), count the
                // common mid-points available in V_{c₂} and V_{c₄}.
                let pos: Vec<std::ops::Range<usize>> = {
                    let mut start = 0;
                    tup.iter()
                        .map(|&c| {
                            let len = part_range(n, t, c).len();
                            let r = start..start + len;
                            start += len;
                            r
                        })
                        .collect()
                };
                for i1 in pos[0].clone() {
                    let x1 = members[i1];
                    for i3 in pos[2].clone() {
                        let x3 = members[i3];
                        if x1 == x3 {
                            continue;
                        }
                        let mids = |slot: usize, fwd: bool| -> Vec<usize> {
                            pos[slot]
                                .clone()
                                .filter(|&im| {
                                    let xm = members[im];
                                    xm != x1
                                        && xm != x3
                                        && if fwd {
                                            has(x1, im) && has(xm, i3)
                                        } else {
                                            has(x3, im) && has(xm, i1)
                                        }
                                })
                                .map(|im| members[im])
                                .collect()
                        };
                        let a = mids(1, true); // candidates x₂: x₁ → x₂ → x₃
                        let found = if tup[1] == tup[3] {
                            // x₂ and x₄ share a class: need a distinct pair.
                            let b = mids(3, false);
                            a.iter().any(|&x2| b.iter().any(|&x4| x2 != x4))
                        } else if a.is_empty() {
                            false
                        } else {
                            !mids(3, false).is_empty()
                        };
                        if found {
                            return true;
                        }
                    }
                }
                return false;
            }
            // DFS along the tuple positions for a colour-patterned cycle.
            fn dfs(
                members: &[usize],
                ranges: &[std::ops::Range<usize>],
                has: &dyn Fn(usize, usize) -> bool,
                path: &mut Vec<usize>,
                k: usize,
            ) -> bool {
                let depth = path.len();
                if depth == k {
                    let first = path[0];
                    let last = path[k - 1];
                    let first_idx = members.iter().position(|&m| m == first).expect("member");
                    return has(last, first_idx);
                }
                let prev = path[depth - 1];
                for (mi, &cand) in members.iter().enumerate() {
                    if !ranges[depth].contains(&cand) || path.contains(&cand) {
                        continue;
                    }
                    if has(prev, mi) {
                        path.push(cand);
                        if dfs(members, ranges, has, path, k) {
                            return true;
                        }
                        path.pop();
                    }
                }
                false
            }
            let ranges: Vec<std::ops::Range<usize>> =
                tup.iter().map(|&c| part_range(n, t, c)).collect();
            for start in ranges[0].clone() {
                let mut path = vec![start];
                if dfs(&members, &ranges, &|x, yi| has(x, yi), &mut path, k) {
                    return true;
                }
            }
            false
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{generators, oracle};

    fn check_triangles(g: &Graph) {
        let mut clique = Clique::new(g.n());
        assert_eq!(
            triangle_count(&mut clique, g),
            oracle::count_triangles(g),
            "n={} m={}",
            g.n(),
            g.m()
        );
    }

    #[test]
    fn triangle_counts_match_oracle() {
        check_triangles(&generators::complete(5));
        check_triangles(&generators::petersen());
        check_triangles(&generators::cycle(9));
        for seed in 0..4 {
            check_triangles(&generators::gnp(20, 0.3, seed));
            check_triangles(&generators::gnp(30, 0.2, seed + 9));
        }
    }

    fn check_kcycle(g: &Graph, k: usize) {
        let mut clique = Clique::new(g.n());
        assert_eq!(
            kcycle_detect(&mut clique, g, k),
            oracle::has_k_cycle(g, k),
            "k={k} n={} m={}",
            g.n(),
            g.m()
        );
    }

    #[test]
    fn kcycle_detection_matches_oracle() {
        check_kcycle(&generators::cycle(4), 4);
        check_kcycle(&generators::cycle(5), 4);
        check_kcycle(&generators::petersen(), 5);
        check_kcycle(&generators::petersen(), 4);
        check_kcycle(&generators::grid(3, 3), 4);
        for seed in 0..3 {
            let g = generators::gnp(16, 0.12, seed);
            check_kcycle(&g, 4);
            check_kcycle(&g, 5);
        }
    }

    #[test]
    fn directed_kcycles() {
        check_kcycle(&generators::directed_cycle(4), 4);
        check_kcycle(&generators::directed_cycle(5), 4);
        for seed in 0..3 {
            check_kcycle(&generators::gnp_directed(12, 0.15, seed), 3);
        }
    }

    #[test]
    fn rounds_grow_roughly_like_cube_root_for_triangles() {
        let rounds = |n: usize| {
            let g = generators::gnp(n, 0.3, 1);
            let mut clique = Clique::new(n);
            triangle_count(&mut clique, &g);
            clique.rounds() as f64
        };
        let (r27, r216) = (rounds(27), rounds(216));
        assert!(r216 / r27 < 4.0, "expected ~2x growth, got {r27} -> {r216}");
    }
}
