//! Matrix multiplication in the **broadcast** congested clique
//! (Corollary 24's regime).
//!
//! When every node must send the *same* message to all neighbours in a
//! round, matrix multiplication cannot beat `Ω̃(n)` rounds (Corollary 24,
//! via Holzer–Pinsker). This module provides the matching upper bound —
//! every node broadcasts its row of `B`, then multiplies locally — so the
//! `lower_bounds` experiment can demonstrate the separation between the
//! unicast clique's `O(n^{1-2/σ})` rounds and the broadcast clique's
//! `Θ(n)`.

use cc_clique::{Clique, Mode};
use cc_core::RowMatrix;

/// Multiplies integer matrices on a broadcast clique in `Θ(n)` rounds.
///
/// # Panics
///
/// Panics if the clique is not in [`Mode::Broadcast`] (use
/// [`cc_clique::CliqueConfig`]) or the dimensions mismatch.
pub fn multiply(clique: &mut Clique, a: &RowMatrix<i64>, b: &RowMatrix<i64>) -> RowMatrix<i64> {
    let n = clique.n();
    assert_eq!(
        clique.config().mode,
        Mode::Broadcast,
        "this baseline targets the broadcast clique"
    );
    assert_eq!(a.n(), n, "operand A dimension must equal clique size");
    assert_eq!(b.n(), n, "operand B dimension must equal clique size");

    let rows = clique.phase("broadcast_mm", |c| {
        c.broadcast_vec(|v| b.row(v).iter().map(|&x| x as u64).collect())
    });
    RowMatrix::from_fn(n, |u, v| {
        (0..n).map(|w| a.row(u)[w] * rows[w][v] as i64).sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_algebra::{IntRing, Matrix};
    use cc_clique::CliqueConfig;

    fn broadcast_clique(n: usize) -> Clique {
        Clique::with_config(
            n,
            CliqueConfig {
                mode: Mode::Broadcast,
                ..CliqueConfig::default()
            },
        )
    }

    #[test]
    fn matches_local_product() {
        let n = 10;
        let a = Matrix::from_fn(n, n, |i, j| (i + 2 * j) as i64 % 5 - 2);
        let b = Matrix::from_fn(n, n, |i, j| (3 * i + j) as i64 % 7 - 3);
        let mut clique = broadcast_clique(n);
        let p = multiply(
            &mut clique,
            &RowMatrix::from_matrix(&a),
            &RowMatrix::from_matrix(&b),
        );
        assert_eq!(p.to_matrix(), Matrix::mul(&IntRing, &a, &b));
    }

    #[test]
    fn rounds_are_linear_in_n() {
        for n in [8, 16, 32] {
            let a = RowMatrix::from_fn(n, |_, _| 1i64);
            let mut clique = broadcast_clique(n);
            let _ = multiply(&mut clique, &a, &a);
            assert_eq!(clique.rounds(), n as u64, "broadcasting n rows of n words");
        }
    }

    #[test]
    #[should_panic(expected = "broadcast clique")]
    fn refuses_unicast_cliques() {
        let a = RowMatrix::from_fn(4, |_, _| 0i64);
        let mut clique = Clique::new(4);
        let _ = multiply(&mut clique, &a, &a);
    }
}
