//! # cc-baselines: prior-work baselines
//!
//! The algorithms the paper's Table 1 compares against, implemented
//! honestly on the same simulator so that round counts are directly
//! comparable:
//!
//! * [`dolev`] — the deterministic partition-based subgraph algorithms of
//!   Dolev, Lenzen and Peled (DISC 2012): triangle counting in
//!   `O(n^{1/3})` rounds and `k`-cycle detection in `O(k²·n^{1-2/k})`
//!   rounds;
//! * [`naive`] — the "learn everything" gather baseline, distributed
//!   Bellman–Ford APSP, and row-gather matrix multiplication (`Θ(n)`
//!   rounds);
//! * [`broadcast_mm`] — matrix multiplication in the **broadcast** congested
//!   clique, whose `Θ(n)` rounds illustrate the Corollary 24 separation.
//!
//! ## Example
//!
//! ```rust
//! use cc_clique::Clique;
//! use cc_graph::generators;
//! use cc_baselines::dolev;
//!
//! let g = generators::complete(8);
//! let mut clique = Clique::new(8);
//! assert_eq!(dolev::triangle_count(&mut clique, &g), 56);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broadcast_mm;
pub mod dolev;
pub mod naive;
