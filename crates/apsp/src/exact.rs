//! Exact APSP by iterated min-plus squaring, with routing tables
//! (Corollary 6 and §3.3 "constructing routing tables").

use cc_algebra::Dist;
use cc_clique::Clique;
use cc_core::{sparse_mm, RowMatrix};
use cc_graph::Graph;

/// Distances and routing tables produced by [`apsp_exact`].
///
/// `routing[u][v]` is the first hop of a shortest `u → v` path (an
/// out-neighbour of `u`), the paper's `R[u, v]`. Equality compares both
/// tables entry-wise (the cached-result tests pin bit-identical replay).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApspTables {
    /// Exact shortest-path distances.
    pub dist: RowMatrix<Dist>,
    routing: RowMatrix<usize>,
}

impl ApspTables {
    /// Assembles tables from distances and a next-hop matrix (used by the
    /// unweighted path-reconstruction of [`crate::seidel_with_paths`]).
    pub(crate) fn from_parts(dist: RowMatrix<Dist>, routing: RowMatrix<usize>) -> Self {
        Self { dist, routing }
    }

    /// First hop of a shortest `u → v` path, if `v` is reachable
    /// (`u == v` returns `None`).
    #[must_use]
    pub fn next_hop(&self, u: usize, v: usize) -> Option<usize> {
        if u == v || !self.dist.row(u)[v].is_finite() {
            return None;
        }
        Some(self.routing.row(u)[v])
    }

    /// Reconstructs the full shortest path `u → … → v` by following hops.
    /// Returns `None` if `v` is unreachable.
    ///
    /// # Panics
    ///
    /// Panics if the routing table is inconsistent (a hop fails to make
    /// progress), which would indicate a bug, not bad input.
    #[must_use]
    pub fn path(&self, u: usize, v: usize) -> Option<Vec<usize>> {
        if !self.dist.row(u)[v].is_finite() {
            return None;
        }
        let n = self.dist.n();
        let mut path = vec![u];
        let mut cur = u;
        while cur != v {
            cur = self
                .next_hop(cur, v)
                .expect("finite distance has a next hop");
            path.push(cur);
            assert!(path.len() <= n, "routing table cycles on ({u},{v})");
        }
        Some(path)
    }
}

/// Corollary 6: exact APSP (and routing tables) for directed graphs with
/// integer weights, via `⌈log₂ n⌉` min-plus squarings of the weight matrix
/// on the 3D semiring algorithm — `O(n^{1/3} log n)` rounds.
///
/// Witnesses from each squaring drive the routing-table update
/// `R[u,v] ← R[u, Q[u,v]]` exactly as in the paper. Negative weights are
/// allowed as long as no negative cycle exists (distances then still
/// converge; a negative cycle panics in debug builds via trace checks in
/// the caller's oracle, not here).
///
/// Each squaring goes through the density-dispatching front door
/// ([`sparse_mm::distance_product_with_witness_auto`]): the first products
/// of a sparse graph's weight matrix have few finite entries and ride the
/// Le Gall 2016 sparse path; as iterated squaring densifies the matrix,
/// the dispatch flips to the dense 3D engine. Both engines use the same
/// witness tie-break, so the tables are identical either way
/// (`CC_MM=sparse|dense` forces one engine).
///
/// # Panics
///
/// Panics if `clique.n() != g.n()`.
pub fn apsp_exact(clique: &mut Clique, g: &Graph) -> ApspTables {
    let n = clique.n();
    assert_eq!(g.n(), n, "graph and clique sizes must match");
    // Node-local tabulation (row v is node v's local view of the graph) and
    // the per-row routing updates below run on the clique's configured
    // executor; the distance products use the `_par` routing primitives
    // internally, so the whole algorithm rides the parallel runtime.
    let exec = clique.executor();
    let mut dist = crate::weight_rows(&exec, g);
    // R[u][v] = v for direct edges; self/unreachable entries are sentinels
    // fixed up on improvement.
    let mut routing =
        RowMatrix::par_from_fn(
            &exec,
            n,
            |u, v| if g.has_edge(u, v) { v } else { usize::MAX },
        );

    clique.phase("apsp_exact", |clique| {
        let mut hops = 1usize;
        while hops < n {
            let (d2, q) = sparse_mm::distance_product_with_witness_auto(clique, &dist, &dist);
            routing = routing.par_map_indexed(&exec, |u, v, &r| {
                if d2.row(u)[v] < dist.row(u)[v] {
                    let w = q.row(u)[v];
                    debug_assert!(
                        w != u && w != v,
                        "strict improvement passes through a midpoint"
                    );
                    routing.row(u)[w]
                } else {
                    r
                }
            });
            dist = d2;
            hops *= 2;
        }
    });
    ApspTables { dist, routing }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{generators, oracle};

    fn check(g: &Graph) {
        let mut clique = Clique::new(g.n());
        let tables = apsp_exact(&mut clique, g);
        assert_eq!(
            tables.dist.to_matrix(),
            oracle::apsp(g),
            "n={} m={}",
            g.n(),
            g.m()
        );
        validate_routes(g, &tables);
    }

    /// Every finite pair's reconstructed path must exist in the graph and
    /// have total weight equal to the reported distance.
    fn validate_routes(g: &Graph, tables: &ApspTables) {
        let n = g.n();
        for u in 0..n {
            for v in 0..n {
                if u == v || !tables.dist.row(u)[v].is_finite() {
                    continue;
                }
                let path = tables.path(u, v).expect("reachable pair has a path");
                assert_eq!(path.first(), Some(&u));
                assert_eq!(path.last(), Some(&v));
                let mut total = 0i64;
                for hop in path.windows(2) {
                    total += g
                        .weight(hop[0], hop[1])
                        .unwrap_or_else(|| panic!("({},{}) not an edge", hop[0], hop[1]));
                }
                assert_eq!(
                    Dist::finite(total),
                    tables.dist.row(u)[v],
                    "path weight ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn weighted_path_and_shortcut() {
        let mut g = Graph::undirected(4);
        g.add_weighted_edge(0, 1, 1);
        g.add_weighted_edge(1, 2, 1);
        g.add_weighted_edge(2, 3, 1);
        g.add_weighted_edge(0, 3, 10);
        check(&g);
    }

    #[test]
    fn random_weighted_digraphs() {
        for seed in 0..4 {
            check(&generators::weighted_gnp(16, 0.25, 9, true, seed));
        }
    }

    #[test]
    fn random_weighted_undirected() {
        for seed in 0..3 {
            check(&generators::weighted_gnp(20, 0.2, 5, false, seed));
        }
    }

    #[test]
    fn disconnected_graphs_report_infinity() {
        let g = generators::disjoint_union(&generators::cycle(5), &generators::cycle(4));
        let mut clique = Clique::new(9);
        let t = apsp_exact(&mut clique, &g);
        assert!(!t.dist.row(0)[6].is_finite());
        assert!(t.next_hop(0, 6).is_none());
        check(&g);
    }

    #[test]
    fn negative_edges_without_negative_cycles() {
        let mut g = Graph::directed(5);
        g.add_weighted_edge(0, 1, 4);
        g.add_weighted_edge(1, 2, -2);
        g.add_weighted_edge(2, 3, 3);
        g.add_weighted_edge(0, 3, 10);
        g.add_weighted_edge(3, 4, -1);
        let mut clique = Clique::new(5);
        let t = apsp_exact(&mut clique, &g);
        assert_eq!(t.dist.to_matrix(), oracle::apsp(&g));
        assert_eq!(t.dist.row(0)[4], Dist::finite(4));
    }

    #[test]
    fn sparse_dispatch_preserves_tables_and_saves_traffic() {
        // A bounded-degree weighted graph: the early squarings have few
        // finite entries, so the dispatching front door must beat a loop
        // pinned to the dense 3D engine on words — without changing any
        // distance (the oracle check) or route (validate_routes).
        let n = 32;
        let g = generators::weighted_gnp(n, 1.5 / n as f64, 9, false, 5);
        let mut ca = Clique::new(n);
        let tables = apsp_exact(&mut ca, &g);
        assert_eq!(tables.dist.to_matrix(), oracle::apsp(&g));
        validate_routes(&g, &tables);

        let mut cd = Clique::new(n);
        let mut dist = crate::weight_rows(&cd.executor(), &g);
        let mut hops = 1usize;
        while hops < n {
            let (d2, _) =
                cc_core::semiring_mm::distance_product_with_witness(&mut cd, &dist, &dist);
            dist = d2;
            hops *= 2;
        }
        assert_eq!(dist.to_matrix(), oracle::apsp(&g), "dense reference loop");
        if cc_core::sparse_mm::forced_kind().is_none() {
            assert!(
                ca.stats().words() < cd.stats().words(),
                "dispatched APSP words {} vs dense-only words {}",
                ca.stats().words(),
                cd.stats().words()
            );
        }
    }

    #[test]
    fn larger_instance_round_cost() {
        // The bound is about the *dispatched* algorithm: forcing
        // CC_MM=sparse deliberately drags dense-sized squarings through
        // the outer-product path (a correctness lane, not a cost one).
        if cc_core::sparse_mm::forced_kind() == Some(cc_core::sparse_mm::MmKind::Sparse) {
            return;
        }
        let g = generators::weighted_gnp(27, 0.3, 7, true, 9);
        let mut clique = Clique::new(27);
        let _ = apsp_exact(&mut clique, &g);
        // log₂(27) ≈ 5 squarings; each is O(n^{1/3}) rounds with constants.
        assert!(clique.rounds() < 1000, "rounds {}", clique.rounds());
    }
}
