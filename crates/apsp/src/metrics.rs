//! Distance-based graph metrics derived from APSP: eccentricities,
//! diameter, and radius.
//!
//! Once distances are row-distributed, each node knows its own
//! eccentricity locally and one broadcast round aggregates the diameter
//! and radius — the pattern behind Table 1's "weighted diameter" column.

use crate::seidel::apsp_seidel;
use cc_algebra::Dist;
use cc_clique::Clique;
use cc_core::RowMatrix;
use cc_graph::Graph;

/// Diameter, radius, and per-node eccentricities computed from a
/// row-distributed distance matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMetrics {
    /// `ecc[v]` = max distance from `v` to any reachable node.
    pub eccentricity: Vec<Dist>,
    /// Largest eccentricity; `∞` if the graph is disconnected (some pair
    /// unreachable).
    pub diameter: Dist,
    /// Smallest eccentricity.
    pub radius: Dist,
}

/// Folds a distance matrix into eccentricities/diameter/radius with one
/// broadcast round (each node contributes its local row maximum).
///
/// Unreachable pairs make the affected eccentricities (and hence the
/// diameter) `∞`, matching the usual convention for disconnected graphs.
pub fn metrics_from_distances(clique: &mut Clique, dist: &RowMatrix<Dist>) -> DistanceMetrics {
    let n = clique.n();
    assert_eq!(dist.n(), n, "distance matrix size mismatch");
    let raw = clique.phase("metrics", |c| {
        c.broadcast(|v| {
            dist.row(v)
                .iter()
                .copied()
                .max()
                .unwrap_or(Dist::zero())
                .raw() as u64
        })
    });
    let eccentricity: Vec<Dist> = raw.into_iter().map(|w| Dist::from_raw(w as i64)).collect();
    let diameter = eccentricity.iter().copied().max().expect("n >= 2");
    let radius = eccentricity.iter().copied().min().expect("n >= 2");
    DistanceMetrics {
        eccentricity,
        diameter,
        radius,
    }
}

/// Unweighted undirected diameter/radius in `Õ(n^ρ)` rounds: Seidel's APSP
/// plus one broadcast.
///
/// # Panics
///
/// Panics if the graph is directed or weighted, or sizes mismatch.
pub fn unweighted_metrics(clique: &mut Clique, g: &Graph) -> DistanceMetrics {
    let dist = apsp_seidel(clique, g);
    metrics_from_distances(clique, &dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_algebra::INFINITY;
    use cc_graph::{generators, oracle};

    fn oracle_metrics(g: &Graph) -> (Dist, Dist) {
        let d = oracle::apsp(g);
        let n = g.n();
        let ecc: Vec<Dist> = (0..n)
            .map(|u| (0..n).map(|v| d[(u, v)]).max().expect("n >= 1"))
            .collect();
        (
            ecc.iter().copied().max().unwrap(),
            ecc.iter().copied().min().unwrap(),
        )
    }

    #[test]
    fn known_diameters() {
        let cases: &[(&str, Graph, i64, i64)] = &[
            ("path P8", generators::path(8), 7, 4),
            ("cycle C10", generators::cycle(10), 5, 5),
            ("Petersen", generators::petersen(), 2, 2),
            ("hypercube Q4", generators::hypercube(4), 4, 4),
            ("K7", generators::complete(7), 1, 1),
        ];
        for (name, g, dia, rad) in cases {
            let mut clique = Clique::new(g.n());
            let m = unweighted_metrics(&mut clique, g);
            assert_eq!(m.diameter, Dist::finite(*dia), "{name} diameter");
            assert_eq!(m.radius, Dist::finite(*rad), "{name} radius");
        }
    }

    #[test]
    fn disconnected_graphs_have_infinite_diameter() {
        let g = generators::disjoint_union(&generators::cycle(4), &generators::cycle(5));
        let mut clique = Clique::new(9);
        let m = unweighted_metrics(&mut clique, &g);
        assert_eq!(m.diameter, INFINITY);
        assert_eq!(m.radius, INFINITY);
    }

    #[test]
    fn random_graphs_match_oracle() {
        for seed in 0..4 {
            let g = generators::gnp(20, 0.2, seed);
            let (dia, rad) = oracle_metrics(&g);
            let mut clique = Clique::new(20);
            let m = unweighted_metrics(&mut clique, &g);
            assert_eq!(m.diameter, dia, "seed {seed}");
            assert_eq!(m.radius, rad, "seed {seed}");
        }
    }

    #[test]
    fn caveman_distances_are_long() {
        let g = generators::caveman(4, 5);
        let mut clique = Clique::new(20);
        let m = unweighted_metrics(&mut clique, &g);
        // 4 cliques in a chain: diameter spans three bridges.
        assert!(m.diameter >= Dist::finite(7), "got {}", m.diameter);
    }
}
