//! `(1+o(1))`-approximate APSP (Theorem 9).

use cc_algebra::Dist;
use cc_clique::Clique;
use cc_core::{distance, FastPlan, RowMatrix};
use cc_graph::Graph;

/// Chooses the per-product accuracy `δ` so that the end-to-end error
/// `(1+δ)^{⌈log₂ n⌉}` stays below `1 + target`; the paper's
/// `δ = 1/log² n` corresponds to a `(1+o(1))` target.
#[must_use]
pub fn delta_for_target(n: usize, target: f64) -> f64 {
    assert!(target > 0.0, "target must be positive");
    let levels = (n.max(2) as f64).log2().ceil();
    (1.0 + target).powf(1.0 / levels) - 1.0
}

/// Theorem 9: approximate APSP for directed graphs with non-negative
/// integer weights, via `⌈log₂ n⌉` approximate squarings (Lemma 20).
///
/// Every returned distance `D̃[u][v]` satisfies
/// `d(u,v) ≤ D̃[u][v] ≤ (1+delta)^{⌈log₂ n⌉} · d(u,v)`;
/// pick `delta` with [`delta_for_target`]. Smaller `delta` costs more
/// rounds (`O(log_{1+δ} M / δ)` per squaring), reproducing the paper's
/// accuracy/round trade-off.
///
/// # Panics
///
/// Panics if weights are negative, `delta ≤ 0`, or sizes mismatch.
pub fn apsp_approx(clique: &mut Clique, g: &Graph, delta: f64) -> RowMatrix<Dist> {
    let n = clique.n();
    assert_eq!(g.n(), n, "graph and clique sizes must match");
    assert!(delta > 0.0, "delta must be positive");
    assert!(
        g.edges().iter().all(|&(_, _, w)| w >= 0),
        "weights must be non-negative"
    );

    let alg = FastPlan::best_strassen(n);
    // The squarings below run their scaling, embedding, and min-merges on
    // the clique's executor; the weight rows are tabulated there too.
    let mut cur = crate::weight_rows(&clique.executor(), g);
    clique.phase("apsp_approx", |clique| {
        let mut hops = 1usize;
        while hops < n {
            cur = distance::approx_distance_product(clique, &alg, &cur, &cur, delta);
            hops *= 2;
        }
    });
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{generators, oracle};

    /// Checks the Theorem 9 guarantee against the exact oracle.
    fn check_ratio(g: &Graph, delta: f64) {
        let n = g.n();
        let exact = oracle::apsp(g);
        let mut clique = Clique::new(n);
        let approx = apsp_approx(&mut clique, g, delta);
        let levels = (n.max(2) as f64).log2().ceil();
        let bound = (1.0 + delta).powf(levels);
        for u in 0..n {
            for v in 0..n {
                match (exact[(u, v)].value(), approx.row(u)[v].value()) {
                    (Some(e), Some(a)) => {
                        assert!(a >= e, "({u},{v}): {a} < exact {e}");
                        assert!(
                            a as f64 <= bound * e as f64 + 1e-9,
                            "({u},{v}): {a} exceeds {bound:.3}·{e}"
                        );
                    }
                    (None, None) => {}
                    (e, a) => panic!("({u},{v}): finiteness mismatch {e:?} vs {a:?}"),
                }
            }
        }
    }

    #[test]
    fn approximation_holds_on_weighted_digraphs() {
        for seed in 0..3 {
            check_ratio(&generators::weighted_gnp(10, 0.35, 50, true, seed), 0.3);
        }
    }

    #[test]
    fn approximation_holds_with_wide_weight_range() {
        // Weights spanning two orders of magnitude force several scaling
        // levels inside Lemma 20.
        check_ratio(&generators::weighted_gnp(10, 0.4, 400, true, 7), 0.4);
    }

    #[test]
    fn tighter_delta_costs_more_rounds() {
        let g = generators::weighted_gnp(10, 0.35, 60, true, 2);
        let rounds = |delta: f64| {
            let mut clique = Clique::new(10);
            let _ = apsp_approx(&mut clique, &g, delta);
            clique.rounds()
        };
        assert!(rounds(0.2) > rounds(0.8), "smaller δ must cost more rounds");
    }

    #[test]
    fn delta_for_target_composes() {
        let n = 64;
        let delta = delta_for_target(n, 0.1);
        let levels = (n as f64).log2().ceil();
        assert!((1.0 + delta).powf(levels) <= 1.1 + 1e-9);
    }

    #[test]
    fn unweighted_graphs_are_near_exact() {
        let g = generators::directed_cycle(8);
        check_ratio(&g, 0.25);
    }
}
