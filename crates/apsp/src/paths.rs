//! Shortest-path reconstruction for Seidel's algorithm via Boolean product
//! witnesses (the §3.4 machinery applied as Seidel's successor trick).
//!
//! Seidel's recursion returns distances only. To route, each pair `(u,v)`
//! needs a *successor*: a neighbour `w` of `u` with `d(w,v) = d(u,v) − 1`.
//! Because consecutive distances differ by at most one, any neighbour with
//! `d(w,v) ≡ d(u,v) − 1 (mod 3)` qualifies, so three witnessed Boolean
//! products `A · B_r` (where `B_r[w][v] = [d(w,v) ≡ r mod 3]`) recover
//! successors for every pair. The paper notes explicitly (§3.4) that its
//! witness techniques "also work for the Boolean semiring matrix product";
//! this module is that remark made concrete: a Boolean product is embedded
//! as a `{0, ∞}` min-plus product and fed to the witness search.

use crate::exact::ApspTables;
use crate::seidel::apsp_seidel;
use cc_algebra::{Dist, INFINITY};
use cc_clique::Clique;
use cc_core::{distance, witness, RowMatrix};
use cc_graph::Graph;

/// Embeds a Boolean matrix as `{0, ∞}` min-plus entries: products then have
/// a zero entry exactly where the Boolean product is `true`, and min-plus
/// witnesses are Boolean-product witnesses.
fn embed(b: &RowMatrix<bool>) -> RowMatrix<Dist> {
    b.map(|&x| if x { Dist::zero() } else { INFINITY })
}

/// Computes successor tables for an unweighted undirected graph given its
/// distance matrix, using three witnessed Boolean products.
///
/// `trials_per_level` is forwarded to the §3.4 sampling search
/// ([`witness::find_witnesses`]); a handful of trials suffices w.h.p.
///
/// # Panics
///
/// Panics if sizes mismatch, or if the witness search fails to certify a
/// successor for a reachable pair (probability `n^{-Ω(trials)}`).
pub fn successors_from_distances(
    clique: &mut Clique,
    g: &Graph,
    dist: &RowMatrix<Dist>,
    seed: u64,
    trials_per_level: usize,
) -> RowMatrix<usize> {
    let n = clique.n();
    assert_eq!(g.n(), n, "graph and clique sizes must match");
    assert_eq!(dist.n(), n, "distance matrix size mismatch");

    let adjacency = embed(&RowMatrix::from_fn(n, |u, v| g.has_edge(u, v)));
    let mut product = |clique: &mut Clique, s: &RowMatrix<Dist>, t: &RowMatrix<Dist>| {
        distance::distance_product(clique, s, t)
    };

    clique.phase("seidel.paths", |clique| {
        // One witnessed product per residue class of d(w, v) mod 3.
        let mut per_residue: Vec<(RowMatrix<usize>, RowMatrix<bool>)> = Vec::with_capacity(3);
        for r in 0..3u8 {
            let b_r = RowMatrix::from_fn(n, |w, v| {
                dist.row(w)[v]
                    .value()
                    .is_some_and(|d| d.rem_euclid(3) == i64::from(r))
            });
            let t = embed(&b_r);
            let p = product(clique, &adjacency, &t);
            let (q, ok) = witness::find_witnesses(
                clique,
                &mut product,
                &adjacency,
                &t,
                &p,
                seed ^ u64::from(r),
                trials_per_level,
            );
            per_residue.push((q, ok));
        }

        RowMatrix::from_fn(n, |u, v| {
            match dist.row(u)[v].value() {
                None | Some(0) => usize::MAX, // unreachable or trivial
                Some(ell) => {
                    let r = (ell - 1).rem_euclid(3) as usize;
                    let (q, ok) = &per_residue[r];
                    assert!(
                        ok.row(u)[v],
                        "witness search failed for pair ({u},{v}) at distance {ell}"
                    );
                    let w = q.row(u)[v];
                    debug_assert!(g.has_edge(u, w), "successor must be a neighbour");
                    w
                }
            }
        })
    })
}

/// Corollary 7 with routing: Seidel's exact unweighted APSP plus successor
/// tables reconstructed through witnessed Boolean products.
///
/// # Panics
///
/// Panics if the graph is directed/weighted or sizes mismatch.
pub fn seidel_with_paths(clique: &mut Clique, g: &Graph, seed: u64) -> ApspTables {
    let dist = apsp_seidel(clique, g);
    let trials = 4 + (clique.n().ilog2() as usize);
    let succ = successors_from_distances(clique, g, &dist, seed, trials);
    ApspTables::from_parts(dist, succ)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{generators, oracle};

    fn check_paths(g: &Graph) {
        let n = g.n();
        let mut clique = Clique::new(n);
        let tables = seidel_with_paths(&mut clique, g, 77);
        assert_eq!(tables.dist.to_matrix(), oracle::apsp(g));
        for u in 0..n {
            for v in 0..n {
                if u == v || !tables.dist.row(u)[v].is_finite() {
                    continue;
                }
                let path = tables.path(u, v).expect("reachable pair");
                assert_eq!(
                    path.len() as i64 - 1,
                    tables.dist.row(u)[v].unwrap(),
                    "({u},{v})"
                );
                for hop in path.windows(2) {
                    assert!(g.has_edge(hop[0], hop[1]), "({u},{v}): hop {hop:?} missing");
                }
            }
        }
    }

    #[test]
    fn paths_on_structured_graphs() {
        check_paths(&generators::cycle(9));
        check_paths(&generators::grid(3, 3));
        check_paths(&generators::petersen());
    }

    #[test]
    fn paths_on_random_graphs() {
        for seed in 0..3 {
            check_paths(&generators::gnp(12, 0.25, seed));
        }
    }

    #[test]
    fn paths_on_disconnected_graphs() {
        let g = generators::disjoint_union(&generators::path(5), &generators::cycle(4));
        check_paths(&g);
    }

    #[test]
    fn successors_are_neighbours_at_distance_minus_one() {
        let g = generators::gnp(14, 0.3, 9);
        let mut clique = Clique::new(14);
        let dist = apsp_seidel(&mut clique, &g);
        let succ = successors_from_distances(&mut clique, &g, &dist, 5, 8);
        for u in 0..14 {
            for v in 0..14 {
                if let Some(ell) = dist.row(u)[v].value() {
                    if ell >= 1 {
                        let w = succ.row(u)[v];
                        assert!(g.has_edge(u, w));
                        assert_eq!(dist.row(w)[v].unwrap(), ell - 1, "({u},{v})");
                    }
                }
            }
        }
    }
}
