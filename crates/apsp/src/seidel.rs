//! Seidel's algorithm for unweighted undirected APSP (Corollary 7,
//! Lemma 17).

use cc_algebra::{Dist, IntRing, INFINITY};
use cc_clique::Clique;
use cc_core::{boolean, fast_mm, FastPlan, RowMatrix};
use cc_graph::Graph;

/// Corollary 7: exact all-pairs shortest paths for an unweighted undirected
/// graph in `Õ(n^ρ)` rounds.
///
/// Recursively squares the graph (`G²` connects nodes at distance ≤ 2,
/// built with one Boolean product), solves `G²`, and reconstructs the
/// parity of each distance from the integer product `S = D_{G²}·A` using
/// Lemma 17:
///
/// ```text
///   d_G(u,v) = 2·d_{G²}(u,v) − [ S[u][v] < d_{G²}(u,v) · deg_G(v) ]
/// ```
///
/// Disconnected graphs are handled by the fixpoint base case (every
/// component is a clique in `G^{2^t}` for some `t`); cross-component pairs
/// stay at `∞` throughout.
///
/// # Panics
///
/// Panics if the graph is directed or weighted, or sizes mismatch.
pub fn apsp_seidel(clique: &mut Clique, g: &Graph) -> RowMatrix<Dist> {
    let n = clique.n();
    assert_eq!(g.n(), n, "graph and clique sizes must match");
    assert!(
        !g.is_directed(),
        "Seidel's algorithm needs an undirected graph"
    );
    assert!(
        g.edges().iter().all(|&(_, _, w)| w == 1),
        "Seidel's algorithm is unweighted"
    );

    let alg = FastPlan::best_strassen(n);
    let a = RowMatrix::par_from_fn(&clique.executor(), n, |u, v| g.has_edge(u, v));
    clique.phase("seidel", |clique| seidel_rec(clique, &alg, &a, 0))
}

fn seidel_rec(
    clique: &mut Clique,
    alg: &cc_algebra::BilinearAlgorithm,
    a: &RowMatrix<bool>,
    depth: usize,
) -> RowMatrix<Dist> {
    let n = a.n();
    assert!(depth <= n.ilog2() as usize + 2, "Seidel recursion too deep");
    // Per-row node-local steps (diagonal strip, fixpoint scan, integer
    // lifts, parity reconstruction) fan out on the configured backend.
    let exec = clique.executor();

    // The square graph: adjacency of G² is (A² ∨ A) minus the diagonal.
    let sq = boolean::multiply_or(clique, alg, a, a, a);
    let sq = sq.par_map_indexed(&exec, |u, v, &x| x && u != v);

    // Fixpoint test (1 broadcast round): G = G² means every component is
    // complete, so distances are 1 for edges and ∞ across components. Each
    // node scans its own row on the executor; the OR is one broadcast.
    let row_changed = exec.map(n, |u| (0..n).any(|v| sq.row(u)[v] != a.row(u)[v]));
    let changed = clique.or_all(|u| row_changed[u]);
    if !changed {
        return a.par_map_indexed(&exec, |u, v, &adj| {
            if u == v {
                Dist::zero()
            } else if adj {
                Dist::finite(1)
            } else {
                INFINITY
            }
        });
    }

    // Solve the square graph recursively.
    let d2 = seidel_rec(clique, alg, &sq, depth + 1);

    // Lemma 17: S = D_{G²} · A over ℤ (∞ encoded as 0 — such terms never
    // contribute to same-component pairs), one fast product.
    let d2_int = d2.par_map(&exec, |d| d.value().unwrap_or(0));
    let a_int = a.par_map(&exec, |&x| i64::from(x));
    let s = fast_mm::multiply(clique, &IntRing, alg, &d2_int, &a_int);

    // Everyone learns deg_G(v) (one broadcast round).
    let degs = clique.broadcast(|v| a.row(v).iter().filter(|&&x| x).count() as u64);

    d2.par_map_indexed(&exec, |u, v, &dd| match dd.value() {
        None => INFINITY,
        Some(0) => Dist::zero(),
        Some(h) => {
            let parity = i64::from(s.row(u)[v] < h * degs[v] as i64);
            Dist::finite(2 * h - parity)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{generators, oracle};

    fn check(g: &Graph) {
        let mut clique = Clique::new(g.n());
        let d = apsp_seidel(&mut clique, g);
        assert_eq!(d.to_matrix(), oracle::apsp(g), "n={} m={}", g.n(), g.m());
    }

    #[test]
    fn paths_cycles_and_grids() {
        check(&generators::path(9));
        check(&generators::cycle(8));
        check(&generators::cycle(9));
        check(&generators::grid(3, 4));
        check(&generators::petersen());
    }

    #[test]
    fn complete_graph_is_the_base_case() {
        let g = generators::complete(10);
        let mut clique = Clique::new(10);
        let d = apsp_seidel(&mut clique, &g);
        for u in 0..10 {
            for v in 0..10 {
                let expect = if u == v {
                    Dist::zero()
                } else {
                    Dist::finite(1)
                };
                assert_eq!(d.row(u)[v], expect);
            }
        }
    }

    #[test]
    fn random_graphs_match_oracle() {
        for seed in 0..5 {
            check(&generators::gnp(18, 0.15, seed));
            check(&generators::gnp(25, 0.3, seed + 20));
        }
    }

    #[test]
    fn disconnected_components() {
        let g = generators::disjoint_union(&generators::path(6), &generators::cycle(5));
        check(&g);
        let iso = generators::complete(4).padded(6);
        check(&iso);
    }

    #[test]
    fn long_path_exercises_deep_recursion() {
        check(&generators::path(30));
    }
}
