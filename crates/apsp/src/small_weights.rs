//! Exact APSP for small weighted diameter (Lemma 19, Corollary 8).

use cc_algebra::Dist;
use cc_clique::Clique;
use cc_core::{boolean, distance, FastPlan, RowMatrix};
use cc_graph::Graph;

/// All-pairs reachability (the transitive closure's adjacency, including
/// self-reachability) via `⌈log₂ n⌉` Boolean squarings — the first step of
/// Corollary 8's doubling search.
pub fn reachability(clique: &mut Clique, g: &Graph) -> RowMatrix<bool> {
    let n = clique.n();
    assert_eq!(g.n(), n, "graph and clique sizes must match");
    let alg = FastPlan::best_strassen(n);
    // Start from A ∨ I so squaring accumulates all path lengths; rows are
    // tabulated per node on the configured backend.
    let mut reach =
        RowMatrix::par_from_fn(&clique.executor(), n, |u, v| u == v || g.has_edge(u, v));
    clique.phase("reachability", |clique| {
        let mut hops = 1usize;
        while hops < n {
            reach = boolean::multiply(clique, &alg, &reach, &reach);
            hops *= 2;
        }
    });
    reach
}

/// Corollary 8: exact APSP for directed graphs with **positive** integer
/// weights and weighted diameter `U`, in `Õ(U·n^ρ)` rounds.
///
/// With `diameter_bound = Some(U)` this is Lemma 19 directly. With `None`,
/// the algorithm first computes reachability, then doubles a guess for `U`
/// until the capped APSP covers every reachable pair, as the paper
/// describes.
///
/// # Panics
///
/// Panics if any edge weight is non-positive or sizes mismatch.
pub fn apsp_small_weights(
    clique: &mut Clique,
    g: &Graph,
    diameter_bound: Option<i64>,
) -> RowMatrix<Dist> {
    let n = clique.n();
    assert_eq!(g.n(), n, "graph and clique sizes must match");
    assert!(
        g.edges().iter().all(|&(_, _, w)| w > 0),
        "Corollary 8 requires positive integer weights"
    );
    let alg = FastPlan::best_strassen(n);
    let exec = clique.executor();
    let w = crate::weight_rows(&exec, g);

    clique.phase("apsp_small_weights", |clique| {
        if let Some(u) = diameter_bound {
            assert!(u >= 1, "diameter bound must be positive");
            return distance::apsp_up_to(clique, &alg, &w, u);
        }
        // Unknown U: reachability, then doubling (steps 1–3 of Corollary 8).
        let reach = reachability(clique, g);
        let mut guess = 1i64;
        loop {
            let d = distance::apsp_up_to(clique, &alg, &w, guess);
            // Complete iff every reachable pair has a finite distance
            // (each node scans its own row on the executor, then one
            // OR-reduce round).
            let row_incomplete = exec.map(n, |u| {
                (0..n).any(|v| reach.row(u)[v] && !d.row(u)[v].is_finite())
            });
            let incomplete = clique.or_all(|u| row_incomplete[u]);
            if !incomplete {
                return d;
            }
            guess *= 2;
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::{generators, oracle};

    fn check(g: &Graph, bound: Option<i64>) {
        let mut clique = Clique::new(g.n());
        let d = apsp_small_weights(&mut clique, g, bound);
        assert_eq!(
            d.to_matrix(),
            oracle::apsp(g),
            "n={} bound={bound:?}",
            g.n()
        );
    }

    #[test]
    fn reachability_matches_bfs() {
        for seed in 0..4 {
            let g = generators::gnp_directed(14, 0.12, seed);
            let mut clique = Clique::new(14);
            let r = reachability(&mut clique, &g);
            for u in 0..14 {
                let bfs = oracle::bfs_dist(&g, u);
                for (v, d) in bfs.iter().enumerate() {
                    assert_eq!(r.row(u)[v], d.is_some(), "({u},{v}) seed={seed}");
                }
            }
        }
    }

    #[test]
    fn with_known_diameter() {
        let g = generators::weighted_gnp(12, 0.4, 3, true, 5);
        // Diameter is at most n · max weight.
        check(&g, Some(36));
    }

    #[test]
    fn unknown_diameter_doubles_until_complete() {
        for seed in 0..3 {
            check(&generators::weighted_gnp(12, 0.3, 4, true, seed), None);
        }
    }

    #[test]
    fn unweighted_graphs() {
        check(&generators::directed_cycle(9), None);
        let g = generators::cycle(10);
        check(&g, None);
    }

    #[test]
    fn disconnected_pairs_stay_infinite() {
        let g = generators::disjoint_union(
            &generators::directed_cycle(4),
            &generators::directed_cycle(5),
        );
        let mut clique = Clique::new(9);
        let d = apsp_small_weights(&mut clique, &g, None);
        assert!(!d.row(0)[5].is_finite());
        assert_eq!(d.to_matrix(), oracle::apsp(&g));
    }

    #[test]
    fn rounds_grow_with_diameter_bound() {
        let g = generators::weighted_gnp(12, 0.5, 2, true, 8);
        let rounds_at = |u: i64| {
            let mut clique = Clique::new(12);
            let _ = apsp_small_weights(&mut clique, &g, Some(u));
            clique.rounds()
        };
        assert!(
            rounds_at(16) > rounds_at(4),
            "larger caps mean wider polynomials and more rounds"
        );
    }
}
