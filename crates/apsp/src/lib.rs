//! # cc-apsp: all-pairs shortest paths in the congested clique
//!
//! Distributed APSP algorithms from Section 3.3 of the paper:
//!
//! * [`apsp_exact`] — Corollary 6: iterated squaring of the weight matrix
//!   over the min-plus semiring in `O(n^{1/3} log n)` rounds, including
//!   **routing tables** built from distance-product witnesses (§3.4);
//! * [`apsp_seidel`] — Corollary 7: exact APSP for unweighted undirected
//!   graphs in `Õ(n^ρ)` rounds via Seidel's squaring recursion (Lemma 17);
//! * [`apsp_small_weights`] — Lemma 19 / Corollary 8: exact APSP for
//!   positive weights with weighted diameter `U` in `Õ(U·n^ρ)` rounds,
//!   including the reachability-guided doubling search for unknown `U`;
//! * [`apsp_approx`] — Theorem 9: `(1+o(1))`-approximate APSP in
//!   `O(n^{ρ+o(1)})` rounds via the scaled distance products of Lemma 20.
//!
//! ## Example
//!
//! ```rust
//! use cc_algebra::Dist;
//! use cc_clique::Clique;
//! use cc_graph::Graph;
//! use cc_apsp::apsp_exact;
//!
//! let mut g = Graph::undirected(5);
//! g.add_weighted_edge(0, 1, 2);
//! g.add_weighted_edge(1, 2, 2);
//! g.add_weighted_edge(0, 2, 10);
//! let mut clique = Clique::new(5);
//! let result = apsp_exact(&mut clique, &g);
//! assert_eq!(result.dist.row(0)[2], Dist::finite(4));
//! assert_eq!(result.next_hop(0, 2), Some(1)); // route 0 → 1 → 2
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod approx;
mod exact;
mod metrics;
mod paths;
mod seidel;
mod small_weights;

use cc_algebra::{Dist, INFINITY};
use cc_clique::Executor;
use cc_core::RowMatrix;
use cc_graph::Graph;

/// The row-distributed weight matrix every APSP entry point starts from
/// (zero diagonal, edge weights, `∞` for non-edges — the `Graph::weight_matrix`
/// convention), tabulated per node on the clique's executor: row `v` is node
/// `v`'s local view, and graph lookups are tree-map walks worth fanning out.
fn weight_rows(exec: &Executor, g: &Graph) -> RowMatrix<Dist> {
    RowMatrix::par_from_fn(exec, g.n(), |u, v| {
        if u == v {
            Dist::zero()
        } else {
            g.weight(u, v).map_or(INFINITY, Dist::finite)
        }
    })
}

pub use crate::approx::{apsp_approx, delta_for_target};
pub use crate::exact::{apsp_exact, ApspTables};
pub use crate::metrics::{metrics_from_distances, unweighted_metrics, DistanceMetrics};
pub use crate::paths::{seidel_with_paths, successors_from_distances};
pub use crate::seidel::apsp_seidel;
pub use crate::small_weights::{apsp_small_weights, reachability};
