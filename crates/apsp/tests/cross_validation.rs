//! Cross-validation: the four APSP engines must agree wherever their
//! domains overlap, and each must agree with the centralized oracle. This
//! catches bugs that single-engine tests cannot (e.g. a systematic
//! off-by-one that an engine shares with its own reference path).

use cc_clique::Clique;
use cc_graph::{generators, oracle, Graph};
use proptest::prelude::*;

/// Unweighted undirected instances: exact squaring, Seidel, and
/// small-weights (U = n) all apply.
fn arb_unweighted() -> impl Strategy<Value = Graph> {
    (8usize..20, 0u64..500, 2u32..8)
        .prop_map(|(n, seed, d)| generators::gnp(n, f64::from(d) / 20.0, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn three_exact_engines_agree_on_unweighted_graphs(g in arb_unweighted()) {
        let n = g.n();
        let expected = oracle::apsp(&g);

        let mut c = Clique::new(n);
        let exact = cc_apsp::apsp_exact(&mut c, &g);
        prop_assert_eq!(exact.dist.to_matrix(), expected.clone());

        let mut c = Clique::new(n);
        let seidel = cc_apsp::apsp_seidel(&mut c, &g);
        prop_assert_eq!(seidel.to_matrix(), expected.clone());

        let mut c = Clique::new(n);
        let small = cc_apsp::apsp_small_weights(&mut c, &g, Some(n as i64));
        prop_assert_eq!(small.to_matrix(), expected);
    }

    #[test]
    fn approx_never_beats_exact_and_meets_its_bound(
        n in 8usize..14,
        seed in 0u64..500,
        maxw in 1i64..20,
    ) {
        let g = generators::weighted_gnp(n, 0.3, maxw, true, seed);
        let exact = oracle::apsp(&g);
        let delta = 0.5;
        let mut c = Clique::new(n);
        let approx = cc_apsp::apsp_approx(&mut c, &g, delta);
        let bound = (1.0 + delta).powf((n as f64).log2().ceil());
        for u in 0..n {
            for v in 0..n {
                match (exact[(u, v)].value(), approx.row(u)[v].value()) {
                    (Some(e), Some(a)) => {
                        prop_assert!(a >= e, "({u},{v})");
                        prop_assert!(a as f64 <= bound * e as f64 + 1e-9, "({u},{v})");
                    }
                    (None, None) => {}
                    (e, a) => prop_assert!(false, "finiteness mismatch {e:?} vs {a:?}"),
                }
            }
        }
    }

    #[test]
    fn metrics_agree_with_distance_matrix(g in arb_unweighted()) {
        let n = g.n();
        let mut c = Clique::new(n);
        let dist = cc_apsp::apsp_seidel(&mut c, &g);
        let m = cc_apsp::metrics_from_distances(&mut c, &dist);
        for v in 0..n {
            let ecc = dist.row(v).iter().copied().max().expect("n >= 1");
            prop_assert_eq!(m.eccentricity[v], ecc);
        }
        prop_assert_eq!(m.diameter, *m.eccentricity.iter().max().unwrap());
        prop_assert_eq!(m.radius, *m.eccentricity.iter().min().unwrap());
    }
}

#[test]
fn engines_agree_on_structured_families() {
    for (name, g) in [
        ("hypercube Q3", generators::hypercube(3)),
        ("caveman 3x4", generators::caveman(3, 4)),
        ("petersen", generators::petersen()),
        ("cycle C15", generators::cycle(15)),
    ] {
        let n = g.n();
        let expected = oracle::apsp(&g);
        let mut c = Clique::new(n);
        assert_eq!(
            cc_apsp::apsp_exact(&mut c, &g).dist.to_matrix(),
            expected,
            "{name}: exact"
        );
        let mut c = Clique::new(n);
        assert_eq!(
            cc_apsp::apsp_seidel(&mut c, &g).to_matrix(),
            expected,
            "{name}: seidel"
        );
        let mut c = Clique::new(n);
        assert_eq!(
            cc_apsp::apsp_small_weights(&mut c, &g, None).to_matrix(),
            expected,
            "{name}: small-weights"
        );
    }
}
