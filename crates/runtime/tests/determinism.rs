//! Engine-level determinism: for randomized per-node traffic, the parallel
//! executor must produce inboxes, program outputs, round counts, and load
//! traces bit-identical to sequential execution.

use cc_runtime::{Control, Engine, Executor, ExecutorKind, NodeProgram, RoundCtx, Word};
use proptest::prelude::*;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Sends a pseudo-random pattern (unicasts of varying sizes, occasional
/// broadcasts, occasional self-messages) for `k` rounds while logging every
/// delivery it observes.
struct RandomTraffic {
    seed: u64,
    k: u64,
    /// `(round, src, words)` for every non-empty delivery, in scan order.
    log: Vec<(u64, usize, Vec<Word>)>,
}

impl NodeProgram for RandomTraffic {
    fn round(&mut self, ctx: &mut RoundCtx<'_>) -> Control {
        let me = ctx.node();
        let n = ctx.n();
        for src in 0..n {
            let unicast = ctx.received(src).to_vec();
            if !unicast.is_empty() {
                self.log.push((ctx.round(), src, unicast));
            }
            for slab in ctx.broadcasts_from(src) {
                self.log.push((ctx.round(), src, slab.to_vec()));
            }
        }
        if ctx.round() >= self.k {
            return Control::Halt;
        }
        let h = splitmix(self.seed ^ ((me as u64) << 32) ^ ctx.round());
        // Up to three unicasts (possibly to self), sized 0..8 words.
        for shot in 0..(h % 4) {
            let hh = splitmix(h ^ shot);
            let dst = (hh % n as u64) as usize;
            let len = (hh >> 8) % 8;
            let words: Vec<Word> = (0..len).map(|j| hh ^ j).collect();
            ctx.send(dst, words);
        }
        // Occasional broadcast.
        if h.is_multiple_of(5) {
            let len = 1 + (h >> 16) % 4;
            ctx.broadcast((0..len).map(|j| h ^ (j << 7)).collect::<Vec<Word>>());
        }
        Control::Continue
    }
}

/// Per-node delivery logs, link rounds, words, and the per-round load trace.
type RunOutcome = (
    Vec<Vec<(u64, usize, Vec<Word>)>>,
    u64,
    u64,
    Vec<Vec<(usize, usize, usize)>>,
);

fn run(kind: ExecutorKind, n: usize, k: u64, seed: u64) -> RunOutcome {
    let programs = (0..n)
        .map(|v| RandomTraffic {
            seed: seed ^ (v as u64).wrapping_mul(0x9e37),
            k,
            log: Vec::new(),
        })
        .collect();
    let mut trace = Vec::new();
    // Cutover disabled so the small property sizes genuinely dispatch to
    // the parallel backends instead of falling back inline.
    let engine = Engine::with_executor(Executor::with_cutover(kind, 2));
    let report = engine.run_traced(programs, |loads| {
        trace.push(loads.iter().collect::<Vec<_>>())
    });
    (
        report.programs.into_iter().map(|p| p.log).collect(),
        report.rounds,
        report.words,
        trace,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_backends_are_bit_identical_to_sequential(
        n in 2usize..24,
        k in 1u64..8,
        seed in 0u64..1_000_000,
        threads in 2usize..9,
    ) {
        let seq = run(ExecutorKind::Sequential, n, k, seed);
        for kind in [ExecutorKind::Parallel { threads }, ExecutorKind::Spawn { threads }] {
            let par = run(kind, n, k, seed);
            prop_assert_eq!(&seq.0, &par.0, "delivered inboxes must match ({:?})", kind);
            prop_assert_eq!(seq.1, par.1, "round counts must match ({kind:?})");
            prop_assert_eq!(seq.2, par.2, "word counts must match ({kind:?})");
            prop_assert_eq!(&seq.3, &par.3, "per-round load traces must match ({:?})", kind);
        }
    }
}

#[test]
fn pooled_engine_never_spawns_per_round() {
    // Acceptance criterion: worker threads are created at most once per
    // executor lifetime. Build the pool, then drive many engine runs and
    // assert this executor's (race-free, per-instance) spawn probe stays
    // at the construction-time count.
    let exec = Executor::with_cutover(ExecutorKind::Parallel { threads: 4 }, 2);
    let engine = Engine::with_executor(exec);
    assert_eq!(engine.executor().threads_spawned(), 3);
    for seed in 0..10 {
        let programs = (0..16)
            .map(|v| RandomTraffic {
                seed: seed ^ (v as u64).wrapping_mul(0x9e37),
                k: 4,
                log: Vec::new(),
            })
            .collect::<Vec<_>>();
        let report = engine.run(programs);
        assert!(report.engine_rounds > 0);
    }
    assert_eq!(
        engine.executor().threads_spawned(),
        3,
        "pooled engine runs must not spawn any threads"
    );
}

#[test]
fn traffic_actually_flows() {
    // Guard against the property passing vacuously.
    let (logs, rounds, words, _) = run(ExecutorKind::Sequential, 12, 5, 42);
    assert!(rounds > 0);
    assert!(words > 0);
    assert!(logs.iter().any(|l| !l.is_empty()));
}
