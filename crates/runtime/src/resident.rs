//! Worker-resident node programs: state machines that can cross the wire.
//!
//! The engine's default mode keeps every [`NodeProgram`] in the
//! orchestrating process and ships only round traffic through the
//! [`crate::Fabric`]. Program-resident fabrics invert that: the program
//! *state* is serialized and shipped to workers **once**, the workers step
//! their shards locally and exchange round payloads directly with each
//! other, and the orchestrator's per-round role shrinks to brokering the
//! barrier and collecting final states.
//!
//! Three pieces make that possible without weakening the determinism
//! contract:
//!
//! * [`WireProgram`] — a [`NodeProgram`] whose full state round-trips
//!   through `Vec<Word>` (`encode_state`/`decode_state`) and that names
//!   itself with a stable [`WireProgram::KIND`] key;
//! * [`ResidentRegistry`] — the worker-side table mapping kind keys to
//!   decoders, so a generic worker binary can host any registered program;
//! * [`step_node`] — the one-round stepping helper workers call; it builds
//!   the same [`RoundCtx`] the engine builds, so a program cannot tell
//!   whether it runs orchestrator-side or worker-resident.
//!
//! A fabric advertises residency via [`crate::Fabric::run_resident`]; the
//! engine's `run_wire*` entry points try that path first and fall back to
//! the classical round loop, with results, rounds, words, and per-round
//! [`crate::LinkLoads`] sequences bit-identical either way.

use crate::program::{Control, NodeInbox, NodeOutbox, NodeProgram, RoundCtx};
use crate::Word;
use std::collections::BTreeMap;

/// A [`NodeProgram`] whose complete state can cross the wire as words.
///
/// `decode_state(node, n, &p.encode_state())` must reconstruct `p` exactly
/// — including any derived plan the program recomputes from `n` — so that a
/// program shipped to a worker behaves bit-identically to one that never
/// left the orchestrator.
pub trait WireProgram: NodeProgram + Sized + 'static {
    /// Stable registry key identifying this program kind on the wire.
    const KIND: &'static str;

    /// Serializes the program's complete state.
    fn encode_state(&self) -> Vec<Word>;

    /// Rebuilds node `node`'s program (clique size `n`) from encoded state.
    fn decode_state(node: usize, n: usize, state: &[Word]) -> Self;
}

/// Object-safe view of a worker-resident program: steppable (it is a
/// [`NodeProgram`]) and re-encodable for the final-state collection.
pub trait ResidentNode: NodeProgram {
    /// Serializes the program's complete state (see
    /// [`WireProgram::encode_state`]).
    fn encode_state(&self) -> Vec<Word>;
}

impl<P: WireProgram> ResidentNode for P {
    fn encode_state(&self) -> Vec<Word> {
        WireProgram::encode_state(self)
    }
}

type DecodeFn = fn(usize, usize, &[Word]) -> Box<dyn ResidentNode>;

/// Worker-side table of decodable program kinds.
///
/// A worker binary builds one registry at startup (generic transport
/// binaries use [`ResidentRegistry::with_builtins`]; binaries linked
/// against algorithm crates [`register`](ResidentRegistry::register) their
/// program types on top) and decodes every shipped shard through it.
/// Unknown kinds are a loud protocol error, not a silent fallback.
#[derive(Debug, Default)]
pub struct ResidentRegistry {
    decoders: BTreeMap<&'static str, DecodeFn>,
}

impl ResidentRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry preloaded with the crate's builtin test program
    /// ([`EchoRingProgram`]), enough for transport-level round-trip tests
    /// that have no algorithm crates linked in.
    #[must_use]
    pub fn with_builtins() -> Self {
        let mut reg = Self::new();
        reg.register::<EchoRingProgram>();
        reg
    }

    /// Registers `P` under its [`WireProgram::KIND`] key (last registration
    /// wins).
    pub fn register<P: WireProgram>(&mut self) {
        self.decoders.insert(P::KIND, |node, n, state| {
            Box::new(P::decode_state(node, n, state))
        });
    }

    /// Decodes node `node`'s program of the named kind, or `None` when the
    /// kind is unregistered.
    #[must_use]
    pub fn decode(
        &self,
        kind: &str,
        node: usize,
        n: usize,
        state: &[Word],
    ) -> Option<Box<dyn ResidentNode>> {
        self.decoders.get(kind).map(|f| f(node, n, state))
    }

    /// The registered kind keys, in sorted order.
    pub fn kinds(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.decoders.keys().copied()
    }
}

/// Steps one program through one round, exactly as the engine would:
/// builds the [`RoundCtx`] over `inbox`, runs the program, and returns its
/// control decision plus the outbox it filled. This lives here (not in the
/// transport crates) because the context's internals are deliberately
/// private — workers get the same I/O surface as in-process programs, and
/// nothing else.
#[must_use]
pub fn step_node(
    program: &mut dyn NodeProgram,
    node: usize,
    n: usize,
    round: u64,
    inbox: &NodeInbox,
) -> (Control, NodeOutbox) {
    let mut outbox = NodeOutbox::default();
    let control = program.round(&mut RoundCtx {
        node,
        n,
        round,
        inbox,
        outbox: &mut outbox,
    });
    (control, outbox)
}

/// What a program-resident session hands back to the engine: the final
/// encoded state per node and how many synchronous barriers ran. Round and
/// word charges flow through the per-round loads callback instead, so the
/// engine accounts them exactly like the classical loop.
#[derive(Debug)]
pub struct ResidentOutcome {
    /// Final encoded program states, in node order.
    pub finals: Vec<Vec<Word>>,
    /// Number of synchronous barriers executed.
    pub engine_rounds: u64,
}

/// Builtin [`WireProgram`] used by transport tests: for `k` rounds each
/// node sends `round * 10 + node` to its ring successor while node 0
/// broadcasts a per-round marker; every node logs what it hears from its
/// ring predecessor and from the broadcasts. Exercises unicast lanes,
/// shared broadcast slabs, and multi-round halting without any algorithm
/// crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EchoRingProgram {
    k: u64,
    log: Vec<Word>,
}

impl EchoRingProgram {
    /// A program that sends for `k` rounds (and halts on round `k`).
    #[must_use]
    pub fn new(k: u64) -> Self {
        Self { k, log: Vec::new() }
    }

    /// Everything this node heard, in round order.
    #[must_use]
    pub fn log(&self) -> &[Word] {
        &self.log
    }
}

impl NodeProgram for EchoRingProgram {
    fn round(&mut self, ctx: &mut RoundCtx<'_>) -> Control {
        let (node, n) = (ctx.node(), ctx.n());
        let prev = (node + n - 1) % n;
        self.log.extend_from_slice(ctx.received(prev));
        for slab in ctx.broadcasts_from(0) {
            self.log.extend_from_slice(slab);
        }
        if ctx.round() < self.k {
            ctx.send((node + 1) % n, vec![ctx.round() * 10 + node as Word]);
            if node == 0 {
                ctx.broadcast(vec![ctx.round() ^ 0xff]);
            }
            Control::Continue
        } else {
            Control::Halt
        }
    }
}

impl WireProgram for EchoRingProgram {
    const KIND: &'static str = "cc.echo-ring";

    fn encode_state(&self) -> Vec<Word> {
        let mut state = Vec::with_capacity(1 + self.log.len());
        state.push(self.k);
        state.extend_from_slice(&self.log);
        state
    }

    fn decode_state(_node: usize, _n: usize, state: &[Word]) -> Self {
        Self {
            k: state[0],
            log: state[1..].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, ExecutorKind};

    #[test]
    fn echo_ring_round_trips_through_its_wire_state() {
        let report = Engine::new(ExecutorKind::Sequential)
            .run((0..5).map(|_| EchoRingProgram::new(3)).collect());
        for (node, p) in report.programs.iter().enumerate() {
            let back = EchoRingProgram::decode_state(node, 5, &WireProgram::encode_state(p));
            assert_eq!(&back, p, "node {node}");
            assert!(!p.log().is_empty());
        }
    }

    #[test]
    fn registry_decodes_registered_kinds_only() {
        let reg = ResidentRegistry::with_builtins();
        assert_eq!(reg.kinds().collect::<Vec<_>>(), vec![EchoRingProgram::KIND]);
        let p = EchoRingProgram::new(2);
        let state = WireProgram::encode_state(&p);
        let mut boxed = reg
            .decode(EchoRingProgram::KIND, 1, 4, &state)
            .expect("builtin registered");
        assert_eq!(boxed.encode_state(), state);
        assert!(reg.decode("cc.unknown", 0, 4, &[]).is_none());

        // A decoded program steps exactly like the original.
        let inbox = NodeInbox::empty(4);
        let (control, outbox) = step_node(boxed.as_mut(), 1, 4, 0, &inbox);
        assert_eq!(control, Control::Continue);
        let (unicast, _) = outbox.into_parts();
        assert_eq!(unicast, vec![(2, vec![1])]);
    }

    #[test]
    fn step_node_matches_the_engine_loop() {
        // Drive the ring by hand with step_node + the default fabric's
        // delivery, and compare against Engine::run.
        let n = 4;
        let expected = Engine::new(ExecutorKind::Sequential)
            .run((0..n).map(|_| EchoRingProgram::new(2)).collect());

        let mut programs: Vec<EchoRingProgram> = (0..n).map(|_| EchoRingProgram::new(2)).collect();
        let mut inboxes: Vec<NodeInbox> = (0..n).map(|_| NodeInbox::empty(n)).collect();
        let mut halted = vec![false; n];
        let mut fabric = crate::EngineFabric::new(crate::Executor::new(ExecutorKind::Sequential));
        let mut round = 0u64;
        while halted.iter().any(|h| !h) {
            let mut outboxes = Vec::with_capacity(n);
            for (node, p) in programs.iter_mut().enumerate() {
                if halted[node] {
                    outboxes.push(NodeOutbox::default());
                    continue;
                }
                let (control, outbox) = step_node(p, node, n, round, &inboxes[node]);
                halted[node] = control == Control::Halt;
                outboxes.push(outbox);
            }
            let (delivered, _) = crate::Fabric::deliver_round(&mut fabric, n, outboxes);
            inboxes = delivered;
            round += 1;
        }
        for (a, b) in programs.iter().zip(&expected.programs) {
            assert_eq!(a, b);
        }
        assert_eq!(round, expected.engine_rounds);
    }
}
