//! Pluggable execution backends.

use crate::pool::WorkerPool;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Below this many independent pieces a parallel executor runs the job
/// inline on the calling thread: dispatch (even to a parked pool) costs a
/// condvar round-trip, which `BENCH_runtime.json` shows dominating small
/// workloads — at `n = 64` the overhead outweighs the work. Tunable per
/// executor with [`Executor::with_cutover`] or globally with the
/// `CC_EXEC_CUTOVER` environment variable; when the variable is unset the
/// parallel kinds self-tune their default upward from this floor with a
/// startup micro-probe (see [`Executor::new`]).
pub const DEFAULT_SEQ_CUTOVER: usize = 96;

/// Which backend an [`Executor`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutorKind {
    /// Run everything on the calling thread, in index order. The reference
    /// semantics every other backend must reproduce bit-for-bit.
    #[default]
    Sequential,
    /// Fan independent per-index work out over a **persistent worker pool**
    /// built once in [`Executor::new`] (workers park between calls) and
    /// merge results at a deterministic barrier. The default parallel
    /// backend.
    Parallel {
        /// Worker thread count; `0` means "one per available CPU".
        threads: usize,
    },
    /// The legacy parallel backend: spawn and join *scoped* threads on
    /// every call. Same results as [`ExecutorKind::Parallel`], strictly
    /// more per-call overhead; kept as the baseline for the pool ablation
    /// bench (`BENCH_pool.json`).
    Spawn {
        /// Worker thread count; `0` means "one per available CPU".
        threads: usize,
    },
}

impl ExecutorKind {
    /// A pooled parallel kind sized to the machine.
    #[must_use]
    pub fn parallel() -> Self {
        ExecutorKind::Parallel { threads: 0 }
    }

    /// Reads the backend from the `CC_EXECUTOR` environment variable
    /// (`sequential`, `parallel`/`pooled`, or `spawn`, optionally suffixed
    /// `:<threads>` as in `parallel:4`), falling back to `fallback` when
    /// unset. This is how CI forces the whole test suite onto the parallel
    /// backend without touching call sites. A malformed value is reported
    /// once per process (see [`crate::env_config`]) before falling back.
    #[must_use]
    pub fn from_env_or(fallback: ExecutorKind) -> Self {
        crate::env_config::from_env_or(
            "cc-runtime",
            "CC_EXECUTOR",
            "sequential, parallel[:threads], or spawn[:threads]",
            fallback,
            Self::parse,
        )
    }

    /// Parses a backend spec (`sequential`, `parallel`/`pooled`, `spawn`,
    /// optionally suffixed `:<threads>`); `None` for unknown names **or**
    /// malformed thread suffixes. `parallel:banana` must not silently mean
    /// `threads: 0` (machine-sized) — rejecting the whole spec lets
    /// [`ExecutorKind::from_env_or`] fall back as documented.
    #[must_use]
    pub fn parse(raw: &str) -> Option<Self> {
        let (name, threads) = match raw.split_once(':') {
            Some((name, t)) => (name, t.parse().ok()?),
            None => (raw, 0),
        };
        match name.to_ascii_lowercase().as_str() {
            "sequential" | "seq" => Some(ExecutorKind::Sequential),
            "parallel" | "pooled" | "pool" => Some(ExecutorKind::Parallel { threads }),
            "spawn" | "scoped" => Some(ExecutorKind::Spawn { threads }),
            _ => None,
        }
    }

    fn resolved_threads(self) -> usize {
        match self {
            ExecutorKind::Sequential => 1,
            ExecutorKind::Parallel { threads: 0 } | ExecutorKind::Spawn { threads: 0 } => {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            }
            ExecutorKind::Parallel { threads } | ExecutorKind::Spawn { threads } => threads,
        }
    }
}

/// A handle that runs independent per-index work on some backend.
///
/// The core operation is [`Executor::map`]: evaluate `f(0), …, f(n-1)` and
/// return the results in index order. The parallel backends distribute
/// indices over worker threads with an atomic work-stealing counter (so
/// skewed per-index costs still balance) and then merge results by index,
/// which makes the output — and anything downstream of it — independent of
/// thread scheduling.
///
/// ## Pool lifecycle
///
/// For [`ExecutorKind::Parallel`], `Executor::new` builds the worker pool
/// **once**: `threads - 1` OS threads are spawned eagerly and park between
/// calls (the calling thread is the remaining participant). Clones of the
/// executor share the same pool; when the last clone drops, the workers are
/// woken, joined, and gone. No `map`/`map_chunks_mut` call ever spawns a
/// thread on this backend — the spawn-probe tests pin exactly that.
#[derive(Debug, Clone)]
pub struct Executor {
    kind: ExecutorKind,
    /// Worker count with `threads: 0` already resolved against the machine
    /// (resolved once at construction — `available_parallelism` is a
    /// syscall and `threads_for` sits on hot paths).
    threads: usize,
    /// Piece-count threshold below which parallel kinds run inline.
    cutover: usize,
    /// The persistent pool (pooled kind with `threads > 1` only).
    pool: Option<Arc<WorkerPool>>,
    /// OS threads this executor (and its clones) ever spawned — pool
    /// workers at construction plus any per-call scoped threads. The
    /// race-free spawn probe: on the pooled backend this must never move
    /// after `new` returns.
    spawns: Arc<AtomicUsize>,
}

impl Default for Executor {
    fn default() -> Self {
        Self::new(ExecutorKind::default())
    }
}

impl PartialEq for Executor {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind && self.threads == other.threads && self.cutover == other.cutover
    }
}

impl Eq for Executor {}

impl Executor {
    /// Creates an executor of the given kind. For the pooled kind this is
    /// where the worker threads are created — exactly once per executor
    /// lifetime (see the pool-lifecycle notes on [`Executor`]).
    ///
    /// The inline cutover comes from `CC_EXEC_CUTOVER` when set; otherwise
    /// the parallel kinds self-tune it from a one-shot startup micro-probe
    /// (see [`probed_cutover`]) instead of assuming the hardcoded
    /// [`DEFAULT_SEQ_CUTOVER`] fits every machine.
    #[must_use]
    pub fn new(kind: ExecutorKind) -> Self {
        // The fallback is computed lazily (the micro-probe should not run
        // when the environment pins a cutover), so this mirrors
        // `env_config::from_env_or` instead of calling it.
        let cutover = match std::env::var("CC_EXEC_CUTOVER").ok() {
            None => default_cutover(kind),
            Some(raw) => match raw.parse().ok() {
                Some(v) => v,
                None => {
                    let fallback = default_cutover(kind);
                    crate::env_config::warn_once(
                        "cc-runtime",
                        "CC_EXEC_CUTOVER",
                        &raw,
                        "a non-negative integer",
                        &fallback.to_string(),
                    );
                    fallback
                }
            },
        };
        Self::with_cutover(kind, cutover)
    }

    /// [`Executor::new`] with an explicit small-`n` cutover: jobs with
    /// fewer than `cutover` pieces run inline on the calling thread even on
    /// parallel backends (their results are identical either way; only
    /// dispatch overhead changes). `0` disables the cutover.
    #[must_use]
    pub fn with_cutover(kind: ExecutorKind, cutover: usize) -> Self {
        let threads = kind.resolved_threads();
        let spawns = Arc::new(AtomicUsize::new(0));
        let pool = match kind {
            ExecutorKind::Parallel { .. } if threads > 1 => {
                Some(Arc::new(WorkerPool::new(threads - 1, &spawns)))
            }
            _ => None,
        };
        Self {
            kind,
            threads,
            cutover,
            pool,
            spawns,
        }
    }

    /// The configured kind.
    #[must_use]
    pub fn kind(&self) -> ExecutorKind {
        self.kind
    }

    /// A handle to the **same** backend — pooled kinds share this
    /// executor's worker pool, no threads are spawned — but with a
    /// different small-`n` cutover. The cutover heuristic prices jobs by
    /// *piece count*, which is right for fine-grained node-local loops and
    /// wrong for coarse fan-outs whose few pieces are each an entire
    /// algorithm run (e.g. a service batch spread over pool instances);
    /// such callers take an override handle with the cutover disabled
    /// while every nested dispatch keeps the configured one.
    #[must_use]
    pub fn with_cutover_override(&self, cutover: usize) -> Executor {
        Executor {
            cutover,
            ..self.clone()
        }
    }

    /// The small-`n` cutover threshold (see [`Executor::with_cutover`]).
    #[must_use]
    pub fn cutover(&self) -> usize {
        self.cutover
    }

    /// OS threads this executor (and its clones, which share the counter)
    /// has ever spawned. The pooled backend spawns exactly `threads - 1`
    /// workers inside [`Executor::new`] and never again — the spawn probe
    /// the determinism tests pin; the spawn backend grows this on every
    /// dispatched call. Per-instance, so concurrent tests cannot perturb
    /// each other's readings (unlike the process-global
    /// [`crate::pool_threads_spawned`] diagnostic).
    #[must_use]
    pub fn threads_spawned(&self) -> usize {
        self.spawns.load(Ordering::SeqCst)
    }

    /// Number of worker threads this executor would use for a job of `n`
    /// independent pieces: never more threads than pieces, and `1` (run
    /// inline) for jobs below the sequential cutover — small fan-outs pay
    /// more in dispatch than they gain in parallelism.
    #[must_use]
    pub fn threads_for(&self, n: usize) -> usize {
        if self.threads <= 1 || n < self.cutover {
            return 1;
        }
        self.threads.clamp(1, n.max(1))
    }

    /// Evaluates `f` at every index in `0..n`, returning results in index
    /// order. Deterministic for any backend: the parallel path assigns each
    /// index to exactly one worker and merges by index at the barrier.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let threads = self.threads_for(n);
        emit_dispatch(n, threads);
        if threads <= 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let steal_loop = |_slot: usize| {
            let mut out = Vec::with_capacity(n / threads + 1);
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                out.push((i, f(i)));
            }
            out
        };
        let parts: Vec<Vec<(usize, T)>> = match &self.pool {
            Some(pool) => run_pooled(pool, steal_loop),
            None => run_scoped(threads, &self.spawns, steal_loop),
        };
        // Deterministic merge: results land in their index slot regardless
        // of which worker computed them.
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for part in parts {
            for (i, v) in part {
                debug_assert!(slots[i].is_none(), "index {i} computed twice");
                slots[i] = Some(v);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index computed exactly once"))
            .collect()
    }

    /// Splits `data` into contiguous pieces of `chunk_len` elements (the
    /// last piece may be shorter), processes each piece on the backend, and
    /// returns results in piece order. Pieces are distributed round-robin
    /// over workers; since every piece is owned by exactly one worker and
    /// results merge by piece index, the output is deterministic.
    pub fn map_chunks_mut<T, U, F>(&self, data: &mut [T], chunk_len: usize, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, &mut [T]) -> U + Sync,
    {
        assert!(chunk_len > 0, "chunk length must be positive");
        /// One worker's share: `(piece index, piece)` pairs.
        type Share<'p, T> = Vec<(usize, &'p mut [T])>;
        let pieces: Vec<&mut [T]> = data.chunks_mut(chunk_len).collect();
        let n_pieces = pieces.len();
        let threads = self.threads_for(n_pieces);
        emit_dispatch(n_pieces, threads);
        if threads <= 1 {
            return pieces
                .into_iter()
                .enumerate()
                .map(|(i, piece)| f(i, piece))
                .collect();
        }
        let mut assignments: Vec<Share<'_, T>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, piece) in pieces.into_iter().enumerate() {
            assignments[i % threads].push((i, piece));
        }
        let parts: Vec<Vec<(usize, U)>> = match &self.pool {
            Some(pool) => {
                // Hand each participant exclusive ownership of its
                // assignment through a per-slot mutex (uncontended: slot
                // `s` is taken only by participant `s`).
                let assignments: Vec<Mutex<Share<'_, T>>> =
                    assignments.into_iter().map(Mutex::new).collect();
                run_pooled(pool, |slot| {
                    let mine = assignments
                        .get(slot)
                        .map(|m| std::mem::take(&mut *m.lock().expect("assignment mutex")))
                        .unwrap_or_default();
                    mine.into_iter()
                        .map(|(i, piece)| (i, f(i, piece)))
                        .collect::<Vec<_>>()
                })
            }
            None => {
                let assignments = Mutex::new(assignments.into_iter().map(Some).collect::<Vec<_>>());
                run_scoped(threads, &self.spawns, |slot| {
                    let mine = assignments.lock().expect("assignment mutex")[slot]
                        .take()
                        .unwrap_or_default();
                    mine.into_iter()
                        .map(|(i, piece)| (i, f(i, piece)))
                        .collect::<Vec<_>>()
                })
            }
        };
        let mut slots: Vec<Option<U>> = (0..n_pieces).map(|_| None).collect();
        for part in parts {
            for (i, v) in part {
                slots[i] = Some(v);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every piece processed exactly once"))
            .collect()
    }
}

/// Upper clamp on the probed cutover: even on a machine where thread
/// hand-off is outrageously slow relative to per-piece work, jobs past a
/// thousand pieces always get the chance to dispatch.
const MAX_PROBED_CUTOVER: usize = 1024;

/// The `CC_EXEC_CUTOVER` fallback for `kind`: the parallel kinds self-tune
/// from the startup micro-probe, while [`ExecutorKind::Sequential`] (where
/// the cutover can never matter — every job runs inline) keeps the
/// documented [`DEFAULT_SEQ_CUTOVER`].
fn default_cutover(kind: ExecutorKind) -> usize {
    if kind.resolved_threads() > 1 {
        probed_cutover()
    } else {
        DEFAULT_SEQ_CUTOVER
    }
}

/// One-shot startup micro-probe that turns this machine's measured dispatch
/// overhead into an inline cutover, instead of assuming the hardcoded
/// [`DEFAULT_SEQ_CUTOVER`] (calibrated on one box) fits everywhere.
///
/// A thread spawn/join round trip bounds the cost of waking workers and
/// re-joining at the merge barrier; a 64-element integer row combine stands
/// in for one piece of typical row-level work. Their ratio is the piece
/// count below which dispatch cannot pay for itself. The result is clamped
/// to `[DEFAULT_SEQ_CUTOVER, MAX_PROBED_CUTOVER]` — self-tuning may only
/// *raise* the threshold on slow-dispatch machines, never inline less than
/// the bench-calibrated default — cached for the process, and reported as a
/// `KernelDecision` telemetry event (`kernel = "probe"`) at
/// [`TraceLevel::Full`].
///
/// The cutover only decides *where* pieces run, never what they compute, so
/// the probe's inherent nondeterminism cannot leak into results, rounds,
/// words, or fingerprints.
///
/// [`TraceLevel::Full`]: cc_telemetry::TraceLevel::Full
fn probed_cutover() -> usize {
    static PROBED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *PROBED.get_or_init(|| {
        use std::hint::black_box;
        use std::time::Instant;
        // Best-of-three spawn/join round trips (first iterations absorb
        // lazy thread-runtime setup).
        let mut dispatch_ns = u128::MAX;
        for _ in 0..3 {
            let start = Instant::now();
            std::thread::spawn(|| black_box(0u64)).join().ok();
            dispatch_ns = dispatch_ns.min(start.elapsed().as_nanos());
        }
        // Per-piece proxy: a 64-element fused multiply-accumulate row,
        // repeated enough to be measurable.
        const REPS: u128 = 1024;
        let row = [3i64; 64];
        let start = Instant::now();
        let mut acc = 0i64;
        for r in 0..REPS {
            for &x in black_box(&row) {
                acc = acc.wrapping_add(x.wrapping_mul(r as i64));
            }
        }
        black_box(acc);
        let piece_ns = (start.elapsed().as_nanos() / REPS).max(1);
        let pieces = usize::try_from(dispatch_ns / piece_ns).unwrap_or(usize::MAX);
        let cutover = pieces.clamp(DEFAULT_SEQ_CUTOVER, MAX_PROBED_CUTOVER);
        cc_telemetry::global().emit(cc_telemetry::TraceLevel::Full, || {
            cc_telemetry::Event::KernelDecision {
                kernel: "probe",
                op: "exec_cutover",
                n: cutover,
                tile: 0,
            }
        });
        cutover
    })
}

/// Reports one fan-out decision — piece count and the thread count the
/// cutover heuristic chose (`1` = inline) — at [`TraceLevel::Full`].
/// Observer-only and a single branch when tracing is off.
///
/// [`TraceLevel::Full`]: cc_telemetry::TraceLevel::Full
#[inline]
fn emit_dispatch(pieces: usize, threads: usize) {
    cc_telemetry::global().emit(cc_telemetry::TraceLevel::Full, || {
        cc_telemetry::Event::ExecutorDispatch { pieces, threads }
    });
}

/// Resolves a `CC_EXEC_CUTOVER` spec: `None` (unset) and parseable values
/// resolve normally; a malformed value is an error carrying the raw spec —
/// [`Executor::new`] reports the misconfiguration instead of swallowing it.
/// A thin wrapper over the shared [`crate::env_config::resolve`], kept so
/// the historical contract stays unit-tested against the helper.
#[cfg(test)]
fn resolve_cutover(spec: Option<&str>) -> Result<usize, String> {
    crate::env_config::resolve(spec, DEFAULT_SEQ_CUTOVER, |raw| raw.parse().ok())
}

/// Runs `work(slot)` for slots `0..=pool.workers()` on the persistent pool
/// (slot 0 on the calling thread), collecting the per-slot results. The
/// merge order over slots is irrelevant: callers merge by item index.
fn run_pooled<R: Send>(pool: &WorkerPool, work: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let parts: Mutex<Vec<R>> = Mutex::new(Vec::with_capacity(pool.workers() + 1));
    pool.run(&|slot| {
        let r = work(slot);
        parts.lock().expect("parts mutex").push(r);
    });
    parts.into_inner().expect("parts mutex")
}

/// The legacy backend: spawn `threads` scoped threads for this one call and
/// join them before returning. Each spawn is recorded on the executor's
/// spawn counter so the probes see exactly what this backend costs.
fn run_scoped<R: Send>(
    threads: usize,
    spawns: &AtomicUsize,
    work: impl Fn(usize) -> R + Sync,
) -> Vec<R> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|slot| {
                let work = &work;
                spawns.fetch_add(1, Ordering::SeqCst);
                scope.spawn(move || work(slot))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A parallel executor with the cutover disabled, so small test inputs
    /// genuinely exercise the pool.
    fn pooled(threads: usize) -> Executor {
        Executor::with_cutover(ExecutorKind::Parallel { threads }, 0)
    }

    fn spawner(threads: usize) -> Executor {
        Executor::with_cutover(ExecutorKind::Spawn { threads }, 0)
    }

    #[test]
    fn map_matches_sequential_reference() {
        let seq = Executor::new(ExecutorKind::Sequential);
        let f = |i: usize| (i * i) as u64 ^ 0xdead;
        for par in [pooled(4), spawner(4)] {
            for n in [0, 1, 2, 7, 64, 1000] {
                assert_eq!(seq.map(n, f), par.map(n, f), "n={n} kind={:?}", par.kind());
            }
        }
    }

    #[test]
    fn map_handles_skewed_work() {
        for par in [pooled(3), spawner(3)] {
            let out = par.map(100, |i| {
                // Index 0 is far more expensive than the rest; work stealing
                // keeps the other workers busy.
                if i == 0 {
                    (0..100_000u64).fold(0, |a, x| a ^ x.wrapping_mul(31))
                } else {
                    i as u64
                }
            });
            assert_eq!(out.len(), 100);
            assert_eq!(out[5], 5);
        }
    }

    #[test]
    fn thread_counts_are_bounded_by_work() {
        let par = pooled(8);
        assert_eq!(par.threads_for(3), 3);
        assert_eq!(par.threads_for(0), 1);
        let seq = Executor::new(ExecutorKind::Sequential);
        assert_eq!(seq.threads_for(1000), 1);
    }

    #[test]
    fn cutover_falls_back_to_inline_below_threshold() {
        // The satellite contract: below the (tunable) work threshold a
        // parallel executor runs inline — small workloads stop paying
        // dispatch overhead.
        let par = Executor::with_cutover(ExecutorKind::Parallel { threads: 4 }, 96);
        assert_eq!(par.threads_for(64), 1, "n=64 must run inline");
        assert_eq!(par.threads_for(95), 1, "just below the threshold");
        assert_eq!(par.threads_for(96), 4, "at the threshold the pool runs");
        assert_eq!(par.threads_for(256), 4);
        // Results are identical on both sides of the cutover.
        let f = |i: usize| i as u64 * 3;
        let seq = Executor::new(ExecutorKind::Sequential);
        assert_eq!(par.map(64, f), seq.map(64, f));
        assert_eq!(par.map(200, f), seq.map(200, f));
        // Cutover 0 disables the fallback entirely.
        assert_eq!(pooled(4).threads_for(2), 2);
    }

    #[test]
    fn pooled_executor_never_spawns_after_construction() {
        let par = pooled(4);
        // Per-executor probe: 3 workers spawned at construction, and the
        // counter must never move again (race-free against other tests,
        // unlike the process-global diagnostic).
        assert_eq!(par.threads_spawned(), 3);
        for round in 0..50 {
            let out = par.map(257, |i| i as u64 + round);
            assert_eq!(out[100], 100 + round);
            let mut data: Vec<u64> = (0..300).collect();
            let _ = par.map_chunks_mut(&mut data, 7, |i, piece| {
                piece.iter_mut().for_each(|x| *x += i as u64);
                piece.len()
            });
        }
        assert_eq!(
            par.threads_spawned(),
            3,
            "map/map_chunks_mut must reuse the pool, never spawn"
        );
    }

    #[test]
    fn spawn_backend_spawns_per_call_but_pool_does_not() {
        // The ablation contrast the pool exists to win.
        let sp = spawner(3);
        let _ = sp.map(64, |i| i);
        let _ = sp.map(64, |i| i);
        assert_eq!(sp.threads_spawned(), 6, "spawn backend pays per call");
        let po = pooled(3);
        let _ = po.map(64, |i| i);
        let _ = po.map(64, |i| i);
        assert_eq!(po.threads_spawned(), 2, "pool pays only at construction");
    }

    #[test]
    fn cutover_override_shares_the_pool_and_changes_only_the_threshold() {
        let par = Executor::with_cutover(ExecutorKind::Parallel { threads: 4 }, 96);
        let coarse = par.with_cutover_override(0);
        // Same pool: no new threads; the original keeps its cutover.
        assert_eq!(coarse.threads_spawned(), 3, "override must not spawn");
        assert_eq!(
            par.threads_for(3),
            1,
            "original still runs small jobs inline"
        );
        assert_eq!(coarse.threads_for(3), 3, "override dispatches small jobs");
        let f = |i: usize| i as u64 * 7;
        assert_eq!(coarse.map(3, f), par.map(3, f));
        assert_eq!(par.threads_spawned(), 3, "no spawns after dispatch either");
    }

    #[test]
    fn clones_share_one_pool() {
        let a = pooled(4);
        let b = a.clone();
        assert_eq!(b.threads_spawned(), 3, "clone shares, does not spawn");
        assert_eq!(a.map(128, |i| i), b.map(128, |i| i));
        assert_eq!(a.threads_spawned(), 3);
    }

    #[test]
    fn map_chunks_mut_matches_sequential_reference() {
        let run = |exec: &Executor| {
            let mut data: Vec<u64> = (0..103).collect();
            let sums = exec.map_chunks_mut(&mut data, 10, |i, piece| {
                for x in piece.iter_mut() {
                    *x = x.wrapping_mul(3).wrapping_add(i as u64);
                }
                piece.iter().sum::<u64>()
            });
            (data, sums)
        };
        let reference = run(&Executor::new(ExecutorKind::Sequential));
        assert_eq!(reference, run(&pooled(4)));
        assert_eq!(reference, run(&spawner(4)));
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let par = Executor::new(ExecutorKind::parallel());
        assert!(par.threads_for(1_000_000) >= 1);
    }

    #[test]
    fn pooled_map_propagates_panics() {
        let par = pooled(3);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = par.map(64, |i| {
                assert!(i != 33, "deliberate panic at index 33");
                i
            });
        }));
        assert!(r.is_err());
        // Executor stays usable after a panicked job.
        assert_eq!(par.map(64, |i| i)[63], 63);
    }

    #[test]
    fn executor_kind_parser_accepts_known_names() {
        // Exercises the parser directly — the env var itself is
        // process-global (CI sets it for whole suite runs), so the test
        // must not read or write it.
        assert_eq!(
            ExecutorKind::parse("sequential"),
            Some(ExecutorKind::Sequential)
        );
        assert_eq!(
            ExecutorKind::parse("parallel"),
            Some(ExecutorKind::Parallel { threads: 0 })
        );
        assert_eq!(
            ExecutorKind::parse("parallel:4"),
            Some(ExecutorKind::Parallel { threads: 4 })
        );
        assert_eq!(
            ExecutorKind::parse("spawn:2"),
            Some(ExecutorKind::Spawn { threads: 2 })
        );
        assert_eq!(
            ExecutorKind::parse("pooled:0"),
            Some(ExecutorKind::Parallel { threads: 0 }),
            "an explicit 0 means machine-sized"
        );
        assert_eq!(ExecutorKind::parse("fancy"), None);
    }

    #[test]
    fn executor_kind_parser_rejects_malformed_thread_suffixes() {
        // The historical bug: `parallel:banana` parsed as `threads: 0`
        // (machine-sized), silently misconfiguring the backend. A bad
        // suffix must reject the whole spec so `from_env_or` falls back.
        assert_eq!(ExecutorKind::parse("parallel:banana"), None);
        assert_eq!(ExecutorKind::parse("spawn:"), None, "empty suffix");
        assert_eq!(ExecutorKind::parse("parallel:-2"), None);
        assert_eq!(ExecutorKind::parse("parallel:4x"), None);
        assert_eq!(
            ExecutorKind::parse("seq:banana"),
            None,
            "even for kinds that ignore threads"
        );
    }

    #[test]
    fn cutover_resolution_reports_malformed_specs() {
        // Unset and well-formed specs resolve silently.
        assert_eq!(resolve_cutover(None), Ok(DEFAULT_SEQ_CUTOVER));
        assert_eq!(resolve_cutover(Some("0")), Ok(0));
        assert_eq!(resolve_cutover(Some("128")), Ok(128));
        // Malformed specs must surface as errors (Executor::new prints the
        // warning once), never resolve silently to anything.
        assert_eq!(resolve_cutover(Some("banana")), Err("banana".to_string()));
        assert_eq!(resolve_cutover(Some("-3")), Err("-3".to_string()));
        assert_eq!(resolve_cutover(Some("")), Err(String::new()));
        assert_eq!(resolve_cutover(Some("96ms")), Err("96ms".to_string()));
    }

    #[test]
    fn probed_cutover_is_clamped_and_cached() {
        let probed = probed_cutover();
        assert!(
            (DEFAULT_SEQ_CUTOVER..=MAX_PROBED_CUTOVER).contains(&probed),
            "self-tuning may only raise the floor, bounded above: {probed}"
        );
        assert_eq!(probed_cutover(), probed, "one probe per process");
        // Sequential executors never consult the probe.
        assert_eq!(
            default_cutover(ExecutorKind::Sequential),
            DEFAULT_SEQ_CUTOVER
        );
    }
}
