//! Pluggable execution backends.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Which backend an [`Executor`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutorKind {
    /// Run everything on the calling thread, in index order. The reference
    /// semantics every other backend must reproduce bit-for-bit.
    #[default]
    Sequential,
    /// Fan independent per-index work out over a scoped thread pool and
    /// merge results at a deterministic barrier.
    Parallel {
        /// Worker thread count; `0` means "one per available CPU".
        threads: usize,
    },
}

impl ExecutorKind {
    /// A parallel kind sized to the machine.
    #[must_use]
    pub fn parallel() -> Self {
        ExecutorKind::Parallel { threads: 0 }
    }
}

/// A handle that runs independent per-index work on some backend.
///
/// The core operation is [`Executor::map`]: evaluate `f(0), …, f(n-1)` and
/// return the results in index order. The parallel backend distributes
/// indices over worker threads with an atomic work-stealing counter (so
/// skewed per-index costs still balance) and then merges results by index,
/// which makes the output — and anything downstream of it — independent of
/// thread scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    kind: ExecutorKind,
    /// Worker count with `threads: 0` already resolved against the machine
    /// (resolved once at construction — `available_parallelism` is a
    /// syscall and `threads_for` sits on hot paths).
    threads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Self::new(ExecutorKind::default())
    }
}

impl Executor {
    /// Creates an executor of the given kind.
    #[must_use]
    pub fn new(kind: ExecutorKind) -> Self {
        let threads = match kind {
            ExecutorKind::Sequential => 1,
            ExecutorKind::Parallel { threads: 0 } => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
            ExecutorKind::Parallel { threads } => threads,
        };
        Self { kind, threads }
    }

    /// The configured kind.
    #[must_use]
    pub fn kind(&self) -> ExecutorKind {
        self.kind
    }

    /// Number of worker threads this executor would use for a job of `n`
    /// independent pieces (never more threads than pieces).
    #[must_use]
    pub fn threads_for(&self, n: usize) -> usize {
        self.threads.clamp(1, n.max(1))
    }

    /// Evaluates `f` at every index in `0..n`, returning results in index
    /// order. Deterministic for any backend: the parallel path assigns each
    /// index to exactly one worker and merges by index at the barrier.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let threads = self.threads_for(n);
        if threads <= 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let f = &f;
                    let next = &next;
                    scope.spawn(move || {
                        let mut out = Vec::with_capacity(n / threads + 1);
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            out.push((i, f(i)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                })
                .collect()
        });
        // Deterministic merge: results land in their index slot regardless
        // of which worker computed them.
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for part in parts {
            for (i, v) in part {
                debug_assert!(slots[i].is_none(), "index {i} computed twice");
                slots[i] = Some(v);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index computed exactly once"))
            .collect()
    }

    /// Splits `data` into contiguous pieces of `chunk_len` elements (the
    /// last piece may be shorter), processes each piece on the backend, and
    /// returns results in piece order. Pieces are distributed round-robin
    /// over workers; since every piece is owned by exactly one worker and
    /// results merge by piece index, the output is deterministic.
    pub fn map_chunks_mut<T, U, F>(&self, data: &mut [T], chunk_len: usize, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, &mut [T]) -> U + Sync,
    {
        assert!(chunk_len > 0, "chunk length must be positive");
        let pieces: Vec<&mut [T]> = data.chunks_mut(chunk_len).collect();
        let n_pieces = pieces.len();
        let threads = self.threads_for(n_pieces);
        if threads <= 1 {
            return pieces
                .into_iter()
                .enumerate()
                .map(|(i, piece)| f(i, piece))
                .collect();
        }
        let mut assignments: Vec<Vec<(usize, &mut [T])>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (i, piece) in pieces.into_iter().enumerate() {
            assignments[i % threads].push((i, piece));
        }
        let parts: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = assignments
                .into_iter()
                .map(|mine| {
                    let f = &f;
                    scope.spawn(move || {
                        mine.into_iter()
                            .map(|(i, piece)| (i, f(i, piece)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                })
                .collect()
        });
        let mut slots: Vec<Option<U>> = (0..n_pieces).map(|_| None).collect();
        for part in parts {
            for (i, v) in part {
                slots[i] = Some(v);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every piece processed exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_matches_sequential_reference() {
        let seq = Executor::new(ExecutorKind::Sequential);
        let par = Executor::new(ExecutorKind::Parallel { threads: 4 });
        let f = |i: usize| (i * i) as u64 ^ 0xdead;
        for n in [0, 1, 2, 7, 64, 1000] {
            assert_eq!(seq.map(n, f), par.map(n, f), "n={n}");
        }
    }

    #[test]
    fn map_handles_skewed_work() {
        let par = Executor::new(ExecutorKind::Parallel { threads: 3 });
        let out = par.map(100, |i| {
            // Index 0 is far more expensive than the rest; work stealing
            // keeps the other workers busy.
            if i == 0 {
                (0..100_000u64).fold(0, |a, x| a ^ x.wrapping_mul(31))
            } else {
                i as u64
            }
        });
        assert_eq!(out.len(), 100);
        assert_eq!(out[5], 5);
    }

    #[test]
    fn thread_counts_are_bounded_by_work() {
        let par = Executor::new(ExecutorKind::Parallel { threads: 8 });
        assert_eq!(par.threads_for(3), 3);
        assert_eq!(par.threads_for(0), 1);
        let seq = Executor::new(ExecutorKind::Sequential);
        assert_eq!(seq.threads_for(1000), 1);
    }

    #[test]
    fn map_chunks_mut_matches_sequential_reference() {
        let run = |kind: ExecutorKind| {
            let exec = Executor::new(kind);
            let mut data: Vec<u64> = (0..103).collect();
            let sums = exec.map_chunks_mut(&mut data, 10, |i, piece| {
                for x in piece.iter_mut() {
                    *x = x.wrapping_mul(3).wrapping_add(i as u64);
                }
                piece.iter().sum::<u64>()
            });
            (data, sums)
        };
        assert_eq!(
            run(ExecutorKind::Sequential),
            run(ExecutorKind::Parallel { threads: 4 })
        );
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let par = Executor::new(ExecutorKind::parallel());
        assert!(par.threads_for(1_000_000) >= 1);
    }
}
