//! A persistent worker pool: OS threads spawned once per pool lifetime,
//! parked between jobs, fed whole jobs through an epoch-published slot.
//!
//! ## Lifecycle
//!
//! * **Creation** — [`WorkerPool::new`] spawns its workers eagerly; this is
//!   the only place the pool ever creates threads (observable through the
//!   owning executor's spawn counter, which the spawn-probe tests pin).
//! * **Reuse** — every [`WorkerPool::run`] call publishes one job to the
//!   same parked workers; no threads are spawned or joined per call, which
//!   is exactly the per-call overhead the scoped-thread backend pays.
//! * **Shutdown** — dropping the last handle to the pool flips the shutdown
//!   flag, wakes every worker, and joins them; no threads outlive the pool.
//!
//! ## Safety
//!
//! This module contains the crate's only `unsafe` code: the job slot erases
//! the *lifetime* of a caller-borrowed closure so parked threads can run it.
//! The same structured-concurrency argument that makes `std::thread::scope`
//! sound applies here, enforced at runtime instead of in the type system:
//!
//! * [`WorkerPool::run`] does not return until every worker has reported
//!   completion of the published epoch, so the borrow the erased pointer
//!   points at strictly outlives every dereference;
//! * the closure is `Sync`, so concurrent shared calls from many workers
//!   are permitted;
//! * a worker panic is caught, counted like a completion, and re-thrown on
//!   the calling thread after the barrier, so the "caller outlives the job"
//!   invariant holds on the unwind path too.

#![allow(unsafe_code)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Total OS threads ever spawned by worker pools in this process
/// (diagnostics only — it is process-global, so *tests* must probe the
/// race-free per-executor counter, `Executor::threads_spawned`, instead:
/// unrelated tests constructing pools on other threads move this one).
static SPAWNED: AtomicUsize = AtomicUsize::new(0);

/// Process-wide count of pool threads spawned so far (monotone). A
/// diagnostic for single-threaded drivers such as the `runtime_engine`
/// example; concurrent test binaries must use the per-executor
/// [`crate::Executor::threads_spawned`] probe instead.
#[must_use]
pub fn threads_spawned() -> usize {
    SPAWNED.load(Ordering::SeqCst)
}

thread_local! {
    /// Set while a pool worker executes a job; used to run nested dispatch
    /// inline instead of deadlocking on the single job slot.
    static IN_POOL_JOB: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A job as the workers see it: a type- and lifetime-erased pointer to the
/// caller's `Fn(usize) + Sync` closure (the argument is the participant
/// slot). Validity is guaranteed by the `run` barrier (see module docs).
#[derive(Clone, Copy)]
struct ErasedJob {
    ptr: *const (dyn Fn(usize) + Sync),
}

// SAFETY: the pointee is `Sync` (shared calls are fine) and `run` keeps it
// alive for as long as any worker may dereference it, so sending the
// pointer to worker threads is sound.
unsafe impl Send for ErasedJob {}

#[derive(Default)]
struct Slot {
    /// Epoch of the most recently published job.
    published: u64,
    /// Epoch of the most recently *drained* job (all workers done). A new
    /// job may only be published once `drained == published`.
    drained: u64,
    job: Option<ErasedJob>,
    /// Workers still running the published epoch.
    running: usize,
    /// First worker panic of each undelivered epoch, re-thrown by that
    /// epoch's publisher.
    panics: Vec<(u64, Box<dyn std::any::Any + Send>)>,
    shutdown: bool,
}

struct Shared {
    slot: Mutex<Slot>,
    /// Workers wait here for a new epoch (or shutdown).
    job_ready: Condvar,
    /// Publishers wait here for their epoch to drain.
    job_done: Condvar,
}

/// The persistent pool. One per [`crate::Executor`] of the pooled kind;
/// handles are shared by `Arc`, and the last drop shuts the workers down.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `workers` parked threads (the calling thread participates in
    /// every job as one extra worker, so a pool for `t` total threads wants
    /// `t - 1` here). Every spawn is recorded on `spawn_counter` — the
    /// owning executor's race-free probe — as well as the process-global
    /// diagnostic counter.
    pub(crate) fn new(workers: usize, spawn_counter: &Arc<AtomicUsize>) -> Self {
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot::default()),
            job_ready: Condvar::new(),
            job_done: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|slot_index| {
                let shared = Arc::clone(&shared);
                SPAWNED.fetch_add(1, Ordering::SeqCst);
                spawn_counter.fetch_add(1, Ordering::SeqCst);
                std::thread::Builder::new()
                    .name(format!("cc-exec-{slot_index}"))
                    .spawn(move || worker_loop(&shared, slot_index + 1))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            workers: handles,
        }
    }

    /// Number of pool threads (the calling thread adds one participant on
    /// top of this during [`WorkerPool::run`]).
    pub(crate) fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs `job(slot)` once per participant — slot `0` on the calling
    /// thread, slots `1..=workers` on the pool — and returns after every
    /// participant finished. Panics from any participant are propagated.
    ///
    /// Nested calls (a job calling `run` again from a pool worker) degrade
    /// to running every slot inline on the current thread: correct for any
    /// merge-by-index job, and free of slot contention by construction.
    pub(crate) fn run(&self, job: &(dyn Fn(usize) + Sync)) {
        if self.workers.is_empty() || IN_POOL_JOB.with(std::cell::Cell::get) {
            for slot in 0..=self.workers.len() {
                job(slot);
            }
            return;
        }
        // SAFETY: pure lifetime erasure (`'caller` → `'static`) so the
        // pointer fits the slot; the barrier below keeps the pointee alive
        // for every dereference (see module docs).
        let erased = ErasedJob {
            ptr: unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync + '_),
                    *const (dyn Fn(usize) + Sync + 'static),
                >(job)
            },
        };
        let my_epoch = {
            let mut slot = self.shared.slot.lock().expect("pool mutex");
            // One job at a time: if another caller thread's epoch is still
            // draining (only possible when distinct threads share one
            // executor), wait for it first.
            while slot.drained < slot.published {
                slot = self.shared.job_done.wait(slot).expect("pool mutex");
            }
            slot.published += 1;
            slot.job = Some(erased);
            slot.running = self.workers.len();
            self.shared.job_ready.notify_all();
            slot.published
        };
        // The caller is participant 0 — it does real work instead of idling
        // at the barrier.
        let caller_result = catch_unwind(AssertUnwindSafe(|| job(0)));
        let worker_panic = {
            let mut slot = self.shared.slot.lock().expect("pool mutex");
            while slot.drained < my_epoch {
                slot = self.shared.job_done.wait(slot).expect("pool mutex");
            }
            slot.panics
                .iter()
                .position(|(e, _)| *e == my_epoch)
                .map(|i| slot.panics.swap_remove(i).1)
        };
        // Pool-worker panics win (they already poisoned the job); otherwise
        // re-throw the caller's own.
        if let Some(p) = worker_panic {
            resume_unwind(p);
        }
        if let Err(p) = caller_result {
            resume_unwind(p);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().expect("pool mutex");
            slot.shutdown = true;
            self.shared.job_ready.notify_all();
        }
        for h in self.workers.drain(..) {
            // A worker that panicked inside a job already surfaced the
            // payload through `run`; nothing useful left to rethrow here.
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, my_slot: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let (epoch, job) = {
            let mut slot = shared.slot.lock().expect("pool mutex");
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.published > seen_epoch {
                    seen_epoch = slot.published;
                    break (seen_epoch, slot.job.expect("published epoch carries a job"));
                }
                slot = shared.job_ready.wait(slot).expect("pool mutex");
            }
        };
        // SAFETY: `run` blocks until this epoch is drained, which happens
        // strictly after this call returns, so the pointee is alive; the
        // closure is `Sync`, so shared invocation is allowed.
        let result = catch_unwind(AssertUnwindSafe(|| {
            IN_POOL_JOB.with(|f| f.set(true));
            unsafe { (*job.ptr)(my_slot) };
        }));
        IN_POOL_JOB.with(|f| f.set(false));
        let mut slot = shared.slot.lock().expect("pool mutex");
        if let Err(p) = result {
            if !slot.panics.iter().any(|(e, _)| *e == epoch) {
                slot.panics.push((epoch, p));
            }
        }
        slot.running -= 1;
        if slot.running == 0 {
            slot.drained = epoch;
            shared.job_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counted(workers: usize) -> (WorkerPool, Arc<AtomicUsize>) {
        let counter = Arc::new(AtomicUsize::new(0));
        (WorkerPool::new(workers, &counter), counter)
    }

    #[test]
    fn pool_runs_every_slot_exactly_once() {
        let (pool, _) = counted(3);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.run(&|slot| {
            hits[slot].fetch_add(1, Ordering::SeqCst);
        });
        for (slot, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "slot {slot}");
        }
    }

    #[test]
    fn pool_is_reusable_without_spawning() {
        // The per-pool counter is race-free: unrelated tests constructing
        // their own pools on other threads cannot move it.
        let (pool, spawns) = counted(2);
        assert_eq!(spawns.load(Ordering::SeqCst), 2, "spawns happen at new()");
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.run(&|_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 300);
        assert_eq!(spawns.load(Ordering::SeqCst), 2, "run() must never spawn");
    }

    #[test]
    fn worker_panics_propagate_to_the_caller() {
        let (pool, _) = counted(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(&|slot| {
                assert!(slot != 1, "boom in a pool worker");
            });
        }));
        assert!(r.is_err(), "panic must cross the barrier");
        // The pool survives a panicked job and keeps serving.
        let ok = AtomicUsize::new(0);
        pool.run(&|_| {
            ok.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(ok.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn nested_runs_degrade_to_inline() {
        let (pool, _) = counted(2);
        let outer = AtomicUsize::new(0);
        let inner = AtomicUsize::new(0);
        pool.run(&|_| {
            outer.fetch_add(1, Ordering::SeqCst);
            pool.run(&|_| {
                inner.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(outer.load(Ordering::SeqCst), 3);
        // The two pool workers run the nested job inline (3 slots each);
        // the caller is outside any pool job, so its nested call is a real
        // dispatch over 3 participants: 2·3 + 3 = 9.
        assert_eq!(inner.load(Ordering::SeqCst), 9);
    }

    #[test]
    fn two_caller_threads_serialise_on_one_pool() {
        let pool = Arc::new(counted(2).0);
        let total = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        pool.run(&|_| {
                            total.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("caller thread");
        }
        assert_eq!(total.load(Ordering::SeqCst), 4 * 25 * 3);
    }
}
