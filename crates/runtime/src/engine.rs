//! The synchronous-round driver.

use crate::executor::{Executor, ExecutorKind};
use crate::loads::LinkLoads;
use crate::program::{Control, NodeInbox, NodeOutbox, NodeProgram, RoundCtx};
use crate::resident::{ResidentOutcome, WireProgram};
use crate::Word;
use std::sync::Arc;

/// Result of [`Engine::run`].
#[derive(Debug)]
pub struct RunReport<P> {
    /// Final program states, in node order.
    pub programs: Vec<P>,
    /// Link-level rounds charged: per engine round, the maximum per-link
    /// word count (the wire simulator's cost model).
    pub rounds: u64,
    /// Number of synchronous barriers executed.
    pub engine_rounds: u64,
    /// Total words that crossed links (self-addressed messages are free).
    pub words: u64,
}

/// The engine's round barrier: merges one round's outboxes into the next
/// round's inboxes and accounts the per-link traffic.
///
/// This is the seam that makes the barrier *pluggable*: the default
/// [`EngineFabric`] performs the classical in-process delivery (sharded by
/// destination on the engine's executor), while `cc-transport` adapts the
/// same contract onto message fabrics whose rendezvous crosses threads or
/// processes. Implementations must be deterministic — for a given outbox
/// sequence, the returned inboxes and canonical `(src, dst)`-ordered
/// [`LinkLoads`] may not depend on scheduling — which is what keeps
/// results, round counts, and pattern fingerprints bit-identical across
/// fabrics.
pub trait Fabric {
    /// Delivers one engine round: consumes the per-node outboxes (node
    /// order) and returns the next inboxes (node order) plus this round's
    /// link loads in canonical `(src, dst)` order.
    fn deliver_round(&mut self, n: usize, outboxes: Vec<NodeOutbox>)
        -> (Vec<NodeInbox>, LinkLoads);

    /// True when this fabric can host program-resident sessions — i.e.
    /// [`Fabric::run_resident`] would return `Some`. The engine checks this
    /// before paying for state serialization.
    fn is_resident(&self) -> bool {
        false
    }

    /// Runs a whole program-resident session: ships the encoded `states`
    /// (node order) to workers of a fabric that owns its shards, lets
    /// rounds proceed worker-to-worker, and invokes `on_round` once per
    /// synchronous barrier with that round's canonical [`LinkLoads`] —
    /// exactly the loads the classical loop would have charged. Returns
    /// `None` when the fabric has no resident mode (the default), in which
    /// case the engine falls back to [`Fabric::deliver_round`] rounds.
    fn run_resident(
        &mut self,
        kind: &str,
        states: Vec<Vec<Word>>,
        on_round: &mut dyn FnMut(&LinkLoads),
    ) -> Option<ResidentOutcome> {
        let _ = (kind, states, on_round);
        None
    }

    /// True when this fabric injects node crash/restart faults. The engine
    /// then drives [`WireProgram`]s through the checkpointable classical
    /// loop (polling [`Fabric::take_crash`] after every barrier) instead of
    /// a resident session it could not interrupt mid-flight.
    fn has_fault_plan(&self) -> bool {
        false
    }

    /// Takes the node the fault plan crashed at the last barrier, if any.
    /// Destructive: each crash is surfaced exactly once.
    fn take_crash(&mut self) -> Option<usize> {
        None
    }

    /// Notifies the fabric that `node` restarted and its re-shipped program
    /// state occupies `state_words` words (so a conditioning fabric can
    /// charge the recovery's simulated cost). A no-op by default.
    fn on_recovery(&mut self, node: usize, state_words: usize) {
        let _ = (node, state_words);
    }
}

/// The default in-process [`Fabric`]: per-link loads computed in canonical
/// order, inboxes assembled sharded by destination on the executor, and
/// broadcast slabs delivered zero-copy.
#[derive(Debug, Clone)]
pub struct EngineFabric {
    exec: Executor,
}

impl EngineFabric {
    /// Creates the fabric, delivering on `exec`.
    #[must_use]
    pub fn new(exec: Executor) -> Self {
        Self { exec }
    }
}

impl Fabric for EngineFabric {
    fn deliver_round(
        &mut self,
        n: usize,
        outboxes: Vec<NodeOutbox>,
    ) -> (Vec<NodeInbox>, LinkLoads) {
        let loads = link_loads(n, &outboxes);
        (deliver(&self.exec, n, outboxes), loads)
    }
}

/// Drives a set of [`NodeProgram`]s through synchronous rounds.
///
/// Per round the engine: (1) steps every live node — in parallel shards
/// under [`ExecutorKind::Parallel`] — each into its own outbox; (2) merges
/// outboxes at the barrier in node order, computing per-link loads in the
/// canonical `(src, dst)` order; (3) charges rounds equal to the maximum
/// per-link load; (4) builds the next inboxes sharded by destination. Steps
/// 2–4 live behind the [`Fabric`] seam (default: [`EngineFabric`]) and are
/// deterministic by construction, so neither the executor choice nor the
/// fabric ever changes results.
///
/// All fan-out goes through the [`Executor`] handle, so a pooled executor's
/// persistent workers serve both the stepping and the delivery shards — the
/// engine itself never spawns threads.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    exec: Executor,
}

impl Engine {
    /// Creates an engine running on the given backend.
    #[must_use]
    pub fn new(kind: ExecutorKind) -> Self {
        Self {
            exec: Executor::new(kind),
        }
    }

    /// Creates an engine from an existing executor handle.
    #[must_use]
    pub fn with_executor(exec: Executor) -> Self {
        Self { exec }
    }

    /// The engine's executor handle (a cheap clone; pooled executors share
    /// their worker pool across clones).
    #[must_use]
    pub fn executor(&self) -> Executor {
        self.exec.clone()
    }

    /// Runs the programs to completion (every node returned
    /// [`Control::Halt`]). See [`Engine::run_traced`] for load tracing.
    pub fn run<P: NodeProgram>(&self, programs: Vec<P>) -> RunReport<P> {
        self.run_traced(programs, |_| {})
    }

    /// Like [`Engine::run`], invoking `on_loads` once per engine round with
    /// that round's [`LinkLoads`] (entries in canonical `(src, dst)` order)
    /// so callers can record pattern fingerprints.
    ///
    /// # Panics
    ///
    /// Panics if `programs` is empty.
    pub fn run_traced<P: NodeProgram>(
        &self,
        programs: Vec<P>,
        on_loads: impl FnMut(&LinkLoads),
    ) -> RunReport<P> {
        let mut fabric = EngineFabric::new(self.exec.clone());
        self.run_traced_on(&mut fabric, programs, on_loads)
    }

    /// Like [`Engine::run_traced`], delivering each round barrier through an
    /// explicit [`Fabric`] instead of the default in-process one. This is
    /// how transport backends plug in: the engine still steps node state
    /// machines on its executor, while outbox merging, inbox assembly, and
    /// link accounting happen wherever the fabric puts them (another
    /// thread's queue, another process's socket) — with results guaranteed
    /// identical by the fabric's determinism contract.
    ///
    /// # Panics
    ///
    /// Panics if `programs` is empty.
    pub fn run_traced_on<P: NodeProgram>(
        &self,
        fabric: &mut dyn Fabric,
        programs: Vec<P>,
        on_loads: impl FnMut(&LinkLoads),
    ) -> RunReport<P> {
        self.run_classical(fabric, programs, on_loads, |_, _| {})
    }

    /// The classical round loop shared by [`Engine::run_traced_on`] and the
    /// crash-recovery wire path: step, deliver through the fabric, account,
    /// then hand the fabric and program states to `after_round` — the seam
    /// where a fault-injecting fabric gets its crashed node re-shipped.
    /// The hook must be state-preserving (or restore an equivalent state):
    /// the loop continues with whatever programs it leaves behind.
    fn run_classical<P: NodeProgram>(
        &self,
        fabric: &mut dyn Fabric,
        mut programs: Vec<P>,
        mut on_loads: impl FnMut(&LinkLoads),
        mut after_round: impl FnMut(&mut dyn Fabric, &mut [P]),
    ) -> RunReport<P> {
        let n = programs.len();
        assert!(n > 0, "cannot run an empty program set");
        let mut inboxes: Vec<NodeInbox> = (0..n).map(|_| NodeInbox::empty(n)).collect();
        let mut halted = vec![false; n];
        let mut live = n;
        let mut rounds = 0u64;
        let mut words = 0u64;
        let mut engine_rounds = 0u64;

        let tel = cc_telemetry::global();
        // Observer-only: timestamps are taken only when round tracing is on,
        // and nothing below ever reads an emitted event back.
        let timed = tel.enabled(cc_telemetry::TraceLevel::Rounds);

        while live > 0 {
            let step_start = timed.then(std::time::Instant::now);
            let outboxes = self.step_all(&mut programs, &inboxes, &mut halted, engine_rounds);
            let step_ns = step_start.map_or(0, |t| t.elapsed().as_nanos() as u64);
            live = halted.iter().filter(|&&h| !h).count();
            engine_rounds += 1;

            let barrier_start = timed.then(std::time::Instant::now);
            let (delivered, loads) = fabric.deliver_round(n, outboxes);
            let barrier_ns = barrier_start.map_or(0, |t| t.elapsed().as_nanos() as u64);
            on_loads(&loads);
            rounds += loads.rounds();
            words += loads.words();
            tel.emit(cc_telemetry::TraceLevel::Rounds, || {
                cc_telemetry::Event::EngineRound {
                    round: engine_rounds - 1,
                    live,
                    step_ns,
                    barrier_ns,
                    rounds: loads.rounds(),
                    words: loads.words(),
                }
            });
            inboxes = delivered;
            after_round(fabric, &mut programs);
        }

        RunReport {
            programs,
            rounds,
            engine_rounds,
            words,
        }
    }

    /// Like [`Engine::run_traced_on`] for [`WireProgram`]s: if the fabric
    /// hosts program-resident sessions, the encoded program states are
    /// shipped to its workers once, rounds proceed worker-to-worker, and
    /// the final states are decoded back — otherwise this is exactly
    /// [`Engine::run_traced_on`]. Either way `on_loads` sees the same
    /// per-round canonical [`LinkLoads`] sequence and the report charges
    /// the same rounds and words, so the two paths are observer-identical.
    ///
    /// # Panics
    ///
    /// Panics if `programs` is empty, or if a resident fabric returns a
    /// final-state set of the wrong size.
    pub fn run_wire_traced_on<P: WireProgram>(
        &self,
        fabric: &mut dyn Fabric,
        programs: Vec<P>,
        mut on_loads: impl FnMut(&LinkLoads),
    ) -> RunReport<P> {
        let n = programs.len();
        assert!(n > 0, "cannot run an empty program set");
        if fabric.has_fault_plan() {
            return self.run_wire_recovering(fabric, programs, on_loads);
        }
        if !fabric.is_resident() {
            return self.run_traced_on(fabric, programs, on_loads);
        }
        let states: Vec<Vec<Word>> = programs.iter().map(WireProgram::encode_state).collect();
        let mut rounds = 0u64;
        let mut words = 0u64;
        let outcome = fabric.run_resident(P::KIND, states, &mut |loads| {
            on_loads(loads);
            rounds += loads.rounds();
            words += loads.words();
        });
        match outcome {
            Some(outcome) => {
                assert_eq!(
                    outcome.finals.len(),
                    n,
                    "resident fabric must return one final state per node"
                );
                let programs = outcome
                    .finals
                    .iter()
                    .enumerate()
                    .map(|(node, state)| P::decode_state(node, n, state))
                    .collect();
                RunReport {
                    programs,
                    rounds,
                    engine_rounds: outcome.engine_rounds,
                    words,
                }
            }
            // Advertised residency but declined this session: run the
            // classical round loop instead.
            None => self.run_traced_on(fabric, programs, on_loads),
        }
    }

    /// The crash-recovery wire loop: the classical round loop, but after
    /// every barrier the fabric's fault plan is polled. A crashed node's
    /// program is checkpointed through the [`WireProgram`] codec — encoded,
    /// then decoded into a freshly restarted replacement, exactly the bytes
    /// a restarted worker would have been re-shipped — and the fabric is
    /// told so it can charge the recovery's simulated cost. Because
    /// `decode(encode(p))` reconstructs `p` exactly (the codec contract),
    /// results stay bit-identical to a faultless run; only the fabric's
    /// simulated-time accounting moves.
    fn run_wire_recovering<P: WireProgram>(
        &self,
        fabric: &mut dyn Fabric,
        programs: Vec<P>,
        on_loads: impl FnMut(&LinkLoads),
    ) -> RunReport<P> {
        let n = programs.len();
        self.run_classical(fabric, programs, on_loads, |fabric, programs| {
            while let Some(node) = fabric.take_crash() {
                let state = programs[node].encode_state();
                programs[node] = P::decode_state(node, n, &state);
                fabric.on_recovery(node, state.len());
            }
        })
    }

    /// Steps every live node once, returning outboxes in node order.
    fn step_all<P: NodeProgram>(
        &self,
        programs: &mut [P],
        inboxes: &[NodeInbox],
        halted: &mut [bool],
        round: u64,
    ) -> Vec<NodeOutbox> {
        let n = programs.len();
        // One piece per node, dispatched on the executor (inline when
        // sequential or below the cutover, pooled/scoped otherwise):
        // `map_chunks_mut` hands each worker exclusive ownership of its
        // `(program, halted)` pairs and merges outboxes back in node order
        // — deterministic by construction. The engine itself never spawns.
        let mut pairs: Vec<(&mut P, &mut bool)> =
            programs.iter_mut().zip(halted.iter_mut()).collect();
        self.exec.map_chunks_mut(&mut pairs, 1, |node, piece| {
            let (p, h) = &mut piece[0];
            let mut outbox = NodeOutbox::default();
            if !**h {
                let mut ctx = RoundCtx {
                    node,
                    n,
                    round,
                    inbox: &inboxes[node],
                    outbox: &mut outbox,
                };
                if p.round(&mut ctx) == Control::Halt {
                    **h = true;
                }
            }
            outbox
        })
    }
}

/// Builds the next round's inboxes, sharded by destination.
fn deliver(exec: &Executor, n: usize, mut outboxes: Vec<NodeOutbox>) -> Vec<NodeInbox> {
    /// One destination's pending `(src, payload)` deliveries.
    type Bucket = Vec<(usize, Vec<Word>)>;

    // Shard step: bucket unicast payloads by destination. Entries land
    // in (src, send-order) order because sources are drained in index
    // order — the per-destination assembly below is order-preserving.
    let mut buckets: Vec<Bucket> = (0..n).map(|_| Vec::new()).collect();
    for (src, outbox) in outboxes.iter_mut().enumerate() {
        for (dst, payload) in outbox.unicast.drain(..) {
            buckets[dst].push((src, payload));
        }
    }
    let broadcasts: Vec<Vec<Arc<[Word]>>> = outboxes
        .iter_mut()
        .map(|o| std::mem::take(&mut o.broadcast))
        .collect();

    // Per-destination assembly runs on the executor; `map_chunks_mut`
    // hands each worker exclusive ownership of its bucket.
    exec.map_chunks_mut(&mut buckets, 1, |_dst, piece| {
        let entries = std::mem::take(&mut piece[0]);
        let mut inbox = NodeInbox::empty(n);
        for (src, payload) in entries {
            if inbox.unicast[src].is_empty() {
                inbox.unicast[src] = payload;
            } else {
                inbox.unicast[src].extend(payload);
            }
        }
        for (src, slabs) in broadcasts.iter().enumerate() {
            if !slabs.is_empty() {
                // Zero-copy: recipients share the sender's slabs.
                inbox.broadcast[src] = slabs.clone();
            }
        }
        inbox
    })
}

/// Per-link loads of one engine round in canonical `(src, dst)` order.
/// Self-addressed messages are local moves and carry no load.
fn link_loads(n: usize, outboxes: &[NodeOutbox]) -> LinkLoads {
    let mut loads = LinkLoads::new();
    let mut counts = vec![0usize; n];
    let mut touched = Vec::new();
    for (src, outbox) in outboxes.iter().enumerate() {
        if outbox.is_empty() {
            continue;
        }
        for (dst, payload) in &outbox.unicast {
            if *dst != src {
                if counts[*dst] == 0 {
                    touched.push(*dst);
                }
                counts[*dst] += payload.len();
            }
        }
        let bcast: usize = outbox.broadcast.iter().map(|s| s.len()).sum();
        if bcast > 0 {
            for (dst, count) in counts.iter_mut().enumerate() {
                if dst != src {
                    if *count == 0 {
                        touched.push(dst);
                    }
                    *count += bcast;
                }
            }
        }
        touched.sort_unstable();
        for &dst in &touched {
            loads.add(src, dst, counts[dst]);
            counts[dst] = 0;
        }
        touched.clear();
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sends `round * 10 + node` to the next node for `k` rounds, recording
    /// everything received.
    struct RingProgram {
        k: u64,
        log: Vec<Word>,
    }

    impl NodeProgram for RingProgram {
        fn round(&mut self, ctx: &mut RoundCtx<'_>) -> Control {
            let prev = (ctx.node() + ctx.n() - 1) % ctx.n();
            self.log.extend_from_slice(ctx.received(prev));
            if ctx.round() < self.k {
                let next = (ctx.node() + 1) % ctx.n();
                ctx.send(next, vec![ctx.round() * 10 + ctx.node() as Word]);
                Control::Continue
            } else {
                Control::Halt
            }
        }
    }

    fn ring(n: usize, k: u64) -> Vec<RingProgram> {
        (0..n).map(|_| RingProgram { k, log: Vec::new() }).collect()
    }

    #[test]
    fn ring_messages_arrive_in_order() {
        let report = Engine::new(ExecutorKind::Sequential).run(ring(4, 3));
        // Node 1 hears from node 0 in rounds 1..=3: 0, 10, 20.
        assert_eq!(report.programs[1].log, vec![0, 10, 20]);
        assert_eq!(report.engine_rounds, 4);
        assert_eq!(report.rounds, 3); // one word per link per sending round
    }

    #[test]
    fn parallel_matches_sequential_on_the_ring() {
        let seq = Engine::new(ExecutorKind::Sequential).run(ring(16, 5));
        let par = Engine::new(ExecutorKind::Parallel { threads: 4 }).run(ring(16, 5));
        assert_eq!(seq.rounds, par.rounds);
        assert_eq!(seq.engine_rounds, par.engine_rounds);
        assert_eq!(seq.words, par.words);
        for (a, b) in seq.programs.iter().zip(&par.programs) {
            assert_eq!(a.log, b.log);
        }
    }

    #[test]
    fn broadcast_slabs_are_shared_not_cloned() {
        struct OneShot {
            seen: usize,
        }
        impl NodeProgram for OneShot {
            fn round(&mut self, ctx: &mut RoundCtx<'_>) -> Control {
                if ctx.round() == 0 {
                    if ctx.node() == 0 {
                        ctx.broadcast(vec![7, 8, 9]);
                    }
                    Control::Continue
                } else {
                    self.seen = ctx.broadcasts_from(0).map(<[Word]>::len).sum();
                    Control::Halt
                }
            }
        }
        let report = Engine::new(ExecutorKind::Sequential)
            .run((0..8).map(|_| OneShot { seen: 0 }).collect());
        assert!(report.programs.iter().all(|p| p.seen == 3));
        // One 3-word slab on 7 links: 3 rounds, 21 words.
        assert_eq!(report.rounds, 3);
        assert_eq!(report.words, 21);
    }

    #[test]
    fn self_messages_are_free() {
        struct SelfTalk;
        impl NodeProgram for SelfTalk {
            fn round(&mut self, ctx: &mut RoundCtx<'_>) -> Control {
                if ctx.round() == 0 {
                    let me = ctx.node();
                    ctx.send(me, vec![1, 2, 3]);
                    Control::Continue
                } else {
                    assert_eq!(ctx.received(ctx.node()), &[1, 2, 3]);
                    Control::Halt
                }
            }
        }
        let report = Engine::new(ExecutorKind::Sequential).run(vec![SelfTalk, SelfTalk]);
        assert_eq!(report.rounds, 0);
        assert_eq!(report.words, 0);
    }

    #[test]
    fn crash_recovery_replays_the_faultless_run_bit_for_bit() {
        use crate::resident::EchoRingProgram;

        /// Wraps the default fabric with a scripted fault plan: after the
        /// barriers listed in `crash_at`, the matching node "crashes" and
        /// must be re-shipped through the WireProgram codec.
        #[derive(Debug)]
        struct CrashyFabric {
            inner: EngineFabric,
            barriers: u64,
            crash_at: Vec<(u64, usize)>,
            pending: Option<usize>,
            recoveries: Vec<(usize, usize)>,
        }

        impl Fabric for CrashyFabric {
            fn deliver_round(
                &mut self,
                n: usize,
                outboxes: Vec<NodeOutbox>,
            ) -> (Vec<NodeInbox>, LinkLoads) {
                let out = self.inner.deliver_round(n, outboxes);
                if let Some(&(_, node)) = self.crash_at.iter().find(|(b, _)| *b == self.barriers) {
                    self.pending = Some(node);
                }
                self.barriers += 1;
                out
            }

            fn has_fault_plan(&self) -> bool {
                true
            }

            fn take_crash(&mut self) -> Option<usize> {
                self.pending.take()
            }

            fn on_recovery(&mut self, node: usize, state_words: usize) {
                self.recoveries.push((node, state_words));
            }
        }

        let n = 6;
        let engine = Engine::new(ExecutorKind::Sequential);
        let plain = engine.run((0..n).map(|_| EchoRingProgram::new(4)).collect());

        let mut fabric = CrashyFabric {
            inner: EngineFabric::new(engine.executor()),
            barriers: 0,
            crash_at: vec![(1, 2), (3, 0)],
            pending: None,
            recoveries: Vec::new(),
        };
        let mut trace = Vec::new();
        let report = engine.run_wire_traced_on(
            &mut fabric,
            (0..n).map(|_| EchoRingProgram::new(4)).collect::<Vec<_>>(),
            |l| trace.push(l.iter().collect::<Vec<_>>()),
        );

        assert_eq!(report.rounds, plain.rounds);
        assert_eq!(report.words, plain.words);
        assert_eq!(report.engine_rounds, plain.engine_rounds);
        for (node, (a, b)) in report.programs.iter().zip(&plain.programs).enumerate() {
            assert_eq!(a, b, "node {node} diverged after crash recovery");
        }
        // Both crashes were surfaced, and the re-shipped states carried the
        // programs' real encoded sizes.
        assert_eq!(
            fabric
                .recoveries
                .iter()
                .map(|&(n, _)| n)
                .collect::<Vec<_>>(),
            vec![2, 0]
        );
        assert!(fabric.recoveries.iter().all(|&(_, words)| words > 0));
    }

    #[test]
    fn load_trace_is_canonical_and_stable() {
        let mut seq_trace = Vec::new();
        let mut par_trace = Vec::new();
        Engine::new(ExecutorKind::Sequential)
            .run_traced(ring(9, 4), |l| seq_trace.push(l.iter().collect::<Vec<_>>()));
        Engine::new(ExecutorKind::Parallel { threads: 3 })
            .run_traced(ring(9, 4), |l| par_trace.push(l.iter().collect::<Vec<_>>()));
        assert_eq!(seq_trace, par_trace);
        for round in &seq_trace {
            let mut sorted = round.clone();
            sorted.sort_unstable();
            assert_eq!(&sorted, round, "loads must be in (src, dst) order");
        }
    }
}
