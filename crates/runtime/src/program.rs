//! Per-node state machines and their round-scoped I/O surface.

use crate::Word;
use std::sync::Arc;

/// What a node wants after finishing a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Step this node again next round.
    Continue,
    /// This node is done; it is not stepped again (messages already sent
    /// this round are still delivered and charged).
    Halt,
}

/// One simulated node's state machine.
///
/// The engine calls [`NodeProgram::round`] once per synchronous round with a
/// [`RoundCtx`] exposing the node's identity, the messages delivered at the
/// end of the previous round, and this round's outbox. Programs must derive
/// everything they do from that context and their own state — they cannot
/// observe other nodes — which is exactly the locality discipline of the
/// congested clique and what makes parallel execution deterministic.
pub trait NodeProgram: Send {
    /// Executes one round. Return [`Control::Halt`] when done.
    fn round(&mut self, ctx: &mut RoundCtx<'_>) -> Control;
}

/// Messages delivered to one node at a round barrier.
///
/// Unicast payloads from each source are concatenated in send order.
/// Broadcast payloads are *shared* `Arc<[Word]>` slabs: every recipient's
/// inbox references the same allocation (zero-copy delivery).
#[derive(Debug, Clone, Default)]
pub struct NodeInbox {
    pub(crate) unicast: Vec<Vec<Word>>,
    pub(crate) broadcast: Vec<Vec<Arc<[Word]>>>,
}

impl NodeInbox {
    pub(crate) fn empty(n: usize) -> Self {
        Self {
            unicast: vec![Vec::new(); n],
            broadcast: vec![Vec::new(); n],
        }
    }

    /// Builds an inbox from per-source lanes: `unicast[src]` is the
    /// concatenated unicast payload from `src`, `broadcast[src]` its slabs.
    /// Used by [`crate::Fabric`] implementations that assemble deliveries
    /// outside the engine (transport backends).
    ///
    /// # Panics
    ///
    /// Panics if the two lane vectors have different lengths.
    #[must_use]
    pub fn from_parts(unicast: Vec<Vec<Word>>, broadcast: Vec<Vec<Arc<[Word]>>>) -> Self {
        assert_eq!(
            unicast.len(),
            broadcast.len(),
            "inbox lanes must cover the same node range"
        );
        Self { unicast, broadcast }
    }

    /// Unicast words received from `src` this round, in send order.
    #[must_use]
    pub fn received(&self, src: usize) -> &[Word] {
        &self.unicast[src]
    }

    /// Broadcast slabs received from `src` this round, in send order.
    pub fn broadcasts_from(&self, src: usize) -> impl Iterator<Item = &[Word]> {
        self.broadcast[src].iter().map(|a| &a[..])
    }

    /// Total words delivered (unicast + broadcast).
    #[must_use]
    pub fn total_words(&self) -> usize {
        self.unicast.iter().map(Vec::len).sum::<usize>()
            + self
                .broadcast
                .iter()
                .flat_map(|s| s.iter().map(|a| a.len()))
                .sum::<usize>()
    }
}

/// One node's sends for the current round, merged at the barrier.
#[derive(Debug, Default)]
pub struct NodeOutbox {
    /// `(dst, words)` in send order.
    pub(crate) unicast: Vec<(usize, Vec<Word>)>,
    /// Shared broadcast slabs in send order.
    pub(crate) broadcast: Vec<Arc<[Word]>>,
}

impl NodeOutbox {
    pub(crate) fn is_empty(&self) -> bool {
        self.unicast.is_empty() && self.broadcast.is_empty()
    }

    /// Consumes the outbox into its `(dst, words)` unicast payloads (send
    /// order) and broadcast slabs (send order). Used by [`crate::Fabric`]
    /// implementations that ship outboxes onto an external transport.
    #[must_use]
    #[allow(clippy::type_complexity)]
    pub fn into_parts(self) -> (Vec<(usize, Vec<Word>)>, Vec<Arc<[Word]>>) {
        (self.unicast, self.broadcast)
    }
}

/// A node's view of one synchronous round.
#[derive(Debug)]
pub struct RoundCtx<'a> {
    pub(crate) node: usize,
    pub(crate) n: usize,
    pub(crate) round: u64,
    pub(crate) inbox: &'a NodeInbox,
    pub(crate) outbox: &'a mut NodeOutbox,
}

impl RoundCtx<'_> {
    /// This node's id in `0..n`.
    #[must_use]
    pub fn node(&self) -> usize {
        self.node
    }

    /// Clique size.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Zero-based index of the current round.
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Unicast words received from `src` at the previous barrier.
    #[must_use]
    pub fn received(&self, src: usize) -> &[Word] {
        self.inbox.received(src)
    }

    /// Broadcast slabs received from `src` at the previous barrier.
    pub fn broadcasts_from(&self, src: usize) -> impl Iterator<Item = &[Word]> {
        self.inbox.broadcasts_from(src)
    }

    /// The whole inbox, for bulk processing.
    #[must_use]
    pub fn inbox(&self) -> &NodeInbox {
        self.inbox
    }

    /// Sends `words` to `dst` over the `(self, dst)` link. Self-addressed
    /// messages are local memory moves and cost no rounds, matching the
    /// wire simulator.
    pub fn send(&mut self, dst: usize, words: impl Into<Vec<Word>>) {
        assert!(
            dst < self.n,
            "destination {dst} out of range (n={})",
            self.n
        );
        let words = words.into();
        if !words.is_empty() {
            self.outbox.unicast.push((dst, words));
        }
    }

    /// Broadcasts `words` to every node (including the sender's own next
    /// inbox). The payload is stored once as a shared `Arc<[Word]>` slab;
    /// recipients see the same allocation. Charged on the `n - 1` outgoing
    /// links like any broadcast.
    pub fn broadcast(&mut self, words: impl Into<Arc<[Word]>>) {
        let slab: Arc<[Word]> = words.into();
        if !slab.is_empty() {
            self.outbox.broadcast.push(slab);
        }
    }
}
