//! # cc-runtime: a deterministic parallel execution engine
//!
//! The congested clique model is *embarrassingly parallel across nodes*:
//! within a round, every simulated node computes on its own state and the
//! messages it received, with no shared mutable state until the synchronous
//! round barrier. This crate exploits that structure to run simulations
//! across OS threads while keeping results **bit-identical** to sequential
//! execution.
//!
//! ## Pieces
//!
//! * [`Executor`] / [`ExecutorKind`] — pluggable execution backends.
//!   [`ExecutorKind::Sequential`] is the reference semantics;
//!   [`ExecutorKind::Parallel`] fans work out over a **persistent worker
//!   pool** (threads spawned once at `Executor::new`, parked between calls,
//!   joined when the last handle drops) and merges per-shard results at a
//!   deterministic barrier; [`ExecutorKind::Spawn`] is the legacy
//!   spawn-scoped-threads-per-call backend, kept as the pool's ablation
//!   baseline. All backends produce the same outputs in the same order, so
//!   round counts, inbox contents and pattern fingerprints never depend on
//!   the backend (verified by the determinism property tests). Jobs smaller
//!   than a tunable cutover run inline ([`Executor::threads_for`]).
//! * [`NodeProgram`] — one node's per-round state machine:
//!   `fn round(&mut self, ctx: &mut RoundCtx) -> Control`. This replaces the
//!   global-lockstep closure style for algorithms that opt in: instead of a
//!   coordinator closure invoked per node id, each node owns its state and
//!   the engine drives all `n` state machines round by round.
//! * [`Engine`] — the synchronous-round driver: steps every live node
//!   (possibly in parallel), merges per-node outboxes at the round barrier,
//!   charges link-level rounds exactly like the wire simulator (a round
//!   costs the maximum per-link word count), and delivers the next round's
//!   inboxes via a sharded, per-destination build.
//! * Zero-copy broadcasts — [`RoundCtx::broadcast`] stores one shared
//!   `Arc<[Word]>` slab per broadcast; every recipient's inbox references
//!   the same allocation instead of cloning a `Vec<Word>` per recipient.
//!
//! ## Determinism contract
//!
//! For any program set, `Parallel` and `Sequential` execution produce
//! identical outputs, identical inbox contents, identical executed round
//! counts, and identical per-round link-load sequences. The engine achieves
//! this by only parallelising *independent per-node* work (stepping node
//! state machines, assembling per-destination inboxes) and merging results
//! in node-index order at each barrier.
//!
//! ## Example
//!
//! ```rust
//! use cc_runtime::{Control, Engine, ExecutorKind, NodeProgram, RoundCtx, Word};
//!
//! /// Each node broadcasts its id once, then sums everything it heard.
//! struct SumIds {
//!     total: Word,
//! }
//!
//! impl NodeProgram for SumIds {
//!     fn round(&mut self, ctx: &mut RoundCtx<'_>) -> Control {
//!         match ctx.round() {
//!             0 => {
//!                 ctx.broadcast(vec![ctx.node() as Word]);
//!                 Control::Continue
//!             }
//!             _ => {
//!                 for src in 0..ctx.n() {
//!                     for slab in ctx.broadcasts_from(src) {
//!                         self.total += slab.iter().sum::<Word>();
//!                     }
//!                 }
//!                 Control::Halt
//!             }
//!         }
//!     }
//! }
//!
//! let engine = Engine::new(ExecutorKind::Parallel { threads: 4 });
//! let programs = (0..8).map(|_| SumIds { total: 0 }).collect();
//! let report = engine.run(programs);
//! assert!(report.programs.iter().all(|p| p.total == 28)); // 0+1+..+7
//! assert_eq!(report.rounds, 1); // one broadcast word per link
//! ```

// `deny` rather than `forbid`: the persistent worker pool (`pool.rs`) opts
// into one audited unsafe block — the lifetime erasure that lets parked
// threads run caller-borrowed jobs, sound for the same structured-
// concurrency reason `std::thread::scope` is. Everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod executor;
mod loads;
mod pool;
mod program;
mod resident;

pub use crate::engine::{Engine, EngineFabric, Fabric, RunReport};
// The shared `CC_*` knob parser moved to the bottom of the crate stack
// (`cc-telemetry`) so malformed-env warnings can flow through the telemetry
// sink; re-exported here so `cc_runtime::env_config::*` call sites are
// unchanged.
pub use crate::executor::{Executor, ExecutorKind, DEFAULT_SEQ_CUTOVER};
pub use crate::loads::LinkLoads;
pub use crate::pool::threads_spawned as pool_threads_spawned;
pub use crate::program::{Control, NodeInbox, NodeOutbox, NodeProgram, RoundCtx};
pub use crate::resident::{
    step_node, EchoRingProgram, ResidentNode, ResidentOutcome, ResidentRegistry, WireProgram,
};
pub use cc_telemetry::env_config;

/// A single `O(log n)`-bit message word (the same convention as the wire
/// simulator: one `u64` per word).
pub type Word = u64;
