//! The link-level cost model shared by the engine and the wire simulator.

/// Per-link word counts of one communication step, in deterministic
/// `(src, dst)` order. One link moves one word per round, so a step costs
/// [`LinkLoads::rounds`] synchronous rounds. Self-links (`src == dst`) are
/// local memory moves and are never recorded. Used for round accounting and
/// obliviousness fingerprints; keeping this type in one place is what keeps
/// engine-driven and flush-driven accounting bit-identical.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkLoads {
    loads: Vec<(usize, usize, usize)>,
}

impl LinkLoads {
    /// Creates an empty load set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `words` on the `(src, dst)` link. Zero-word entries and
    /// self-links are ignored. Callers must add entries in canonical
    /// `(src, dst)` order for fingerprints to be executor-independent.
    pub fn add(&mut self, src: usize, dst: usize, words: usize) {
        if words > 0 && src != dst {
            self.loads.push((src, dst, words));
        }
    }

    /// The number of synchronous rounds needed to drain these loads: the
    /// maximum over directed links of the number of words on that link
    /// (each link carries one word per round).
    #[must_use]
    pub fn rounds(&self) -> u64 {
        self.loads
            .iter()
            .map(|&(_, _, w)| w as u64)
            .max()
            .unwrap_or(0)
    }

    /// Total words crossing links.
    #[must_use]
    pub fn words(&self) -> u64 {
        self.loads.iter().map(|&(_, _, w)| w as u64).sum()
    }

    /// Iterates over `(src, dst, words)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        self.loads.iter().copied()
    }

    /// Maximum number of words sent by any single node in this step.
    #[must_use]
    pub fn max_out(&self, n: usize) -> usize {
        let mut out = vec![0usize; n];
        for &(s, _, w) in &self.loads {
            out[s] += w;
        }
        out.into_iter().max().unwrap_or(0)
    }

    /// Maximum number of words received by any single node in this step.
    #[must_use]
    pub fn max_in(&self, n: usize) -> usize {
        let mut inc = vec![0usize; n];
        for &(_, d, w) in &self.loads {
            inc[d] += w;
        }
        inc.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_out_maxima() {
        let mut loads = LinkLoads::new();
        loads.add(0, 1, 5);
        loads.add(0, 2, 3);
        loads.add(2, 1, 4);
        assert_eq!(loads.rounds(), 5);
        assert_eq!(loads.words(), 12);
        assert_eq!(loads.max_out(3), 8);
        assert_eq!(loads.max_in(3), 9);
    }

    #[test]
    fn self_links_and_empty_entries_are_ignored() {
        let mut loads = LinkLoads::new();
        loads.add(1, 1, 10);
        loads.add(0, 1, 0);
        assert_eq!(loads.rounds(), 0);
        assert_eq!(loads.iter().count(), 0);
    }
}
