//! Behavioural contract of the serving layer: batched scheduling,
//! duplicate coalescing, cache replay, pool warmth, and agreement with the
//! one-shot algorithm layer it fronts.

use cc_algebra::INFINITY;
use cc_clique::{Clique, CliqueConfig};
use cc_graph::generators;
use cc_service::{Query, Service, ServiceConfig, ServiceMode};

fn batch_service(instances: usize) -> Service {
    Service::new(ServiceConfig {
        mode: ServiceMode::Batch { instances },
        ..ServiceConfig::default()
    })
}

#[test]
fn answers_agree_with_the_one_shot_algorithm_layer() {
    let n = 12;
    let g = generators::gnp(n, 0.35, 7);
    let mut svc = batch_service(2);
    let id = svc.register(g.clone());

    let mut reference = Clique::with_config(n, CliqueConfig::default());
    let triangles = cc_subgraph::count_triangles_auto(&mut reference, &g);
    let tables = cc_apsp::apsp_exact(&mut reference, &g);
    let has_4cycle = cc_subgraph::detect_4cycle(&mut reference, &g);

    assert_eq!(
        svc.query(id, Query::TriangleCount).response.triangles(),
        Some(triangles)
    );
    assert_eq!(
        svc.query(id, Query::SubgraphFlag).response.subgraph_flag(),
        Some(has_4cycle)
    );
    let table_outcome = svc.query(id, Query::ApspTable);
    assert_eq!(
        **table_outcome.response.apsp().expect("APSP response"),
        tables,
        "served tables must equal the one-shot tables"
    );
    for (s, t) in [(0, n - 1), (3, 4), (5, 5)] {
        assert_eq!(
            svc.query(id, Query::Distance { s, t }).response.distance(),
            Some(tables.dist.row(s)[t])
        );
    }
}

#[test]
fn duplicates_coalesce_within_a_batch_and_hit_cache_across_batches() {
    let g = generators::gnp(14, 0.3, 3);
    let mut svc = batch_service(3);
    let id = svc.register(g);

    // One batch of 6 submissions over 2 distinct computations.
    let tickets: Vec<_> = [
        Query::TriangleCount,
        Query::TriangleCount,
        Query::ApspTable,
        Query::TriangleCount,
        Query::ApspTable,
        Query::TriangleCount,
    ]
    .into_iter()
    .map(|q| svc.submit(id, q))
    .collect();
    assert_eq!(svc.pending(), 6);
    assert_eq!(svc.drain(), 6);
    assert_eq!(svc.pending(), 0);

    let outcomes: Vec<_> = tickets
        .iter()
        .map(|&t| svc.take(t).expect("drained ticket resolves"))
        .collect();
    let stats = svc.stats();
    assert_eq!(stats.computations, 2, "6 submissions, 2 computations");
    assert_eq!(stats.coalesced, 4, "4 duplicates coalesced in flight");
    assert_eq!(stats.cache_hits, 0, "nothing was cached before this batch");
    assert_eq!(
        outcomes.iter().filter(|o| !o.cached).count(),
        2,
        "exactly one submission per computation paid for it"
    );
    // All triangle outcomes are identical, cached or not.
    let triangle: Vec<_> = [0usize, 1, 3, 5]
        .iter()
        .map(|&i| (&outcomes[i].response, outcomes[i].rounds, outcomes[i].words))
        .collect();
    assert!(triangle.windows(2).all(|w| w[0] == w[1]));

    // A second identical batch is pure cache: zero new simulated rounds,
    // zero new computations, bit-identical outcomes.
    let rounds_before = stats.simulated_rounds;
    let replay = svc.query(id, Query::TriangleCount);
    let stats = svc.stats();
    assert!(replay.cached);
    assert_eq!(stats.computations, 2, "no new computation ran");
    assert_eq!(
        stats.simulated_rounds, rounds_before,
        "a cache hit simulates zero additional rounds"
    );
    assert_eq!((&replay.response, replay.rounds, replay.words), triangle[0]);
}

#[test]
fn cached_apsp_tables_memoize_distance_lookups() {
    let g = generators::weighted_gnp(10, 0.4, 9, true, 5);
    let mut svc = batch_service(2);
    let id = svc.register(g);

    // The first distance query primes the full table...
    let first = svc.query(id, Query::Distance { s: 0, t: 9 });
    assert!(!first.cached);
    let computations = svc.stats().computations;
    // ...and every further distance (and the table itself) is a lookup.
    for (s, t) in [(1, 2), (9, 0), (4, 4), (0, 9)] {
        assert!(svc.query(id, Query::Distance { s, t }).cached);
    }
    assert!(svc.query(id, Query::ApspTable).cached);
    assert_eq!(svc.stats().computations, computations, "lookups are O(1)");
}

#[test]
fn unreachable_distances_are_infinite() {
    // Two components: 0-1-2 cycle and isolated 3,4.
    let mut g = cc_graph::Graph::undirected(5);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 0);
    let mut svc = batch_service(1);
    let id = svc.register(g);
    let d = svc.query(id, Query::Distance { s: 0, t: 4 });
    assert_eq!(d.response.distance(), Some(INFINITY));
}

#[test]
fn direct_and_batch_modes_serve_identical_outcomes() {
    let g = generators::gnp(12, 0.3, 11);
    let digraph = generators::gnp_directed(10, 0.25, 13);
    let queries = [
        Query::TriangleCount,
        Query::GirthBound,
        Query::ApspTable,
        Query::Distance { s: 2, t: 7 },
        Query::SubgraphFlag,
    ];

    let run = |mode: ServiceMode| {
        let mut svc = Service::new(ServiceConfig {
            mode,
            ..ServiceConfig::default()
        });
        let id = svc.register(g.clone());
        let did = svc.register(digraph.clone());
        let mut out: Vec<_> = queries
            .iter()
            .map(|&q| {
                let o = svc.query(id, q);
                (o.response, o.rounds, o.words)
            })
            .collect();
        // Directed graphs ride the service too (girth switches detector).
        let o = svc.query(did, Query::GirthBound);
        out.push((o.response, o.rounds, o.words));
        out
    };

    let direct = run(ServiceMode::Direct);
    for instances in [1, 2, 4] {
        assert_eq!(
            direct,
            run(ServiceMode::Batch { instances }),
            "batch:{instances} diverged from direct mode"
        );
    }
}

#[test]
fn batches_fan_mixed_graphs_and_sizes_through_the_warm_pool() {
    let graphs = [
        generators::gnp(10, 0.3, 1),
        generators::gnp(14, 0.3, 2),
        generators::complete(10),
        generators::cycle(14),
    ];
    let mut svc = batch_service(3);
    let ids: Vec<_> = graphs.iter().map(|g| svc.register(g.clone())).collect();

    // Round one: everything cold.
    let tickets: Vec<_> = ids
        .iter()
        .map(|&id| svc.submit(id, Query::TriangleCount))
        .collect();
    svc.drain();
    let round_one: Vec<_> = tickets.iter().map(|&t| svc.take(t).unwrap()).collect();
    let built_after_one = svc.pool().built();
    assert!(
        built_after_one >= 2,
        "two distinct sizes need two instances"
    );

    // Round two on fresh queries of the same sizes: the pool serves warm
    // instances, builds nothing new.
    svc.clear_cache();
    let tickets: Vec<_> = ids
        .iter()
        .map(|&id| svc.submit(id, Query::TriangleCount))
        .collect();
    svc.drain();
    let round_two: Vec<_> = tickets.iter().map(|&t| svc.take(t).unwrap()).collect();
    assert_eq!(
        svc.pool().built(),
        built_after_one,
        "round two must reuse warm instances"
    );
    assert!(svc.pool().reused() > 0);
    // Warm instances replay the cold run bit-for-bit.
    for (a, b) in round_one.iter().zip(&round_two) {
        assert_eq!(
            (&a.response, a.rounds, a.words),
            (&b.response, b.rounds, b.words)
        );
    }

    // Expected counts: complete(10) has C(10,3) triangles, cycle has none.
    assert_eq!(round_one[2].response.triangles(), Some(120));
    assert_eq!(round_one[3].response.triangles(), Some(0));
}

#[test]
fn equal_graphs_registered_twice_share_one_cache_universe() {
    let g = generators::gnp(12, 0.3, 21);
    let mut svc = batch_service(2);
    let a = svc.register(g.clone());
    let b = svc.register(g);
    assert_eq!(a, b);
    let fresh = svc.query(a, Query::TriangleCount);
    assert!(!fresh.cached);
    assert!(
        svc.query(b, Query::TriangleCount).cached,
        "the second registration must hit the first's cache entries"
    );
}

#[test]
fn take_is_single_redemption_and_pending_tracks_the_queue() {
    let mut svc = batch_service(1);
    let id = svc.register(generators::cycle(6));
    let t = svc.submit(id, Query::GirthBound);
    assert_eq!(svc.pending(), 1);
    assert!(svc.take(t).is_none(), "not drained yet");
    svc.drain();
    let o = svc.take(t).expect("resolved");
    assert_eq!(o.response.girth(), Some(Some(6)));
    assert!(svc.take(t).is_none(), "tickets redeem once");
}

#[test]
#[should_panic(expected = "out of range")]
fn distance_endpoints_are_validated_at_submission() {
    let mut svc = batch_service(1);
    let id = svc.register(generators::cycle(5));
    let _ = svc.submit(id, Query::Distance { s: 0, t: 5 });
}

#[test]
#[should_panic(expected = "undirected")]
fn subgraph_flag_rejects_directed_graphs_at_submission() {
    let mut svc = batch_service(1);
    let id = svc.register(generators::gnp_directed(6, 0.4, 1));
    let _ = svc.submit(id, Query::SubgraphFlag);
}

#[test]
fn service_mode_parser_accepts_known_specs_and_rejects_malformed_ones() {
    assert_eq!(ServiceMode::parse("direct"), Some(ServiceMode::Direct));
    assert_eq!(
        ServiceMode::parse("batch"),
        Some(ServiceMode::Batch { instances: 0 })
    );
    assert_eq!(
        ServiceMode::parse("BATCH:4"),
        Some(ServiceMode::Batch { instances: 4 })
    );
    assert_eq!(
        ServiceMode::parse("batched:0"),
        Some(ServiceMode::Batch { instances: 0 }),
        "an explicit 0 means the default width"
    );
    // The shared contract: a malformed suffix rejects the whole spec so
    // `from_env_or` falls back (and warns once), never misconfigures.
    assert_eq!(ServiceMode::parse("batch:banana"), None);
    assert_eq!(ServiceMode::parse("batch:"), None);
    assert_eq!(
        ServiceMode::parse("direct:2"),
        None,
        "direct takes no suffix"
    );
    assert_eq!(ServiceMode::parse("turbo"), None);
}

#[test]
fn unredeemed_outcomes_are_bounded_under_a_submit_heavy_no_take_stream() {
    // The leak regression: a fire-and-forget caller that submits but never
    // takes used to grow the outcome map one entry per ticket, forever.
    // With the retention cap, both the entry count and the retained bytes
    // plateau, the newest outcomes stay redeemable, and the drops are
    // counted and observable.
    let cap = 8;
    let g = generators::gnp(10, 0.3, 5);
    let mut svc = Service::new(ServiceConfig {
        mode: ServiceMode::Batch { instances: 2 },
        max_unredeemed: cap,
        ..ServiceConfig::default()
    });
    let id = svc.register(g);
    // Prime the computation once (and redeem it), so every wave below is a
    // pure cache replay: the stream stresses retention, not simulation.
    let _ = svc.query(id, Query::TriangleCount);

    let mut tickets = Vec::new();
    let mut plateau_bytes = None;
    for wave in 0..12 {
        for _ in 0..4 {
            tickets.push(svc.submit(id, Query::TriangleCount));
        }
        svc.drain();
        assert!(
            svc.retained_outcomes() <= cap,
            "wave {wave}: {} retained outcomes exceed the cap {cap}",
            svc.retained_outcomes()
        );
        if wave >= 2 {
            // Cap reached (4 per wave): from here the retained byte count
            // must be flat, not growing.
            let bytes = svc.unredeemed_bytes();
            assert!(bytes > 0);
            match plateau_bytes {
                None => plateau_bytes = Some(bytes),
                Some(expect) => {
                    assert_eq!(bytes, expect, "wave {wave}: retained bytes must plateau");
                }
            }
        }
    }

    let total = tickets.len();
    assert_eq!(
        svc.stats().outcomes_evicted,
        (total - cap) as u64,
        "every outcome beyond the cap was dropped, and counted"
    );
    // The oldest tickets' outcomes are gone; the newest `cap` still redeem.
    assert!(svc.take(tickets[0]).is_none(), "oldest outcome was dropped");
    for &t in &tickets[total - cap..] {
        assert!(svc.take(t).is_some(), "newest outcomes stay redeemable");
    }
    assert_eq!(svc.retained_outcomes(), 0, "redeeming drains the map");
    assert_eq!(svc.unredeemed_bytes(), 0);
}

#[test]
fn result_cache_is_bounded_and_evicted_keys_reprime_identically() {
    // The ROADMAP's other leak: the fingerprint-keyed result cache grew one
    // entry per distinct computation, forever. With the entry cap, the
    // occupancy plateaus, drops are counted, and an evicted computation is
    // simply re-primed on its next submission with a bit-identical answer
    // and accounting — only the `cached` flag (was the replay free?) flips.
    let cap = 4;
    let mut svc = Service::new(ServiceConfig {
        mode: ServiceMode::Batch { instances: 2 },
        max_cached: cap,
        ..ServiceConfig::default()
    });
    let ids: Vec<_> = (0..10)
        .map(|i| svc.register(generators::gnp(10, 0.3, 100 + i)))
        .collect();
    let mut first = Vec::new();
    for &id in &ids {
        first.push(svc.query(id, Query::TriangleCount));
        assert!(
            svc.cached_computations() <= cap,
            "{} cached computations exceed the cap {cap}",
            svc.cached_computations()
        );
    }
    assert_eq!(
        svc.stats().results_evicted,
        (ids.len() - cap) as u64,
        "every primed computation beyond the cap was dropped, and counted"
    );
    // The oldest primed graph is gone; requerying re-primes it.
    let again = svc.query(ids[0], Query::TriangleCount);
    assert_eq!(again.response, first[0].response);
    assert_eq!(
        (again.rounds, again.words),
        (first[0].rounds, first[0].words)
    );
    assert!(
        !again.cached,
        "an evicted key re-primes instead of replaying"
    );
    // The newest keys survived the caps: their replays stay free.
    let hot = svc.query(*ids.last().unwrap(), Query::TriangleCount);
    assert!(hot.cached, "the newest entry stays cached");
    assert_eq!(hot.response, first.last().unwrap().response);
}

#[test]
fn result_cache_byte_cap_keeps_the_newest_entry() {
    // An impossible byte budget degenerates to "cache of one": the byte cap
    // evicts oldest-first but always spares the newest entry, so the hot
    // key keeps replaying for free.
    let mut svc = Service::new(ServiceConfig {
        mode: ServiceMode::Batch { instances: 2 },
        max_cache_bytes: 1,
        ..ServiceConfig::default()
    });
    let a = svc.register(generators::gnp(10, 0.3, 1));
    let b = svc.register(generators::gnp(10, 0.3, 2));
    let _ = svc.query(a, Query::TriangleCount);
    let _ = svc.query(b, Query::TriangleCount);
    assert_eq!(
        svc.cached_computations(),
        1,
        "byte cap keeps only the newest"
    );
    assert!(svc.stats().results_evicted >= 1);
    assert!(
        svc.query(b, Query::TriangleCount).cached,
        "the survivor is the newest entry"
    );
}
