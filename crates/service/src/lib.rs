//! # cc-service: a batched query-serving layer for the congested clique
//!
//! Every algorithm in this workspace is a one-shot function: build a fresh
//! [`Clique`](cc_clique::Clique), run, throw everything away. That is the
//! right shape for reproducing a paper and the wrong shape for serving
//! traffic — real workloads ask many questions about few graphs, repeat
//! themselves constantly, and should never pay simulator construction (or
//! a second simulation of identical work) per question. This crate is the
//! layer that turns the algorithmic menu into a service:
//!
//! * [`GraphRegistry`] — graphs registered **once**, content-fingerprinted
//!   ([`cc_graph::Graph::fingerprint`]), deduplicated, and shared via
//!   `Arc` with every query that touches them.
//! * [`CliquePool`] — **warm simulator instances** keyed by clique size
//!   under one `(executor, transport)` configuration: checked out per
//!   computation, [`reset`](cc_clique::Clique::reset) (accounting zeroed,
//!   worker threads / node threads / worker processes kept), checked back
//!   in. All instances share one executor handle, so a pool of cliques
//!   owns one pool of OS threads.
//! * [`Query`] / [`Response`] — the typed API: [`Query::TriangleCount`],
//!   [`Query::ApspTable`], [`Query::Distance`], [`Query::GirthBound`],
//!   [`Query::SubgraphFlag`], each with a canonical cache key of graph
//!   fingerprint + computation kind + config-relevant knobs.
//! * A fingerprint-keyed **result cache** — a repeated query returns a
//!   bit-identical answer *and accounting* with **zero additional
//!   simulated rounds**; cached APSP tables additionally memoize, so
//!   point-to-point [`Query::Distance`] lookups are O(1) once any
//!   distance (or table) query primed the graph.
//! * A deterministic **batch scheduler** ([`Service::drain`]) — the
//!   submission queue drains in seeded order, duplicate in-flight queries
//!   coalesce into one computation, and independent computations fan over
//!   pool instances via the shared [`Executor`](cc_runtime::Executor).
//!
//! The cache key deliberately excludes the executor and transport: the
//! workspace-wide determinism contract (results, rounds, words, and
//! pattern fingerprints are bit-identical across backends) is what makes a
//! result primed on one backend valid on all of them — the service is the
//! first consumer that turns that contract into capacity.
//!
//! Like `CC_EXECUTOR` and `CC_TRANSPORT`, the `CC_SERVICE` environment
//! variable (`direct` or `batch[:instances]`) retargets every
//! default-configured service in the process, which is how CI runs the
//! suite with the batch scheduler forced on.
//!
//! ## Example
//!
//! ```rust
//! use cc_graph::generators;
//! use cc_service::{Query, Service};
//!
//! let mut svc = Service::default();
//! let g = svc.register(generators::petersen());
//!
//! // Prime: the Petersen graph has girth 5 and no triangles.
//! let fresh = svc.query(g, Query::TriangleCount);
//! assert_eq!(fresh.response.triangles(), Some(0));
//! assert!(!fresh.cached && fresh.rounds > 0);
//!
//! // Repeat: same answer, same accounting, zero new simulated rounds.
//! let replay = svc.query(g, Query::TriangleCount);
//! assert_eq!(replay.response, fresh.response);
//! assert_eq!((replay.rounds, replay.words), (fresh.rounds, fresh.words));
//! assert!(replay.cached);
//!
//! // A distance query primes the APSP table; the table then memoizes
//! // every point-to-point lookup on the graph.
//! let d = svc.query(g, Query::Distance { s: 0, t: 7 });
//! assert!(!d.cached);
//! assert!(svc.query(g, Query::Distance { s: 7, t: 0 }).cached);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod pool;
mod query;
mod registry;
mod service;

pub use crate::pool::CliquePool;
pub use crate::query::{Query, Response};
pub use crate::registry::{GraphId, GraphRegistry};
pub use crate::service::{
    QueryOutcome, Service, ServiceConfig, ServiceMode, ServiceStats, Ticket,
    DEFAULT_BATCH_INSTANCES, DEFAULT_MAX_CACHED, DEFAULT_MAX_CACHE_BYTES, DEFAULT_MAX_UNREDEEMED,
};
